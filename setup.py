"""Setuptools shim.

The project metadata lives in ``pyproject.toml``.  This file exists so the
package can be installed in environments without the ``wheel`` package (for
example fully offline machines) via::

    pip install -e . --no-use-pep517 --no-build-isolation
"""

from setuptools import setup

setup()
