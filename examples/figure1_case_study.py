"""Replay the paper's Figure 1 / Section 8.1 case study.

The engineers needed four iterations over three weeks to move traffic bundle
T1 off region B without impacting anything else.  This example replays every
iteration against the Rela change spec and prints, for each one, the verdict
and the per-sub-spec violation counts the paper reports (17 ``nochange`` +
15 ``e2e`` for v1; 15 ``e2e`` + 24 ``nochange`` + 0 ``sideEffects`` for v2;
a clean pass for the final implementation).

Run with::

    python examples/figure1_case_study.py
"""

from __future__ import annotations

from repro.snapshots import path_diff
from repro.verifier import verify_change
from repro.workloads.figure1 import build_scenario


def main() -> None:
    scenario = build_scenario()
    pre = scenario.pre_change()

    iterations = [
        ("v1 (allow-list on A2)", scenario.iteration_v1(), scenario.change_spec()),
        ("v2 (local-pref change, typo at B2)", scenario.iteration_v2(), scenario.refined_spec()),
        ("v3 (typo fixed, bounce remains)", scenario.iteration_v3(), scenario.refined_spec()),
        ("final (intended behaviour)", scenario.final_implementation(), scenario.refined_spec()),
    ]

    for name, post, spec in iterations:
        report = verify_change(pre, post, spec, db=scenario.db)
        diff = path_diff(pre, post)
        print(f"--- {name} ---")
        print(f"  manual path diff: {len(diff)} classes to audit by hand")
        print(f"  Rela verdict:     {report.summary()}")
        if not report.holds:
            print("  example counterexamples (Table 1 layout):")
            for line in report.table(max_rows=2).splitlines():
                print(f"    {line}")
        print()


if __name__ == "__main__":
    main()
