"""Quickstart: verify a small network change relationally.

This example walks through the whole Rela workflow on a five-router network:

1. describe the pre-change and post-change forwarding state (normally these
   come from a simulator; here we write the paths down directly);
2. write a relational change spec: traffic from ``edge`` to ``core2`` should
   move onto the path through ``mid2``, and *nothing else* may change;
3. run the verifier and print the result, then repeat with a buggy
   implementation to see the counterexamples.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.rela import any_of, atomic, locs, nochange, seq
from repro.snapshots import FlowEquivalenceClass, build_snapshot
from repro.verifier import verify_change


def build_snapshots():
    """Forwarding paths before and after the change (plus a buggy variant)."""
    web = FlowEquivalenceClass("web", dst_prefix="203.0.113.0/24", ingress="edge")
    dns = FlowEquivalenceClass("dns", dst_prefix="198.51.100.0/24", ingress="edge")

    pre = build_snapshot(
        "pre",
        [
            (web, [("edge", "mid1", "core1")]),
            (dns, [("edge", "mid1", "core2")]),
        ],
    )
    post_good = build_snapshot(
        "post-good",
        [
            (web, [("edge", "mid1", "core1")]),
            (dns, [("edge", "mid2", "core2")]),
        ],
    )
    post_buggy = build_snapshot(
        "post-buggy",
        [
            (web, [("edge", "mid2", "core1")]),  # collateral damage!
            (dns, [("edge", "mid1", "core2")]),  # intended move did not happen
        ],
    )
    return pre, post_good, post_buggy


def build_spec():
    """"Move edge→core2 traffic onto mid2; nothing else changes." """
    shift = atomic(
        seq(locs({"edge"}), locs({"mid1", "mid2"}), locs({"core2"})),
        any_of(seq(locs({"edge"}), locs({"mid2"}), locs({"core2"}))),
        name="moveToMid2",
    )
    return shift.else_(nochange())


def main() -> None:
    pre, post_good, post_buggy = build_snapshots()
    spec = build_spec()

    print("== correct implementation ==")
    report = verify_change(pre, post_good, spec)
    print(report.summary())

    print("\n== buggy implementation ==")
    report = verify_change(pre, post_buggy, spec)
    print(report.summary())
    print(report.table())


if __name__ == "__main__":
    main()
