"""Prefix decommissioning with prefix-guarded specs (paper Section 7).

Decommissioning an IP prefix is a common change: after it, the network must
not carry traffic for that prefix along *any* path, while every other prefix
keeps its existing paths.  Rela expresses this with a prefix-predicated spec::

    spec dealloc := .* : remove(.*)          # here: the drop modifier
    pspec deallocP := (dstPrefix == 10.0.0.0/24) -> dealloc

This example generates a synthetic backbone, decommissions one customer
prefix, and verifies both a correct and a buggy implementation (one router
keeps forwarding the prefix).

Run with::

    python examples/prefix_decommission.py
"""

from __future__ import annotations

from repro.verifier import verify_change
from repro.workloads import BackboneParams, generate_backbone, generate_fecs
from repro.workloads.changes import prefix_decommission


def main() -> None:
    backbone = generate_backbone(
        BackboneParams(regions=3, routers_per_group=2, prefixes_per_region=2, parallel_links=2)
    )
    fecs = generate_fecs(backbone, max_classes=16)
    pre = backbone.simulator().snapshot(fecs, name="pre")
    db = backbone.location_db()

    victim_prefix = str(backbone.region_prefixes["R0"][0])
    print(f"decommissioning {victim_prefix}")
    print(f"{len(pre)} flow equivalence classes in the snapshot\n")

    correct = prefix_decommission(pre, victim_prefix, change_id="dealloc-correct")
    report = verify_change(correct.pre, correct.post, correct.spec, db=db)
    print("correct implementation:", report.summary())

    buggy = prefix_decommission(
        pre, victim_prefix, change_id="dealloc-buggy", buggy_still_forwarding=True
    )
    report = verify_change(buggy.pre, buggy.post, buggy.spec, db=db)
    print("buggy implementation:  ", report.summary())
    print()
    print(report.table(max_rows=3))


if __name__ == "__main__":
    main()
