"""Link maintenance: drain a link and prove that only its traffic moved.

This is the motivating change from the paper's introduction: *move all
traffic from link A to link B as a precursor to shutting A down*.  The
engineer must ensure that (1) everything on link A moved, (2) it moved to
link B and nowhere else, and (3) no other traffic was touched.

The example builds a small two-AS network with two parallel transit routers,
simulates the pre-change forwarding state from router configurations, models
the drain as a configuration change (deny the drained transit's routes),
re-simulates, and verifies the change relationally.

Run with::

    python examples/link_maintenance.py
"""

from __future__ import annotations

from repro.network import NetworkConfig, Simulator, Topology, deny_prefixes
from repro.rela import any_of, atomic, locs, nochange, seq, any_hops
from repro.snapshots import FlowEquivalenceClass
from repro.verifier import verify_change


def build_network() -> tuple[Topology, NetworkConfig]:
    topology = Topology("maintenance")
    topology.add_router("edge", group="EDGE", region="W", asn=100)
    topology.add_router("transit-a", group="TRANSIT-A", region="W", asn=100)
    topology.add_router("transit-b", group="TRANSIT-B", region="W", asn=100)
    topology.add_router("core", group="CORE", region="E", asn=200)
    topology.add_router("stub", group="STUB", region="E", asn=200)
    topology.add_link("edge", "transit-a", members=2, cost=10)
    topology.add_link("edge", "transit-b", members=2, cost=10)
    topology.add_link("transit-a", "core", cost=10)
    topology.add_link("transit-b", "core", cost=10)
    topology.add_link("core", "stub", cost=10)

    config = NetworkConfig()
    for prefix in ("203.0.113.0/24", "198.51.100.0/24"):
        config.router("stub").originate(prefix)
    return topology, config


def main() -> None:
    topology, config = build_network()
    fecs = [
        FlowEquivalenceClass("customers", dst_prefix="203.0.113.0/24", ingress="edge"),
        FlowEquivalenceClass("voip", dst_prefix="198.51.100.0/24", ingress="edge"),
    ]

    pre = Simulator(topology, config).snapshot(fecs, name="pre")
    print("pre-change paths:")
    for fec, graph in pre.items():
        print(f"  {fec.fec_id}: {sorted('-'.join(p) for p in graph.path_set())}")

    # The change: drain transit-a by filtering the routes it would import,
    # so the edge stops using it.  Then re-simulate.
    drained = config.copy()
    drained.router("transit-a").set_import_policy(
        "core", deny_prefixes(["0.0.0.0/0"], name="drain-transit-a")
    )
    post = Simulator(topology, drained).snapshot(fecs, name="post")
    print("post-change paths:")
    for fec, graph in post.items():
        print(f"  {fec.fec_id}: {sorted('-'.join(p) for p in graph.path_set())}")

    # Relational spec: traffic through transit-a moves to a path through
    # transit-b; everything else stays exactly the same.
    drain_spec = atomic(
        seq(any_hops(), locs({"transit-a"}), any_hops()),
        any_of(seq(any_hops(), locs({"transit-b"}), any_hops())),
        name="drain",
    ).else_(nochange())

    report = verify_change(pre, post, drain_spec, db=topology.to_location_db())
    print()
    print(report.summary())
    if not report.holds:
        print(report.table())


if __name__ == "__main__":
    main()
