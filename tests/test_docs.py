"""The documentation cannot rot: every Python block in it must execute.

Extracts the fenced ``python`` code blocks from ``README.md`` and the
``docs/`` pages and executes them (blocks within one file run sequentially
in a shared namespace, so a later block may build on an earlier one — the
README's session example continues its quickstart).  The blocks carry
their own ``assert``s, so a drifted API or a wrong claimed verdict fails
here, and in the CI docs job, before it misleads a reader.  The runnable
example scripts are executed too.
"""

from __future__ import annotations

import re
import runpy
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

_PYTHON_BLOCK_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks(path: Path) -> list[str]:
    return _PYTHON_BLOCK_RE.findall(path.read_text(encoding="utf-8"))


def test_readme_exists_and_has_runnable_quickstart():
    readme = REPO_ROOT / "README.md"
    assert readme.exists()
    blocks = python_blocks(readme)
    assert len(blocks) >= 2, "README must keep its runnable quickstart blocks"


@pytest.mark.parametrize(
    "relative",
    ["README.md", "docs/SPECS.md", "docs/ARCHITECTURE.md"],
)
def test_documentation_code_blocks_execute(relative):
    path = REPO_ROOT / relative
    assert path.exists(), f"{relative} is part of the documentation suite"
    namespace: dict = {"__name__": f"docs-block:{relative}"}
    for index, block in enumerate(python_blocks(path)):
        try:
            exec(compile(block, f"{relative}[block {index}]", "exec"), namespace)
        except Exception as error:  # pragma: no cover - the assertion payload
            pytest.fail(f"{relative} code block {index} failed: {error!r}")


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "prefix_decommission.py", "link_maintenance.py"],
)
def test_example_scripts_execute(script):
    runpy.run_path(str(REPO_ROOT / "examples" / script), run_name="__main__")
