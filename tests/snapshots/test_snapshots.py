"""Tests for forwarding graphs, FECs, snapshots and the path-diff baseline."""

import pytest

from repro.automata import Alphabet
from repro.automata.alphabet import DROP
from repro.errors import SnapshotError
from repro.rela.locations import Granularity
from repro.snapshots import (
    FlowEquivalenceClass,
    ForwardingGraph,
    Snapshot,
    build_snapshot,
    drop_graph,
    path_diff,
)


# ----------------------------------------------------------------------
# Forwarding graphs
# ----------------------------------------------------------------------
def test_graph_from_paths_and_enumeration():
    graph = ForwardingGraph.from_paths([("a", "b", "d"), ("a", "c", "d")])
    assert graph.num_nodes == 4
    assert graph.num_edges == 4
    assert graph.sources == {"a"} and graph.sinks == {"d"}
    assert graph.path_set() == {("a", "b", "d"), ("a", "c", "d")}
    assert graph.count_paths() == 2
    assert graph.is_acyclic()
    assert not graph.is_empty()
    assert graph.successors("a") == ["b", "c"] or set(graph.successors("a")) == {"b", "c"}


def test_empty_graph():
    graph = ForwardingGraph.empty()
    assert graph.is_empty()
    assert graph.path_set() == set()
    assert graph.count_paths() == 0


def test_add_path_rejects_empty():
    with pytest.raises(SnapshotError):
        ForwardingGraph().add_path([])


def test_count_paths_matches_ecmp_fanout():
    # A k-stage DAG with 2 parallel hops per stage has 2^k paths; the graph
    # encodes them with 2k+2 nodes (the paper's compaction argument).
    graph = ForwardingGraph()
    stages = 10
    previous = ["start"]
    for stage in range(stages):
        current = [f"s{stage}a", f"s{stage}b"]
        for src in previous:
            for dst in current:
                graph.add_edge(src, dst)
        previous = current
    for src in previous:
        graph.add_edge(src, "end")
    graph.sources = {"start"}
    graph.sinks = {"end"}
    assert graph.count_paths() == 2**stages
    assert graph.num_nodes == 2 * stages + 2


def test_count_paths_rejects_cycles():
    graph = ForwardingGraph()
    graph.add_edge("a", "b")
    graph.add_edge("b", "a")
    graph.sources = {"a"}
    graph.sinks = {"b"}
    assert not graph.is_acyclic()
    with pytest.raises(SnapshotError):
        graph.count_paths()


def test_coarsen_merges_and_elides_self_loops():
    graph = ForwardingGraph.from_paths(
        [("a1:if1", "a2:if1", "b1:if1")], granularity=Granularity.INTERFACE
    )
    mapping = {"a1:if1": "A", "a2:if1": "A", "b1:if1": "B"}
    coarse = graph.coarsen(mapping, Granularity.ROUTER)
    assert coarse.path_set() == {("A", "B")}
    assert ("A", "A") not in coarse.edges


def test_coarsen_keeps_unmapped_names():
    graph = ForwardingGraph.from_paths([("a", DROP)])
    coarse = graph.coarsen({"a": "GROUP-A"}, Granularity.GROUP)
    assert coarse.path_set() == {("GROUP-A", DROP)}


def test_to_fsa_accepts_exactly_graph_paths():
    graph = ForwardingGraph.from_paths([("a", "b", "d"), ("a", "c", "d")])
    alphabet = Alphabet()
    fsa = graph.to_fsa(alphabet)
    assert fsa.accepts(["a", "b", "d"])
    assert fsa.accepts(["a", "c", "d"])
    assert not fsa.accepts(["a", "b", "c", "d"])
    assert not fsa.accepts(["b", "d"])


def test_graph_serialization_round_trip():
    graph = ForwardingGraph.from_paths([("a", "b")], granularity=Granularity.GROUP)
    clone = ForwardingGraph.from_dict(graph.to_dict())
    assert clone.path_set() == graph.path_set()
    assert clone.granularity is Granularity.GROUP
    with pytest.raises(SnapshotError):
        ForwardingGraph.from_dict({"granularity": "router", "nodes": [], "edges": [],
                                   "sources": ["ghost"], "sinks": []})
    with pytest.raises(SnapshotError):
        ForwardingGraph.from_dict({"granularity": "bogus"})


def test_drop_graph_is_single_drop_path():
    graph = drop_graph()
    assert graph.path_set() == {(DROP,)}


# ----------------------------------------------------------------------
# FECs
# ----------------------------------------------------------------------
def test_fec_round_trip_and_rendering():
    fec = FlowEquivalenceClass(
        "fec-1", dst_prefix="10.0.0.0/24", src_prefix="172.16.0.0/16",
        ingress="a1", metadata={"bundle": "T1"},
    )
    clone = FlowEquivalenceClass.from_dict(fec.to_dict())
    assert clone == fec
    assert "10.0.0.0/24" in str(fec)
    with pytest.raises(SnapshotError):
        FlowEquivalenceClass("")


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------
def build_pair() -> tuple[Snapshot, Snapshot]:
    fec1 = FlowEquivalenceClass("f1", dst_prefix="10.0.1.0/24", ingress="a")
    fec2 = FlowEquivalenceClass("f2", dst_prefix="10.0.2.0/24", ingress="a")
    pre = build_snapshot("pre", [(fec1, [("a", "b", "c")]), (fec2, [("a", "d")])])
    post = build_snapshot("post", [(fec1, [("a", "b", "c")]), (fec2, [("a", "e")])])
    return pre, post


def test_snapshot_access_and_errors():
    pre, _post = build_pair()
    assert len(pre) == 2
    assert "f1" in pre and "zz" not in pre
    assert pre.fec("f1").ingress == "a"
    assert pre.graph("f1").path_set() == {("a", "b", "c")}
    assert pre.graph("missing").is_empty()
    assert pre.locations() == {"a", "b", "c", "d"}
    with pytest.raises(SnapshotError):
        pre.fec("missing")
    with pytest.raises(SnapshotError):
        pre.add(pre.fec("f1"), ForwardingGraph.empty())
    with pytest.raises(SnapshotError):
        pre.replace("missing", ForwardingGraph.empty())


def test_snapshot_copy_is_independent():
    pre, _post = build_pair()
    clone = pre.copy(name="clone")
    clone.replace("f1", ForwardingGraph.from_paths([("x", "y")]))
    assert pre.graph("f1").path_set() == {("a", "b", "c")}
    assert clone.graph("f1").path_set() == {("x", "y")}


def test_snapshot_json_round_trip(tmp_path):
    pre, _post = build_pair()
    path = tmp_path / "snapshot.json"
    pre.to_json(path, indent=2)
    loaded = Snapshot.from_json(path)
    assert loaded.name == "pre"
    assert loaded.graph("f2").path_set() == {("a", "d")}
    inline = Snapshot.from_json(pre.to_json())
    assert inline.fec_ids() == pre.fec_ids()
    with pytest.raises(SnapshotError):
        Snapshot.from_json('{"name": "broken"}')


# ----------------------------------------------------------------------
# Path diff (manual inspection baseline)
# ----------------------------------------------------------------------
def test_path_diff_reports_only_changed_classes():
    pre, post = build_pair()
    diff = path_diff(pre, post)
    assert len(diff) == 1
    assert diff.total_classes == 2
    assert diff.changed_fec_ids() == {"f2"}
    entry = diff.entries[0]
    assert entry.removed_paths == {("a", "d")}
    assert entry.added_paths == {("a", "e")}
    assert "f2" not in diff.summary() or diff.summary()
    assert "removed" in str(entry)


def test_path_diff_handles_missing_classes():
    pre, post = build_pair()
    extra_fec = FlowEquivalenceClass("f3", dst_prefix="10.0.3.0/24", ingress="a")
    post.add(extra_fec, ForwardingGraph.from_paths([("a", "z")]))
    diff = path_diff(pre, post)
    assert diff.changed_fec_ids() == {"f2", "f3"}
    assert diff.total_classes == 3


def test_path_diff_identical_snapshots_is_empty():
    pre, _post = build_pair()
    diff = path_diff(pre, pre.copy())
    assert len(diff) == 0
    assert list(iter(diff)) == []
