"""Tests for graph interning: freeze contract, GraphStore, COW snapshots."""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SnapshotError
from repro.rela.locations import Granularity
from repro.snapshots import (
    FlowEquivalenceClass,
    ForwardingGraph,
    GraphStore,
    Snapshot,
    build_snapshot,
)


def graph_ab() -> ForwardingGraph:
    return ForwardingGraph.from_paths([("a", "b", "d"), ("a", "c", "d")])


# ----------------------------------------------------------------------
# Freeze contract
# ----------------------------------------------------------------------
def test_freeze_is_idempotent_and_blocks_mutators():
    graph = graph_ab()
    assert not graph.frozen
    assert graph.freeze() is graph
    assert graph.freeze() is graph  # idempotent
    assert graph.frozen
    with pytest.raises(SnapshotError):
        graph.add_node("x")
    with pytest.raises(SnapshotError):
        graph.add_edge("a", "x")
    with pytest.raises(SnapshotError):
        graph.add_path(("a", "x"))


def test_freeze_blocks_direct_set_mutation_and_reassignment():
    graph = graph_ab().freeze()
    with pytest.raises(AttributeError):
        graph.sources.add("rogue")  # frozenset has no .add
    with pytest.raises(SnapshotError):
        graph.sources = {"rogue"}
    with pytest.raises(SnapshotError):
        graph.granularity = Granularity.GROUP


def test_frozen_graph_queries_still_work():
    graph = graph_ab().freeze()
    assert graph.path_set() == {("a", "b", "d"), ("a", "c", "d")}
    assert graph.count_paths() == 2
    assert graph.is_acyclic()
    assert sorted(graph.successors("a")) == ["b", "c"]
    assert graph.successors("unknown") == []
    # The adjacency index is cached on frozen graphs and stays correct.
    assert sorted(graph.successors("a")) == ["b", "c"]
    assert graph.coarsen({"b": "c"}, Granularity.ROUTER).path_set() == {("a", "c", "d")}


def test_frozen_fingerprint_is_cached_without_revalidation():
    graph = graph_ab()
    unfrozen_digest = graph.fingerprint()
    graph.freeze()
    assert graph.fingerprint() == unfrozen_digest
    # Frozen caches store no content token: validation is the flag check.
    assert graph._fingerprint == (None, unfrozen_digest)


def test_freeze_drops_stale_fingerprint_from_direct_mutation():
    """A digest cached before direct set mutation must not survive freeze():
    otherwise interning would alias structurally different graphs."""
    graph = graph_ab()
    twin = graph_ab()
    stale = graph.fingerprint()
    graph.sources.add("rogue")  # direct mutation: the cache is not notified
    graph.freeze()
    assert graph.fingerprint() != stale
    store = GraphStore()
    assert store.intern(graph) != store.intern(twin)


def test_thaw_returns_independent_mutable_copy():
    frozen = graph_ab().freeze()
    thawed = frozen.thaw()
    assert not thawed.frozen
    assert thawed.path_set() == frozen.path_set()
    thawed.add_path(("a", "z"))
    assert ("a", "z") in thawed.path_set()
    assert ("a", "z") not in frozen.path_set()
    assert thawed.fingerprint() != frozen.fingerprint()


# ----------------------------------------------------------------------
# GraphStore
# ----------------------------------------------------------------------
def test_store_interns_structural_duplicates_once():
    store = GraphStore()
    first = graph_ab()
    duplicate = ForwardingGraph.from_paths([("a", "c", "d"), ("a", "b", "d")])
    ref = store.intern(first)
    assert store.intern(duplicate) == ref
    assert len(store) == 1
    assert store.graph(ref) is first  # the first object becomes canonical
    assert first.frozen
    assert not duplicate.frozen  # discarded duplicates stay untouched
    assert store.ref_of(duplicate) == ref
    assert list(store) == [first]


def test_store_distinguishes_granularity_and_content():
    store = GraphStore()
    router = ForwardingGraph.from_paths([("a", "b")])
    group = ForwardingGraph.from_paths([("a", "b")], granularity=Granularity.GROUP)
    other = ForwardingGraph.from_paths([("a", "c")])
    refs = {store.intern(router), store.intern(group), store.intern(other)}
    assert len(refs) == 3
    assert store.ref_of(ForwardingGraph.from_paths([("x", "y")])) is None


def test_store_rejects_unknown_ref():
    store = GraphStore()
    with pytest.raises(SnapshotError):
        store.graph(3)


@settings(max_examples=50, deadline=None)
@given(
    paths=st.lists(
        st.lists(st.sampled_from("abcdef"), min_size=1, max_size=4).map(tuple),
        min_size=1,
        max_size=5,
    )
)
def test_store_ref_equality_matches_fingerprint_equality(paths):
    """Interning is exact: same ref iff same canonical fingerprint."""
    store = GraphStore()
    one = ForwardingGraph.from_paths(paths)
    shuffled = ForwardingGraph.from_paths(list(reversed(paths)))
    ref_one = store.intern(one)
    ref_two = store.intern(shuffled)
    assert (ref_one == ref_two) == (one.fingerprint() == shuffled.fingerprint())


# ----------------------------------------------------------------------
# Snapshots over the store
# ----------------------------------------------------------------------
def test_snapshot_interns_graphs_and_exposes_refs():
    fec1 = FlowEquivalenceClass("f1", ingress="a")
    fec2 = FlowEquivalenceClass("f2", ingress="a")
    fec3 = FlowEquivalenceClass("f3", ingress="a")
    snapshot = build_snapshot(
        "pre", [(fec1, [("a", "b")]), (fec2, [("a", "b")]), (fec3, [("a", "c")])]
    )
    assert snapshot.graph_ref("f1") == snapshot.graph_ref("f2")
    assert snapshot.graph_ref("f1") != snapshot.graph_ref("f3")
    assert snapshot.graph_ref("missing") is None
    assert snapshot.distinct_graph_count() == 2
    assert len(snapshot.store) == 2
    assert snapshot.graph("f1") is snapshot.graph("f2")  # one shared object


def test_snapshot_copy_is_copy_on_write():
    fec = FlowEquivalenceClass("f1", ingress="a")
    snapshot = build_snapshot("pre", [(fec, [("a", "b")])])
    clone = snapshot.copy(name="post")
    assert clone.store is snapshot.store
    assert clone.graph("f1") is snapshot.graph("f1")
    clone.replace("f1", ForwardingGraph.from_paths([("a", "z")]))
    assert snapshot.graph("f1").path_set() == {("a", "b")}
    assert clone.graph("f1").path_set() == {("a", "z")}


def test_snapshot_json_load_dedups():
    fecs = [FlowEquivalenceClass(f"f{i}", ingress="a") for i in range(5)]
    snapshot = build_snapshot("pre", [(fec, [("a", "b")]) for fec in fecs])
    reloaded = Snapshot.from_json(snapshot.to_json())
    assert len(reloaded) == 5
    assert reloaded.distinct_graph_count() == 1


# ----------------------------------------------------------------------
# Worker-boundary pickling of interned/frozen graphs
# ----------------------------------------------------------------------
def test_frozen_graph_pickle_round_trip_stays_frozen():
    graph = graph_ab()
    digest = graph.fingerprint()
    graph.freeze()
    clone = pickle.loads(pickle.dumps(graph))
    assert clone.frozen
    assert clone.path_set() == graph.path_set()
    # The digest travels with the pickle: O(1) fingerprint on the far side.
    assert clone._fingerprint == (None, digest)
    assert clone.fingerprint() == digest
    with pytest.raises(SnapshotError):
        clone.add_node("x")
    assert sorted(clone.successors("a")) == ["b", "c"]


def test_unfrozen_graph_pickle_round_trip_stays_mutable():
    graph = graph_ab()
    clone = pickle.loads(pickle.dumps(graph))
    assert not clone.frozen
    clone.add_path(("a", "z"))
    assert ("a", "z") in clone.path_set()


def test_graph_table_pickles_each_distinct_graph_once():
    """The worker graph table ships shared objects, and pickle preserves the
    sharing: FECs pointing at one interned graph still point at one object
    after the round trip."""
    shared = graph_ab().freeze()
    table = [shared, ForwardingGraph.from_paths([("a", "z")]).freeze()]
    batch_refs = [0, 0, 0, 1]  # four FECs, two distinct graphs
    restored_table, restored_refs = pickle.loads(pickle.dumps((table, batch_refs)))
    assert restored_refs == batch_refs
    assert restored_table[0] is not shared  # new process: new objects...
    looked_up = [restored_table[i] for i in restored_refs]
    assert looked_up[0] is looked_up[1] is looked_up[2]  # ...but still shared
    assert looked_up[0].frozen


def test_graphstore_pickle_round_trip():
    store = GraphStore()
    ref = store.intern(graph_ab())
    clone = pickle.loads(pickle.dumps(store))
    assert len(clone) == 1
    assert clone.graph(ref).path_set() == store.graph(ref).path_set()
    assert clone.intern(ForwardingGraph.from_paths([("a", "b", "d"), ("a", "c", "d")])) == ref


# ----------------------------------------------------------------------
# Ref counting and eviction (the verification session's memory contract)
# ----------------------------------------------------------------------
def test_refcounts_acquire_release():
    store = GraphStore()
    ref = store.intern(graph_ab())
    assert store.refcount(ref) == 0
    store.acquire(ref)
    store.acquire(ref)
    assert store.refcount(ref) == 2
    store.release(ref)
    assert store.refcount(ref) == 1
    store.release(ref)
    assert store.refcount(ref) == 0
    with pytest.raises(SnapshotError):
        store.release(ref)


def test_evict_unreferenced_spares_pinned_graphs():
    store = GraphStore()
    pinned = store.intern(graph_ab())
    loose = store.intern(ForwardingGraph.from_paths([("a", "z")]))
    store.acquire(pinned)
    evicted = store.evict_unreferenced()
    assert evicted == [loose]
    assert len(store) == 1
    assert store.graph(pinned).path_set() == graph_ab().path_set()
    with pytest.raises(SnapshotError):
        store.graph(loose)
    # Unpinning makes the survivor evictable too.
    store.release(pinned)
    assert store.evict_unreferenced() == [pinned]
    assert len(store) == 0


def test_evicted_slots_are_recycled_by_later_interns():
    store = GraphStore()
    first = store.intern(graph_ab())
    evicted = store.evict_unreferenced()
    assert evicted == [first]
    # A different graph recycles the freed slot: same integer, new meaning —
    # which is why cache owners must drop entries naming evicted refs.
    replacement = store.intern(ForwardingGraph.from_paths([("a", "z")]))
    assert replacement == first
    assert store.graph(replacement).path_set() == {("a", "z")}
    # Re-interning the original graph gets a fresh ref, not the stale one.
    again = store.intern(graph_ab())
    assert again != first
    assert store.graph(again).path_set() == graph_ab().path_set()


def test_eviction_survives_pickle_round_trip():
    store = GraphStore()
    keep = store.intern(graph_ab())
    drop = store.intern(ForwardingGraph.from_paths([("a", "z")]))
    store.acquire(keep)
    store.evict_unreferenced()
    clone = pickle.loads(pickle.dumps(store))
    assert len(clone) == 1
    assert clone.refcount(keep) == 1
    with pytest.raises(SnapshotError):
        clone.graph(drop)
    # The clone keeps recycling the freed slot like the original would.
    assert clone.intern(ForwardingGraph.from_paths([("q", "r")])) == drop


def test_store_rejects_negative_refs():
    store = GraphStore()
    store.intern(graph_ab())
    with pytest.raises(SnapshotError):
        store.graph(-1)
    with pytest.raises(SnapshotError):
        store.acquire(-1)
    with pytest.raises(SnapshotError):
        store.refcount(-1)
