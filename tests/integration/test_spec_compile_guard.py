"""Guard: 30+-branch spec compilation must never cliff again.

The seed implementation compiled a ``multi_shift`` spec with ~30+ atomic
branches behind nested eager ``RCompose``/``RUnion`` products and took over
570 seconds (ROADMAP performance log).  The delayed-operation layer makes
the same workload complete in seconds; this test pins that behaviour under
a hard wall-clock timeout so an accidental return to eager materialization
cannot slip through the suite silently.
"""

from __future__ import annotations

import signal
import subprocess
import sys
import time
from contextlib import contextmanager

import pytest

from repro.verifier import verify_change
from repro.workloads.backbone import BackboneParams, generate_backbone
from repro.workloads.changes import independent_multi_shift
from repro.workloads.traffic import generate_fecs

#: Hard wall-clock budget for the lazy path.  The acceptance target is
#: single-digit seconds on the benchmark backbone; this guard runs on a
#: smaller backbone and normally finishes in well under a second, so the
#: budget only trips on a genuine cliff, not on a slow CI runner.
LAZY_BUDGET_SECONDS = 20
#: Budget under which the eager path is *expected* to die: the seed took
#: >570 s, so 5 s cleanly separates "cliff" from "fixed" without making the
#: suite slow.
EAGER_BUDGET_SECONDS = 5


@contextmanager
def hard_timeout(seconds: float):
    def handler(signum, frame):  # pragma: no cover - only fires on regression
        raise TimeoutError(f"exceeded the {seconds}s spec-compilation budget")

    previous = signal.signal(signal.SIGALRM, handler)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="module")
def big_multi_shift():
    """A 37-atomic multi_shift scenario on a small 4-region backbone."""
    backbone = generate_backbone(
        BackboneParams(regions=4, routers_per_group=1, parallel_links=1, prefixes_per_region=1)
    )
    fecs = generate_fecs(backbone, max_classes=12)
    pre = backbone.simulator().snapshot(fecs, name="pre")
    scenario = independent_multi_shift(backbone, pre, num_shifts=36)
    assert scenario.atomic_count >= 30
    assert scenario.expect_holds  # from/to halves are disjoint -> independent
    return backbone, scenario


def test_lazy_compilation_handles_30_plus_branches(big_multi_shift):
    backbone, scenario = big_multi_shift
    started = time.perf_counter()
    with hard_timeout(LAZY_BUDGET_SECONDS):
        report = verify_change(
            scenario.pre, scenario.post, scenario.spec, db=backbone.location_db()
        )
    elapsed = time.perf_counter() - started
    assert report.holds == scenario.expect_holds
    # The verdict above already proves end-to-end tractability; keep a loose
    # absolute bound as documentation of the expected order of magnitude.
    assert elapsed < LAZY_BUDGET_SECONDS


# The eager probe runs in a throwaway subprocess: the blowup allocates
# gigabytes inside single C-level set/list operations, so an in-process
# SIGALRM can be delayed until well after the machine starts thrashing (and
# under memory pressure the failure surfaces as MemoryError rather than
# TimeoutError).  A child process with a hard address-space cap is killable
# and cannot take the test runner down with it.
_EAGER_PROBE = """
import resource
resource.setrlimit(resource.RLIMIT_AS, (2 * 2**30, 2 * 2**30))
from repro.rela.compile import zone
from repro.rela.spec import flatten_else
from repro.verifier import build_alphabet, compile_spec
from repro.workloads.backbone import BackboneParams, generate_backbone
from repro.workloads.changes import independent_multi_shift
from repro.workloads.traffic import generate_fecs

backbone = generate_backbone(
    BackboneParams(regions=4, routers_per_group=1, parallel_links=1, prefixes_per_region=1)
)
fecs = generate_fecs(backbone, max_classes=12)
pre = backbone.simulator().snapshot(fecs, name="pre")
scenario = independent_multi_shift(backbone, pre, num_shifts=36)
spec_symbols = zone(scenario.spec).symbols()
for branch in flatten_else(scenario.spec):
    spec_symbols |= zone(branch).symbols()
alphabet = build_alphabet(
    scenario.pre, scenario.post, db=backbone.location_db(), extra_symbols=spec_symbols
)
compiled = compile_spec(scenario.spec, alphabet, lazy=False)
for branch in compiled.branches:
    branch.pre_fst
    branch.post_fst
print("EAGER_COMPLETED")
"""


def test_eager_compilation_still_cliffs_on_30_plus_branches():
    """The eager oracle path still cannot compile the 37-branch spec.

    This is the cliff's regression marker: if the eager pipeline ever
    finishes the scenario-35-class compile within budget, this test fails
    loudly so the delayed-ops layer's tests and docs get revisited rather
    than silently drifting.  (Before the delayed-ops layer landed, the lazy
    guard above was the xfail; now the expectation is inverted.)
    """
    import os

    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    try:
        result = subprocess.run(
            [sys.executable, "-c", _EAGER_PROBE],
            timeout=EAGER_BUDGET_SECONDS,
            capture_output=True,
            text=True,
            env=env,
        )
    except subprocess.TimeoutExpired:
        return  # the cliff: still compiling when the budget expired
    if result.returncode == 0 and "EAGER_COMPLETED" in result.stdout:
        pytest.fail(
            "eager spec compilation of a 37-branch multi_shift finished within "
            f"{EAGER_BUDGET_SECONDS}s/2GB — the documented cliff is gone; update "
            "the delayed-ops guard and ROADMAP"
        )
    # The only acceptable failure mode is resource exhaustion; anything else
    # (ImportError, crash in the probe script) is a broken probe, not a cliff.
    assert "MemoryError" in result.stderr, (
        f"eager probe failed for an unexpected reason:\n{result.stderr[-2000:]}"
    )
