"""Integration tests: simulator → snapshots → Rela verification → CLI."""

import json


from repro.cli import main
from repro.rela import atomic, nochange, seq, locs, any_of
from repro.rela.locations import Granularity
from repro.rela.parser import parse_program
from repro.verifier import VerificationOptions, verify_change
from repro.workloads.changes import traffic_shift


def test_simulated_change_verified_at_all_granularities(small_backbone):
    """A configuration-level change is simulated and verified relationally."""
    backbone, fecs, _snapshot = small_backbone
    db = backbone.location_db()

    # Pre-change state.
    pre_sim = backbone.simulator()
    pre = pre_sim.snapshot(fecs, name="pre")

    # The "change": raise local preference so region R1 border prefers the
    # longer path through R2 for R0's prefixes (a config-level traffic shift).
    post_config = backbone.config.copy()
    changed_prefixes = [str(p) for p in backbone.region_prefixes["R0"]]
    for router in backbone.routers_in("R1", "border"):
        post_config.router(router).default_local_pref = 100
    from repro.network.simulator import Simulator
    post_sim = Simulator(backbone.topology, post_config)
    post = post_sim.snapshot(fecs, name="post")

    # With an unchanged policy the forwarding state is identical, so the
    # "no change" spec holds at every granularity.
    for granularity in (Granularity.ROUTER, Granularity.GROUP):
        report = verify_change(
            pre, post, nochange(), db=db,
            options=VerificationOptions(granularity=granularity),
        )
        assert report.holds, granularity


def test_interface_level_verification(small_backbone):
    backbone, fecs, _snapshot = small_backbone
    db = backbone.location_db()
    sim = backbone.simulator()
    subset = fecs[:4]
    pre = sim.snapshot(subset, name="pre", granularity=Granularity.INTERFACE)
    post = sim.snapshot(subset, name="post", granularity=Granularity.INTERFACE)
    options = VerificationOptions(granularity=Granularity.INTERFACE)
    assert verify_change(pre, post, nochange(), db=db, options=options).holds
    # The same interface-level data can be verified at router granularity.
    options = VerificationOptions(granularity=Granularity.ROUTER)
    assert verify_change(pre, post, nochange(), db=db, options=options).holds


def test_snapshot_round_trip_through_json_preserves_verdict(small_backbone, tmp_path):
    backbone, _fecs, pre = small_backbone
    db = backbone.location_db()
    scenario = traffic_shift(
        pre, backbone.routers_in("R1", "border"), backbone.routers_in("R2", "border")
    )
    pre_file = tmp_path / "pre.json"
    post_file = tmp_path / "post.json"
    scenario.pre.to_json(pre_file)
    scenario.post.to_json(post_file)
    from repro.snapshots import Snapshot

    reloaded_report = verify_change(
        Snapshot.from_json(pre_file), Snapshot.from_json(post_file), scenario.spec, db=db
    )
    assert reloaded_report.holds


def test_textual_spec_file_end_to_end(figure1, tmp_path):
    """Write the Section 4 spec as text, parse it, and verify the case study."""
    spec_text = """
    regex a1 := where(group == "A1")
    regex d1 := where(group == "D1")
    regex regionA := where(region == "A")
    regex regionD := where(region == "D")
    regex newpath := a1 A2 A3 d1
    spec pathShift := { a1 .* d1 : any(newpath) ; }
    spec e2e := { regionA* : preserve ; pathShift ; regionD* : preserve ; }
    spec nochange := { .* : preserve ; }
    spec change := e2e else nochange
    """
    program = parse_program(spec_text, figure1.db)
    change = program.spec("change")
    pre = figure1.pre_change()
    assert not verify_change(pre, figure1.iteration_v1(), change, db=figure1.db).holds
    old_path = seq(
        locs({"x1"}), locs({"A1"}), locs({"B1"}), locs({"B2"}), locs({"D2"}), locs({"y1"})
    )
    new_path = seq(locs({"x1"}), locs({"A1"}), locs({"A2"}), locs({"D2"}), locs({"y1"}))
    widened = change.else_(atomic(old_path, any_of(new_path)))
    final = verify_change(pre, figure1.final_implementation(), widened, db=figure1.db)
    assert final.holds is False  # original spec still flags side effects
    report = verify_change(
        pre, figure1.final_implementation(), figure1.refined_spec(), db=figure1.db
    )
    assert report.holds


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_simulate_pathdiff_and_verify(tmp_path, capsys):
    pre_path = tmp_path / "pre.json"
    assert main([
        "simulate", str(pre_path), "--regions", "2", "--prefixes-per-region", "1",
        "--max-classes", "4",
    ]) == 0
    data = json.loads(pre_path.read_text())
    assert data["classes"]

    # Identical snapshots: path diff is empty, verification passes.
    post_path = tmp_path / "post.json"
    post_path.write_text(pre_path.read_text())
    assert main(["pathdiff", str(pre_path), str(post_path)]) == 0

    spec_path = tmp_path / "spec.rela"
    spec_path.write_text("spec change := { .* : preserve ; }\n")
    assert main(["verify", str(pre_path), str(post_path), str(spec_path)]) == 0

    # Perturb the post snapshot: both tools notice.
    perturbed = json.loads(post_path.read_text())
    record = perturbed["classes"][0]["graph"]
    record["nodes"] = list(record["nodes"]) + ["rogue-router"]
    record["edges"] = list(record["edges"]) + [[record["sources"][0], "rogue-router"]]
    record["sinks"] = ["rogue-router"]
    post_path.write_text(json.dumps(perturbed))
    assert main(["pathdiff", str(pre_path), str(post_path)]) == 1
    assert main(["verify", str(pre_path), str(post_path), str(spec_path)]) == 1
    output = capsys.readouterr().out
    assert "FAIL" in output


def test_cli_casestudy(capsys):
    exit_code = main(["casestudy"])
    output = capsys.readouterr().out
    # v1, v2, v3 fail; final passes — so the command reports failures overall.
    assert exit_code == 1
    assert output.count("FAIL") == 3
    assert output.count("PASS") == 1
