"""The cooperative deadline: hanging product walks are cut off in-thread.

The runtime's preemptive per-check guard is SIGALRM-based, and SIGALRM can
only be armed on a process's main thread.  Off the main thread — the
embedded service runner, a sharded sweep's shard-local session, the
resilient pool's serial fallback running under a thread — the guard used to
be a silent no-op: a pathological product walk would hang the thread with
no cutoff short of the process-level CI timeout.  These tests pin the
fallback (:mod:`repro.automata.guard`): the same ``_deadline`` context
manager, armed off the main thread, still interrupts the walk — at
step-boundary granularity instead of preemptively.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.automata import FSA, Alphabet
from repro.automata.guard import active_deadline, arm_deadline, check_deadline, disarm_deadline
from repro.automata.lazy import is_equivalent
from repro.errors import CheckTimeoutError
from repro.verifier.runtime import _deadline

ALPHA = Alphabet(["a", "b"])


def blowup(n: int) -> FSA:
    """The classic (a|b)*a(a|b)^n NFA: determinizing it needs 2^n subsets,
    so an equivalence walk over two of these explores far more product
    states than any test budget allows — a deterministic stand-in for a
    hanging check."""
    any_ab = FSA.any_symbol(ALPHA, ["a", "b"])
    fsa = any_ab.star().concat(FSA.symbol(ALPHA, "a"))
    for _ in range(n):
        fsa = fsa.concat(any_ab)
    return fsa


def test_cooperative_deadline_cuts_off_a_hanging_walk_in_thread():
    """A check body that would run for hours is interrupted near its 0.2s
    budget when executed on a worker thread, where SIGALRM cannot fire."""
    left, right = blowup(26), blowup(27)
    outcome: dict[str, object] = {}

    def body() -> None:
        assert threading.current_thread() is not threading.main_thread()
        started = time.perf_counter()
        try:
            with _deadline(0.2):
                outcome["result"] = is_equivalent(left, right)
        except CheckTimeoutError as exc:
            outcome["error"] = exc
        outcome["elapsed"] = time.perf_counter() - started

    thread = threading.Thread(target=body)
    thread.start()
    thread.join(timeout=30.0)
    assert not thread.is_alive(), "the walk was never interrupted"
    assert "result" not in outcome, "the blowup walk should not have finished"
    assert isinstance(outcome["error"], CheckTimeoutError)
    # Step-boundary polling is coarse, not unbounded: the cutoff lands near
    # the budget, nowhere near the walk's natural runtime.
    assert outcome["elapsed"] < 5.0


def test_deadline_is_disarmed_after_the_context_exits():
    def body() -> None:
        with _deadline(30.0):
            assert active_deadline() is not None
        assert active_deadline() is None

    thread = threading.Thread(target=body)
    thread.start()
    thread.join(timeout=10.0)
    assert not thread.is_alive()


def test_guard_primitives():
    deadline = arm_deadline(60.0)
    try:
        assert active_deadline() == deadline
        check_deadline(deadline)  # not expired: no raise
    finally:
        disarm_deadline()
    assert active_deadline() is None
    with pytest.raises(CheckTimeoutError):
        check_deadline(time.monotonic() - 1.0)
