"""Property-based tests for the automata substrate (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.automata import Alphabet, FSA, check_equal, check_subset, compare
from repro.automata.fsa import EPSILON
from repro.automata.fst import FST
from repro.automata.lazy import (
    LazyComplementZone,
    LazyCompose,
    LazyIdentity,
    LazyUnion,
    difference_dfa,
    shortest_witness,
)
from repro.automata.regex import (
    AnySym,
    Concat,
    Empty,
    Epsilon,
    Regex,
    Star,
    Sym,
    Union,
)

SYMBOLS = ["a", "b", "c"]


def regex_strategy(max_depth: int = 3) -> st.SearchStrategy[Regex]:
    leaves = st.one_of(
        st.sampled_from(SYMBOLS).map(Sym),
        st.just(Epsilon()),
        st.just(Empty()),
        st.just(AnySym()),
    )

    def extend(children: st.SearchStrategy[Regex]) -> st.SearchStrategy[Regex]:
        return st.one_of(
            st.tuples(children, children).map(lambda pair: Union(*pair)),
            st.tuples(children, children).map(lambda pair: Concat(*pair)),
            children.map(Star),
        )

    return st.recursive(leaves, extend, max_leaves=6)


def words_strategy() -> st.SearchStrategy[list[str]]:
    return st.lists(st.sampled_from(SYMBOLS), max_size=4)


def fresh_alphabet() -> Alphabet:
    return Alphabet(SYMBOLS)


@settings(max_examples=40, deadline=None)
@given(regex=regex_strategy(), word=words_strategy())
def test_union_with_self_is_idempotent(regex, word):
    ab = fresh_alphabet()
    single = regex.to_fsa(ab)
    doubled = Union(regex, regex).to_fsa(ab)
    assert single.accepts(word) == doubled.accepts(word)


@settings(max_examples=40, deadline=None)
@given(left=regex_strategy(), right=regex_strategy(), word=words_strategy())
def test_union_is_commutative(left, right, word):
    ab = fresh_alphabet()
    assert Union(left, right).to_fsa(ab).accepts(word) == Union(right, left).to_fsa(ab).accepts(word)


@settings(max_examples=40, deadline=None)
@given(regex=regex_strategy(), word=words_strategy())
def test_concat_with_epsilon_is_identity(regex, word):
    ab = fresh_alphabet()
    assert Concat(regex, Epsilon()).to_fsa(ab).accepts(word) == regex.to_fsa(ab).accepts(word)
    assert Concat(Epsilon(), regex).to_fsa(ab).accepts(word) == regex.to_fsa(ab).accepts(word)


@settings(max_examples=40, deadline=None)
@given(regex=regex_strategy(), word=words_strategy())
def test_concat_with_empty_is_empty(regex, word):
    ab = fresh_alphabet()
    assert not Concat(regex, Empty()).to_fsa(ab).accepts(word)


@settings(max_examples=30, deadline=None)
@given(regex=regex_strategy(), word=words_strategy())
def test_complement_flips_membership(regex, word):
    ab = fresh_alphabet()
    fsa = regex.to_fsa(ab)
    comp = fsa.complement()
    assert fsa.accepts(word) != comp.accepts(word)


@settings(max_examples=30, deadline=None)
@given(regex=regex_strategy())
def test_determinize_and_minimize_preserve_language(regex):
    ab = fresh_alphabet()
    fsa = regex.to_fsa(ab)
    assert fsa.determinize().equivalent(fsa)
    assert fsa.minimize().equivalent(fsa)


@settings(max_examples=30, deadline=None)
@given(left=regex_strategy(), right=regex_strategy(), word=words_strategy())
def test_de_morgan_for_languages(left, right, word):
    ab = fresh_alphabet()
    lhs = left.to_fsa(ab).union(right.to_fsa(ab)).complement()
    rhs = left.to_fsa(ab).complement().intersect(right.to_fsa(ab).complement())
    assert lhs.accepts(word) == rhs.accepts(word)


@settings(max_examples=30, deadline=None)
@given(regex=regex_strategy())
def test_difference_with_self_is_empty(regex):
    ab = fresh_alphabet()
    fsa = regex.to_fsa(ab)
    assert fsa.difference(fsa.copy()).is_empty()


@settings(max_examples=30, deadline=None)
@given(regex=regex_strategy(), word=words_strategy())
def test_enumerated_words_are_accepted(regex, word):
    ab = fresh_alphabet()
    fsa = regex.to_fsa(ab)
    for enumerated in fsa.enumerate_words(max_count=10, max_length=6):
        assert fsa.accepts(enumerated)


# ----------------------------------------------------------------------
# Lazy product engine vs. the eager reference oracle, on randomized NFAs
# ----------------------------------------------------------------------
# A randomized NFA description: state count, transition triples (src, symbol
# index or epsilon, dst) and accepting states.  Descriptions are alphabet-
# independent so each test can build them on a fresh Alphabet instance.
NfaDescription = tuple[int, list[tuple[int, int | None, int]], frozenset[int]]


@st.composite
def nfa_strategy(draw) -> NfaDescription:
    num_states = draw(st.integers(min_value=1, max_value=4))
    labels = st.one_of(st.none(), st.integers(min_value=0, max_value=len(SYMBOLS) - 1))
    states = st.integers(min_value=0, max_value=num_states - 1)
    transitions = draw(st.lists(st.tuples(states, labels, states), max_size=10))
    accepting = draw(st.frozensets(states, max_size=num_states))
    return num_states, transitions, accepting


def build_nfa(description: NfaDescription, alphabet: Alphabet) -> FSA:
    num_states, transitions, accepting = description
    fsa = FSA(alphabet)
    while fsa.num_states < num_states:
        fsa.add_state()
    for src, label, dst in transitions:
        symbol = EPSILON if label is None else alphabet.id_of(SYMBOLS[label])
        fsa.add_transition(src, symbol, dst)
    for state in accepting:
        fsa.mark_accepting(state)
    return fsa


@settings(max_examples=60, deadline=None)
@given(left=nfa_strategy(), right=nfa_strategy())
def test_lazy_subset_and_equality_match_eager_oracle(left, right):
    ab = fresh_alphabet()
    left_fsa, right_fsa = build_nfa(left, ab), build_nfa(right, ab)
    assert check_subset(left_fsa, right_fsa) == left_fsa.difference(right_fsa).is_empty()
    assert check_equal(left_fsa, right_fsa) == (
        left_fsa.difference(right_fsa).is_empty()
        and right_fsa.difference(left_fsa).is_empty()
    )


@settings(max_examples=60, deadline=None)
@given(left=nfa_strategy(), right=nfa_strategy())
def test_lazy_difference_matches_eager_language(left, right):
    ab = fresh_alphabet()
    left_fsa, right_fsa = build_nfa(left, ab), build_nfa(right, ab)
    lazy = difference_dfa(left_fsa, right_fsa)
    eager = left_fsa.difference(right_fsa)
    assert lazy.is_empty() == eager.is_empty()
    assert lazy.language(max_count=50, max_length=8) == eager.language(max_count=50, max_length=8)


@settings(max_examples=60, deadline=None)
@given(left=nfa_strategy(), right=nfa_strategy())
def test_lazy_witnesses_lie_in_the_symmetric_difference(left, right):
    ab = fresh_alphabet()
    left_fsa, right_fsa = build_nfa(left, ab), build_nfa(right, ab)
    result = compare(left_fsa, right_fsa)
    assert result.equal == left_fsa.equivalent(right_fsa)
    for word in result.missing:
        assert left_fsa.accepts(word) and not right_fsa.accepts(word)
    for word in result.unexpected:
        assert right_fsa.accepts(word) and not left_fsa.accepts(word)
    # Witness sets agree with the eager enumeration (same words, same order).
    assert result.missing == list(
        left_fsa.difference(right_fsa).enumerate_words(max_count=10, max_length=64)
    )
    assert result.unexpected == list(
        right_fsa.difference(left_fsa).enumerate_words(max_count=10, max_length=64)
    )


# A randomized FST description mirroring NfaDescription: state count, arc
# quadruples (src, input label index or epsilon, output label index or
# epsilon, dst) and accepting states.
FstDescription = tuple[int, list[tuple[int, int | None, int | None, int]], frozenset[int]]


@st.composite
def fst_strategy(draw) -> FstDescription:
    num_states = draw(st.integers(min_value=1, max_value=4))
    labels = st.one_of(st.none(), st.integers(min_value=0, max_value=len(SYMBOLS) - 1))
    states = st.integers(min_value=0, max_value=num_states - 1)
    arcs = draw(st.lists(st.tuples(states, labels, labels, states), max_size=10))
    accepting = draw(st.frozensets(states, max_size=num_states))
    return num_states, arcs, accepting


def build_fst(description: FstDescription, alphabet: Alphabet) -> FST:
    num_states, arcs, accepting = description
    fst = FST(alphabet)
    while fst.num_states < num_states:
        fst.add_state()
    for src, in_label, out_label, dst in arcs:
        fst.add_arc(
            src,
            EPSILON if in_label is None else alphabet.id_of(SYMBOLS[in_label]),
            EPSILON if out_label is None else alphabet.id_of(SYMBOLS[out_label]),
            dst,
        )
    for state in accepting:
        fst.mark_accepting(state)
    return fst


@settings(max_examples=60, deadline=None)
@given(rel=fst_strategy(), acceptor=nfa_strategy())
def test_fused_image_matches_compose_oracle(rel, acceptor):
    ab = fresh_alphabet()
    fst, fsa = build_fst(rel, ab), build_nfa(acceptor, ab)
    fused = fst.image(fsa)
    eager = fst.image_via_compose(fsa)
    assert check_equal(fused, eager)
    assert fused.language(max_count=50, max_length=8) == eager.language(max_count=50, max_length=8)


@settings(max_examples=40, deadline=None)
@given(rel=fst_strategy(), acceptor=nfa_strategy())
def test_preimage_and_trim_preserve_the_relation(rel, acceptor):
    ab = fresh_alphabet()
    fst, fsa = build_fst(rel, ab), build_nfa(acceptor, ab)
    preimage = fst.preimage(fsa)
    oracle = fst.compose(FST.identity(fsa)).project_input()
    assert check_equal(preimage, oracle)
    # Short bound: pair enumeration on an untrimmed FST walks every arc path
    # up to max_length, which grows exponentially for dense random machines.
    assert fst.trim().relation(max_count=200, max_length=4) == fst.relation(
        max_count=200, max_length=4
    )


# ----------------------------------------------------------------------
# Delayed FST operations vs. the eager RCompose/RUnion-style oracle
# ----------------------------------------------------------------------
def assert_relations_equal(lazy, eager: FST, acceptor: FSA) -> None:
    """Language equality of two relations, checked through their behaviour.

    Both the image of a random acceptor (the engine's decision boundary) and
    the two projections of the forced delayed graph must agree with the
    eagerly built transducer.
    """
    assert check_equal(lazy.image(acceptor), eager.image(acceptor))
    forced = lazy.to_fst()
    assert check_equal(forced.project_input(), eager.project_input())
    assert check_equal(forced.project_output(), eager.project_output())


@settings(max_examples=60, deadline=None)
@given(left=fst_strategy(), right=fst_strategy(), acceptor=nfa_strategy())
def test_lazy_union_matches_eager_union(left, right, acceptor):
    ab = fresh_alphabet()
    left_fst, right_fst = build_fst(left, ab), build_fst(right, ab)
    lazy = LazyUnion(left_fst, right_fst)
    eager = left_fst.union(right_fst)
    assert_relations_equal(lazy, eager, build_nfa(acceptor, ab))


@settings(max_examples=60, deadline=None)
@given(left=fst_strategy(), right=fst_strategy(), acceptor=nfa_strategy())
def test_lazy_compose_matches_eager_compose(left, right, acceptor):
    ab = fresh_alphabet()
    left_fst, right_fst = build_fst(left, ab), build_fst(right, ab)
    lazy = LazyCompose(left_fst, right_fst)
    eager = left_fst.compose(right_fst)
    assert_relations_equal(lazy, eager, build_nfa(acceptor, ab))


@settings(max_examples=60, deadline=None)
@given(language=nfa_strategy(), acceptor=nfa_strategy())
def test_lazy_identity_and_complement_zone_match_eager(language, acceptor):
    ab = fresh_alphabet()
    language_fsa = build_nfa(language, ab)
    probe = build_nfa(acceptor, ab)
    assert_relations_equal(LazyIdentity(language_fsa), FST.identity(language_fsa), probe)
    assert_relations_equal(
        LazyComplementZone(language_fsa),
        FST.identity(language_fsa.complement()),
        probe,
    )


@settings(max_examples=40, deadline=None)
@given(
    zone=nfa_strategy(),
    primary=fst_strategy(),
    fallback=fst_strategy(),
    acceptor=nfa_strategy(),
)
def test_lazy_branch_shadowing_matches_eager_pipeline(zone, primary, fallback, acceptor):
    """The spec-compilation shape R1 | (I(¬Z) ∘ R2), delayed vs. eager."""
    ab = fresh_alphabet()
    zone_fsa = build_nfa(zone, ab)
    primary_fst, fallback_fst = build_fst(primary, ab), build_fst(fallback, ab)
    lazy = LazyUnion(primary_fst, LazyCompose(LazyComplementZone(zone_fsa), fallback_fst))
    eager = primary_fst.union(
        FST.identity(zone_fsa.complement()).compose(fallback_fst)
    )
    assert_relations_equal(lazy, eager, build_nfa(acceptor, ab))


@settings(max_examples=60, deadline=None)
@given(left=nfa_strategy(), right=nfa_strategy())
def test_shortest_witness_is_shortest_and_genuine(left, right):
    ab = fresh_alphabet()
    left_fsa, right_fsa = build_nfa(left, ab), build_nfa(right, ab)
    witness = shortest_witness(left_fsa, right_fsa)
    eager = left_fsa.difference(right_fsa)
    if witness is None:
        assert eager.is_empty()
    else:
        assert left_fsa.accepts(witness) and not right_fsa.accepts(witness)
        shortest = eager.shortest_accepted()
        assert shortest is not None and len(witness) == len(shortest)
