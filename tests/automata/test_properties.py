"""Property-based tests for the automata substrate (hypothesis)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata import Alphabet
from repro.automata.regex import (
    AnySym,
    Concat,
    Empty,
    Epsilon,
    Regex,
    Star,
    Sym,
    Union,
)

SYMBOLS = ["a", "b", "c"]


def regex_strategy(max_depth: int = 3) -> st.SearchStrategy[Regex]:
    leaves = st.one_of(
        st.sampled_from(SYMBOLS).map(Sym),
        st.just(Epsilon()),
        st.just(Empty()),
        st.just(AnySym()),
    )

    def extend(children: st.SearchStrategy[Regex]) -> st.SearchStrategy[Regex]:
        return st.one_of(
            st.tuples(children, children).map(lambda pair: Union(*pair)),
            st.tuples(children, children).map(lambda pair: Concat(*pair)),
            children.map(Star),
        )

    return st.recursive(leaves, extend, max_leaves=6)


def words_strategy() -> st.SearchStrategy[list[str]]:
    return st.lists(st.sampled_from(SYMBOLS), max_size=4)


def fresh_alphabet() -> Alphabet:
    return Alphabet(SYMBOLS)


@settings(max_examples=40, deadline=None)
@given(regex=regex_strategy(), word=words_strategy())
def test_union_with_self_is_idempotent(regex, word):
    ab = fresh_alphabet()
    single = regex.to_fsa(ab)
    doubled = Union(regex, regex).to_fsa(ab)
    assert single.accepts(word) == doubled.accepts(word)


@settings(max_examples=40, deadline=None)
@given(left=regex_strategy(), right=regex_strategy(), word=words_strategy())
def test_union_is_commutative(left, right, word):
    ab = fresh_alphabet()
    assert Union(left, right).to_fsa(ab).accepts(word) == Union(right, left).to_fsa(ab).accepts(word)


@settings(max_examples=40, deadline=None)
@given(regex=regex_strategy(), word=words_strategy())
def test_concat_with_epsilon_is_identity(regex, word):
    ab = fresh_alphabet()
    assert Concat(regex, Epsilon()).to_fsa(ab).accepts(word) == regex.to_fsa(ab).accepts(word)
    assert Concat(Epsilon(), regex).to_fsa(ab).accepts(word) == regex.to_fsa(ab).accepts(word)


@settings(max_examples=40, deadline=None)
@given(regex=regex_strategy(), word=words_strategy())
def test_concat_with_empty_is_empty(regex, word):
    ab = fresh_alphabet()
    assert not Concat(regex, Empty()).to_fsa(ab).accepts(word)


@settings(max_examples=30, deadline=None)
@given(regex=regex_strategy(), word=words_strategy())
def test_complement_flips_membership(regex, word):
    ab = fresh_alphabet()
    fsa = regex.to_fsa(ab)
    comp = fsa.complement()
    assert fsa.accepts(word) != comp.accepts(word)


@settings(max_examples=30, deadline=None)
@given(regex=regex_strategy())
def test_determinize_and_minimize_preserve_language(regex):
    ab = fresh_alphabet()
    fsa = regex.to_fsa(ab)
    assert fsa.determinize().equivalent(fsa)
    assert fsa.minimize().equivalent(fsa)


@settings(max_examples=30, deadline=None)
@given(left=regex_strategy(), right=regex_strategy(), word=words_strategy())
def test_de_morgan_for_languages(left, right, word):
    ab = fresh_alphabet()
    lhs = left.to_fsa(ab).union(right.to_fsa(ab)).complement()
    rhs = left.to_fsa(ab).complement().intersect(right.to_fsa(ab).complement())
    assert lhs.accepts(word) == rhs.accepts(word)


@settings(max_examples=30, deadline=None)
@given(regex=regex_strategy())
def test_difference_with_self_is_empty(regex):
    ab = fresh_alphabet()
    fsa = regex.to_fsa(ab)
    assert fsa.difference(fsa.copy()).is_empty()


@settings(max_examples=30, deadline=None)
@given(regex=regex_strategy(), word=words_strategy())
def test_enumerated_words_are_accepted(regex, word):
    ab = fresh_alphabet()
    fsa = regex.to_fsa(ab)
    for enumerated in fsa.enumerate_words(max_count=10, max_length=6):
        assert fsa.accepts(enumerated)
