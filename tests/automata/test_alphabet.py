"""Unit tests for symbol alphabets."""

import pytest

from repro.automata.alphabet import DROP, HASH, Alphabet, require_same_alphabet
from repro.errors import AlphabetError


def test_specials_registered_by_default():
    alphabet = Alphabet()
    assert DROP in alphabet
    assert HASH in alphabet
    assert alphabet.name_of(alphabet.drop_id) == DROP
    assert alphabet.name_of(alphabet.hash_id) == HASH


def test_specials_can_be_omitted():
    alphabet = Alphabet(with_specials=False)
    assert len(alphabet) == 0


def test_intern_is_idempotent():
    alphabet = Alphabet()
    first = alphabet.intern("A1")
    second = alphabet.intern("A1")
    assert first == second
    assert len(alphabet) == 3  # drop, #, A1


def test_intern_all_preserves_order():
    alphabet = Alphabet(with_specials=False)
    ids = alphabet.intern_all(["a", "b", "c"])
    assert ids == [0, 1, 2]
    assert alphabet.names() == ["a", "b", "c"]


def test_id_and_name_round_trip():
    alphabet = Alphabet(["A1", "B1"])
    for name in ["A1", "B1", DROP, HASH]:
        assert alphabet.name_of(alphabet.id_of(name)) == name


def test_unknown_symbol_raises():
    alphabet = Alphabet()
    with pytest.raises(AlphabetError):
        alphabet.id_of("missing")
    with pytest.raises(AlphabetError):
        alphabet.name_of(999)


def test_invalid_symbol_name_raises():
    alphabet = Alphabet()
    with pytest.raises(AlphabetError):
        alphabet.intern("")
    with pytest.raises(AlphabetError):
        alphabet.intern(42)  # type: ignore[arg-type]


def test_word_conversion_round_trip():
    alphabet = Alphabet(["A1", "B1", "C1"])
    word = ("A1", "C1", "B1")
    assert alphabet.ids_to_word(alphabet.word_to_ids(word)) == word


def test_iteration_and_membership():
    alphabet = Alphabet(["A1"])
    assert "A1" in alphabet
    assert "Z9" not in alphabet
    assert set(iter(alphabet)) == {DROP, HASH, "A1"}


def test_require_same_alphabet_accepts_identical_instance():
    alphabet = Alphabet(["A1"])
    assert require_same_alphabet(alphabet, alphabet) is alphabet


def test_require_same_alphabet_rejects_distinct_instances():
    with pytest.raises(AlphabetError):
        require_same_alphabet(Alphabet(), Alphabet())
