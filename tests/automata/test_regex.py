"""Unit tests for the regex AST and text parser."""

import pytest

from repro.automata import Alphabet
from repro.automata.regex import (
    AnySym,
    Complement,
    Concat,
    Empty,
    Epsilon,
    Star,
    Sym,
    SymSet,
    Union,
    concat_all,
    literal,
    parse_regex,
    union_all,
)
from repro.errors import RegexSyntaxError


@pytest.fixture()
def ab() -> Alphabet:
    return Alphabet(["A1", "A2", "B1", "D1"])


def test_primitive_compilation(ab):
    assert Empty().to_fsa(ab).is_empty()
    assert Epsilon().to_fsa(ab).accepts([])
    assert Sym("A1").to_fsa(ab).accepts(["A1"])
    assert SymSet(frozenset({"A1", "B1"})).to_fsa(ab).accepts(["B1"])
    any_fsa = AnySym().to_fsa(ab)
    assert any_fsa.accepts(["D1"]) and any_fsa.accepts(["drop"])


def test_combinators(ab):
    expr = Union(Concat(Sym("A1"), Sym("A2")), Sym("B1"))
    fsa = expr.to_fsa(ab)
    assert fsa.accepts(["A1", "A2"])
    assert fsa.accepts(["B1"])
    assert not fsa.accepts(["A1"])


def test_fluent_operators(ab):
    expr = (Sym("A1") + Sym("A2")) | Sym("B1")
    assert expr.to_fsa(ab).accepts(["A1", "A2"])
    inter = (Sym("A1") | Sym("B1")) & Sym("A1")
    fsa = inter.to_fsa(ab)
    assert fsa.accepts(["A1"]) and not fsa.accepts(["B1"])


def test_difference_and_complement(ab):
    diff = Sym("A1").union(Sym("B1")).difference(Sym("B1"))
    fsa = diff.to_fsa(ab)
    assert fsa.accepts(["A1"]) and not fsa.accepts(["B1"])
    comp = Complement(Sym("A1")).to_fsa(ab)
    assert not comp.accepts(["A1"])
    assert comp.accepts(["A1", "A1"])


def test_star_plus_optional(ab):
    star = Star(Sym("A1")).to_fsa(ab)
    assert star.accepts([]) and star.accepts(["A1", "A1"])
    plus = Sym("A1").plus().to_fsa(ab)
    assert not plus.accepts([]) and plus.accepts(["A1"])
    opt = Sym("A1").optional().to_fsa(ab)
    assert opt.accepts([]) and opt.accepts(["A1"])


def test_literal_and_bulk_constructors(ab):
    lit = literal(["A1", "A2", "D1"]).to_fsa(ab)
    assert lit.accepts(["A1", "A2", "D1"])
    assert union_all([]).to_fsa(ab).is_empty()
    assert concat_all([]).to_fsa(ab).accepts([])
    both = union_all([Sym("A1"), Sym("B1")]).to_fsa(ab)
    assert both.accepts(["A1"]) and both.accepts(["B1"])


def test_symbols_collection():
    expr = Union(Concat(Sym("A1"), SymSet(frozenset({"B1", "B2"}))), Star(Sym("D1")))
    assert expr.symbols() == {"A1", "B1", "B2", "D1"}
    assert AnySym().symbols() == set()


def test_parse_concatenation_and_union(ab):
    fsa = parse_regex("A1 A2 | B1").to_fsa(ab)
    assert fsa.accepts(["A1", "A2"])
    assert fsa.accepts(["B1"])
    assert not fsa.accepts(["A1"])


def test_parse_star_dot_and_parens(ab):
    fsa = parse_regex("A1 .* D1").to_fsa(ab)
    assert fsa.accepts(["A1", "D1"])
    assert fsa.accepts(["A1", "B1", "B1", "D1"])
    assert not fsa.accepts(["A1", "B1"])
    grouped = parse_regex("(A1 | B1) D1").to_fsa(ab)
    assert grouped.accepts(["B1", "D1"])


def test_parse_postfix_operators(ab):
    assert parse_regex("A1+").to_fsa(ab).accepts(["A1", "A1"])
    assert not parse_regex("A1+").to_fsa(ab).accepts([])
    assert parse_regex("A1?").to_fsa(ab).accepts([])


def test_parse_intersection_and_complement(ab):
    fsa = parse_regex("(A1 | B1) & A1").to_fsa(ab)
    assert fsa.accepts(["A1"]) and not fsa.accepts(["B1"])
    neg = parse_regex("!A1").to_fsa(ab)
    assert not neg.accepts(["A1"]) and neg.accepts(["B1"])


def test_parse_resolver_expands_named_expressions(ab):
    definitions = {"mid": parse_regex("A2 | B1")}
    fsa = parse_regex("A1 mid D1", definitions.get).to_fsa(ab)
    assert fsa.accepts(["A1", "A2", "D1"])
    assert fsa.accepts(["A1", "B1", "D1"])
    assert not fsa.accepts(["A1", "mid", "D1"])


def test_parse_errors():
    with pytest.raises(RegexSyntaxError):
        parse_regex("(A1")
    with pytest.raises(RegexSyntaxError):
        parse_regex("A1 )")
    with pytest.raises(RegexSyntaxError):
        parse_regex("A1 %%%")


def test_str_rendering_round_trips_names():
    assert str(Sym("A1")) == "A1"
    assert str(SymSet(frozenset({"A1"}))) == "A1"
    assert "A1" in str(SymSet(frozenset({"A1", "B1"})))
    assert str(AnySym()) == "."
