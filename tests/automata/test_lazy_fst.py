"""Tests for the delayed-operation FST layer (repro.automata.lazy)."""

from __future__ import annotations

import pickle

from repro.automata import (
    Alphabet,
    FSA,
    FST,
    LazyComplementZone,
    LazyCompose,
    LazyIdentity,
    LazyUnion,
    check_equal,
    relation_image,
)


def alphabet() -> Alphabet:
    return Alphabet(["a", "b", "c"])


def words(ab: Alphabet, *items: list[str]) -> FSA:
    return FSA.from_words(ab, list(items))


def assert_same_relation(lazy, eager: FST) -> None:
    """Language equality of two relations, via forcing and via images."""
    forced = lazy.to_fst()
    # Compare through both projections and through images over Sigma*.
    sigma_star = FSA.any_symbol(eager.alphabet).star()
    assert check_equal(forced.project_input(), eager.project_input())
    assert check_equal(forced.project_output(), eager.project_output())
    assert check_equal(lazy.image(sigma_star), eager.image(sigma_star))


def test_lazy_identity_matches_eager_identity():
    ab = alphabet()
    language = words(ab, ["a"], ["a", "b"], ["c", "c"])
    lazy = LazyIdentity(language)
    eager = FST.identity(language)
    assert_same_relation(lazy, eager)
    probe = words(ab, ["a"], ["b"], ["a", "b"])
    assert check_equal(lazy.image(probe), eager.image(probe))


def test_lazy_complement_zone_is_identity_of_complement():
    ab = alphabet()
    zone = words(ab, ["a"], ["a", "b"])
    lazy = LazyComplementZone(zone)
    eager = FST.identity(zone.complement())
    assert_same_relation(lazy, eager)
    # The implicit sink accepts: words far outside the zone map to themselves.
    probe = words(ab, ["c", "c", "c"], ["a"], ["b"])
    image = lazy.image(probe)
    assert image.accepts(["c", "c", "c"])
    assert image.accepts(["b"])
    assert not image.accepts(["a"])


def test_lazy_complement_zone_never_materializes_sigma_rows():
    # A large alphabet: the delayed node must only expand the symbols the
    # acceptor actually presents, independently of |Sigma|.
    ab = Alphabet([f"s{i}" for i in range(500)])
    zone = FSA.from_words(ab, [["s0"]])
    lazy = LazyComplementZone(zone)
    probe = FSA.from_words(ab, [["s1", "s2"]])
    image = lazy.image(probe)
    assert image.accepts(["s1", "s2"])
    # Only the queried symbols were ever expanded.
    assert len(lazy._step_cache) <= 4


def test_lazy_union_flattens_and_matches_eager():
    ab = alphabet()
    parts_lazy = [FST.identity(words(ab, ["a"])), FST.cross(words(ab, ["b"]), words(ab, ["c"]))]
    third = FST.identity(words(ab, ["c", "c"]))
    nested = LazyUnion(LazyUnion(*parts_lazy), third)
    assert len(nested.operands) == 3  # flattened, not a chain
    eager = parts_lazy[0].union(parts_lazy[1]).union(third)
    assert_same_relation(nested, eager)


def test_lazy_compose_matches_eager_compose():
    ab = alphabet()
    first = FST.cross(words(ab, ["a"], ["a", "a"]), words(ab, ["b"]))
    second = FST.cross(words(ab, ["b"]), words(ab, ["c", "c"]))
    lazy = LazyCompose(first, second)
    eager = first.compose(second)
    assert_same_relation(lazy, eager)


def test_nested_delayed_graph_matches_eager_pipeline():
    # The branch-shadowing shape: I(not Z1) o (R1 | I(not Z2) o R2).
    ab = alphabet()
    zone1 = words(ab, ["a"])
    zone2 = words(ab, ["b"])
    rel1 = FST.identity(words(ab, ["b"], ["c"]))
    rel2 = FST.cross(words(ab, ["c"]), words(ab, ["a"]))
    lazy = LazyCompose(
        LazyComplementZone(zone1),
        LazyUnion(rel1, LazyCompose(LazyComplementZone(zone2), rel2)),
    )
    eager = (
        FST.identity(zone1.complement())
        .compose(rel1.union(FST.identity(zone2.complement()).compose(rel2)))
    )
    assert_same_relation(lazy, eager)


def test_flat_shadowed_union_equals_nested_else_chain():
    # I(¬Z1) ∘ I(¬Z2) = I(¬(Z1|Z2)): the flat prioritized union used by the
    # engine is language-equal to the nested Figure 4 translation.
    ab = alphabet()
    zone1 = words(ab, ["a"])
    zone2 = words(ab, ["b"])
    r1 = FST.identity(words(ab, ["a"], ["c"]))
    r2 = FST.cross(words(ab, ["b"]), words(ab, ["b", "b"]))
    r3 = FST.identity(words(ab, ["c"], ["a", "b"]))
    nested = LazyUnion(
        r1,
        LazyCompose(
            LazyComplementZone(zone1),
            LazyUnion(r2, LazyCompose(LazyComplementZone(zone2), r3)),
        ),
    )
    flat = LazyUnion(
        r1,
        LazyCompose(LazyComplementZone(zone1), r2),
        LazyCompose(LazyComplementZone(zone1.union(zone2)), r3),
    )
    sigma_star = FSA.any_symbol(ab).star()
    assert check_equal(nested.image(sigma_star), flat.image(sigma_star))
    probe = words(ab, ["a"], ["b"], ["c"], ["a", "b"])
    assert check_equal(nested.image(probe), flat.image(probe))


def test_concrete_fst_implements_arc_iteration_protocol():
    ab = alphabet()
    fst = FST.cross(words(ab, ["a"]), words(ab, ["b"]))
    probe = words(ab, ["a"], ["c"])
    # relation_image over a concrete FST agrees with its fused image.
    assert check_equal(relation_image(fst, probe), fst.image(probe))
    assert fst.is_accepting(next(iter(fst.accepting)))
    assert not fst.is_accepting(fst.initial)


def test_lazy_nodes_pickle_roundtrip():
    # Compiled specs ship to worker processes; delayed nodes must pickle,
    # including half-populated expansion caches.
    ab = alphabet()
    zone = words(ab, ["a"])
    lazy = LazyUnion(
        FST.identity(words(ab, ["b"])),
        LazyCompose(LazyComplementZone(zone), FST.identity(words(ab, ["c"]))),
    )
    probe = words(ab, ["b"], ["c"])
    before = lazy.image(probe)  # populate caches
    # Alphabets are compared by identity, so ship the relation and the
    # acceptor in one payload — exactly how the engine ships compiled specs
    # plus the snapshot builder to worker processes.
    clone, probe_clone = pickle.loads(pickle.dumps((lazy, probe)))
    after = clone.image(probe_clone)
    assert before.language() == after.language()


def test_image_memoization_shared_across_queries():
    ab = alphabet()
    lazy = LazyComplementZone(words(ab, ["a"]))
    first = lazy.image(words(ab, ["b"]))
    expanded = len(lazy._step_cache)
    second = lazy.image(words(ab, ["b"]))
    assert first.language() == second.language()
    assert len(lazy._step_cache) == expanded  # second walk hit the caches
