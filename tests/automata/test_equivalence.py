"""Unit tests for language comparison and witness extraction."""

import pytest

from repro.automata import Alphabet, FSA, check_equal, check_subset, compare, symmetric_difference


@pytest.fixture()
def ab() -> Alphabet:
    return Alphabet(["a", "b", "c"])


def test_compare_equal_languages(ab):
    left = FSA.from_words(ab, [["a", "b"], ["c"]])
    right = FSA.symbol(ab, "a").concat(FSA.symbol(ab, "b")).union(FSA.symbol(ab, "c"))
    result = compare(left, right)
    assert result.equal
    assert bool(result)
    assert result.missing == [] and result.unexpected == []


def test_compare_reports_directional_witnesses(ab):
    left = FSA.from_words(ab, [["a"], ["b"]])
    right = FSA.from_words(ab, [["a"], ["c"]])
    result = compare(left, right)
    assert not result.equal
    assert ("b",) in result.missing
    assert ("c",) in result.unexpected
    assert not result.left_subset_of_right
    assert not result.right_subset_of_left


def test_compare_subset_direction(ab):
    small = FSA.from_words(ab, [["a"]])
    big = FSA.from_words(ab, [["a"], ["b"]])
    result = compare(small, big)
    assert result.left_subset_of_right and not result.right_subset_of_left
    assert result.missing == []
    assert ("b",) in result.unexpected


def test_compare_witness_limit(ab):
    left = FSA.from_words(ab, [["a"], ["b"], ["c"], ["a", "a"], ["b", "b"]])
    right = FSA.empty_language(ab)
    result = compare(left, right, max_witnesses=2)
    assert len(result.missing) == 2


def test_check_equal_and_subset(ab):
    star = FSA.symbol(ab, "a").star()
    plus = FSA.symbol(ab, "a").plus()
    assert not check_equal(star, plus)
    assert check_subset(plus, star)
    assert not check_subset(star, plus)
    assert check_equal(plus.union(FSA.epsilon_language(ab)), star)


def test_symmetric_difference(ab):
    left = FSA.from_words(ab, [["a"], ["b"]])
    right = FSA.from_words(ab, [["b"], ["c"]])
    sym = symmetric_difference(left, right)
    assert sym.accepts(["a"])
    assert sym.accepts(["c"])
    assert not sym.accepts(["b"])
    assert symmetric_difference(left, left.copy()).is_empty()


def test_compare_with_cyclic_languages_terminates_quickly(ab):
    star = FSA.symbol(ab, "a").union(FSA.symbol(ab, "b")).star()
    result = compare(star, star.copy(), max_witness_length=64)
    assert result.equal
