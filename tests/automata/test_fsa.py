"""Unit tests for the FSA substrate."""

import pytest

from repro.automata import Alphabet, FSA
from repro.errors import AutomatonError


@pytest.fixture()
def ab() -> Alphabet:
    return Alphabet(["a", "b", "c"])


def test_empty_language_accepts_nothing(ab):
    fsa = FSA.empty_language(ab)
    assert fsa.is_empty()
    assert not fsa.accepts([])
    assert not fsa.accepts(["a"])


def test_epsilon_language_accepts_only_empty_word(ab):
    fsa = FSA.epsilon_language(ab)
    assert fsa.accepts([])
    assert not fsa.accepts(["a"])
    assert not fsa.is_empty()


def test_symbol_automaton(ab):
    fsa = FSA.symbol(ab, "a")
    assert fsa.accepts(["a"])
    assert not fsa.accepts(["b"])
    assert not fsa.accepts(["a", "a"])


def test_from_word_and_from_words(ab):
    single = FSA.from_word(ab, ["a", "b", "c"])
    assert single.accepts(["a", "b", "c"])
    assert not single.accepts(["a", "b"])
    multi = FSA.from_words(ab, [["a"], ["b", "c"]])
    assert multi.accepts(["a"])
    assert multi.accepts(["b", "c"])
    assert not multi.accepts(["c"])


def test_union_concat_star(ab):
    a = FSA.symbol(ab, "a")
    b = FSA.symbol(ab, "b")
    union = a.union(b)
    assert union.accepts(["a"]) and union.accepts(["b"])
    concat = a.concat(b)
    assert concat.accepts(["a", "b"])
    assert not concat.accepts(["b", "a"])
    star = a.star()
    assert star.accepts([])
    assert star.accepts(["a", "a", "a"])
    assert not star.accepts(["b"])


def test_plus_and_optional(ab):
    a = FSA.symbol(ab, "a")
    assert not a.plus().accepts([])
    assert a.plus().accepts(["a", "a"])
    assert a.optional().accepts([])
    assert a.optional().accepts(["a"])


def test_accepts_rejects_unknown_symbols(ab):
    fsa = FSA.symbol(ab, "a")
    assert not fsa.accepts(["unknown-symbol"])


def test_remove_epsilons_preserves_language(ab):
    fsa = FSA.symbol(ab, "a").union(FSA.symbol(ab, "b")).star()
    stripped = fsa.remove_epsilons()
    for word in ([], ["a"], ["a", "b", "a"], ["c"]):
        assert fsa.accepts(word) == stripped.accepts(word)
    for row in stripped.transitions:
        assert None not in row


def test_determinize_is_deterministic_and_equivalent(ab):
    fsa = FSA.from_words(ab, [["a", "b"], ["a", "c"], ["a"]])
    dfa = fsa.determinize()
    assert dfa.is_deterministic()
    assert dfa.equivalent(fsa)


def test_complete_requires_determinism(ab):
    nfa = FSA.symbol(ab, "a").union(FSA.symbol(ab, "a"))
    with pytest.raises(AutomatonError):
        nfa.complete()


def test_complement(ab):
    a = FSA.symbol(ab, "a")
    comp = a.complement()
    assert not comp.accepts(["a"])
    assert comp.accepts([])
    assert comp.accepts(["b"])
    assert comp.accepts(["a", "a"])


def test_double_complement_is_identity(ab):
    fsa = FSA.from_words(ab, [["a", "b"], ["c"]])
    assert fsa.complement().complement().equivalent(fsa)


def test_intersect_and_difference(ab):
    ab_or_ac = FSA.from_words(ab, [["a", "b"], ["a", "c"]])
    ab_or_bc = FSA.from_words(ab, [["a", "b"], ["b", "c"]])
    inter = ab_or_ac.intersect(ab_or_bc)
    assert inter.accepts(["a", "b"])
    assert not inter.accepts(["a", "c"])
    diff = ab_or_ac.difference(ab_or_bc)
    assert diff.accepts(["a", "c"])
    assert not diff.accepts(["a", "b"])


def test_equivalence_and_subset(ab):
    one = FSA.symbol(ab, "a").concat(FSA.symbol(ab, "b"))
    two = FSA.from_word(ab, ["a", "b"])
    assert one.equivalent(two)
    assert one.is_subset_of(two.union(FSA.symbol(ab, "c")))
    assert not two.union(FSA.symbol(ab, "c")).is_subset_of(one)


def test_minimize_preserves_language_and_shrinks(ab):
    fsa = FSA.from_words(ab, [["a", "b"], ["a", "c"], ["b", "b"], ["b", "c"]])
    minimal = fsa.minimize()
    assert minimal.equivalent(fsa)
    assert minimal.num_states <= fsa.determinize().complete().num_states


def test_shortest_accepted(ab):
    fsa = FSA.from_words(ab, [["a", "b", "c"], ["b"]])
    assert fsa.shortest_accepted() == ("b",)
    assert FSA.empty_language(ab).shortest_accepted() is None
    assert FSA.epsilon_language(ab).shortest_accepted() == ()


def test_enumerate_words_bounded_and_sorted_by_length(ab):
    star = FSA.symbol(ab, "a").star()
    words = list(star.enumerate_words(max_count=4))
    assert words == [(), ("a",), ("a", "a"), ("a", "a", "a")]


def test_enumerate_words_empty_language_terminates(ab):
    # The difference of equal star languages is empty but cyclic; enumeration
    # must terminate immediately rather than exploring all bounded prefixes.
    star = FSA.symbol(ab, "a").union(FSA.symbol(ab, "b")).star()
    diff = star.difference(star.copy())
    assert list(diff.enumerate_words(max_count=5, max_length=64)) == []


def test_language_of_finite_automaton(ab):
    fsa = FSA.from_words(ab, [["a"], ["b", "c"]])
    assert fsa.language() == {("a",), ("b", "c")}


def test_has_finite_language(ab):
    assert FSA.from_words(ab, [["a", "b"]]).has_finite_language()
    assert not FSA.symbol(ab, "a").star().has_finite_language()
    assert FSA.empty_language(ab).has_finite_language()


def test_trim_removes_dead_states(ab):
    fsa = FSA(ab)
    end = fsa.add_state()
    dead = fsa.add_state()
    fsa.add_transition(fsa.initial, ab.intern("a"), end)
    fsa.add_transition(fsa.initial, ab.intern("b"), dead)
    fsa.mark_accepting(end)
    trimmed = fsa.trim()
    assert trimmed.equivalent(fsa)
    assert trimmed.num_states < fsa.num_states


def test_add_transition_validates_states_and_symbols(ab):
    fsa = FSA(ab)
    with pytest.raises(AutomatonError):
        fsa.add_transition(0, ab.intern("a"), 99)
    with pytest.raises(AutomatonError):
        fsa.add_transition(0, 9999, 0)
    with pytest.raises(AutomatonError):
        fsa.mark_accepting(57)


def test_copy_is_independent(ab):
    fsa = FSA.symbol(ab, "a")
    clone = fsa.copy()
    clone.mark_accepting(clone.initial)
    assert clone.accepts([])
    assert not fsa.accepts([])
