"""Unit tests for finite state transducers."""

import pytest

from repro.automata import Alphabet, FSA, FST
from repro.errors import AutomatonError


@pytest.fixture()
def ab() -> Alphabet:
    return Alphabet(["a", "b", "c"])


def test_empty_and_epsilon_relations(ab):
    assert FST.empty_relation(ab).relation() == set()
    assert FST.epsilon_relation(ab).relation() == {((), ())}


def test_identity_relates_paths_to_themselves(ab):
    fsa = FSA.from_words(ab, [["a", "b"], ["c"]])
    ident = FST.identity(fsa)
    assert ident.relation() == {(("a", "b"), ("a", "b")), (("c",), ("c",))}


def test_cross_product_relates_all_pairs(ab):
    left = FSA.from_words(ab, [["a"], ["b"]])
    right = FSA.from_words(ab, [["c"], ["a", "a"]])
    cross = FST.cross(left, right)
    assert cross.relation() == {
        (("a",), ("c",)),
        (("a",), ("a", "a")),
        (("b",), ("c",)),
        (("b",), ("a", "a")),
    }


def test_union_and_concat_of_relations(ab):
    a_to_b = FST.cross(FSA.symbol(ab, "a"), FSA.symbol(ab, "b"))
    c_ident = FST.identity(FSA.symbol(ab, "c"))
    union = a_to_b.union(c_ident)
    assert (("a",), ("b",)) in union.relation()
    assert (("c",), ("c",)) in union.relation()
    concat = a_to_b.concat(c_ident)
    assert concat.relation() == {(("a", "c"), ("b", "c"))}


def test_star_of_relation(ab):
    a_to_b = FST.cross(FSA.symbol(ab, "a"), FSA.symbol(ab, "b"))
    star = a_to_b.star()
    pairs = star.relation(max_count=50, max_length=32)
    assert ((), ()) in pairs
    assert (("a",), ("b",)) in pairs
    assert (("a", "a"), ("b", "b")) in pairs


def test_inverse_swaps_tapes(ab):
    a_to_b = FST.cross(FSA.symbol(ab, "a"), FSA.symbol(ab, "b"))
    assert a_to_b.inverse().relation() == {(("b",), ("a",))}


def test_compose_chains_relations(ab):
    a_to_b = FST.cross(FSA.symbol(ab, "a"), FSA.symbol(ab, "b"))
    b_to_c = FST.cross(FSA.symbol(ab, "b"), FSA.symbol(ab, "c"))
    composed = a_to_b.compose(b_to_c)
    assert composed.relation() == {(("a",), ("c",))}


def test_compose_with_identity_is_identity_on_domain(ab):
    fsa = FSA.from_words(ab, [["a", "b"], ["b", "c"]])
    ident = FST.identity(fsa)
    composed = ident.compose(ident)
    assert composed.relation() == ident.relation()


def test_projections(ab):
    rel = FST.cross(FSA.from_words(ab, [["a"], ["b"]]), FSA.symbol(ab, "c"))
    assert rel.project_input().language() == {("a",), ("b",)}
    assert rel.project_output().language() == {("c",)}


def test_image_and_preimage(ab):
    rel = FST.cross(FSA.symbol(ab, "a"), FSA.symbol(ab, "b"))
    image = rel.image(FSA.symbol(ab, "a"))
    assert image.language() == {("b",)}
    assert rel.image(FSA.symbol(ab, "c")).is_empty()
    preimage = rel.preimage(FSA.symbol(ab, "b"))
    assert preimage.language() == {("a",)}


def test_image_distributes_over_union(ab):
    p1 = FSA.from_words(ab, [["a", "b"]])
    p2 = FSA.from_words(ab, [["c"]])
    rel = FST.identity(FSA.from_words(ab, [["a", "b"], ["c"], ["b"]]))
    union_image = rel.image(p1.union(p2))
    separate = rel.image(p1).union(rel.image(p2))
    assert union_image.equivalent(separate)


def test_identity_image_restricts_to_domain(ab):
    domain = FSA.from_words(ab, [["a", "b"], ["c"]])
    candidates = FSA.from_words(ab, [["a", "b"], ["b"], ["c", "c"]])
    restricted = FST.identity(domain).image(candidates)
    assert restricted.language() == {("a", "b")}


def test_arc_validation(ab):
    fst = FST(ab)
    with pytest.raises(AutomatonError):
        fst.add_arc(0, ab.intern("a"), ab.intern("b"), 42)
    with pytest.raises(AutomatonError):
        fst.add_arc(0, 999, None, 0)
    with pytest.raises(AutomatonError):
        fst.mark_accepting(17)


def test_enumerate_pairs_deduplicates(ab):
    fsa = FSA.symbol(ab, "a").union(FSA.symbol(ab, "a"))
    ident = FST.identity(fsa)
    assert list(ident.enumerate_pairs(max_count=10)) == [(("a",), ("a",))]
