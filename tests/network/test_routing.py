"""Tests for policy, IGP, BGP route selection, FIBs and the simulator."""

import pytest

from repro.automata.alphabet import DROP
from repro.errors import RoutingError
from repro.network import (
    Fib,
    NetworkConfig,
    Prefix,
    Simulator,
    Topology,
    allow_list,
    build_fibs,
    deny_prefixes,
    equal_cost_next_hops,
    igp_cost,
    permit_all,
    set_local_pref,
    shortest_path_costs,
    trace_forwarding,
)
from repro.network.bgp import BGPComputation
from repro.network.policy import PolicyAction
from repro.network.simulator import TraceOptions
from repro.rela.locations import Granularity


# ----------------------------------------------------------------------
# Policy
# ----------------------------------------------------------------------
def test_policy_evaluation_order_and_defaults():
    policy = allow_list(["10.0.0.0/8"])
    assert policy.permits(Prefix.parse("10.1.0.0/24"))
    assert not policy.permits(Prefix.parse("192.168.0.0/24"))

    filt = deny_prefixes(["10.9.0.0/16"])
    assert not filt.permits(Prefix.parse("10.9.1.0/24"))
    assert filt.permits(Prefix.parse("10.8.0.0/24"))

    pref = set_local_pref(["10.0.0.0/8"], 200)
    action, local_pref = pref.evaluate(Prefix.parse("10.1.0.0/24"))
    assert action is PolicyAction.PERMIT and local_pref == 200
    action, local_pref = pref.evaluate(Prefix.parse("172.16.0.0/16"))
    assert action is PolicyAction.PERMIT and local_pref is None

    assert permit_all().permits(Prefix.parse("0.0.0.0/0"))


# ----------------------------------------------------------------------
# Fixture topology: two ASes, a cheap and an expensive path
# ----------------------------------------------------------------------
@pytest.fixture()
def diamond() -> tuple[Topology, NetworkConfig]:
    topology = Topology("diamond")
    topology.add_router("src", group="SRC", region="A", asn=100)
    topology.add_router("left", group="LEFT", region="A", asn=100)
    topology.add_router("right", group="RIGHT", region="A", asn=100)
    topology.add_router("dst", group="DST", region="B", asn=200)
    topology.add_link("src", "left", cost=1)
    topology.add_link("src", "right", cost=5)
    topology.add_link("left", "dst", cost=1)
    topology.add_link("right", "dst", cost=1)
    config = NetworkConfig()
    config.router("dst").originate("10.0.0.0/24")
    return topology, config


# ----------------------------------------------------------------------
# IGP
# ----------------------------------------------------------------------
def test_igp_shortest_paths(diamond):
    topology, _config = diamond
    costs = shortest_path_costs(topology, "src")
    # The cheapest way to reach "right" goes around through left and dst.
    assert costs["left"] == 1 and costs["right"] == 3 and costs["dst"] == 2
    assert igp_cost(topology, "src", "dst") == 2
    assert equal_cost_next_hops(topology, "src", "dst") == {"left"}
    with pytest.raises(RoutingError):
        shortest_path_costs(topology, "missing")


def test_igp_ecmp_next_hops():
    topology = Topology("ecmp")
    for name in ("s", "m1", "m2", "t"):
        topology.add_router(name, group=name.upper(), asn=1)
    topology.add_link("s", "m1", cost=1)
    topology.add_link("s", "m2", cost=1)
    topology.add_link("m1", "t", cost=1)
    topology.add_link("m2", "t", cost=1)
    assert equal_cost_next_hops(topology, "s", "t") == {"m1", "m2"}


# ----------------------------------------------------------------------
# BGP + FIB
# ----------------------------------------------------------------------
def test_bgp_selection_prefers_ebgp_exit_and_builds_fib(diamond):
    topology, config = diamond
    selected = BGPComputation(topology, config).compute()
    assert Prefix.parse("10.0.0.0/24") in selected["src"]
    fib = build_fibs(topology, selected)
    entry = fib.lookup("src", "10.0.0.0/24")
    assert entry is not None and not entry.is_drop()
    # Both left and right peer with dst over eBGP; src chooses the cheaper exit.
    assert entry.next_hops == {"left"}
    dst_entry = fib.lookup("dst", "10.0.0.0/24")
    assert dst_entry.egress


def test_local_pref_overrides_igp_choice(diamond):
    topology, config = diamond
    # Raise local preference for routes learned via the expensive right exit.
    config.router("right").set_import_policy("dst", set_local_pref(["10.0.0.0/24"], 300))
    selected = BGPComputation(topology, config).compute()
    fib = build_fibs(topology, selected)
    entry = fib.lookup("src", "10.0.0.0/24")
    assert entry.next_hops == {"right"}


def test_import_deny_blackholes_traffic(diamond):
    topology, config = diamond
    config.router("left").set_import_policy("dst", deny_prefixes(["10.0.0.0/24"]))
    config.router("right").set_import_policy("dst", deny_prefixes(["10.0.0.0/24"]))
    simulator = Simulator(topology, config)
    graph = simulator.trace("src", "10.0.0.0/24")
    assert graph.path_set() == {(DROP,)}


def test_fib_manual_entries_and_copy():
    fib = Fib()
    fib.set_entry("r1", "10.0.0.0/24", ["r2"])
    fib.set_entry("r2", "10.0.0.0/24", [], egress=True)
    assert fib.lookup("r1", "10.0.0.5/32").next_hops == {"r2"}
    assert fib.lookup("r3", "10.0.0.0/24") is None
    assert fib.num_routes() == 2
    clone = fib.copy()
    clone.remove_entry("r1", "10.0.0.0/24")
    assert fib.lookup("r1", "10.0.0.0/24") is not None
    assert clone.lookup("r1", "10.0.0.0/24") is None
    assert set(fib.routers()) == {"r1", "r2"}
    assert len(list(fib.entries("r2"))) == 1


# ----------------------------------------------------------------------
# Dataplane tracing
# ----------------------------------------------------------------------
def test_trace_follows_fib_and_marks_egress(diamond):
    topology, config = diamond
    simulator = Simulator(topology, config)
    graph = simulator.trace("src", "10.0.0.0/24")
    assert graph.path_set() == {("src", "left", "dst")}
    assert graph.sources == {"src"}
    assert "dst" in graph.sinks


def test_trace_interface_granularity_expands_parallel_links():
    topology = Topology("parallel")
    topology.add_router("a", group="A", asn=1)
    topology.add_router("b", group="B", asn=2)
    topology.add_link("a", "b", members=3)
    config = NetworkConfig()
    config.router("b").originate("10.0.0.0/24")
    simulator = Simulator(topology, config)
    router_graph = simulator.trace("a", "10.0.0.0/24")
    assert router_graph.count_paths() == 1
    iface_graph = simulator.trace("a", "10.0.0.0/24", granularity=Granularity.INTERFACE)
    # Three parallel members yield three interface-level paths.
    assert iface_graph.count_paths() == 3
    assert iface_graph.granularity is Granularity.INTERFACE


def test_trace_group_granularity(diamond):
    topology, config = diamond
    simulator = Simulator(topology, config)
    graph = simulator.trace("src", "10.0.0.0/24", granularity=Granularity.GROUP)
    assert graph.path_set() == {("SRC", "LEFT", "DST")}


def test_trace_unknown_ingress_raises(diamond):
    topology, config = diamond
    simulator = Simulator(topology, config)
    with pytest.raises(RoutingError):
        simulator.trace("nope", "10.0.0.0/24")


def test_trace_forwarding_over_manual_fib(diamond):
    topology, _config = diamond
    fib = Fib()
    fib.set_entry("src", "10.0.0.0/24", ["right"])
    fib.set_entry("right", "10.0.0.0/24", ["dst"])
    fib.set_entry("dst", "10.0.0.0/24", [], egress=True)
    graph = trace_forwarding(topology, fib, "src", "10.0.0.0/24", options=TraceOptions())
    assert graph.path_set() == {("src", "right", "dst")}


def test_snapshot_assembly(diamond, small_backbone):
    topology, config = diamond
    from repro.snapshots.fec import FlowEquivalenceClass

    simulator = Simulator(topology, config)
    snapshot = simulator.snapshot(
        [FlowEquivalenceClass("f1", dst_prefix="10.0.0.0/24", ingress="src")]
    )
    assert len(snapshot) == 1
    assert snapshot.graph("f1").path_set() == {("src", "left", "dst")}

    backbone, fecs, pre = small_backbone
    assert len(pre) == len(fecs)
    # Every simulated flow either reaches an egress or is explicitly dropped.
    for fec, graph in pre.items():
        assert not graph.is_empty()
        assert graph.is_acyclic()
