"""Tests for the topology model and IP prefix handling."""

import pytest

from repro.errors import RoutingError, TopologyError
from repro.network.addressing import Prefix, PrefixTable, allocate_prefixes
from repro.network.topology import Topology
from repro.rela.locations import Granularity


def build_topology() -> Topology:
    topology = Topology("test")
    topology.add_router("a1", group="A1", region="A", asn=100, tier="core")
    topology.add_router("a2", group="A1", region="A", asn=100, tier="core")
    topology.add_router("b1", group="B1", region="B", asn=200, tier="edge")
    topology.add_link("a1", "a2", members=3, cost=5)
    topology.add_link("a1", "b1", cost=10)
    return topology


def test_router_and_link_accounting():
    topology = build_topology()
    assert topology.num_routers == 3
    assert topology.num_links == 4
    assert topology.neighbors("a1") == {"a2", "b1"}
    assert len(topology.links_between("a1", "a2")) == 3
    assert topology.link_cost("a1", "b1") == 10
    assert {router.name for router in topology.routers_in_group("A1")} == {"a1", "a2"}
    assert {router.name for router in topology.routers_in_region("B")} == {"b1"}
    assert {router.name for router in topology.routers_in_asn(100)} == {"a1", "a2"}
    assert topology.groups() == {"A1", "B1"}


def test_topology_validation_and_errors():
    topology = build_topology()
    topology.validate()
    with pytest.raises(TopologyError):
        topology.add_router("a1", group="A1")
    with pytest.raises(TopologyError):
        topology.add_link("a1", "zz")
    with pytest.raises(TopologyError):
        topology.add_link("a1", "a1")
    with pytest.raises(TopologyError):
        topology.add_link("a1", "a2", members=0)
    with pytest.raises(TopologyError):
        topology.link_cost("a2", "b1")
    with pytest.raises(TopologyError):
        topology.router("missing")
    with pytest.raises(TopologyError):
        topology.neighbors("missing")


def test_link_interface_names_are_distinct_per_member():
    topology = build_topology()
    members = topology.links_between("a1", "a2")
    names = {link.interface_a() for link in members} | {link.interface_b() for link in members}
    assert len(names) == 6


def test_to_location_db_covers_interfaces_and_loopbacks():
    topology = build_topology()
    db = topology.to_location_db()
    assert db.names_at(Granularity.ROUTER) == {"a1", "a2", "b1"}
    assert db.names_at(Granularity.GROUP) == {"A1", "B1"}
    assert any(name.endswith(":lo0") for name in db.names_at(Granularity.INTERFACE))
    assert db.group_of_router("b1") == "B1"


def test_subset_topology():
    topology = build_topology()
    sub = topology.subset(["a1", "a2"])
    assert sub.num_routers == 2
    assert len(sub.links_between("a1", "a2")) == 3
    assert not sub.has_router("b1")
    with pytest.raises(TopologyError):
        topology.subset(["a1", "nope"])


def test_prefix_parsing_and_containment():
    prefix = Prefix.parse("10.1.0.0/16")
    assert str(prefix) == "10.1.0.0/16"
    assert prefix.contains("10.1.2.0/24")
    assert prefix.contains(prefix)
    assert not prefix.contains("10.2.0.0/24")
    assert not Prefix.parse("10.1.2.0/24").contains(prefix)
    assert prefix.overlaps("10.0.0.0/8")
    assert not prefix.overlaps("192.168.0.0/16")
    with pytest.raises(RoutingError):
        Prefix.parse("not-a-prefix")
    assert Prefix.coerce(prefix) is prefix


def test_prefix_subnets():
    prefix = Prefix.parse("10.0.0.0/22")
    subnets = list(prefix.subnets(new_length=24))
    assert len(subnets) == 4
    assert str(subnets[1]) == "10.0.1.0/24"
    with pytest.raises(RoutingError):
        list(prefix.subnets(new_length=20))


def test_prefix_table_longest_match():
    table = PrefixTable()
    table.insert("10.0.0.0/8", "coarse")
    table.insert("10.1.0.0/16", "fine")
    assert table.lookup("10.1.2.0/24") == "fine"
    assert table.lookup("10.2.0.0/24") == "coarse"
    assert table.lookup("192.168.0.0/24") is None
    assert table.lookup_prefix("10.1.2.0/24") == Prefix.parse("10.1.0.0/16")
    assert table.exact("10.0.0.0/8") == "coarse"
    assert "10.1.0.0/16" in table
    table.remove("10.1.0.0/16")
    assert table.lookup("10.1.2.0/24") == "coarse"
    assert len(table) == 1


def test_allocate_prefixes():
    prefixes = allocate_prefixes("10.0.0.0/16", 4, new_length=24)
    assert [str(p) for p in prefixes] == [
        "10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24", "10.0.3.0/24",
    ]
    with pytest.raises(RoutingError):
        allocate_prefixes("10.0.0.0/24", 300, new_length=25)
