"""Serve-vs-direct equivalence: the daemon adds transport, never semantics.

Every test replays a workload twice — once through a *real* ``repro
serve`` child process over loopback HTTP, once through the in-process
path — and asserts the reports are **byte-identical** after stripping
timing: ``canonical_json(strip_timing(a)) == canonical_json(strip_timing(b))``.
Covered: clean and buggy stream epochs, the shared-pool worker path,
degraded (fault-injected) runs, contingency sweeps, and the stateless
one-shot endpoint.
"""

from __future__ import annotations

import pytest

from repro.serve import protocol
from repro.serve.host import SessionHost
from repro.testing.faults import POISON, Fault, FaultPlan
from repro.verifier import (
    VerificationOptions,
    VerificationSession,
    single_link_failures,
    verify_change,
)
from repro.workloads.backbone import BackboneParams, generate_backbone
from repro.workloads.contingencies import drain_sweep_scenario


def wire_bytes(payload: dict) -> bytes:
    return protocol.canonical_json(protocol.strip_timing(payload))


def report_bytes(report) -> bytes:
    return wire_bytes(protocol.encode_report(report))


def advance_body(post, spec) -> dict:
    return {
        "snapshot": {"data": post.to_dict()},
        "spec": protocol.pickle_b64(spec),
    }


def replay_direct(initial, epochs, *, options=None) -> list[bytes]:
    """The ground truth: one long-lived in-process session, instances reused."""
    session = VerificationSession(initial, options=options)
    return [report_bytes(session.advance(post, spec)) for post, spec in epochs]


def replay_host(initial, epochs, *, options=None) -> list[bytes]:
    """The in-process service path: same handler code, no HTTP."""
    host = SessionHost()
    body = {"initial": {"data": initial.to_dict()}}
    if options is not None:
        body["options"] = protocol.pickle_b64(options)
    status, _ = host.handle_json(
        "POST", "/v1/sessions/t/s", protocol.canonical_json(body)
    )
    assert status == 200
    out = []
    for post, spec in epochs:
        status, payload = host.handle_json(
            "POST",
            "/v1/sessions/t/s/advance",
            protocol.canonical_json(advance_body(post, spec)),
        )
        assert status == 200, payload
        out.append(wire_bytes(payload["report"]))
    return out


def replay_daemon(client, initial, epochs, *, options=None, tenant="t", name="s"):
    """The full stack: child process, HTTP framing, executor, shared pool."""
    body = {"initial": {"data": initial.to_dict()}}
    if options is not None:
        body["options"] = protocol.pickle_b64(options)
    assert client.create_session(tenant, name, body).status == 200
    out = []
    for post, spec in epochs:
        response = client.advance(tenant, name, advance_body(post, spec))
        assert response.status == 200, response.payload
        out.append(wire_bytes(response.payload["report"]))
    return out


# ----------------------------------------------------------------------
# Stream workloads
# ----------------------------------------------------------------------
def test_stream_replay_byte_identical_including_buggy_epochs(stream_world, daemon, make_epochs):
    """Clean and violating epochs alike round-trip byte-for-byte."""
    _backbone, initial = stream_world
    epochs = make_epochs(epochs=5, buggy_epochs={2, 4})
    direct = replay_direct(initial, epochs)
    hosted = replay_host(initial, epochs)
    served = replay_daemon(daemon.client(), initial, epochs)
    assert hosted == direct
    assert served == direct
    # The buggy epochs really did violate — this is not a vacuous pass.
    import json

    verdicts = [json.loads(blob)["holds"] for blob in direct]
    assert verdicts == [True, True, False, True, False]


def test_recurring_specs_hit_caches_like_a_direct_caller(stream_world, daemon, make_epochs):
    """Digest interning restores instance identity for recurring specs.

    A rotation-2 stream re-sends the same two spec contents forever; the
    direct caller reuses the same two *instances*.  The daemon decodes a
    fresh instance per request, so only interning makes its cache
    behaviour (cached_checks, compiled context count) match — and the
    byte-equality above would fail without it.  This test pins the cache
    counters explicitly.
    """
    import json

    _backbone, initial = stream_world
    epochs = make_epochs(epochs=6, buggy_epochs=frozenset())
    direct = replay_direct(initial, epochs)
    served = replay_daemon(daemon.client(), initial, epochs)
    assert served == direct
    cached = [json.loads(blob)["cached_checks"] for blob in direct]
    # Later cycles must reuse verdicts; if interning broke, these are all 0.
    assert sum(cached[2:]) > 0


def test_worker_path_byte_identical(stream_world, daemon, make_epochs):
    """workers=2 through the daemon's shared pool == direct workers=2."""
    _backbone, initial = stream_world
    epochs = make_epochs(epochs=3, buggy_epochs={1})
    options = VerificationOptions(workers=2)
    direct = replay_direct(initial, epochs, options=options)
    served = replay_daemon(daemon.client(), initial, epochs, options=options)
    assert served == direct
    stats = daemon.client().healthz().payload["pool"]
    assert stats["pools_created"] == 1
    assert stats["pool_rebuilds"] == 0


def test_degraded_run_byte_identical(stream_world, daemon, make_epochs):
    """A fault-injected (degraded) run serves byte-identically.

    The plan poisons one flow equivalence class past any retry budget, so
    both paths must produce the same honestly-flagged unknown verdict —
    degraded reports are part of the equivalence contract, not an excuse.
    """
    import json

    _backbone, initial = stream_world
    epochs = make_epochs(epochs=2, buggy_epochs=frozenset())
    victim = initial.fec_ids()[0]
    options = VerificationOptions(
        max_retries=0,
        fault_plan=FaultPlan(faults=(Fault(kind="error", fec_id=victim, attempts=POISON),)),
    )
    direct = replay_direct(initial, epochs, options=options)
    served = replay_daemon(daemon.client(), initial, epochs, options=options)
    assert served == direct
    first = json.loads(direct[0])
    assert first["degraded"] is True
    assert first["unknown_fecs"] > 0


# ----------------------------------------------------------------------
# One-shot verify
# ----------------------------------------------------------------------
def test_one_shot_verify_matches_verify_change(stream_world, daemon, make_epochs):
    _backbone, initial = stream_world
    epochs = make_epochs(epochs=1, buggy_epochs=frozenset())
    post, spec = epochs[0]
    response = daemon.client().verify(
        {
            "pre": {"data": initial.to_dict()},
            "post": {"data": post.to_dict()},
            "spec": protocol.pickle_b64(spec),
        }
    )
    assert response.status == 200
    direct = verify_change(initial, post, spec)
    assert wire_bytes(response.payload["report"]) == report_bytes(direct)


def test_one_shot_verify_worker_path(stream_world, daemon, make_epochs):
    _backbone, initial = stream_world
    epochs = make_epochs(epochs=1, buggy_epochs={0})
    post, spec = epochs[0]
    options = VerificationOptions(workers=2)
    response = daemon.client().verify(
        {
            "pre": {"data": initial.to_dict()},
            "post": {"data": post.to_dict()},
            "spec": protocol.pickle_b64(spec),
            "options": {"workers": 2},
        }
    )
    assert response.status == 200
    direct = verify_change(initial, post, spec, options=options)
    assert wire_bytes(response.payload["report"]) == report_bytes(direct)


# ----------------------------------------------------------------------
# Contingency sweeps
# ----------------------------------------------------------------------
@pytest.mark.parametrize("buggy", [False, True], ids=["clean", "buggy"])
def test_sweep_byte_identical(daemon, buggy):
    """A full what-if sweep round-trips byte-for-byte, clean and buggy."""
    params = dict(regions=3, routers_per_group=2, parallel_links=1, prefixes_per_region=2)
    seed = 23
    fecs = 120
    response = daemon.client().sweep(
        {
            "scenario": "drain",
            "buggy": buggy,
            "fecs": fecs,
            "seed": seed,
            "failures": "single",
            **params,
        }
    )
    assert response.status == 200, response.payload

    backbone = generate_backbone(BackboneParams(seed=seed, **params))
    scenario = drain_sweep_scenario(backbone, num_fecs=fecs, buggy=buggy, seed=seed)
    contingencies = single_link_failures(backbone.topology)
    options = VerificationOptions()
    options.granularity = scenario.granularity
    sweep = scenario.sweep(contingencies, options=options)
    direct = sweep.run()
    assert wire_bytes(response.payload["sweep"]) == wire_bytes(
        protocol.encode_sweep_report(direct)
    )
    if buggy:
        assert direct.holds is False


# ----------------------------------------------------------------------
# The runner seam itself
# ----------------------------------------------------------------------
def test_runner_seam_defaults_to_engine_path(stream_world, make_epochs):
    """session.runner=None is exactly the pre-serve engine behaviour."""
    _backbone, initial = stream_world
    epochs = make_epochs(epochs=2, buggy_epochs={1})
    plain = VerificationSession(initial)
    assert plain.runner is None
    calls = []

    def spying_runner(work, table, compiled_specs, builder, options):
        from repro.verifier.engine import _execute_unique_checks

        calls.append(len(work))
        return _execute_unique_checks(work, table, compiled_specs, builder, options)

    spied = VerificationSession(initial)
    spied.runner = spying_runner
    for post, spec in epochs:
        a = report_bytes(plain.advance(post, spec))
        b = report_bytes(spied.advance(post, spec))
        assert a == b
    assert len(calls) == len(epochs)
