"""Daemon lifecycle: graceful drain, warm restart, malformed inputs.

Pinned here: SIGTERM mid-request lets the in-flight request finish and
the process exit 0; a ``--state-dir`` daemon restart resumes sessions
*warm* (adopted verdicts surface as ``cached_checks`` in the first
post-restart reports, and the replay stays byte-identical to an
uninterrupted direct session); malformed and oversized bodies get a
structured 400 — never a traceback, never a hang — and the daemon keeps
serving afterwards.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.serve import protocol
from repro.serve.client import ServeClient
from repro.verifier import VerificationSession

from serve_helpers import start_daemon  # pytest puts tests/serve on sys.path


def wire_bytes(payload: dict) -> bytes:
    return protocol.canonical_json(protocol.strip_timing(payload))


def report_bytes(report) -> bytes:
    return wire_bytes(protocol.encode_report(report))


def advance_body(post, spec) -> dict:
    return {"snapshot": {"data": post.to_dict()}, "spec": protocol.pickle_b64(spec)}


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------
def test_sigterm_mid_request_drains_cleanly(daemon):
    """SIGTERM while a sweep is in flight: the response still arrives
    complete and correct, and the process exits 0."""
    client = daemon.client()
    started = threading.Event()

    def slow_request():
        started.set()
        return client.sweep(
            {
                "scenario": "drain",
                "fecs": 200,
                "regions": 3,
                "routers_per_group": 2,
                "parallel_links": 1,
                "prefixes_per_region": 2,
                "seed": 5,
            }
        )

    with ThreadPoolExecutor(max_workers=1) as executor:
        future = executor.submit(slow_request)
        started.wait(timeout=10)
        time.sleep(0.3)  # let the request reach the executor
        daemon.sigterm()
        response = future.result(timeout=300)
    assert response.status == 200, response.payload
    assert response.payload["sweep"]["format"] == "repro-sweep-report/v1"
    assert response.payload["sweep"]["contingencies"] > 0
    assert daemon.wait(timeout=60) == 0


def test_sigterm_idle_daemon_exits_zero(daemon):
    assert daemon.client().healthz().status == 200
    daemon.sigterm()
    assert daemon.wait(timeout=60) == 0


# ----------------------------------------------------------------------
# Warm restart via --state-dir
# ----------------------------------------------------------------------
def test_state_dir_restart_resumes_warm(stream_world, make_epochs, tmp_path):
    """Drain a daemon with hosted sessions, restart it on the same state
    directory, continue the stream: the replay stays byte-identical to an
    uninterrupted direct session, and post-restart cache-hit counters
    prove the adopted verdicts are doing real work."""
    _backbone, initial = stream_world
    # Rotation 2 revisits the same graph pairs from epoch 4 on: advance
    # through one full cycle before the restart so the epochs replayed
    # against the reloaded daemon are exactly the cacheable ones.
    epochs = make_epochs(epochs=6, buggy_epochs=frozenset())
    state_dir = str(tmp_path / "state")

    first = start_daemon("--state-dir", state_dir)
    try:
        client = first.client()
        assert (
            client.create_session("acme", "s", {"initial": {"data": initial.to_dict()}}).status
            == 200
        )
        served = []
        for post, spec in epochs[:4]:
            response = client.advance("acme", "s", advance_body(post, spec))
            assert response.status == 200, response.payload
            served.append(wire_bytes(response.payload["report"]))
    finally:
        assert first.stop() == 0  # drain saved the session

    second = start_daemon("--state-dir", state_dir)
    try:
        client = second.client()
        listed = client.list_sessions()
        assert [s["name"] for s in listed.payload["sessions"]] == ["s"]
        assert listed.payload["sessions"][0]["epochs"] == 4
        for post, spec in epochs[4:]:
            response = client.advance("acme", "s", advance_body(post, spec))
            assert response.status == 200, response.payload
            served.append(wire_bytes(response.payload["report"]))
    finally:
        assert second.stop() == 0

    direct_session = VerificationSession(initial)
    direct = [report_bytes(direct_session.advance(post, spec)) for post, spec in epochs]
    assert served == direct
    # Warmth, not just correctness: the post-restart epochs repeat graph
    # pairs already verified before the restart, so the restarted daemon
    # must be hitting the verdict cache it reloaded from disk — every
    # check cached, none re-executed.
    post_restart = json.loads(served[4])
    assert post_restart["cached_checks"] > 0
    assert post_restart["cached_checks"] == post_restart["unique_checks"]


# ----------------------------------------------------------------------
# Malformed and oversized inputs
# ----------------------------------------------------------------------
def test_malformed_bodies_get_structured_400_and_daemon_survives(daemon):
    client = daemon.client()
    cases = [
        ("POST", "/v1/verify", b"this is not json"),
        ("POST", "/v1/verify", b'{"pre": 1}'),  # wrong shape
        ("POST", "/v1/verify", b'["a", "list"]'),  # not an object
        ("POST", "/v1/sessions/t/s", b"{}"),  # missing initial
        ("POST", "/v1/sessions/bad..name!/s", b"{}"),  # invalid tenant
        ("POST", "/v1/verify", b'{"unknown_field": 1}'),
    ]
    import http.client

    host, port = daemon.base_url.removeprefix("http://").split(":")
    for method, path, raw in cases:
        connection = http.client.HTTPConnection(host, int(port), timeout=60)
        try:
            connection.request(
                method, path, body=raw, headers={"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            payload = json.loads(response.read().decode("utf-8"))
        finally:
            connection.close()
        assert response.status == 400, (path, payload)
        assert payload["format"] == "repro-error/v1"
        assert payload["error"]["code"]
        assert "Traceback" not in payload["error"]["message"]
    assert client.healthz().status == 200  # still serving


def test_oversized_body_gets_structured_400(daemon_factory):
    handle = daemon_factory("--max-body", "1024")
    client = handle.client()
    response = client.request("POST", "/v1/verify", {"padding": "x" * 4096})
    assert response.status == 400
    assert response.payload["format"] == "repro-error/v1"
    assert "exceeds" in response.payload["error"]["message"]
    assert client.healthz().status == 200


def test_unknown_routes_and_methods(daemon):
    client = daemon.client()
    assert client.request("GET", "/v1/nope").status == 404
    assert client.request("DELETE", "/v1/sessions/none/none").status == 404
    assert client.request("PUT", "/healthz").status == 400  # method mismatch
    response = client.advance("ghost", "ghost", {"snapshot": {"data": {}}})
    assert response.status == 404
    assert response.payload["error"]["code"] == "session-not-found"


def test_create_conflict_and_delete_roundtrip(stream_world, daemon):
    _backbone, initial = stream_world
    client = daemon.client()
    body = {"initial": {"data": initial.to_dict()}}
    assert client.create_session("t", "s", body).status == 200
    conflict = client.create_session("t", "s", body)
    assert conflict.status == 409
    assert conflict.payload["error"]["code"] == "session-exists"
    assert client.delete_session("t", "s").status == 200
    assert client.delete_session("t", "s").status == 404
    assert client.create_session("t", "s", body).status == 200  # name reusable


def test_unix_socket_endpoint(daemon_factory, tmp_path):
    socket_path = str(tmp_path / "repro.sock")
    handle = daemon_factory("--socket", socket_path)
    client = ServeClient(socket_path=socket_path)
    response = client.healthz()
    assert response.status == 200
    assert response.payload["status"] == "ok"
