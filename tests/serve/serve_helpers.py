"""Daemon-process helpers shared by the serve test suite and benchmarks.

Kept outside ``conftest.py`` (and under a unique basename) so test
modules and the benchmark harness can import it directly — the tests
tree is not a package, so only uniquely-named helper modules are safely
importable across files.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.serve.client import ServeClient

REPO_ROOT = Path(__file__).resolve().parents[2]


class DaemonHandle:
    """One ``repro serve`` child process plus its parsed endpoint."""

    def __init__(self, process: subprocess.Popen, base_url: str) -> None:
        self.process = process
        self.base_url = base_url

    def client(self, **kwargs) -> ServeClient:
        return ServeClient(self.base_url, **kwargs)

    def sigterm(self) -> None:
        self.process.send_signal(signal.SIGTERM)

    def wait(self, timeout: float = 60) -> int:
        return self.process.wait(timeout=timeout)

    def stop(self) -> int:
        if self.process.poll() is None:
            self.sigterm()
            try:
                return self.process.wait(timeout=60)
            except subprocess.TimeoutExpired:  # pragma: no cover - last resort
                self.process.kill()
                return self.process.wait(timeout=10)
        return self.process.returncode


def start_daemon(*extra_args: str, timeout: float = 60) -> DaemonHandle:
    """Start ``repro serve`` on a kernel-chosen loopback port and wait for it."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
    )
    deadline = time.monotonic() + timeout
    banner = ""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise RuntimeError(
                f"daemon exited during startup (code {process.poll()}): {banner}"
            )
        banner += line
        if line.startswith("serving on "):
            base_url = line.split("serving on ", 1)[1].strip()
            return DaemonHandle(process, base_url)
    process.kill()
    raise RuntimeError(f"daemon did not report its endpoint in time: {banner}")
