"""Fixtures of the serve suite: workloads plus a real daemon subprocess.

The daemon fixture starts ``repro serve`` as an actual child process on a
loopback port (chosen by the kernel, parsed from the daemon's banner), so
the differential tests exercise the full stack — argv parsing, asyncio
accept loop, HTTP framing, executor threads, shared pool — not an
in-process approximation.  The in-process approximation (``SessionHost``
driven directly) is *also* under test, as the differential baseline.
"""

from __future__ import annotations

import pytest

from repro.workloads.backbone import BackboneParams, generate_backbone
from repro.workloads.stream import rolling_drain_stream
from repro.workloads.traffic import generate_fecs

from serve_helpers import DaemonHandle, start_daemon  # noqa: E402 (sys.path dir)


@pytest.fixture(scope="session")
def stream_world():
    backbone = generate_backbone(
        BackboneParams(
            regions=3, routers_per_group=2, parallel_links=1, prefixes_per_region=2
        )
    )
    fecs = generate_fecs(backbone)
    initial = backbone.simulator().snapshot(fecs, name="initial")
    return backbone, initial


@pytest.fixture(scope="session")
def make_epochs(stream_world):
    """A factory for seeded stream workloads: ``[(post_snapshot, spec), ...]``.

    Recurring rotation cycles reuse spec *instances*, exactly like a
    long-lived direct caller — the serve path must recover that identity
    from recurring spec *content* (digest interning) to match.
    """
    backbone, initial = stream_world

    def _make(*, epochs=4, buggy_epochs=frozenset({2}), seed=13):
        stream = rolling_drain_stream(
            backbone, initial, epochs=epochs, rotation=2, seed=seed,
            buggy_epochs=buggy_epochs,
        )
        return [(epoch.post, epoch.spec) for epoch in stream.epochs]

    return _make


@pytest.fixture
def daemon(daemon_factory):
    """A fresh default-config daemon per test, drained at teardown."""
    return daemon_factory()


@pytest.fixture
def daemon_factory():
    """Start daemons with custom argv; every one is stopped at teardown."""
    handles: list[DaemonHandle] = []

    def _start(*extra_args: str) -> DaemonHandle:
        handle = start_daemon(*extra_args)
        handles.append(handle)
        return handle

    yield _start
    for handle in handles:
        handle.stop()
