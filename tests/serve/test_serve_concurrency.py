"""Concurrency fuzz and tenant isolation of the verification daemon.

The contract under load: whatever the interleaving, every tenant's
stream of reports is byte-identical to a serial in-process replay of
that tenant's workload alone; quota pressure in one tenant never
perturbs another's verdict cache; and backpressure is an explicit,
well-formed 429 + ``Retry-After`` — a request is refused or answered
correctly, never dropped or mangled.
"""

from __future__ import annotations

import json
import random
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.serve import protocol
from repro.verifier import VerificationOptions, VerificationSession, verify_change


def wire_bytes(payload: dict) -> bytes:
    return protocol.canonical_json(protocol.strip_timing(payload))


def report_bytes(report) -> bytes:
    return wire_bytes(protocol.encode_report(report))


def serial_replay(initial, epochs, **session_kwargs) -> list[bytes]:
    session = VerificationSession(initial, **session_kwargs)
    return [report_bytes(session.advance(post, spec)) for post, spec in epochs]


def tenant_workloads(make_epochs, tenants):
    """Distinct seeded workloads, one per tenant (different buggy sets)."""
    plans = {}
    for index, tenant in enumerate(tenants):
        plans[tenant] = make_epochs(
            epochs=4, buggy_epochs={index % 4}, seed=100 + index
        )
    return plans


def drive_tenant(client, tenant, initial, epochs, seed, **create_extra):
    """One client thread: create a session, advance it epoch by epoch.

    Seeded jitter between requests makes distinct interleavings across
    tenants reproducible per seed; 429s are retried (never treated as
    data) so quota pressure can only delay a tenant, not corrupt it.
    """
    rng = random.Random(seed)
    body = {"initial": {"data": initial.to_dict()}, **create_extra}
    response = client.create_session(tenant, "s", body)
    assert response.status == 200, response.payload
    blobs = []
    for post, spec in epochs:
        while True:
            response = client.advance(
                tenant,
                "s",
                {
                    "snapshot": {"data": post.to_dict()},
                    "spec": protocol.pickle_b64(spec),
                },
            )
            if response.status == 429:
                assert response.retry_after is not None
                threading.Event().wait(0.01 * rng.random())
                continue
            break
        assert response.status == 200, response.payload
        blobs.append(wire_bytes(response.payload["report"]))
        threading.Event().wait(0.005 * rng.random())
    return blobs


def test_seeded_multi_tenant_interleaving_equals_serial_replay(
    stream_world, daemon, make_epochs
):
    """N concurrent tenants, randomized pacing: per-tenant results are
    exactly the serial single-tenant replay, for every tenant at once."""
    _backbone, initial = stream_world
    tenants = ["acme", "globex", "initech"]
    plans = tenant_workloads(make_epochs, tenants)
    with ThreadPoolExecutor(max_workers=len(tenants)) as executor:
        futures = {
            tenant: executor.submit(
                drive_tenant, daemon.client(), tenant, initial, plans[tenant], seed
            )
            for seed, tenant in enumerate(tenants)
        }
        served = {tenant: future.result(timeout=300) for tenant, future in futures.items()}
    for tenant in tenants:
        assert served[tenant] == serial_replay(initial, plans[tenant]), tenant
    # The workloads really differed (different buggy epochs per tenant).
    verdict_sets = {
        tenant: tuple(json.loads(blob)["holds"] for blob in served[tenant])
        for tenant in tenants
    }
    assert len(set(verdict_sets.values())) > 1


def test_quota_eviction_in_one_tenant_does_not_perturb_another(
    stream_world, daemon, make_epochs
):
    """A budget-starved tenant evicts graphs/contexts constantly; its
    neighbour's verdict cache (cached_checks per epoch) must be exactly
    what a solo replay produces."""
    _backbone, initial = stream_world
    starved_epochs = make_epochs(epochs=6, buggy_epochs=frozenset(), seed=7)
    calm_epochs = make_epochs(epochs=6, buggy_epochs={3}, seed=8)
    budgets = {"graph_budget": 2, "context_budget": 1}
    with ThreadPoolExecutor(max_workers=2) as executor:
        starved_future = executor.submit(
            drive_tenant, daemon.client(), "starved", initial, starved_epochs, 1, **budgets
        )
        calm_future = executor.submit(
            drive_tenant, daemon.client(), "calm", initial, calm_epochs, 2
        )
        starved = starved_future.result(timeout=300)
        calm = calm_future.result(timeout=300)
    assert calm == serial_replay(initial, calm_epochs)
    assert starved == serial_replay(
        initial, starved_epochs, graph_budget=2, context_budget=1
    )
    # The calm tenant's cache warmed exactly as it would alone: recurring
    # epochs hit the verdict cache even while the neighbour was evicting.
    calm_cached = [json.loads(blob)["cached_checks"] for blob in calm]
    assert sum(calm_cached[2:]) > 0


def test_backpressure_is_429_never_dropped_or_mangled(
    stream_world, daemon_factory, make_epochs
):
    """With a queue of 1, a burst of one-shot verifies sees explicit 429s
    with Retry-After; with retries every request eventually gets the
    byte-exact report — none dropped, none mangled."""
    _backbone, initial = stream_world
    post, spec = make_epochs(epochs=1, buggy_epochs=frozenset())[0]
    handle = daemon_factory("--queue-limit", "1", "--pool-workers", "0")
    body = {
        "pre": {"data": initial.to_dict()},
        "post": {"data": post.to_dict()},
        "spec": protocol.pickle_b64(spec),
    }
    expected = report_bytes(verify_change(initial, post, spec))
    rejections = []
    results = []

    def one_client(seed: int) -> None:
        rng = random.Random(seed)
        client = handle.client()
        while True:
            response = client.verify(body)
            if response.status == 429:
                assert response.retry_after is not None
                rejections.append(response.payload["error"]["code"])
                threading.Event().wait(0.02 * (1 + rng.random()))
                continue
            assert response.status == 200, response.payload
            results.append(wire_bytes(response.payload["report"]))
            return

    clients = 8
    with ThreadPoolExecutor(max_workers=clients) as executor:
        for future in [executor.submit(one_client, seed) for seed in range(clients)]:
            future.result(timeout=300)
    assert len(results) == clients  # nothing dropped
    assert all(blob == expected for blob in results)  # nothing mangled
    assert rejections  # backpressure actually engaged
    assert set(rejections) == {"quota-exceeded"}


def test_tenant_inflight_limit_does_not_starve_other_tenants(
    stream_world, daemon_factory, make_epochs
):
    """One tenant saturating its own in-flight limit gets 429s; a second
    tenant's requests proceed and verify correctly meanwhile."""
    _backbone, initial = stream_world
    epochs = make_epochs(epochs=3, buggy_epochs=frozenset())
    handle = daemon_factory(
        "--tenant-inflight", "1", "--queue-limit", "32", "--pool-workers", "0"
    )
    noisy_rejected = []

    def noisy() -> list[bytes]:
        client = handle.client()
        out = drive_tenant(client, "noisy", initial, epochs, 3)
        return out

    def hammer_noisy() -> None:
        # Fire session list/advance-shaped traffic into the noisy tenant's
        # namespace to contend for its in-flight budget.
        client = handle.client()
        for _ in range(20):
            response = client.request("GET", "/v1/sessions")
            assert response.status == 200
            response = client.advance("noisy", "missing", {"snapshot": {"data": initial.to_dict()}})
            if response.status == 429:
                noisy_rejected.append(1)

    with ThreadPoolExecutor(max_workers=3) as executor:
        noisy_future = executor.submit(noisy)
        hammer_future = executor.submit(hammer_noisy)
        calm_future = executor.submit(
            drive_tenant, handle.client(), "calm", initial, epochs, 4
        )
        calm = calm_future.result(timeout=300)
        noisy_future.result(timeout=300)
        hammer_future.result(timeout=300)
    assert calm == serial_replay(initial, epochs)
