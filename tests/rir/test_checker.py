"""Tests for the RIR decision procedure (checker)."""

import pytest

from repro.automata import Alphabet, FSA
from repro.errors import VerificationError
from repro.rir import (
    PSImage,
    PSPostState,
    PSPreState,
    PSSymbol,
    PSUnion,
    RIdentity,
    RIRContext,
    SpecAnd,
    SpecEqual,
    SpecNot,
    SpecOr,
    SpecSubset,
    check_spec,
)


def make_context(pre, post):
    alphabet = Alphabet(["a", "b", "c"])
    return RIRContext(
        alphabet,
        FSA.from_words(alphabet, pre),
        FSA.from_words(alphabet, post),
    )


def test_equal_spec_holds():
    ctx = make_context([["a"], ["b"]], [["b"], ["a"]])
    verdict = check_spec(SpecEqual(PSPreState(), PSPostState()), ctx)
    assert verdict.holds
    assert verdict.violations == []
    assert verdict.witnesses() == ([], [])


def test_equal_spec_fails_with_witnesses():
    ctx = make_context([["a"], ["b"]], [["a"], ["c"]])
    verdict = check_spec(SpecEqual(PSPreState(), PSPostState(), label="demo"), ctx)
    assert not verdict.holds
    assert len(verdict.assertions) == 1
    violation = verdict.violations[0]
    assert violation.label == "demo"
    assert ("b",) in violation.missing
    assert ("c",) in violation.unexpected


def test_subset_spec():
    ctx = make_context([["a"]], [["a"], ["b"]])
    assert check_spec(SpecSubset(PSPreState(), PSPostState()), ctx).holds
    assert not check_spec(SpecSubset(PSPostState(), PSPreState()), ctx).holds


def test_boolean_combinations():
    ctx = make_context([["a"]], [["b"]])
    eq = SpecEqual(PSPreState(), PSPostState())
    sub = SpecSubset(PSSymbol("a"), PSUnion(PSSymbol("a"), PSSymbol("b")))
    assert not check_spec(SpecAnd(eq, sub), ctx).holds
    assert check_spec(SpecOr(eq, sub), ctx).holds
    assert check_spec(SpecNot(eq), ctx).holds
    assert not check_spec(SpecNot(sub), ctx).holds


def test_and_collects_all_assertions():
    ctx = make_context([["a"]], [["b"]])
    eq = SpecEqual(PSPreState(), PSPostState())
    verdict = check_spec(SpecAnd(eq, eq), ctx)
    assert len(verdict.assertions) == 2
    assert len(verdict.violations) == 2


def test_image_based_preserve_equation():
    # The canonical translation idiom: PreState ▷ I(D) = PostState ▷ I(D).
    ctx = make_context([["a"], ["c"]], [["a"], ["b"]])
    zone = PSSymbol("a")
    spec = SpecEqual(
        PSImage(PSPreState(), RIdentity(zone)),
        PSImage(PSPostState(), RIdentity(zone)),
    )
    assert check_spec(spec, ctx).holds
    wide_zone = PSUnion(PSSymbol("a"), PSUnion(PSSymbol("b"), PSSymbol("c")))
    wide_spec = SpecEqual(
        PSImage(PSPreState(), RIdentity(wide_zone)),
        PSImage(PSPostState(), RIdentity(wide_zone)),
    )
    verdict = check_spec(wide_spec, ctx)
    assert not verdict.holds
    missing, unexpected = verdict.witnesses()
    assert ("c",) in missing
    assert ("b",) in unexpected


def test_witness_limit_respected():
    ctx = make_context([["a"], ["b"], ["c"]], [])
    verdict = check_spec(
        SpecEqual(PSPreState(), PSPostState()), ctx, max_witnesses=2
    )
    assert len(verdict.violations[0].missing) == 2


def test_unknown_spec_node_raises():
    ctx = make_context([], [])

    class Bogus(SpecEqual.__mro__[1]):
        __slots__ = ()

    with pytest.raises(VerificationError):
        check_spec(Bogus(), ctx)
