"""Tests for the RIR reference semantics (paper Appendix A)."""

import pytest

from repro.rir import (
    PSComplement,
    PSConcat,
    PSEmpty,
    PSEpsilon,
    PSImage,
    PSIntersect,
    PSPostState,
    PSPreState,
    PSStar,
    PSSymbol,
    PSUnion,
    RCompose,
    RConcat,
    RCross,
    REmpty,
    REpsilon,
    RIdentity,
    RStar,
    RUnion,
    RIRModel,
    SpecAnd,
    SpecEqual,
    SpecNot,
    SpecOr,
    SpecSubset,
    eval_pathset,
    eval_rel,
    holds,
    word,
)


@pytest.fixture()
def model() -> RIRModel:
    return RIRModel(
        pre={("a", "b"), ("c",)},
        post={("a", "d"), ("c",)},
        sigma=("a", "b", "c", "d"),
        max_length=4,
    )


def test_primitive_path_sets(model):
    assert eval_pathset(PSSymbol("a"), model) == {("a",)}
    assert eval_pathset(PSEmpty(), model) == set()
    assert eval_pathset(PSEpsilon(), model) == {()}
    assert eval_pathset(PSPreState(), model) == model.pre
    assert eval_pathset(PSPostState(), model) == model.post


def test_union_concat_intersect(model):
    union = PSUnion(PSSymbol("a"), PSSymbol("b"))
    assert eval_pathset(union, model) == {("a",), ("b",)}
    concat = PSConcat(PSSymbol("a"), PSSymbol("b"))
    assert eval_pathset(concat, model) == {("a", "b")}
    inter = PSIntersect(PSPreState(), PSPostState())
    assert eval_pathset(inter, model) == {("c",)}


def test_star_is_bounded(model):
    star = PSStar(PSSymbol("a"))
    result = eval_pathset(star, model)
    assert () in result
    assert ("a",) * model.max_length in result
    assert all(len(path) <= model.max_length for path in result)


def test_complement_is_relative_to_bounded_universe(model):
    comp = eval_pathset(PSComplement(PSPreState()), model)
    assert ("a", "b") not in comp
    assert ("a", "d") in comp
    assert all(len(path) <= model.max_length for path in comp)


def test_image_applies_relation(model):
    rel = RCross(PSSymbol("c"), PSSymbol("d"))
    image = PSImage(PSPreState(), rel)
    assert eval_pathset(image, model) == {("d",)}


def test_relation_primitives(model):
    assert eval_rel(REmpty(), model) == set()
    assert eval_rel(REpsilon(), model) == {((), ())}
    ident = eval_rel(RIdentity(PSPreState()), model)
    assert ident == {(path, path) for path in model.pre}
    cross = eval_rel(RCross(PSSymbol("a"), PSSymbol("b")), model)
    assert cross == {(("a",), ("b",))}


def test_relation_union_concat_star(model):
    a_to_b = RCross(PSSymbol("a"), PSSymbol("b"))
    c_ident = RIdentity(PSSymbol("c"))
    union = eval_rel(RUnion(a_to_b, c_ident), model)
    assert (("a",), ("b",)) in union and (("c",), ("c",)) in union
    concat = eval_rel(RConcat(a_to_b, c_ident), model)
    assert concat == {(("a", "c"), ("b", "c"))}
    star = eval_rel(RStar(a_to_b), model)
    assert ((), ()) in star and (("a", "a"), ("b", "b")) in star


def test_relation_compose(model):
    a_to_b = RCross(PSSymbol("a"), PSSymbol("b"))
    b_to_c = RCross(PSSymbol("b"), PSSymbol("c"))
    assert eval_rel(RCompose(a_to_b, b_to_c), model) == {(("a",), ("c",))}


def test_spec_satisfaction(model):
    same = SpecEqual(PSPreState(), PSPreState())
    assert holds(same, model)
    different = SpecEqual(PSPreState(), PSPostState())
    assert not holds(different, model)
    subset = SpecSubset(PSIntersect(PSPreState(), PSPostState()), PSPreState())
    assert holds(subset, model)
    assert holds(SpecOr(different, same), model)
    assert not holds(SpecAnd(different, same), model)
    assert holds(SpecNot(different), model)


def test_word_helper(model):
    assert eval_pathset(word(["a", "b"]), model) == {("a", "b")}
    assert eval_pathset(word([]), model) == {()}


def test_preserve_idiom_from_paper(model):
    # PreState ▷ I(D) = PostState ▷ I(D)  iff  pre ∩ D == post ∩ D.
    zone = PSUnion(PSSymbol("c"), PSConcat(PSSymbol("a"), PSSymbol("b")))
    spec = SpecEqual(
        PSImage(PSPreState(), RIdentity(zone)),
        PSImage(PSPostState(), RIdentity(zone)),
    )
    assert not holds(spec, model)  # pre has (a,b) in the zone, post does not
    narrow_zone = PSSymbol("c")
    spec_narrow = SpecEqual(
        PSImage(PSPreState(), RIdentity(narrow_zone)),
        PSImage(PSPostState(), RIdentity(narrow_zone)),
    )
    assert holds(spec_narrow, model)
