"""Tests for RIR compilation to automata, including differential testing
against the set-based reference semantics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata import Alphabet, FSA
from repro.errors import CompilationError
from repro.rir import (
    PSComplement,
    PSConcat,
    PSEmpty,
    PSEpsilon,
    PSImage,
    PSIntersect,
    PSPostState,
    PSPreState,
    PSStar,
    PSSymbol,
    PSUnion,
    RCompose,
    RConcat,
    RCross,
    REmpty,
    REpsilon,
    RIdentity,
    RUnion,
    RIRContext,
    RIRModel,
    compile_pathset,
    compile_rel,
    eval_pathset,
)

SIGMA = ("a", "b", "c")


def make_context(pre: set[tuple[str, ...]], post: set[tuple[str, ...]]) -> RIRContext:
    alphabet = Alphabet(SIGMA)
    pre_fsa = FSA.from_words(alphabet, [list(p) for p in pre])
    post_fsa = FSA.from_words(alphabet, [list(p) for p in post])
    return RIRContext(alphabet, pre_fsa, post_fsa)


def test_compile_primitives():
    ctx = make_context({("a",)}, {("b",)})
    assert compile_pathset(PSEmpty(), ctx).is_empty()
    assert compile_pathset(PSEpsilon(), ctx).accepts([])
    assert compile_pathset(PSSymbol("a"), ctx).accepts(["a"])
    assert compile_pathset(PSPreState(), ctx).accepts(["a"])
    assert compile_pathset(PSPostState(), ctx).accepts(["b"])


def test_compile_image():
    ctx = make_context({("a", "b")}, set())
    rel = RCross(PSConcat(PSSymbol("a"), PSSymbol("b")), PSSymbol("c"))
    image = compile_pathset(PSImage(PSPreState(), rel), ctx)
    assert image.language() == {("c",)}


def test_compile_relation_operations():
    ctx = make_context(set(), set())
    assert compile_rel(REmpty(), ctx).relation() == set()
    assert compile_rel(REpsilon(), ctx).relation() == {((), ())}
    rel = RUnion(
        RCross(PSSymbol("a"), PSSymbol("b")),
        RIdentity(PSSymbol("c")),
    )
    assert compile_rel(rel, ctx).relation() == {(("a",), ("b",)), (("c",), ("c",))}
    composed = RCompose(
        RCross(PSSymbol("a"), PSSymbol("b")), RCross(PSSymbol("b"), PSSymbol("c"))
    )
    assert compile_rel(composed, ctx).relation() == {(("a",), ("c",))}
    chained = RConcat(RIdentity(PSSymbol("a")), RCross(PSSymbol("b"), PSSymbol("c")))
    assert compile_rel(chained, ctx).relation() == {(("a", "b"), ("a", "c"))}


def test_compilation_cache_reuses_results():
    ctx = make_context({("a",)}, set())
    node = PSUnion(PSSymbol("a"), PSSymbol("b"))
    first = compile_pathset(node, ctx)
    second = compile_pathset(node, ctx)
    assert first is second


def test_unknown_node_raises():
    ctx = make_context(set(), set())

    class Bogus(PSSymbol.__mro__[1]):  # a PathSet subclass the compiler ignores
        __slots__ = ()

    with pytest.raises(CompilationError):
        compile_pathset(Bogus(), ctx)


# ----------------------------------------------------------------------
# Differential testing: compiled automata vs. reference semantics
# ----------------------------------------------------------------------
def pathset_strategy(max_depth: int = 3) -> st.SearchStrategy:
    leaves = st.one_of(
        st.sampled_from(SIGMA).map(PSSymbol),
        st.just(PSEpsilon()),
        st.just(PSEmpty()),
        st.just(PSPreState()),
        st.just(PSPostState()),
    )

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda pair: PSUnion(*pair)),
            st.tuples(children, children).map(lambda pair: PSConcat(*pair)),
            st.tuples(children, children).map(lambda pair: PSIntersect(*pair)),
            children.map(PSStar),
            children.map(PSComplement),
            st.tuples(children, children).map(lambda pair: PSImage(pair[0], RIdentity(pair[1]))),
            st.tuples(children, children).map(
                lambda pair: PSImage(pair[0], RCross(pair[0], pair[1]))
            ),
        )

    return st.recursive(leaves, extend, max_leaves=5)


def snapshot_strategy() -> st.SearchStrategy[set[tuple[str, ...]]]:
    path = st.lists(st.sampled_from(SIGMA), min_size=1, max_size=3).map(tuple)
    return st.sets(path, max_size=3)


@settings(max_examples=40, deadline=None)
@given(node=pathset_strategy(), pre=snapshot_strategy(), post=snapshot_strategy())
def test_compiler_agrees_with_reference_semantics(node, pre, post):
    """The automata compiler and Appendix A semantics agree on bounded words."""
    bound = 4
    model = RIRModel(pre=pre, post=post, sigma=SIGMA, max_length=bound)
    reference = eval_pathset(node, model)

    ctx = make_context(pre, post)
    compiled = compile_pathset(node, ctx)
    # Restrict comparison to words within the reference bound: the automata
    # semantics is exact (unbounded), the reference semantics is bounded.
    compiled_words = {
        w
        for w in compiled.enumerate_words(max_count=5000, max_length=bound)
        if all(symbol in SIGMA for symbol in w)
    }
    reference_words = {w for w in reference if len(w) <= bound}
    assert compiled_words == reference_words
