"""Smoke tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.snapshots import FlowEquivalenceClass, build_snapshot


@pytest.fixture()
def snapshot_files(tmp_path):
    """Pre/post (and buggy post) snapshot JSON files plus a spec file."""
    web = FlowEquivalenceClass("web", dst_prefix="203.0.113.0/24", ingress="edge")
    dns = FlowEquivalenceClass("dns", dst_prefix="198.51.100.0/24", ingress="edge")
    pre = build_snapshot(
        "pre",
        [
            (web, [("edge", "mid1", "core1")]),
            (dns, [("edge", "mid1", "core2")]),
        ],
    )
    post_good = build_snapshot(
        "post-good",
        [
            (web, [("edge", "mid1", "core1")]),
            (dns, [("edge", "mid2", "core2")]),
        ],
    )
    post_buggy = build_snapshot(
        "post-buggy",
        [
            (web, [("edge", "mid2", "core1")]),
            (dns, [("edge", "mid1", "core2")]),
        ],
    )
    paths = {}
    for name, snapshot in [("pre", pre), ("post", post_good), ("buggy", post_buggy)]:
        paths[name] = tmp_path / f"{name}.json"
        snapshot.to_json(paths[name], indent=2)
    paths["spec"] = tmp_path / "change.rela"
    paths["spec"].write_text(
        "regex viazone := edge (mid1|mid2) core2\n"
        "regex newpath := edge mid2 core2\n"
        "spec move := { viazone : any(newpath) ; }\n"
        "spec nochange := { .* : preserve ; }\n"
        "spec change := move else nochange\n"
    )
    return paths


def test_verify_pass(snapshot_files, capsys):
    code = main(
        [
            "verify",
            str(snapshot_files["pre"]),
            str(snapshot_files["post"]),
            str(snapshot_files["spec"]),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert out.startswith("PASS")


def test_verify_fail_prints_table(snapshot_files, capsys):
    code = main(
        [
            "verify",
            str(snapshot_files["pre"]),
            str(snapshot_files["buggy"]),
            str(snapshot_files["spec"]),
        ]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert out.startswith("FAIL")
    assert "Cause of violation" in out  # the Table 1 layout


def test_stream_rolling_drain(capsys):
    code = main(
        [
            "stream",
            "--fecs",
            "200",
            "--regions",
            "4",
            "--epochs",
            "4",
            "--rotation",
            "1",
            "--seed",
            "7",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    lines = [line for line in out.splitlines() if line.startswith("[rolling-drain-")]
    assert len(lines) == 4
    # One cumulative stream summary with cache statistics at the end.
    assert out.splitlines()[-1].startswith("PASS: 4 epochs")
    assert "cache hits" in out


def test_stream_flapping_profile(capsys):
    code = main(
        [
            "stream",
            "--profile",
            "flapping",
            "--fecs",
            "24",
            "--regions",
            "4",
            "--epochs",
            "4",
            "--seed",
            "7",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "[flapping-e003]" in out
    assert out.splitlines()[-1].startswith("PASS")


def test_stream_prefix_migration_profile(capsys):
    code = main(
        [
            "stream",
            "--profile",
            "prefix-migration",
            "--fecs",
            "24",
            "--regions",
            "4",
            "--epochs",
            "2",
            "--seed",
            "7",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert out.splitlines()[-1].startswith("PASS")
