"""Smoke and error-path tests for the command-line interface.

Exit-code contract: 0 = verified and holds, 1 = verified and violations
found, 2 = the run itself failed (missing files, unparsable specs, invalid
workload parameters, conflicting flags).  Library and I/O failures print a
one-line ``error: ...`` to stderr instead of a traceback; argparse flag
conflicts raise ``SystemExit(2)`` with a usage message.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.snapshots import FlowEquivalenceClass, build_snapshot


@pytest.fixture()
def snapshot_files(tmp_path):
    """Pre/post (and buggy post) snapshot JSON files plus a spec file."""
    web = FlowEquivalenceClass("web", dst_prefix="203.0.113.0/24", ingress="edge")
    dns = FlowEquivalenceClass("dns", dst_prefix="198.51.100.0/24", ingress="edge")
    pre = build_snapshot(
        "pre",
        [
            (web, [("edge", "mid1", "core1")]),
            (dns, [("edge", "mid1", "core2")]),
        ],
    )
    post_good = build_snapshot(
        "post-good",
        [
            (web, [("edge", "mid1", "core1")]),
            (dns, [("edge", "mid2", "core2")]),
        ],
    )
    post_buggy = build_snapshot(
        "post-buggy",
        [
            (web, [("edge", "mid2", "core1")]),
            (dns, [("edge", "mid1", "core2")]),
        ],
    )
    paths = {}
    for name, snapshot in [("pre", pre), ("post", post_good), ("buggy", post_buggy)]:
        paths[name] = tmp_path / f"{name}.json"
        snapshot.to_json(paths[name], indent=2)
    paths["spec"] = tmp_path / "change.rela"
    paths["spec"].write_text(
        "regex viazone := edge (mid1|mid2) core2\n"
        "regex newpath := edge mid2 core2\n"
        "spec move := { viazone : any(newpath) ; }\n"
        "spec nochange := { .* : preserve ; }\n"
        "spec change := move else nochange\n"
    )
    return paths


def test_verify_pass(snapshot_files, capsys):
    code = main(
        [
            "verify",
            str(snapshot_files["pre"]),
            str(snapshot_files["post"]),
            str(snapshot_files["spec"]),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert out.startswith("PASS")


def test_verify_fail_prints_table(snapshot_files, capsys):
    code = main(
        [
            "verify",
            str(snapshot_files["pre"]),
            str(snapshot_files["buggy"]),
            str(snapshot_files["spec"]),
        ]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert out.startswith("FAIL")
    assert "Cause of violation" in out  # the Table 1 layout


def test_stream_rolling_drain(capsys):
    code = main(
        [
            "stream",
            "--fecs",
            "200",
            "--regions",
            "4",
            "--epochs",
            "4",
            "--rotation",
            "1",
            "--seed",
            "7",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    lines = [line for line in out.splitlines() if line.startswith("[rolling-drain-")]
    assert len(lines) == 4
    # One cumulative stream summary with cache statistics at the end.
    assert out.splitlines()[-1].startswith("PASS: 4 epochs")
    assert "cache hits" in out


def test_stream_flapping_profile(capsys):
    code = main(
        [
            "stream",
            "--profile",
            "flapping",
            "--fecs",
            "24",
            "--regions",
            "4",
            "--epochs",
            "4",
            "--seed",
            "7",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "[flapping-e003]" in out
    assert out.splitlines()[-1].startswith("PASS")


def test_sweep_smoke(capsys):
    code = main(
        [
            "sweep",
            "--fecs",
            "120",
            "--regions",
            "3",
            "--candidate-links",
            "r0-agg0~r0-core0",
            "r0-border0~r1-border0",
            "--seed",
            "7",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert out.splitlines()[-1].startswith("PASS: 3 contingencies")
    assert "dedup" in out


def test_sweep_buggy_reports_most_violating(capsys):
    code = main(
        [
            "sweep",
            "--scenario",
            "refactor",
            "--buggy",
            "--fecs",
            "120",
            "--regions",
            "3",
            "--candidate-links",
            "r0-agg0~r0-core0",
            "--seed",
            "7",
        ]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "most-violating contingencies:" in out
    assert out.splitlines()[-1].startswith("FAIL")


# ----------------------------------------------------------------------
# Error paths
# ----------------------------------------------------------------------
def test_verify_missing_snapshot_file(snapshot_files, capsys, tmp_path):
    code = main(
        [
            "verify",
            str(tmp_path / "does-not-exist.json"),
            str(snapshot_files["post"]),
            str(snapshot_files["spec"]),
        ]
    )
    captured = capsys.readouterr()
    assert code == 2
    assert captured.err.startswith("error:")
    assert "does-not-exist.json" in captured.err


def test_verify_malformed_snapshot_json(snapshot_files, capsys, tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"name": "x", "granularity": "router"')  # truncated
    code = main(
        ["verify", str(bad), str(snapshot_files["post"]), str(snapshot_files["spec"])]
    )
    captured = capsys.readouterr()
    assert code == 2
    assert "error:" in captured.err and "JSON" in captured.err


def test_verify_bad_spec_text(snapshot_files, capsys, tmp_path):
    bad_spec = tmp_path / "broken.rela"
    bad_spec.write_text("spec change = { this is not rela ;\n")
    code = main(
        ["verify", str(snapshot_files["pre"]), str(snapshot_files["post"]), str(bad_spec)]
    )
    captured = capsys.readouterr()
    assert code == 2
    assert captured.err.startswith("error:")


def test_verify_unknown_spec_name(snapshot_files, capsys):
    code = main(
        [
            "verify",
            str(snapshot_files["pre"]),
            str(snapshot_files["post"]),
            str(snapshot_files["spec"]),
            "--spec-name",
            "nope",
        ]
    )
    captured = capsys.readouterr()
    assert code == 2
    assert "unknown spec" in captured.err


def test_pathdiff_missing_file(capsys, tmp_path):
    code = main(["pathdiff", str(tmp_path / "a.json"), str(tmp_path / "b.json")])
    captured = capsys.readouterr()
    assert code == 2
    assert captured.err.startswith("error:")


def test_stream_invalid_profile(capsys):
    code = main(["stream", "--fecs", "10", "--regions", "4", "--epochs", "0"])
    captured = capsys.readouterr()
    assert code == 2
    assert "at least one epoch" in captured.err


def test_sweep_k_flag_conflicts_with_single_failures(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["sweep", "--k", "2"])
    assert excinfo.value.code == 2
    assert "--k only applies to --failures k" in capsys.readouterr().err


def test_sweep_limit_flag_conflicts_with_single_failures(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["sweep", "--limit", "3"])
    assert excinfo.value.code == 2
    assert "--limit only applies" in capsys.readouterr().err


def test_sweep_candidates_conflict_with_maintenance(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(
            [
                "sweep",
                "--failures",
                "maintenance",
                "--candidate-links",
                "r0-agg0~r0-core0",
            ]
        )
    assert excinfo.value.code == 2
    assert "conflicts with --failures maintenance" in capsys.readouterr().err


def test_sweep_malformed_candidate_link(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["sweep", "--candidate-links", "not-a-link"])
    assert excinfo.value.code == 2
    assert "routerA~routerB" in capsys.readouterr().err


def test_sweep_drain_rejects_interface_granularity(capsys):
    code = main(
        ["sweep", "--fecs", "60", "--regions", "3", "--granularity", "interface"]
    )
    captured = capsys.readouterr()
    assert code == 2
    assert "interface-level" in captured.err


def test_sweep_unknown_candidate_link(capsys):
    code = main(
        ["sweep", "--fecs", "60", "--regions", "3", "--candidate-links", "a~b"]
    )
    captured = capsys.readouterr()
    assert code == 2
    assert "candidate links not in the topology" in captured.err


def test_stream_prefix_migration_profile(capsys):
    code = main(
        [
            "stream",
            "--profile",
            "prefix-migration",
            "--fecs",
            "24",
            "--regions",
            "4",
            "--epochs",
            "2",
            "--seed",
            "7",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert out.splitlines()[-1].startswith("PASS")


# ----------------------------------------------------------------------
# The gate subcommand (graded exit codes: 0 pass, 3 conditional, 5 hold/block)
# ----------------------------------------------------------------------
def test_gate_sweep_clean_passes_with_valid_json(capsys):
    import json

    code = main(
        [
            "gate",
            "--json",
            "sweep",
            "--fecs",
            "120",
            "--regions",
            "3",
            "--candidate-links",
            "r0-agg0~r0-core0",
            "--seed",
            "7",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    document = json.loads(out)
    assert document["schema"] == "repro-gate/v1"
    assert document["decision"] == "pass"
    assert document["exit_code"] == 0
    assert document["mode"] == "sweep"
    assert document["verdict"]["verdict"] == "holds"
    assert document["risk"]["tier"] == "negligible"
    # And the CI schema checker accepts exactly this document.
    import importlib.util
    from pathlib import Path

    spec = importlib.util.spec_from_file_location(
        "check_gate_output",
        Path(__file__).resolve().parent.parent / "scripts" / "check_gate_output.py",
    )
    checker = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(checker)
    assert checker.validate(document) == []


def test_gate_sweep_buggy_blocks_exit_5(capsys):
    import json

    code = main(
        [
            "gate",
            "--json",
            "sweep",
            "--scenario",
            "refactor",
            "--buggy",
            "--fecs",
            "120",
            "--regions",
            "3",
            "--candidate-links",
            "r0-agg0~r0-core0",
            "--seed",
            "7",
        ]
    )
    out = capsys.readouterr().out
    assert code == 5
    document = json.loads(out)
    assert document["decision"] == "block"
    assert document["exit_code"] == 5
    assert document["risk"]["proven_violation"] is True
    assert document["verdict"]["verdict"] == "violated"
    assert document["verdict"]["violating_contingencies"] >= 1


def test_gate_sweep_human_table(capsys):
    code = main(
        [
            "gate",
            "sweep",
            "--fecs",
            "120",
            "--regions",
            "3",
            "--candidate-links",
            "r0-agg0~r0-core0",
            "--seed",
            "7",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "risk: negligible" in out
    assert "decision: pass (exit 0)" in out


def test_gate_verify_clean_and_buggy(snapshot_files, capsys):
    import json

    code = main(
        [
            "gate",
            "--json",
            "verify",
            str(snapshot_files["pre"]),
            str(snapshot_files["post"]),
            str(snapshot_files["spec"]),
        ]
    )
    clean = json.loads(capsys.readouterr().out)
    assert code == 0
    assert clean["decision"] == "pass"
    assert clean["mode"] == "verify"

    code = main(
        [
            "gate",
            "--json",
            "verify",
            str(snapshot_files["pre"]),
            str(snapshot_files["buggy"]),
            str(snapshot_files["spec"]),
        ]
    )
    buggy = json.loads(capsys.readouterr().out)
    assert code == 5
    assert buggy["decision"] == "block"
    assert buggy["verdict"]["violating_fecs"] >= 1


def test_gate_verify_degraded_run_is_conditional(snapshot_files, capsys, monkeypatch):
    import json

    import repro.cli as cli_module
    from repro.verifier import CheckFailure, VerificationReport

    def fake_verify_change(pre, post, spec, *, options=None, **kwargs):
        report = VerificationReport()
        report.record(None)
        report.record(
            CheckFailure(
                fec_id="dns",
                fec_description="dns 198.51.100.0/24@edge",
                reason="timeout",
            )
        )
        report.finalize()
        return report

    monkeypatch.setattr(cli_module, "verify_change", fake_verify_change)
    code = main(
        [
            "gate",
            "--json",
            "verify",
            str(snapshot_files["pre"]),
            str(snapshot_files["post"]),
            str(snapshot_files["spec"]),
        ]
    )
    document = json.loads(capsys.readouterr().out)
    assert code == 3
    assert document["decision"] == "conditional"
    assert document["conditions"]
    assert document["verdict"]["verdict"] == "unknown"


def test_gate_help_documents_graded_exit_codes(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["gate", "--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert "gate exit codes:" in out
    assert "5 = hold or block" in out


# ----------------------------------------------------------------------
# Resilience exit codes (3 degraded, 4 unrecoverable, 130 interrupted)
# ----------------------------------------------------------------------
def test_help_documents_exit_codes(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert "exit codes:" in out
    assert "3 = degraded run" in out
    assert "130 = interrupted" in out


def test_verify_resilience_flags_reach_the_options(snapshot_files, capsys, monkeypatch):
    import repro.cli as cli_module
    from repro.verifier import VerificationReport

    captured_options = {}

    def fake_verify_change(pre, post, spec, *, options=None, **kwargs):
        captured_options["options"] = options
        report = VerificationReport()
        report.record(None)
        return report

    monkeypatch.setattr(cli_module, "verify_change", fake_verify_change)
    code = main(
        [
            "verify",
            str(snapshot_files["pre"]),
            str(snapshot_files["post"]),
            str(snapshot_files["spec"]),
            "--check-timeout",
            "2.5",
            "--max-retries",
            "5",
            "--no-degrade",
        ]
    )
    assert code == 0
    options = captured_options["options"]
    assert options.check_timeout == 2.5
    assert options.max_retries == 5
    assert options.allow_degraded is False


def test_verify_degraded_run_exits_3(snapshot_files, capsys, monkeypatch):
    import repro.cli as cli_module
    from repro.verifier import CheckFailure, VerificationReport

    def fake_verify_change(pre, post, spec, *, options=None, **kwargs):
        report = VerificationReport()
        report.record(None)
        report.record(
            CheckFailure(
                fec_id="dns",
                fec_description="dns 198.51.100.0/24@edge",
                reason="timeout",
                detail="check exceeded its 2s wall-clock budget",
                attempts=3,
            )
        )
        report.finalize()
        return report

    monkeypatch.setattr(cli_module, "verify_change", fake_verify_change)
    code = main(
        [
            "verify",
            str(snapshot_files["pre"]),
            str(snapshot_files["post"]),
            str(snapshot_files["spec"]),
        ]
    )
    out = capsys.readouterr().out
    assert code == 3
    assert out.startswith("UNKNOWN")
    assert "unknown: dns" in out
    assert "timeout" in out


def test_no_degrade_abort_exits_4(snapshot_files, capsys, monkeypatch):
    import repro.cli as cli_module
    from repro.errors import DegradedExecutionError

    def fake_verify_change(pre, post, spec, *, options=None, **kwargs):
        raise DegradedExecutionError(
            "check web could not be completed and degraded execution is disabled"
        )

    monkeypatch.setattr(cli_module, "verify_change", fake_verify_change)
    code = main(
        [
            "verify",
            str(snapshot_files["pre"]),
            str(snapshot_files["post"]),
            str(snapshot_files["spec"]),
            "--no-degrade",
        ]
    )
    captured = capsys.readouterr()
    assert code == 4
    assert captured.err.startswith("error:")
    assert "degraded execution is disabled" in captured.err


def test_unrecoverable_pool_loss_exits_4(snapshot_files, capsys, monkeypatch):
    from concurrent.futures.process import BrokenProcessPool

    import repro.cli as cli_module

    def fake_verify_change(pre, post, spec, *, options=None, **kwargs):
        raise BrokenProcessPool("a child process terminated abruptly")

    monkeypatch.setattr(cli_module, "verify_change", fake_verify_change)
    code = main(
        [
            "verify",
            str(snapshot_files["pre"]),
            str(snapshot_files["post"]),
            str(snapshot_files["spec"]),
        ]
    )
    captured = capsys.readouterr()
    assert code == 4
    assert "worker pool failed unrecoverably" in captured.err


def test_keyboard_interrupt_exits_130_without_traceback(
    snapshot_files, capsys, monkeypatch
):
    import repro.cli as cli_module

    def fake_verify_change(pre, post, spec, *, options=None, **kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr(cli_module, "verify_change", fake_verify_change)
    code = main(
        [
            "verify",
            str(snapshot_files["pre"]),
            str(snapshot_files["post"]),
            str(snapshot_files["spec"]),
        ]
    )
    captured = capsys.readouterr()
    assert code == 130
    assert captured.err.strip() == "interrupted"


def test_verify_end_to_end_with_injected_timeout(snapshot_files, capsys, monkeypatch):
    """A real (not monkeypatched) degraded verify: the engine's fault seam
    is reached through the CLI by injecting a plan into the built options."""
    import repro.cli as cli_module
    from repro.testing.faults import POISON, Fault, FaultPlan
    from repro.verifier import VerificationOptions

    plan = FaultPlan((Fault(kind="error", fec_id="web", attempts=POISON),))
    original_options = VerificationOptions

    def options_with_plan(**kwargs):
        kwargs.setdefault("fault_plan", plan)
        kwargs.setdefault("retry_backoff", 0.0)
        kwargs.setdefault("memoize_fec_checks", False)
        return original_options(**kwargs)

    monkeypatch.setattr(cli_module, "VerificationOptions", options_with_plan)
    code = main(
        [
            "verify",
            str(snapshot_files["pre"]),
            str(snapshot_files["post"]),
            str(snapshot_files["spec"]),
        ]
    )
    out = capsys.readouterr().out
    assert code == 3
    assert "unknown: " in out


# ----------------------------------------------------------------------
# Durability: --checkpoint/--resume and the persistent gate state store
def test_stream_checkpoint_and_resume(capsys, tmp_path):
    args = [
        "stream",
        "--fecs",
        "60",
        "--regions",
        "3",
        "--epochs",
        "3",
        "--rotation",
        "1",
        "--seed",
        "7",
        "--checkpoint",
        str(tmp_path / "stream.ckpt"),
    ]
    code = main(args)
    first = capsys.readouterr().out
    assert code == 0
    assert first.splitlines()[-1].startswith("PASS: 3 epochs")

    code = main(args + ["--resume"])
    second = capsys.readouterr().out
    assert code == 0
    # Every epoch replays from the journal; the verdict lines say so.
    assert second.count("resumed from checkpoint") == 3
    assert second.splitlines()[-1] == first.splitlines()[-1]


def test_sweep_checkpoint_and_resume(capsys, tmp_path):
    args = [
        "sweep",
        "--fecs",
        "120",
        "--regions",
        "3",
        "--candidate-links",
        "r0-agg0~r0-core0",
        "r0-border0~r1-border0",
        "--seed",
        "7",
        "--checkpoint",
        str(tmp_path / "sweep.ckpt"),
    ]
    code = main(args)
    first = capsys.readouterr().out
    assert code == 0
    assert first.splitlines()[-1].startswith("PASS: 3 contingencies")

    code = main(args + ["--resume"])
    second = capsys.readouterr().out
    assert code == 0
    assert second.splitlines()[-1].startswith("PASS: 3 contingencies")


@pytest.mark.parametrize("command", ["stream", "sweep"])
def test_resume_without_checkpoint_is_a_usage_error(command, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([command, "--resume"])
    assert excinfo.value.code == 2
    assert "--resume requires --checkpoint" in capsys.readouterr().err


def test_unusable_checkpoint_file_exits_4(capsys, tmp_path):
    not_journal = tmp_path / "data.bin"
    not_journal.write_text("this is somebody's data, not a journal at all")
    code = main(
        [
            "sweep",
            "--fecs",
            "60",
            "--regions",
            "3",
            "--candidate-links",
            "r0-agg0~r0-core0",
            "--seed",
            "7",
            "--checkpoint",
            str(not_journal),
            "--resume",
        ]
    )
    captured = capsys.readouterr()
    assert code == 4
    assert captured.err.startswith("error:")
    assert "not a repro-journal/v1 file" in captured.err
    # The refused file was not clobbered.
    assert not_journal.read_text().startswith("this is somebody's data")


def test_gate_state_store_carries_history_across_runs(capsys, tmp_path):
    import json

    from repro.persist.statestore import StateStore

    state = tmp_path / "gate-history.journal"
    buggy = [
        "gate",
        "--json",
        "--state",
        str(state),
        "sweep",
        "--scenario",
        "refactor",
        "--buggy",
        "--fecs",
        "120",
        "--regions",
        "3",
        "--candidate-links",
        "r0-agg0~r0-core0",
        "--seed",
        "7",
    ]
    code = main(buggy)
    first = json.loads(capsys.readouterr().out)
    assert code == 5
    assert first["decision"] == "block"

    clean = [flag for flag in buggy if flag not in ("--buggy",)]
    code = main(clean)
    second = json.loads(capsys.readouterr().out)
    # The violation recorded last run survives the process: the same clean
    # sweep that gates "pass" cold (see test_gate_sweep_clean_passes_with_
    # valid_json) now scores hot enough to hold for review.
    assert code == 3
    assert second["decision"] == "conditional"
    assert second["risk"]["tier"] == "moderate"
    assert second["verdict"]["verdict"] == "holds"

    outcomes = StateStore(state).outcomes()
    assert [o["verdict"] for o in outcomes] == ["violated", "holds"]


def test_gate_json_lists_unknown_fec_ids(snapshot_files, capsys, monkeypatch):
    import json

    import repro.cli as cli_module
    from repro.verifier import CheckFailure, VerificationReport

    def fake_verify_change(pre, post, spec, *, options=None, **kwargs):
        report = VerificationReport()
        report.record(None)
        report.record(
            CheckFailure(
                fec_id="dns",
                fec_description="dns 198.51.100.0/24@edge",
                reason="timeout",
            )
        )
        report.finalize()
        return report

    monkeypatch.setattr(cli_module, "verify_change", fake_verify_change)
    code = main(
        [
            "gate",
            "--json",
            "verify",
            str(snapshot_files["pre"]),
            str(snapshot_files["post"]),
            str(snapshot_files["spec"]),
        ]
    )
    document = json.loads(capsys.readouterr().out)
    assert code == 3
    assert document["verdict"]["unknown_fecs"] == 1
    # The actionable half: WHICH classes went unproven, not just how many.
    assert document["verdict"]["unknown_fec_ids"] == ["dns"]


def test_gate_sweep_json_has_empty_unknown_fec_ids_when_clean(capsys):
    import json

    code = main(
        [
            "gate",
            "--json",
            "sweep",
            "--fecs",
            "60",
            "--regions",
            "3",
            "--candidate-links",
            "r0-agg0~r0-core0",
            "--seed",
            "7",
        ]
    )
    document = json.loads(capsys.readouterr().out)
    assert code == 0
    assert document["verdict"]["unknown_fec_ids"] == []
