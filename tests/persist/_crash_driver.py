"""Subprocess driver for the kill -9 crash-injection tests (not a test module).

Invoked by ``test_crash_injection.py`` as::

    python _crash_driver.py {sweep|stream} {control|crash|resume} PATH \
        [--kill-after N] [--tear K]

``control`` runs the checkpointed workload to completion and prints its
report facts as JSON.  ``crash`` arms a SIGKILL that fires during the
``(N+1)``-th unit record — after ``K`` bytes of the record's frame reached
the file, modelling a process killed mid-``write(2)`` — and never returns.
``resume`` resumes the journal left behind and prints its facts; the test
asserts they match the control byte-for-byte.

The workloads are fully seeded, so every invocation (control, crashed,
resumed — each its own process) verifies the identical run.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import signal
import sys

from repro.persist.checkpoint import Checkpoint
from repro.persist.journal import TAG_PICKLE, _encode
from repro.rela.locations import Granularity
from repro.verifier import single_link_failures, verify_stream
from repro.workloads.backbone import BackboneParams, generate_backbone
from repro.workloads.contingencies import drain_sweep_scenario
from repro.workloads.stream import rolling_drain_stream
from repro.workloads.traffic import generate_fecs


def report_facts(report) -> dict:
    return {
        "holds": report.holds,
        "verdict": report.verdict,
        "total_fecs": report.total_fecs,
        "violating_fecs": report.violating_fecs,
        "unknown_fec_ids": report.unknown_fec_ids,
        "branch_violation_counts": dict(report.branch_violation_counts),
        "unique_checks": report.unique_checks,
        "cached_checks": report.cached_checks,
        "counterexamples": [
            {
                "fec_id": ce.fec_id,
                "fec_description": ce.fec_description,
                "pre_paths": list(ce.pre_paths),
                "post_paths": list(ce.post_paths),
                "violations": [
                    {
                        "branch": violation.branch,
                        "expected": sorted(violation.expected),
                        "observed": sorted(violation.observed),
                    }
                    for violation in ce.violations
                ],
            }
            for ce in report.counterexamples
        ],
    }


def arm_kill(kill_after: int, tear: int) -> None:
    """SIGKILL this process during the ``(kill_after+1)``-th unit record.

    With ``tear > 0``, the first ``tear`` bytes of the record's encoded
    frame (capped one short of a full frame, so it is genuinely torn) are
    written and flushed first — the mid-write kill model.  ``tear == 0``
    kills between units: the journal ends exactly at the previous record.
    """
    original = Checkpoint.record_unit
    state = {"count": 0}

    def wrapper(self, index, unit_id, *, degraded=False, **payload):
        if state["count"] == kill_after:
            if tear > 0:
                record = {
                    "record": "unit",
                    "index": index,
                    "id": unit_id,
                    "degraded": degraded,
                }
                if not degraded:
                    record.update(payload)
                frame = _encode(TAG_PICKLE, pickle.dumps(record))
                handle = self._writer._handle
                handle.write(frame[: min(tear, len(frame) - 1)])
                handle.flush()
            os.kill(os.getpid(), signal.SIGKILL)
        state["count"] += 1
        return original(self, index, unit_id, degraded=degraded, **payload)

    Checkpoint.record_unit = wrapper


def run_sweep(path: str, resume: bool) -> str:
    backbone = generate_backbone(
        BackboneParams(regions=3, routers_per_group=2, parallel_links=1, prefixes_per_region=2)
    )
    scenario = drain_sweep_scenario(
        backbone, num_fecs=48, granularity=Granularity.ROUTER, buggy=True
    )
    contingencies = single_link_failures(
        backbone.topology, candidates=backbone.topology.link_bundles()[:4]
    )
    sweep = scenario.sweep(contingencies).run(checkpoint=path, resume=resume)
    return json.dumps(
        {
            "ids": [result.contingency.contingency_id for result in sweep.results],
            "expected": [result.expected_holds for result in sweep.results],
            "reports": [report_facts(result.report) for result in sweep.results],
            "naive_checks": sweep.naive_checks,
            "executed_checks": sweep.executed_checks,
            "cached_checks": sweep.cached_checks,
            "distinct_graphs": sweep.distinct_graphs,
        },
        sort_keys=True,
    )


def run_stream(path: str, resume: bool) -> str:
    backbone = generate_backbone(
        BackboneParams(regions=3, routers_per_group=2, parallel_links=1, prefixes_per_region=2)
    )
    fecs = generate_fecs(backbone)
    initial = backbone.simulator().snapshot(fecs, name="initial")
    stream = rolling_drain_stream(
        backbone, initial, epochs=6, rotation=2, seed=13, buggy_epochs={3}
    )
    report = verify_stream(
        initial,
        [(epoch.post, epoch.spec) for epoch in stream.epochs],
        checkpoint=path,
        resume=resume,
        signature="crash-driver-stream",
    )
    return json.dumps(
        {
            "reports": [report_facts(r) for r in report.epoch_reports],
            "epochs": report.epochs,
            "holds": report.holds,
            "violating_epochs": report.violating_epochs,
            "unique_checks": report.unique_checks,
            "cached_checks": report.cached_checks,
        },
        sort_keys=True,
    )


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("workload", choices=["sweep", "stream"])
    parser.add_argument("action", choices=["control", "crash", "resume"])
    parser.add_argument("path")
    parser.add_argument("--kill-after", type=int, default=0)
    parser.add_argument("--tear", type=int, default=0)
    args = parser.parse_args()

    if args.action == "crash":
        arm_kill(args.kill_after, args.tear)
    runner = run_sweep if args.workload == "sweep" else run_stream
    facts = runner(args.path, resume=args.action == "resume")
    if args.action == "crash":
        # The SIGKILL must have fired mid-run; completing is a test failure.
        return 86
    print(facts)
    return 0


if __name__ == "__main__":
    sys.exit(main())
