"""The ``repro-journal/v1`` format: framing, recovery, corruption handling.

The recovery contract under test: a journal damaged *anywhere past the
magic* is recovered to its last fully-valid record — torn tails, CRC
failures and undecodable bodies are detected, reported via
:class:`~repro.persist.journal.RecoveryInfo`, and never crash or silently
skip — while a file that is not a journal at all refuses with
:class:`~repro.errors.JournalCorruptionError` rather than being truncated
(it might be someone's data).
"""

from __future__ import annotations

import pytest

from repro.errors import JournalCorruptionError
from repro.persist.journal import (
    MAGIC,
    JournalWriter,
    header_record,
    open_for_append,
    read_journal,
)

HEADER = header_record("sweep", "sig-abc", {"note": "test"})


def write_sample(path, records=()):
    writer = JournalWriter.create(path, HEADER)
    with writer:
        for record in records:
            if isinstance(record, dict) and record.get("json"):
                writer.append_json(record)
            else:
                writer.append_pickle(record)
    return path


def test_round_trip_json_and_pickle(tmp_path):
    path = tmp_path / "j"
    payloads = [
        {"json": True, "n": 1},
        {"record": "unit", "index": 0, "graphs": [1, 2, 3]},
        ("tuple", frozenset({"a", "b"}), None),
    ]
    write_sample(path, payloads)
    header, records, recovery = read_journal(path)
    assert header["kind"] == "sweep"
    assert header["signature"] == "sig-abc"
    assert header["meta"] == {"note": "test"}
    assert records == payloads
    assert recovery.clean
    assert recovery.dropped_bytes == 0


def test_missing_and_empty_files_read_clean(tmp_path):
    header, records, recovery = read_journal(tmp_path / "missing")
    assert header is None and records == [] and recovery.clean
    empty = tmp_path / "empty"
    empty.write_bytes(b"")
    header, records, recovery = read_journal(empty)
    assert header is None and records == [] and recovery.clean


def test_torn_tail_recovers_every_prefix(tmp_path):
    """Truncating the file at ANY byte offset recovers a clean prefix.

    This is the SIGKILL model: the OS persists some prefix of what was
    written.  For every possible cut point the reader must return exactly
    the records whose frames fully survived, and report the dropped bytes.
    """
    path = tmp_path / "j"
    payloads = [{"json": True, "n": index} for index in range(4)]
    write_sample(path, payloads)
    data = path.read_bytes()
    boundaries = []  # offsets at which a record ends (computed by re-reading)
    for cut in range(len(data) + 1):
        torn = tmp_path / "torn"
        torn.write_bytes(data[:cut])
        if cut < len(MAGIC):
            header, records, recovery = read_journal(torn)
            assert header is None and records == []
            continue
        header, records, recovery = read_journal(torn)
        assert recovery.valid_length <= cut
        assert recovery.dropped_bytes == cut - recovery.valid_length
        if recovery.clean:
            boundaries.append(cut)
        # Recovered records are always a prefix of the full record list.
        full = [HEADER] + payloads
        got = ([header] if header else []) + records
        assert got == full[: len(got)]
    # Clean cuts are exactly the record boundaries: magic + 5 record ends.
    assert len(boundaries) == 6


def test_bit_flip_detected_and_prefix_served(tmp_path):
    path = tmp_path / "j"
    payloads = [{"json": True, "n": index} for index in range(3)]
    write_sample(path, payloads)
    data = bytearray(path.read_bytes())
    clean_reads = 0
    for offset in range(len(MAGIC), len(data)):
        flipped = bytearray(data)
        flipped[offset] ^= 0x40
        target = tmp_path / "flip"
        target.write_bytes(bytes(flipped))
        header, records, recovery = read_journal(target)
        if recovery.clean:
            clean_reads += 1  # flip landed in JSON text and stayed valid? no:
            # CRC covers the payload, so a clean read means the flip changed
            # nothing the reader decodes — impossible here; count and fail.
        else:
            # Whatever survived is a true prefix of the original records.
            full = [HEADER] + payloads
            got = ([header] if header else []) + records
            assert got == full[: len(got)]
    assert clean_reads == 0  # every single-bit flip is detected


def test_bad_magic_raises(tmp_path):
    path = tmp_path / "notjournal"
    path.write_bytes(b"definitely not a journal file, much longer than magic")
    with pytest.raises(JournalCorruptionError):
        read_journal(path)
    short = tmp_path / "short"
    short.write_bytes(b"xyz")  # shorter than magic AND not a magic prefix
    with pytest.raises(JournalCorruptionError):
        read_journal(short)


def test_torn_magic_prefix_recovers_to_empty(tmp_path):
    path = tmp_path / "tornmagic"
    path.write_bytes(MAGIC[:5])
    header, records, recovery = read_journal(path)
    assert header is None and records == []
    assert not recovery.clean
    assert recovery.valid_length == 0


def test_open_for_append_truncates_damage(tmp_path):
    path = tmp_path / "j"
    write_sample(path, [{"json": True, "n": 0}])
    intact = path.stat().st_size
    with open(path, "ab") as handle:
        handle.write(b"\x99" * 11)  # torn frame from a killed writer
    writer, header, records, recovery = open_for_append(path)
    assert header == HEADER
    assert records == [{"json": True, "n": 0}]
    assert recovery.dropped_bytes == 11
    assert path.stat().st_size == intact  # damage gone before appending
    with writer:
        writer.append_json({"json": True, "n": 1})
    header, records, recovery = read_journal(path)
    assert recovery.clean
    assert records == [{"json": True, "n": 0}, {"json": True, "n": 1}]


def test_header_must_be_first_valid_record(tmp_path):
    path = tmp_path / "j"
    path.write_bytes(MAGIC)
    with open(path, "ab") as handle:
        writer = JournalWriter(path, handle)
        writer.append_json({"record": "unit", "index": 0})  # not a header
    header, records, recovery = read_journal(path)
    assert header is None
    assert records == []
    assert not recovery.clean


def test_closed_writer_refuses_appends(tmp_path):
    writer = JournalWriter.create(tmp_path / "j", HEADER)
    writer.close()
    with pytest.raises(JournalCorruptionError):
        writer.append_json({"json": True})


# ----------------------------------------------------------------------
# The stdlib CI validator (scripts/check_journal.py) agrees with the format
def load_checker():
    import importlib.util
    from pathlib import Path

    spec = importlib.util.spec_from_file_location(
        "check_journal",
        Path(__file__).resolve().parents[2] / "scripts" / "check_journal.py",
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_stdlib_checker_accepts_what_the_library_writes(tmp_path, capsys):
    checker = load_checker()
    path = tmp_path / "j"
    write_sample(path, [{"json": True, "record": "outcome"}, ("pickled", 1)])
    assert checker.main([str(path), "--expect-kind", "sweep", "--min-records", "3"]) == 0
    assert "kind=sweep" in capsys.readouterr().out


def test_stdlib_checker_flags_torn_tails_and_wrong_kinds(tmp_path, capsys):
    checker = load_checker()
    path = tmp_path / "j"
    write_sample(path, [{"json": True, "record": "interrupt"}])
    with open(path, "ab") as handle:
        handle.write(b"\x77" * 9)
    assert checker.main([str(path)]) == 1
    assert "torn" in capsys.readouterr().err
    assert checker.main([str(path), "--allow-torn-tail"]) == 0
    capsys.readouterr()
    assert checker.main([str(path), "--expect-kind", "state", "--allow-torn-tail"]) == 1
    assert "expected a 'state' journal" in capsys.readouterr().err


def test_stdlib_checker_rejects_non_journals(tmp_path, capsys):
    checker = load_checker()
    path = tmp_path / "nope"
    path.write_bytes(b"not ours")
    assert checker.main([str(path)]) == 1
    assert "magic" in capsys.readouterr().err
