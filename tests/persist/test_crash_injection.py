"""Real kill -9 crash injection: resume must reproduce the control exactly.

Unlike the in-process interrupt and truncation-fuzz tests, these spawn the
workload in a subprocess (``_crash_driver.py``) and SIGKILL it at a seeded
unit boundary — optionally mid-``write(2)``, with a torn prefix of the
record already flushed — then resume in a *third* process and compare its
report facts against an uninterrupted control run.  ``DURABILITY_SEEDS``
scales the number of seeded kill points (CI raises it well past the local
default).
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
from pathlib import Path

import pytest

DRIVER = Path(__file__).with_name("_crash_driver.py")
REPO_ROOT = Path(__file__).resolve().parents[2]
SEEDS = int(os.environ.get("DURABILITY_SEEDS", "3"))


def run_driver(args: list[str], *, expect_kill: bool = False):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, str(DRIVER), *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    if expect_kill:
        assert proc.returncode == -signal.SIGKILL, (
            f"driver survived its own SIGKILL (rc={proc.returncode}): {proc.stderr}"
        )
        return None
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


@pytest.mark.parametrize("workload,units", [("sweep", 5), ("stream", 6)])
def test_sigkill_resume_matches_uninterrupted_control(workload, units, tmp_path):
    control = run_driver([workload, "control", str(tmp_path / "control.ckpt")])
    rng = random.Random(0xC0FFEE + units)
    for trial in range(SEEDS):
        kill_after = rng.randrange(units)
        tear = rng.choice([0, 0, rng.randrange(1, 512)])
        path = tmp_path / f"{workload}-{trial}.ckpt"
        run_driver(
            [
                workload,
                "crash",
                str(path),
                "--kill-after",
                str(kill_after),
                "--tear",
                str(tear),
            ],
            expect_kill=True,
        )
        resumed = run_driver([workload, "resume", str(path)])
        assert resumed == control, (
            f"trial {trial}: killed after {kill_after} units (tear={tear}B), "
            "resumed report diverged from control"
        )
