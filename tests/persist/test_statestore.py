"""The persistent state store: gate history and saved-session round trips.

The safety contract under test: a stale or mismatched store can never
change a report.  Saved verdicts re-enter service only through the
session's pending-adoption path (exact alphabet signature + spec-digest
match), options that differ on a verdict-relevant field refuse to load,
and a store that is the wrong kind of journal — or not a journal at all —
refuses loudly instead of being silently rewritten.
"""

from __future__ import annotations

import pytest

from repro.analytics.risk import ChangeHistory
from repro.errors import JournalCorruptionError, StateVersionError
from repro.persist.journal import JournalWriter, header_record
from repro.persist.statestore import StateStore
from repro.testing.faults import Fault, FaultPlan
from repro.verifier import VerificationOptions, VerificationSession
from repro.verifier.report import CheckFailure
from repro.workloads.backbone import BackboneParams, generate_backbone
from repro.workloads.stream import rolling_drain_stream
from repro.workloads.traffic import generate_fecs


@pytest.fixture(scope="module")
def stream_world():
    backbone = generate_backbone(
        BackboneParams(regions=3, routers_per_group=2, parallel_links=1, prefixes_per_region=2)
    )
    fecs = generate_fecs(backbone)
    initial = backbone.simulator().snapshot(fecs, name="initial")
    return backbone, initial


def make_epochs(stream_world):
    """Regenerate the seeded epoch list: equal content, fresh instances.

    Loading in a new process means spec/snapshot *instances* differ from
    the saved ones while their content digests match — regenerating from
    the seed models exactly that.
    """
    backbone, initial = stream_world
    stream = rolling_drain_stream(
        backbone, initial, epochs=5, rotation=2, seed=13, buggy_epochs={2}
    )
    return [(epoch.post, epoch.spec) for epoch in stream.epochs]


def report_facts(report) -> dict:
    return {
        "holds": report.holds,
        "verdict": report.verdict,
        "total_fecs": report.total_fecs,
        "violating_fecs": report.violating_fecs,
        "branch_violation_counts": dict(report.branch_violation_counts),
        "counterexamples": [
            (ce.fec_id, [(v.branch, sorted(v.expected), sorted(v.observed)) for v in ce.violations])
            for ce in report.counterexamples
        ],
    }


# ----------------------------------------------------------------------
# Outcome history (the gate's persistent memory)
# ----------------------------------------------------------------------
def test_outcome_history_folds_into_change_history(tmp_path):
    store = StateStore(tmp_path / "state.journal")
    assert store.history() == ChangeHistory(epochs=0, violating_epochs=0, degraded_epochs=0)
    store.record_outcome("holds")
    store.record_outcome("violated")
    store.record_outcome("unknown", degraded=True)
    # A fresh handle reads the same history: it lives in the file.
    reread = StateStore(store.path)
    assert reread.history() == ChangeHistory(
        epochs=3, violating_epochs=1, degraded_epochs=1
    )
    assert [o["verdict"] for o in reread.outcomes()] == ["holds", "violated", "unknown"]


def test_outcomes_survive_session_rewrites(stream_world, tmp_path):
    _, initial = stream_world
    store = StateStore(tmp_path / "state.journal")
    store.record_outcome("violated")
    session = VerificationSession(initial)
    store.save_session(session)
    store.record_outcome("holds")
    store.save_session(session)  # rewrite again: must keep both outcomes
    reread = StateStore(store.path)
    assert [o["verdict"] for o in reread.outcomes()] == ["violated", "holds"]
    reread.load_session()  # and the session record is still loadable


def test_corrupt_tail_is_recovered_not_fatal(tmp_path):
    store = StateStore(tmp_path / "state.journal")
    store.record_outcome("holds")
    with open(store.path, "ab") as handle:
        handle.write(b"\xde\xad\xbe\xef" * 3)  # torn record from a killed writer
    reread = StateStore(store.path)
    assert [o["verdict"] for o in reread.outcomes()] == ["holds"]
    assert reread.last_recovery is not None and reread.last_recovery.dropped_bytes == 12
    reread.record_outcome("violated")  # append truncates the damage first
    assert [o["verdict"] for o in StateStore(store.path).outcomes()] == [
        "holds",
        "violated",
    ]


def test_wrong_kind_and_non_journal_files_refuse(tmp_path):
    sweep_journal = tmp_path / "sweep.ckpt"
    JournalWriter.create(sweep_journal, header_record("sweep", "sig")).close()
    with pytest.raises(StateVersionError, match="not a state store"):
        StateStore(sweep_journal).outcomes()
    with pytest.raises(StateVersionError, match="not a state store"):
        StateStore(sweep_journal).record_outcome("holds")
    # The wrong-kind journal was NOT clobbered by the refused append.
    assert sweep_journal.read_bytes() == sweep_journal.read_bytes()

    not_journal = tmp_path / "data.bin"
    not_journal.write_bytes(b"user data, definitely not ours to truncate")
    with pytest.raises(JournalCorruptionError):
        StateStore(not_journal).outcomes()


# ----------------------------------------------------------------------
# Saved sessions
# ----------------------------------------------------------------------
def test_session_round_trip_adopts_cached_verdicts(stream_world, tmp_path):
    """A reloaded session serves saved verdicts — and only valid ones.

    The loaded session replays a prior epoch entirely from cache, then
    matches a never-restarted control session on the stream's tail,
    verdict-for-verdict.
    """
    _, initial = stream_world
    epochs = make_epochs(stream_world)
    path = tmp_path / "state.journal"

    first = VerificationSession(initial)
    for post, spec in epochs[:4]:
        first.advance(post, spec)
    first.save(path)

    control = VerificationSession(initial)
    control_reports = [control.advance(post, spec) for post, spec in epochs]
    # The seeded stream's last epoch revisits earlier combinations only: in
    # the control it is a pure cache hit, so the loaded session can serve
    # it entirely from *adopted* verdicts — or not at all.
    assert control_reports[4].cached_checks == control_reports[4].unique_checks > 0

    loaded = VerificationSession.load(path)
    assert loaded.stream.epochs == 4  # cumulative counters survived
    replay = loaded.advance(*epochs[4])
    assert replay.cached_checks == replay.unique_checks > 0
    assert report_facts(replay) == report_facts(control_reports[4])


def test_session_round_trip_with_new_spec_does_not_collide(stream_world, tmp_path):
    """A genuinely new spec registers past the saved tokens, never over one."""
    _, initial = stream_world
    epochs = make_epochs(stream_world)
    path = tmp_path / "state.journal"
    first = VerificationSession(initial)
    first.advance(*epochs[0])
    first.save(path)

    loaded = VerificationSession.load(path)
    post, spec = epochs[1]
    report = loaded.advance(post, spec)  # a spec the store has never seen
    assert report.total_fecs > 0
    # The earlier epoch's verdicts still adopt cleanly afterwards.
    replay = loaded.advance(*epochs[0])
    assert replay.cached_checks == replay.unique_checks > 0


def test_load_refuses_verdict_relevant_option_drift(stream_world, tmp_path):
    _, initial = stream_world
    epochs = make_epochs(stream_world)
    path = tmp_path / "state.journal"
    session = VerificationSession(initial, options=VerificationOptions())
    for post, spec in epochs[:4]:
        session.advance(post, spec)
    session.save(path)

    with pytest.raises(StateVersionError, match="verdict-relevant"):
        VerificationSession.load(path, options=VerificationOptions(max_witnesses=1))
    # Worker count and resilience knobs are not verdict-relevant: allowed,
    # and the adopted cache still serves the all-revisits epoch in full.
    loaded = VerificationSession.load(
        path, options=VerificationOptions(workers=2, max_retries=0)
    )
    replay = loaded.advance(*epochs[4])
    assert replay.cached_checks == replay.unique_checks > 0


def test_load_without_saved_session_refuses(tmp_path):
    store = StateStore(tmp_path / "state.journal")
    store.record_outcome("holds")  # a store with history but no session
    with pytest.raises(StateVersionError, match="no saved session"):
        store.load_session()


def test_check_failures_are_never_persisted(stream_world, tmp_path):
    """Unknown verdicts must be retried fresh by a loaded session."""
    backbone, initial = stream_world
    epochs = make_epochs(stream_world)
    fecs = generate_fecs(backbone)
    plan = FaultPlan(faults=(Fault(kind="error", fec_id=fecs[0].fec_id, attempts=10**9),))
    path = tmp_path / "state.journal"

    faulted = VerificationSession(
        initial, options=VerificationOptions(max_retries=0, fault_plan=plan)
    )
    degraded = faulted.advance(*epochs[0])
    assert degraded.degraded and fecs[0].fec_id in degraded.unknown_fec_ids
    faulted.save(path)

    loaded = VerificationSession.load(path, options=VerificationOptions(max_retries=0))
    for bucket in loaded._pending_verdicts.values():
        for _, _, outcome in bucket.values():
            assert not isinstance(outcome, CheckFailure)
    retried = loaded.advance(*epochs[0])  # fault-free now: must fully prove
    assert not retried.degraded and retried.unknown_fec_ids == []
    control = VerificationSession(initial).advance(*epochs[0])
    assert report_facts(retried) == report_facts(control)
