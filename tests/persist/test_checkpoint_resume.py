"""Checkpoint/resume differentials: the SIGKILL-at-any-point bar.

The contract under test: a checkpointed sweep or stream run interrupted at
*any* point — a clean SIGINT between units, or a hard kill that tears the
journal mid-record — and then resumed must produce a report byte-identical
to the uninterrupted run's, including the cache statistics the report
carries (``unique_checks``/``cached_checks``/``distinct_graphs``).  The
truncation fuzz models the kill by chopping a complete journal at sampled
byte offsets; ``DURABILITY_FUZZ_CUTS`` scales how many (CI raises it).
"""

from __future__ import annotations

import os
import random

import pytest

from repro.errors import StateVersionError, VerificationError
from repro.persist.checkpoint import Checkpoint
from repro.persist.journal import MAGIC, read_journal
from repro.rela.locations import Granularity
from repro.testing.faults import Fault, FaultPlan
from repro.verifier import VerificationOptions, single_link_failures, verify_stream
from repro.workloads.backbone import BackboneParams, generate_backbone
from repro.workloads.contingencies import drain_sweep_scenario
from repro.workloads.stream import rolling_drain_stream
from repro.workloads.traffic import generate_fecs

FUZZ_CUTS = int(os.environ.get("DURABILITY_FUZZ_CUTS", "12"))


@pytest.fixture(scope="module")
def sweep_world():
    backbone = generate_backbone(
        BackboneParams(regions=3, routers_per_group=2, parallel_links=1, prefixes_per_region=2)
    )
    scenario = drain_sweep_scenario(
        backbone, num_fecs=48, granularity=Granularity.ROUTER, buggy=True
    )
    contingencies = single_link_failures(
        backbone.topology, candidates=backbone.topology.link_bundles()[:4]
    )
    return backbone, scenario, contingencies


@pytest.fixture(scope="module")
def stream_world():
    backbone = generate_backbone(
        BackboneParams(regions=3, routers_per_group=2, parallel_links=1, prefixes_per_region=2)
    )
    fecs = generate_fecs(backbone)
    initial = backbone.simulator().snapshot(fecs, name="initial")
    stream = rolling_drain_stream(
        backbone, initial, epochs=6, rotation=2, seed=13, buggy_epochs={3}
    )
    epochs = [(epoch.post, epoch.spec) for epoch in stream.epochs]
    return initial, epochs


def report_facts(report) -> dict:
    """Everything observable about one report, in canonical order."""
    return {
        "holds": report.holds,
        "verdict": report.verdict,
        "total_fecs": report.total_fecs,
        "violating_fecs": report.violating_fecs,
        "unknown_fec_ids": report.unknown_fec_ids,
        "branch_violation_counts": dict(report.branch_violation_counts),
        "unique_checks": report.unique_checks,
        "cached_checks": report.cached_checks,
        "counterexamples": [
            {
                "fec_id": ce.fec_id,
                "fec_description": ce.fec_description,
                "pre_paths": list(ce.pre_paths),
                "post_paths": list(ce.post_paths),
                "violations": [
                    {
                        "branch": violation.branch,
                        "expected": sorted(violation.expected),
                        "observed": sorted(violation.observed),
                    }
                    for violation in ce.violations
                ],
            }
            for ce in report.counterexamples
        ],
    }


def sweep_facts(sweep) -> dict:
    return {
        "ids": [result.contingency.contingency_id for result in sweep.results],
        "expected": [result.expected_holds for result in sweep.results],
        "reports": [report_facts(result.report) for result in sweep.results],
        "naive_checks": sweep.naive_checks,
        "executed_checks": sweep.executed_checks,
        "cached_checks": sweep.cached_checks,
        "distinct_graphs": sweep.distinct_graphs,
        "mismatches": sweep.expectation_mismatches,
    }


def stream_facts(stream_report) -> dict:
    return {
        "reports": [report_facts(report) for report in stream_report.epoch_reports],
        "epochs": stream_report.epochs,
        "holds": stream_report.holds,
        "violating_epochs": stream_report.violating_epochs,
        "unique_checks": stream_report.unique_checks,
        "cached_checks": stream_report.cached_checks,
    }


def interrupt_after(monkeypatch, units: int) -> None:
    """Arrange for the (units+1)-th recorded unit to be a KeyboardInterrupt.

    Raising from ``record_unit`` models an operator signal landing after a
    unit verified but before its record hit the journal: the run must flush
    an interrupt marker and a later resume must redo that unit.
    """
    original = Checkpoint.record_unit
    state = {"left": units}

    def wrapper(self, *args, **kwargs):
        if state["left"] == 0:
            raise KeyboardInterrupt
        state["left"] -= 1
        return original(self, *args, **kwargs)

    monkeypatch.setattr(Checkpoint, "record_unit", wrapper)


# ----------------------------------------------------------------------
# Sweep checkpoints
# ----------------------------------------------------------------------
def test_sweep_resume_without_checkpoint_rejected(sweep_world):
    _, scenario, contingencies = sweep_world
    with pytest.raises(VerificationError, match="requires a checkpoint"):
        scenario.sweep(contingencies).run(resume=True)


@pytest.mark.parametrize(
    "workers,memoize",
    [(1, True), (1, False), (2, True)],
    ids=["serial", "memoize-off", "workers"],
)
def test_sweep_interrupt_resume_differential(
    sweep_world, tmp_path, monkeypatch, workers, memoize
):
    """An interrupted-then-resumed sweep is byte-identical to a straight run."""
    _, scenario, contingencies = sweep_world
    options = VerificationOptions(workers=workers, memoize_fec_checks=memoize)
    control = sweep_facts(scenario.sweep(contingencies, options=options).run())

    path = tmp_path / "sweep.ckpt"
    interrupt_after(monkeypatch, 2)
    with pytest.raises(KeyboardInterrupt):
        scenario.sweep(contingencies, options=options).run(checkpoint=path)
    monkeypatch.undo()

    _, records, recovery = read_journal(path)
    assert recovery.clean  # the interrupt path fsyncs a well-formed journal
    assert records[-1] == {"record": "interrupt"}
    assert sum(1 for r in records if isinstance(r, dict) and r.get("record") == "unit") == 2

    resumed = scenario.sweep(contingencies, options=options).run(
        checkpoint=path, resume=True
    )
    assert sweep_facts(resumed) == control


def test_sweep_truncation_fuzz_resume_differential(sweep_world, tmp_path):
    """Chopping the journal at any sampled byte offset still resumes exact.

    This is the kill -9 model: the OS persisted some prefix of the journal.
    Whatever survives — a torn frame, half the magic, nothing — the resumed
    run must reproduce the control report exactly.
    """
    _, scenario, contingencies = sweep_world
    path = tmp_path / "sweep.ckpt"
    control = sweep_facts(scenario.sweep(contingencies).run(checkpoint=path))
    data = path.read_bytes()

    rng = random.Random(4257)
    cuts = sorted(rng.sample(range(len(data)), min(FUZZ_CUTS, len(data))))
    for cut in cuts:
        torn = tmp_path / "torn.ckpt"
        torn.write_bytes(data[:cut])
        resumed = scenario.sweep(contingencies).run(checkpoint=torn, resume=True)
        assert sweep_facts(resumed) == control, f"cut at byte {cut}"


def test_sweep_full_journal_resume_is_pure_replay(sweep_world, tmp_path):
    _, scenario, contingencies = sweep_world
    path = tmp_path / "sweep.ckpt"
    control = sweep_facts(scenario.sweep(contingencies).run(checkpoint=path))
    resumed = scenario.sweep(contingencies).run(checkpoint=path, resume=True)
    facts = sweep_facts(resumed)
    assert facts == control
    # Pure replay re-executes nothing: every non-cached check is accounted
    # to the journal, so the resumed sweep spent no check time.
    assert resumed.results[-1].report is not None


def test_sweep_resume_under_different_workers_allowed(sweep_world, tmp_path, monkeypatch):
    """Worker count is not verdict-relevant: a serial checkpoint resumes
    under a pool (and vice versa) with an identical report."""
    _, scenario, contingencies = sweep_world
    control = sweep_facts(scenario.sweep(contingencies).run())
    path = tmp_path / "sweep.ckpt"
    interrupt_after(monkeypatch, 2)
    with pytest.raises(KeyboardInterrupt):
        scenario.sweep(contingencies).run(checkpoint=path)
    monkeypatch.undo()
    options = VerificationOptions(workers=2)
    resumed = scenario.sweep(contingencies, options=options).run(
        checkpoint=path, resume=True
    )
    assert sweep_facts(resumed) == control


def test_sweep_checkpoint_rejects_changed_workload(sweep_world, tmp_path, monkeypatch):
    """Resuming under a different contingency list must refuse, not mix runs."""
    _, scenario, contingencies = sweep_world
    path = tmp_path / "sweep.ckpt"
    interrupt_after(monkeypatch, 2)
    with pytest.raises(KeyboardInterrupt):
        scenario.sweep(contingencies).run(checkpoint=path)
    monkeypatch.undo()
    with pytest.raises(StateVersionError, match="signature"):
        scenario.sweep(contingencies[:-1]).run(checkpoint=path, resume=True)


def test_sweep_checkpoint_rejects_stream_journal(stream_world, sweep_world, tmp_path):
    initial, epochs = stream_world
    _, scenario, contingencies = sweep_world
    path = tmp_path / "stream.ckpt"
    verify_stream(initial, epochs[:1], checkpoint=path, signature="sig-a")
    with pytest.raises(StateVersionError, match="not 'sweep'"):
        scenario.sweep(contingencies).run(checkpoint=path, resume=True)


def test_sweep_degraded_units_are_retried_fresh(sweep_world, tmp_path):
    """A contingency that degraded (unknown verdicts) is never replayed.

    Run one: a fault plan makes one FEC's checks fail everywhere, so every
    contingency degrades and the journal holds only result-free markers.
    Run two resumes fault-free and must retry everything, landing exactly
    on the clean control report — nothing unknown leaks through.
    """
    _, scenario, contingencies = sweep_world
    plan = FaultPlan(
        faults=(Fault(kind="error", fec_id=scenario.fecs[0].fec_id, attempts=10**9),)
    )
    path = tmp_path / "sweep.ckpt"
    faulted = scenario.sweep(
        contingencies, options=VerificationOptions(max_retries=0, fault_plan=plan)
    ).run(checkpoint=path)
    assert all(result.report.degraded for result in faulted.results)
    assert all(
        scenario.fecs[0].fec_id in result.report.unknown_fec_ids
        for result in faulted.results
    )
    _, records, _ = read_journal(path)
    units = [r for r in records if isinstance(r, dict) and r.get("record") == "unit"]
    assert units and all(unit["degraded"] and "result" not in unit for unit in units)

    control = sweep_facts(scenario.sweep(contingencies).run())
    resumed = scenario.sweep(
        contingencies, options=VerificationOptions(max_retries=0)
    ).run(checkpoint=path, resume=True)
    facts = sweep_facts(resumed)
    assert not any(report["unknown_fec_ids"] for report in facts["reports"])
    assert facts == control


# ----------------------------------------------------------------------
# Stream checkpoints
# ----------------------------------------------------------------------
def test_stream_resume_without_checkpoint_rejected(stream_world):
    initial, epochs = stream_world
    with pytest.raises(VerificationError, match="requires a checkpoint"):
        verify_stream(initial, epochs, resume=True)


def test_stream_interrupt_resume_differential(stream_world, tmp_path, monkeypatch):
    initial, epochs = stream_world
    control = stream_facts(verify_stream(initial, epochs))

    path = tmp_path / "stream.ckpt"
    interrupt_after(monkeypatch, 3)
    with pytest.raises(KeyboardInterrupt):
        verify_stream(initial, epochs, checkpoint=path, signature="sig-a")
    monkeypatch.undo()

    reopened = Checkpoint.open(path, kind="stream", signature="sig-a", resume=True)
    try:
        assert reopened.interrupted
        assert len(reopened.completed_units) == 3
    finally:
        reopened.close()

    replay_pattern: list[tuple[int, bool]] = []
    resumed = verify_stream(
        initial,
        epochs,
        checkpoint=path,
        resume=True,
        signature="sig-a",
        on_epoch=lambda index, report, resumed_flag: replay_pattern.append(
            (index, resumed_flag)
        ),
    )
    assert stream_facts(resumed) == control
    assert replay_pattern == [(i, i < 3) for i in range(len(epochs))]


def test_stream_truncation_fuzz_resume_differential(stream_world, tmp_path):
    initial, epochs = stream_world
    path = tmp_path / "stream.ckpt"
    control = stream_facts(
        verify_stream(initial, epochs, checkpoint=path, signature="sig-a")
    )
    data = path.read_bytes()

    rng = random.Random(90210)
    cuts = sorted(rng.sample(range(len(data)), min(FUZZ_CUTS, len(data))))
    # Always exercise the degenerate ends: nothing survived / torn magic.
    for cut in [0, len(MAGIC) - 3, *cuts]:
        torn = tmp_path / "torn.ckpt"
        torn.write_bytes(data[:cut])
        resumed = verify_stream(
            initial, epochs, checkpoint=torn, resume=True, signature="sig-a"
        )
        assert stream_facts(resumed) == control, f"cut at byte {cut}"


def test_stream_resume_rejects_other_signature(stream_world, tmp_path):
    initial, epochs = stream_world
    path = tmp_path / "stream.ckpt"
    verify_stream(initial, epochs[:2], checkpoint=path, signature="sig-a")
    with pytest.raises(StateVersionError, match="different run"):
        verify_stream(initial, epochs, checkpoint=path, resume=True, signature="sig-b")


def test_stream_resume_rejects_shorter_stream(stream_world, tmp_path):
    initial, epochs = stream_world
    path = tmp_path / "stream.ckpt"
    verify_stream(initial, epochs, checkpoint=path, signature="sig-a")
    with pytest.raises(StateVersionError, match="refusing to resume"):
        verify_stream(
            initial, epochs[:2], checkpoint=path, resume=True, signature="sig-a"
        )


def test_stream_fresh_checkpoint_overwrites_stale_file(stream_world, tmp_path):
    """Without ``resume``, an existing journal is replaced, never appended."""
    initial, epochs = stream_world
    path = tmp_path / "stream.ckpt"
    verify_stream(initial, epochs, checkpoint=path, signature="sig-a")
    control = stream_facts(
        verify_stream(initial, epochs[:2], checkpoint=path, signature="sig-b")
    )
    header, records, recovery = read_journal(path)
    assert recovery.clean
    assert header["signature"] == "sig-b"
    units = [r for r in records if isinstance(r, dict) and r.get("record") == "unit"]
    assert len(units) == 2
    assert control["epochs"] == 2
