"""Tests for the single-snapshot and differential-analysis baselines."""

from repro.baselines import (
    NaiveChangeCheck,
    check_isolation,
    check_loop_freedom,
    check_reachability,
    check_waypoint,
    differential_analysis,
)
from repro.snapshots import FlowEquivalenceClass, ForwardingGraph, build_snapshot, drop_graph


def build_snapshot_with_paths(paths_by_fec):
    entries = []
    for fec_id, paths in paths_by_fec.items():
        entries.append((FlowEquivalenceClass(fec_id, ingress="a"), paths))
    return build_snapshot("snap", entries)


def test_reachability_invariant():
    snapshot = build_snapshot_with_paths({"ok": [("a", "b")], "lost": []})
    snapshot.replace("lost", drop_graph())
    result = check_reachability(snapshot)
    assert not result.holds
    assert [fec for fec, _ in result.violations] == ["lost"]
    assert check_reachability(snapshot, fec_ids=["ok"]).holds


def test_waypoint_invariant():
    snapshot = build_snapshot_with_paths({"f1": [("a", "fw", "b")], "f2": [("a", "b")]})
    result = check_waypoint(snapshot, {"fw"})
    assert not result.holds
    assert result.violations[0][0] == "f2"
    assert check_waypoint(snapshot, {"fw"}, fec_ids=["f1"]).holds
    # Dropped traffic does not need to traverse the waypoint.
    dropped = build_snapshot_with_paths({"f3": []})
    dropped.replace("f3", drop_graph())
    assert check_waypoint(dropped, {"fw"}).holds


def test_isolation_invariant():
    snapshot = build_snapshot_with_paths({"f1": [("a", "secret", "b")], "f2": [("a", "b")]})
    result = check_isolation(snapshot, {"secret"})
    assert not result.holds and result.violations[0][0] == "f1"
    assert check_isolation(snapshot, {"other"}).holds
    assert bool(check_isolation(snapshot, {"other"}))


def test_loop_freedom_invariant():
    looped = ForwardingGraph()
    looped.add_edge("a", "b")
    looped.add_edge("b", "a")
    looped.sources = {"a"}
    looped.sinks = {"b"}
    snapshot = build_snapshot_with_paths({"ok": [("a", "b")]})
    snapshot.add(FlowEquivalenceClass("loop", ingress="a"), looped)
    result = check_loop_freedom(snapshot)
    assert not result.holds
    assert result.violations[0][0] == "loop"


def test_naive_change_check_misses_collateral_damage():
    """The Section 2.2 argument: single-snapshot checks cannot see collateral damage."""
    old_path = ("x1", "A1", "B1", "D1")
    new_path = ("x1", "A1", "A2", "D1")
    post = build_snapshot_with_paths(
        {
            "t1": [new_path],          # intended change happened
            "t2": [("x2", "C9", "D1")],  # collateral damage (was x2-C1-D1 before)
        }
    )
    naive = NaiveChangeCheck(old_path=old_path, new_path=new_path)
    result = naive.check(post)
    # The naive spec is satisfied even though t2 changed unexpectedly.
    assert result.holds

    # It does catch the obvious failures it was written for.
    unmoved = build_snapshot_with_paths({"t1": [old_path]})
    assert not naive.check(unmoved).holds
    missing_new = build_snapshot_with_paths({"t1": [("x1", "A1", "A3", "D1")]})
    assert not naive.check(missing_new).holds


def test_differential_analysis_reports_path_and_invariant_diffs():
    pre = build_snapshot_with_paths({"f1": [("a", "b")], "f2": [("a", "c")]})
    post = build_snapshot_with_paths({"f1": [("a", "b")], "f2": [("a", "c")]})
    assert differential_analysis(pre, post).audit_items == 0

    changed = build_snapshot_with_paths({"f1": [("a", "z")], "f2": [("a", "c")]})
    changed.replace("f2", drop_graph())
    report = differential_analysis(pre, changed)
    assert len(report.path_differences) == 2
    assert len(report.invariant_differences) == 1
    assert report.invariant_differences[0].fec_id == "f2"
    assert "reachability" in str(report.invariant_differences[0])
    assert report.audit_items == 3
    assert "audit" in report.summary()
