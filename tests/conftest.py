"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.automata import Alphabet
from repro.workloads.backbone import BackboneParams, generate_backbone
from repro.workloads.figure1 import build_scenario
from repro.workloads.traffic import generate_fecs

SYMBOLS = ["x1", "A1", "A2", "A3", "B1", "B2", "B3", "C1", "C2", "D1", "D2", "y1", "x2", "y2"]


@pytest.fixture()
def alphabet() -> Alphabet:
    """A small alphabet covering the Figure 1 location names."""
    return Alphabet(SYMBOLS)


@pytest.fixture(scope="session")
def figure1():
    """The Figure 1 case-study scenario (session-scoped; it is immutable)."""
    return build_scenario()


@pytest.fixture(scope="session")
def small_backbone():
    """A small synthetic backbone with simulated forwarding state."""
    backbone = generate_backbone(
        BackboneParams(regions=3, routers_per_group=2, parallel_links=2, prefixes_per_region=2)
    )
    fecs = generate_fecs(backbone, max_classes=12)
    snapshot = backbone.simulator().snapshot(fecs, name="pre")
    return backbone, fecs, snapshot
