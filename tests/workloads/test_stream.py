"""The change-stream generator: seeded, connected, assertable."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.verifier import verify_change
from repro.workloads.backbone import BackboneParams, generate_backbone
from repro.workloads.stream import (
    ChangeStream,
    StreamProfile,
    flapping_link_stream,
    generate_stream,
    prefix_migration_stream,
    rolling_drain_stream,
)
from repro.workloads.traffic import generate_fecs


@pytest.fixture(scope="module")
def world():
    backbone = generate_backbone(
        BackboneParams(regions=4, routers_per_group=2, parallel_links=2, prefixes_per_region=2)
    )
    fecs = generate_fecs(backbone)
    initial = backbone.simulator().snapshot(fecs, name="initial")
    return backbone, initial


def assert_connected(stream: ChangeStream) -> None:
    previous = stream.initial
    for epoch in stream:
        assert epoch.pre is previous, epoch.epoch_id
        previous = epoch.post


def test_rolling_drain_shape_and_expectations(world):
    backbone, initial = world
    stream = rolling_drain_stream(backbone, initial, epochs=8, rotation=2, seed=13)
    assert len(stream) == 8
    assert [epoch.kind for epoch in stream] == ["drain", "restore"] * 4
    assert stream.expect_holds
    assert_connected(stream)
    # Restores return to previously seen snapshots (the recurrence the
    # session caches): epoch 1 restores epoch 0's pre, and cycle 2 reuses
    # cycle 1's drained snapshot and spec instances outright.
    assert stream.epochs[1].post is stream.epochs[0].pre
    assert stream.epochs[4].post is stream.epochs[0].post
    assert stream.epochs[4].spec is stream.epochs[0].spec
    # Snapshots share one copy-on-write store.
    assert all(epoch.post.store is initial.store for epoch in stream)


def test_rolling_drain_is_seeded(world):
    backbone, initial = world
    first = rolling_drain_stream(backbone, initial, epochs=6, rotation=2, seed=13)
    second = rolling_drain_stream(backbone, initial, epochs=6, rotation=2, seed=13)
    other = rolling_drain_stream(backbone, initial, epochs=6, rotation=2, seed=14)
    assert [epoch.description for epoch in first] == [epoch.description for epoch in second]
    assert [epoch.post.graph_ref(fec_id) for epoch in first for fec_id in initial.fec_ids()] == [
        epoch.post.graph_ref(fec_id) for epoch in second for fec_id in initial.fec_ids()
    ]
    assert [epoch.description for epoch in first] != [epoch.description for epoch in other]


def test_rolling_drain_verdicts_match_expectations(world):
    backbone, initial = world
    stream = rolling_drain_stream(
        backbone, initial, epochs=6, rotation=2, seed=13, buggy_epochs={2}
    )
    assert not stream.expect_holds
    assert [epoch.expect_holds for epoch in stream] == [True, True, False, True, True, True]
    for epoch in stream:
        report = verify_change(epoch.pre, epoch.post, epoch.spec)
        assert report.holds == epoch.expect_holds, epoch.epoch_id


def test_prefix_migration_waves(world):
    backbone, initial = world
    stream = prefix_migration_stream(backbone, initial, waves=2, seed=13)
    assert len(stream) == 2
    assert_connected(stream)
    dropped: set[str] = set()
    for epoch in stream:
        report = verify_change(epoch.pre, epoch.post, epoch.spec)
        assert report.holds == epoch.expect_holds, epoch.epoch_id
        wave_dropped = {
            fec_id
            for fec_id in epoch.post.fec_ids()
            if epoch.post.graph_ref(fec_id) != epoch.pre.graph_ref(fec_id)
        }
        assert wave_dropped, "each wave must migrate something"
        assert not wave_dropped & dropped, "waves are disjoint"
        dropped |= wave_dropped
    buggy = prefix_migration_stream(backbone, initial, waves=2, seed=13, buggy_waves={0})
    report = verify_change(buggy.epochs[0].pre, buggy.epochs[0].post, buggy.epochs[0].spec)
    assert not report.holds and not buggy.epochs[0].expect_holds


def test_flapping_alternates_between_two_states(world):
    backbone, initial = world
    stream = flapping_link_stream(backbone, initial, flaps=5, seed=13)
    assert [epoch.kind for epoch in stream] == [
        "flap-down",
        "flap-up",
        "flap-down",
        "flap-up",
        "flap-down",
    ]
    assert_connected(stream)
    assert stream.epochs[2].post is stream.epochs[0].post
    assert stream.epochs[2].spec is stream.epochs[0].spec
    for epoch in stream:
        assert verify_change(epoch.pre, epoch.post, epoch.spec).holds, epoch.epoch_id


def test_generate_stream_profile(world):
    profile = StreamProfile(
        num_fecs=300, regions=4, epochs=4, rotation=2, prefixes_per_region=2, seed=13
    )
    stream = generate_stream(profile)
    assert len(stream) == 4
    assert len(stream.initial) == 300
    # Scale-style duplication: distinct behaviours ≪ classes.
    assert stream.initial.distinct_graph_count() < len(stream.initial) // 4
    assert stream.expect_holds
    assert_connected(stream)


def test_profile_validation():
    with pytest.raises(WorkloadError):
        StreamProfile(num_fecs=0)
    with pytest.raises(WorkloadError):
        StreamProfile(epochs=0)
    with pytest.raises(WorkloadError):
        StreamProfile(regions=4, rotation=5)


def test_rotation_bounds(world):
    backbone, initial = world
    with pytest.raises(WorkloadError):
        rolling_drain_stream(backbone, initial, epochs=2, rotation=9, seed=13)
