"""Tests for the synthetic backbone, traffic and change-scenario generators."""

import pytest

from repro.errors import WorkloadError
from repro.rela import SpecPolicy
from repro.rela.locations import Granularity
from repro.verifier import verify_change
from repro.workloads import (
    BackboneParams,
    generate_backbone,
    generate_change_dataset,
    generate_fecs,
    multi_shift,
    no_change,
    path_prune,
    prefix_decommission,
    traffic_shift,
)
from repro.workloads.traffic import fecs_to_region


# ----------------------------------------------------------------------
# Backbone generation
# ----------------------------------------------------------------------
def test_backbone_structure(small_backbone):
    backbone, fecs, snapshot = small_backbone
    params = backbone.params
    expected_routers = params.regions * 3 * params.routers_per_group
    assert backbone.topology.num_routers == expected_routers
    assert len(backbone.regions()) == params.regions
    for region in backbone.regions():
        assert backbone.routers_in(region, "agg")
        assert backbone.routers_in(region, "border")
        assert len(backbone.region_prefixes[region]) == params.prefixes_per_region
    # Both autonomous systems are present.
    asns = {router.asn for router in backbone.topology}
    assert asns == {100, 200}
    db = backbone.location_db()
    assert db.names_at(Granularity.ROUTER) == {r.name for r in backbone.topology}


def test_backbone_params_validation():
    with pytest.raises(WorkloadError):
        BackboneParams(regions=1)
    with pytest.raises(WorkloadError):
        BackboneParams(routers_per_group=0)
    with pytest.raises(WorkloadError):
        BackboneParams(parallel_links=0)
    with pytest.raises(WorkloadError):
        BackboneParams(prefixes_per_region=0)


def test_backbone_generation_is_deterministic():
    params = BackboneParams(regions=3, seed=42)
    first = generate_backbone(params)
    second = generate_backbone(params)
    assert {r.name for r in first.topology} == {r.name for r in second.topology}
    assert first.topology.num_links == second.topology.num_links


# ----------------------------------------------------------------------
# Traffic generation
# ----------------------------------------------------------------------
def test_generate_fecs_covers_region_pairs(small_backbone):
    backbone, fecs, _snapshot = small_backbone
    assert len(fecs) <= 12
    assert len({fec.fec_id for fec in fecs}) == len(fecs)
    for fec in fecs:
        assert backbone.topology.has_router(fec.ingress)
    region = backbone.regions()[0]
    subset = fecs_to_region(backbone, fecs, region)
    for fec in subset:
        assert any(p.contains(fec.dst_prefix) for p in backbone.region_prefixes[region])


def test_generate_fecs_cap_is_respected(small_backbone):
    backbone, _fecs, _snapshot = small_backbone
    capped = generate_fecs(backbone, max_classes=5)
    assert len(capped) == 5


# ----------------------------------------------------------------------
# Change archetypes: verified end to end
# ----------------------------------------------------------------------
def test_no_change_scenario(small_backbone):
    backbone, _fecs, pre = small_backbone
    db = backbone.location_db()
    scenario = no_change(pre)
    assert scenario.atomic_count == 1
    report = verify_change(scenario.pre, scenario.post, scenario.spec, db=db)
    assert report.holds == scenario.expect_holds is True

    buggy = no_change(pre, buggy=True)
    report = verify_change(buggy.pre, buggy.post, buggy.spec, db=db)
    assert report.holds == buggy.expect_holds is False


def test_traffic_shift_scenarios(small_backbone):
    backbone, _fecs, pre = small_backbone
    db = backbone.location_db()
    from_routers = backbone.routers_in("R1", "border")
    to_routers = backbone.routers_in("R2", "border")

    correct = traffic_shift(pre, from_routers, to_routers)
    assert correct.atomic_count == 2
    assert verify_change(correct.pre, correct.post, correct.spec, db=db).holds

    incomplete = traffic_shift(pre, from_routers, to_routers, buggy_leave_unmoved=1)
    assert not incomplete.expect_holds
    report = verify_change(incomplete.pre, incomplete.post, incomplete.spec, db=db)
    assert not report.holds

    collateral = traffic_shift(pre, from_routers, to_routers, buggy_collateral=1)
    report = verify_change(collateral.pre, collateral.post, collateral.spec, db=db)
    assert not report.holds
    assert report.violations_for("nochange") >= 1

    with pytest.raises(WorkloadError):
        traffic_shift(pre, [], to_routers)


def test_multi_shift_scenario(small_backbone):
    backbone, _fecs, pre = small_backbone
    db = backbone.location_db()
    shifts = [
        (backbone.routers_in("R1", "border"), backbone.routers_in("R2", "border")),
        (backbone.routers_in("R0", "core"), backbone.routers_in("R0", "border")),
    ]
    scenario = multi_shift(pre, shifts)
    assert scenario.atomic_count == len(shifts) + 1
    assert verify_change(scenario.pre, scenario.post, scenario.spec, db=db).holds
    with pytest.raises(WorkloadError):
        multi_shift(pre, [])


def test_prefix_decommission_scenario(small_backbone):
    backbone, _fecs, pre = small_backbone
    db = backbone.location_db()
    prefix = str(backbone.region_prefixes["R0"][0])
    scenario = prefix_decommission(pre, prefix)
    assert isinstance(scenario.spec, SpecPolicy)
    assert scenario.atomic_count == 2
    assert verify_change(scenario.pre, scenario.post, scenario.spec, db=db).holds

    buggy = prefix_decommission(pre, prefix, buggy_still_forwarding=True)
    report = verify_change(buggy.pre, buggy.post, buggy.spec, db=db)
    assert not report.holds

    with pytest.raises(WorkloadError):
        prefix_decommission(pre, "203.0.113.0/24")


def test_path_prune_scenario(small_backbone):
    backbone, _fecs, pre = small_backbone
    db = backbone.location_db()
    router = backbone.routers_in("R1", "core")[0]
    scenario = path_prune(pre, router)
    assert verify_change(scenario.pre, scenario.post, scenario.spec, db=db).holds

    buggy = path_prune(pre, router, buggy_keep_paths=True)
    report = verify_change(buggy.pre, buggy.post, buggy.spec, db=db)
    assert not report.holds

    with pytest.raises(WorkloadError):
        path_prune(pre, "router-that-carries-nothing")


def test_change_dataset_distribution(small_backbone):
    backbone, _fecs, pre = small_backbone
    dataset = generate_change_dataset(backbone, pre, count=40, seed=5)
    assert len(dataset) == 40
    sizes = [scenario.atomic_count for scenario in dataset]
    # Roughly half the changes are pure no-change refactors (size 1).
    assert sizes.count(1) >= 10
    # The vast majority of specs are small, as in Figure 5.
    small = sum(1 for size in sizes if size < 10)
    assert small / len(sizes) >= 0.85
    archetypes = {scenario.archetype for scenario in dataset}
    assert "no_change" in archetypes and "traffic_shift" in archetypes
    # Generation is deterministic for a fixed seed.
    again = generate_change_dataset(backbone, pre, count=40, seed=5)
    assert [s.archetype for s in again] == [s.archetype for s in dataset]
