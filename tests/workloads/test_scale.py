"""Tests for the backbone-scale workload profile (small populations)."""

import pytest

from repro.errors import WorkloadError
from repro.verifier import VerificationOptions, verify_change
from repro.workloads.scale import (
    ScaleProfile,
    generate_scale_change,
    generate_scale_snapshot,
    scale_backbone,
)


@pytest.fixture(scope="module")
def small_scale_scenario():
    return generate_scale_change(ScaleProfile(num_fecs=600, regions=3))


def test_scale_profile_validation():
    with pytest.raises(WorkloadError):
        ScaleProfile(num_fecs=0)


def test_scale_snapshot_shares_graphs():
    backbone = scale_backbone(ScaleProfile(regions=3))
    snapshot = generate_scale_snapshot(backbone, num_fecs=600)
    assert len(snapshot) == 600
    # Distinct behaviours scale with the topology (ingress x regions), not FECs.
    assert snapshot.distinct_graph_count() <= 3 * 2 * 2 + 1
    # Classes of one combination share one interned object.
    by_ref: dict[int, int] = {}
    for fec_id in snapshot.fec_ids():
        ref = snapshot.graph_ref(fec_id)
        by_ref[ref] = by_ref.get(ref, 0) + 1
    assert max(by_ref.values()) >= 600 // len(by_ref) // 2


def test_scale_change_holds_and_dedups(small_scale_scenario):
    scenario = small_scale_scenario
    assert scenario.expect_holds
    report = verify_change(
        scenario.pre,
        scenario.post,
        scenario.spec,
        options=VerificationOptions(collect_counterexamples=False),
    )
    assert report.holds
    assert report.total_fecs == 600
    assert report.unique_checks < 50
    assert report.unique_checks >= scenario.pre.distinct_graph_count()


def test_scale_change_catches_injected_violation(small_scale_scenario):
    """The scale path is a real verification, not a fast-path shortcut."""
    scenario = small_scale_scenario
    post = scenario.post.copy(name="buggy")
    victim = post.fec_ids()[len(post) // 2]
    broken = post.graph(victim).thaw()
    broken.add_path((next(iter(broken.sources)), "rogue-router"))
    post.replace(victim, broken)
    report = verify_change(scenario.pre, post, scenario.spec)
    assert not report.holds
    assert report.violating_fecs >= 1
    assert any(ce.fec_id == victim for ce in report.counterexamples)
