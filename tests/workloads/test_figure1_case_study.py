"""The Figure 1 / Section 8.1 case study, reproduced as tests.

These are the headline qualitative results of the paper: Rela flags both
errors of iteration v2 at once, attributes each violation to the right
sub-spec, and certifies the final implementation without any manual auditing.
"""

import pytest

from repro.baselines import differential_analysis
from repro.snapshots import path_diff
from repro.verifier import verify_change
from repro.workloads.figure1 import (
    SIDE_EFFECT_CLASSES,
    T1_CLASSES,
    T2_CLASSES,
    build_scenario,
)


@pytest.fixture(scope="module")
def scenario():
    return build_scenario()


@pytest.fixture(scope="module")
def pre(scenario):
    return scenario.pre_change()


def test_scenario_inventory(scenario):
    assert len(scenario.all_fecs()) == T1_CLASSES + T2_CLASSES + SIDE_EFFECT_CLASSES
    assert scenario.topology.num_routers == 14
    assert scenario.change_spec().atomic_count() == 4
    assert scenario.refined_spec().atomic_count() == 5


def test_pre_change_paths_match_figure(scenario, pre):
    t1 = scenario.t1_fecs[0]
    assert pre.graph(t1.fec_id).path_set() == {("x1", "A1", "B1", "B2", "B3", "D1", "y1")}
    t2 = scenario.t2_fecs[0]
    assert pre.graph(t2.fec_id).path_set() == {("x2", "C1", "B1", "B2", "B3", "D1", "y2")}


def test_v1_counts_match_section_8_1(scenario, pre):
    """v1: 15 e2e violations (T1 did not move) and 17 nochange violations."""
    report = verify_change(pre, scenario.iteration_v1(), scenario.change_spec(), db=scenario.db)
    assert not report.holds
    assert report.violations_for("e2e") == T1_CLASSES == 15
    assert report.violations_for("nochange") == SIDE_EFFECT_CLASSES == 17
    assert report.violating_fecs == 32


def test_v2_counts_match_section_8_1(scenario, pre):
    """v2 with the refined spec: 15 e2e + 24 nochange + 0 sideEffects."""
    report = verify_change(pre, scenario.iteration_v2(), scenario.refined_spec(), db=scenario.db)
    assert not report.holds
    assert report.violations_for("e2e") == 15
    assert report.violations_for("nochange") == T2_CLASSES == 24
    assert report.violations_for("sideEffects") == 0


def test_v2_counterexamples_match_table_1(scenario, pre):
    report = verify_change(pre, scenario.iteration_v2(), scenario.refined_spec(), db=scenario.db)
    by_bundle = {}
    for counterexample in report.counterexamples:
        fec = next(f for f in scenario.all_fecs() if f.fec_id == counterexample.fec_id)
        by_bundle.setdefault(fec.metadata["bundle"], counterexample)
    t1_example = by_bundle["T1"]
    assert t1_example.pre_paths == [("x1", "A1", "B1", "B2", "B3", "D1", "y1")]
    assert t1_example.post_paths == [("x1", "A1", "A2", "A3", "B3", "D1", "y1")]
    assert t1_example.branches == ["e2e"]
    # The '#' placeholder is rewritten back to the user's path expression.
    assert all("#" not in hop for violation in t1_example.violations for path in violation.expected for hop in path)
    t2_example = by_bundle["T2"]
    assert t2_example.branches == ["nochange"]
    assert t2_example.post_paths == [("x2", "C1", "C2", "D1", "y2")]


def test_v3_fixes_collateral_but_keeps_bounce(scenario, pre):
    report = verify_change(pre, scenario.iteration_v3(), scenario.refined_spec(), db=scenario.db)
    assert not report.holds
    assert report.violations_for("nochange") == 0
    assert report.violations_for("e2e") == 15


def test_final_implementation_passes(scenario, pre):
    report = verify_change(
        pre, scenario.final_implementation(), scenario.refined_spec(), db=scenario.db
    )
    assert report.holds
    assert report.counterexamples == []


def test_original_spec_flags_side_effects_in_final(scenario, pre):
    # Without the sideEffects refinement, the benign changes still show up —
    # this is why the spec was refined during iteration 1 (Section 8.1).
    report = verify_change(
        pre, scenario.final_implementation(), scenario.change_spec(), db=scenario.db
    )
    assert not report.holds
    assert report.violations_for("nochange") == SIDE_EFFECT_CLASSES


def test_manual_path_diff_sizes(scenario, pre):
    """The manual workflow must wade through larger, unlabeled diffs."""
    diff_v1 = path_diff(pre, scenario.iteration_v1())
    assert len(diff_v1) == SIDE_EFFECT_CLASSES  # benign changes only
    diff_v2 = path_diff(pre, scenario.iteration_v2())
    assert len(diff_v2) == T1_CLASSES + T2_CLASSES + SIDE_EFFECT_CLASSES
    report = differential_analysis(pre, scenario.iteration_v2())
    assert report.audit_items >= len(diff_v2)
