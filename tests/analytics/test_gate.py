"""Safety-gate decision rules, schema, and the dataset-wide differential.

The gate's contract: decisions only ever *escalate* (pass → conditional →
hold → block), unknown verdicts can never improve a decision, a
fully-unknown assessment is at best *hold*, and a proven violation is
always *block*.  The differential test pins the gate's exit codes against
the raw report verdicts over the same 60-scenario change dataset the
interning-equivalence suite sweeps.
"""

from __future__ import annotations

import pytest

from repro.analytics import (
    GateDecision,
    SafetyGate,
    assess_report,
    assess_sweep,
    gate_report,
    gate_sweep,
)
from repro.errors import AnalyticsError
from repro.verifier import verify_change
from repro.workloads.backbone import BackboneParams, generate_backbone
from repro.workloads.changes import generate_change_dataset
from repro.workloads.traffic import generate_fecs
from tests.analytics.test_risk import make_report, make_sweep


# ----------------------------------------------------------------------
# Decision rules
# ----------------------------------------------------------------------
def test_clean_report_passes():
    decision = gate_report(make_report(20))
    assert decision.decision is GateDecision.PASS
    assert decision.exit_code == 0
    assert decision.reasons


def test_proven_violation_blocks():
    decision = gate_report(make_report(20, violating=1))
    assert decision.decision is GateDecision.BLOCK
    assert decision.exit_code == 5
    assert any("proven violation" in reason for reason in decision.reasons)
    assert decision.conditions == ()


def test_unknowns_escalate_to_at_least_conditional():
    decision = gate_report(make_report(20, unknown=1))
    assert decision.decision is GateDecision.CONDITIONAL
    assert decision.exit_code == 3
    assert decision.conditions  # what to satisfy before shipping
    assert any("unknown" in condition for condition in decision.conditions)


def test_fully_unknown_report_is_at_best_hold():
    decision = gate_report(make_report(20, unknown=20))
    assert decision.decision is GateDecision.HOLD
    assert decision.exit_code == 5
    assert any("nothing proven" in reason for reason in decision.reasons)


def test_violation_beats_fully_unknown():
    # One violation among otherwise-unknown checks: block, not hold.
    decision = gate_report(make_report(20, violating=1, unknown=19))
    assert decision.decision is GateDecision.BLOCK


def test_score_thresholds_drive_hold_and_conditional():
    gate = SafetyGate(conditional_at=0.20, hold_at=0.50)
    # A sweep with flips but no baseline violation would block on the proven
    # violation; exercise the pure-score path on synthetic assessments of a
    # clean report with increasingly bad history instead.
    low = gate.decide(assess_report(make_report(10)))
    assert low.decision is GateDecision.PASS
    shaky = gate.decide(assess_report(make_report(10, unknown=3)))
    assert shaky.decision is GateDecision.CONDITIONAL
    assert shaky.exit_code == 3


def test_decision_rank_matches_escalation_order():
    ranks = [
        GateDecision.PASS.rank,
        GateDecision.CONDITIONAL.rank,
        GateDecision.HOLD.rank,
        GateDecision.BLOCK.rank,
    ]
    assert ranks == sorted(ranks)
    assert [d.exit_code for d in GateDecision] == [0, 3, 5, 5]


def test_gate_thresholds_validated():
    with pytest.raises(AnalyticsError):
        SafetyGate(conditional_at=0.0)
    with pytest.raises(AnalyticsError):
        SafetyGate(conditional_at=0.6, hold_at=0.5)
    with pytest.raises(AnalyticsError):
        SafetyGate(hold_at=1.5)


def test_gate_decisions_monotone_under_worsening_artifacts():
    """Escalating the artifacts can never improve the decision."""
    gate = SafetyGate()
    sequence = [
        make_report(20),                       # clean
        make_report(20, unknown=2),            # some unknowns
        make_report(20, unknown=20),           # fully unknown
        make_report(20, violating=3),          # proven violation
    ]
    ranks = [gate.decide(assess_report(report)).decision.rank for report in sequence]
    assert ranks == sorted(ranks)


# ----------------------------------------------------------------------
# Sweep gating
# ----------------------------------------------------------------------
def test_clean_sweep_passes_and_flipped_sweep_blocks():
    assert gate_sweep(make_sweep(failures=5)).decision is GateDecision.PASS
    flipped = gate_sweep(make_sweep(failures=5, flipped=2))
    assert flipped.decision is GateDecision.BLOCK
    assert flipped.exit_code == 5


def test_sweep_with_unknown_contingencies_is_conditional():
    decision = gate_sweep(make_sweep(failures=5, unknown=1))
    assert decision.decision is GateDecision.CONDITIONAL
    assert decision.assessment.has_unknowns


# ----------------------------------------------------------------------
# Serialization schema (what `repro gate --json` rests on)
# ----------------------------------------------------------------------
def test_to_dict_schema():
    payload = gate_report(make_report(20, unknown=1)).to_dict()
    assert payload["schema"] == "repro-gate/v1"
    assert payload["decision"] == "conditional"
    assert payload["exit_code"] == 3
    assert isinstance(payload["reasons"], list) and payload["reasons"]
    assert isinstance(payload["conditions"], list) and payload["conditions"]
    risk = payload["risk"]
    assert 0.0 <= risk["score"] <= 1.0
    assert risk["tier"] in ("negligible", "low", "moderate", "high", "critical")
    assert risk["proven_violation"] is False
    assert risk["fully_unknown"] is False
    assert {signal["name"] for signal in risk["signals"]} == {"blast-radius", "unknowns"}


def test_table_and_summary_render():
    decision = gate_report(make_report(20, violating=2))
    assert "decision: block (exit 5)" in decision.table()
    assert decision.summary().startswith("gate: BLOCK (exit 5)")


# ----------------------------------------------------------------------
# Differential: gate exit codes vs raw verdicts over the 60-scenario dataset
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def dataset_with_db():
    backbone = generate_backbone(
        BackboneParams(regions=4, routers_per_group=2, parallel_links=2, prefixes_per_region=2)
    )
    fecs = generate_fecs(backbone, max_classes=24)
    snapshot = backbone.simulator().snapshot(fecs, name="pre")
    dataset = generate_change_dataset(backbone, snapshot, count=60, seed=23)
    return backbone.location_db(), dataset


def test_gate_exit_codes_agree_with_report_verdicts(dataset_with_db):
    """For every dataset scenario the gate's exit code must agree with the
    raw report verdict: holds → 0, violated → 5, unknown → 3 or 5."""
    db, dataset = dataset_with_db
    for scenario in dataset:
        report = verify_change(scenario.pre, scenario.post, scenario.spec, db=db)
        decision = gate_report(report)
        if report.verdict == "holds":
            assert decision.exit_code == 0, scenario.change_id
            assert decision.decision is GateDecision.PASS
        elif report.verdict == "violated":
            assert decision.exit_code == 5, scenario.change_id
            assert decision.decision is GateDecision.BLOCK
        else:
            assert decision.exit_code in (3, 5), scenario.change_id
            assert decision.decision.rank >= GateDecision.CONDITIONAL.rank
        # And the gate never contradicts the workload's expectation either.
        assert (decision.exit_code == 0) == scenario.expect_holds, scenario.change_id
