"""Risk-scoring unit and property tests: determinism and monotonicity.

The gate's safety argument rests on two properties of the risk layer, so
both are pinned here directly:

* **determinism** — the same artifacts always produce the identical
  assessment (scores, tiers, factors);
* **monotonicity** — more violating flow classes, more flipped
  contingencies or more unknown verdicts can never *lower* the score or
  the tier.  ``unknown`` verdicts raise risk, never reduce it, and a
  fully-unknown population pins the unknowns signal high enough that the
  gate can never call it better than *hold*.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics import (
    ChangeHistory,
    RiskTier,
    assess_report,
    assess_sweep,
    blast_radius_signal,
    fec_region_index,
    fragility_signal,
    history_signal,
    unknown_signal,
)
from repro.errors import AnalyticsError
from repro.snapshots.fec import FlowEquivalenceClass
from repro.verifier.contingency import Contingency, ContingencyResult, SweepReport
from repro.verifier.counterexample import BranchViolation, Counterexample
from repro.verifier.report import StreamReport, VerificationReport
from repro.verifier.runtime import CheckFailure


# ----------------------------------------------------------------------
# Synthetic artifact builders
# ----------------------------------------------------------------------
def make_report(
    total: int, violating: int = 0, unknown: int = 0, *, branches: int = 1
) -> VerificationReport:
    """A report with ``violating`` violating, ``unknown`` unknown and the
    rest passing flow classes (spread over ``branches`` sub-specs)."""
    assert violating + unknown <= total
    report = VerificationReport()
    for index in range(violating):
        report.record(
            Counterexample(
                fec_id=f"fec{index:03d}",
                fec_description=f"fec{index:03d} 10.0.{index}.0/24@edge",
                pre_paths=[("edge", "core")],
                post_paths=[("edge", "other")],
                violations=[
                    BranchViolation(branch=f"branch{index % max(1, branches)}")
                ],
            )
        )
    for index in range(unknown):
        report.record(
            CheckFailure(
                fec_id=f"unk{index:03d}",
                fec_description=f"unk{index:03d} 10.1.{index}.0/24@edge",
                reason="timeout",
            )
        )
    for _ in range(total - violating - unknown):
        report.record(None)
    report.finalize()
    return report


def make_sweep(
    *,
    failures: int,
    flipped: int = 0,
    unknown: int = 0,
    baseline_violating: int = 0,
    fecs_per_contingency: int = 10,
) -> SweepReport:
    """A sweep with one baseline plus ``failures`` failure contingencies,
    of which ``flipped`` violate and ``unknown`` end unknown."""
    assert flipped + unknown <= failures
    sweep = SweepReport()
    sweep.record(
        ContingencyResult(
            contingency=Contingency(contingency_id="baseline"),
            report=make_report(fecs_per_contingency, violating=baseline_violating),
        )
    )
    for index in range(failures):
        if index < flipped:
            report = make_report(fecs_per_contingency, violating=1)
        elif index < flipped + unknown:
            report = make_report(fecs_per_contingency, unknown=1)
        else:
            report = make_report(fecs_per_contingency)
        sweep.record(
            ContingencyResult(
                contingency=Contingency(
                    contingency_id=f"single-{index}",
                    failed_links=((f"a{index}", f"b{index}"),),
                ),
                report=report,
            )
        )
    return sweep


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def test_assessment_is_deterministic():
    first = assess_report(make_report(20, violating=3, unknown=2))
    second = assess_report(make_report(20, violating=3, unknown=2))
    assert first.to_dict() == second.to_dict()
    assert first.score == second.score
    assert first.tier == second.tier


def test_sweep_assessment_is_deterministic():
    first = assess_sweep(make_sweep(failures=5, flipped=2, unknown=1))
    second = assess_sweep(make_sweep(failures=5, flipped=2, unknown=1))
    assert first.to_dict() == second.to_dict()


# ----------------------------------------------------------------------
# Scores and tiers stay in range, tiers are monotone in score
# ----------------------------------------------------------------------
@given(
    total=st.integers(min_value=1, max_value=60),
    violating=st.integers(min_value=0, max_value=60),
    unknown=st.integers(min_value=0, max_value=60),
)
@settings(max_examples=60, deadline=None)
def test_report_score_in_unit_interval(total, violating, unknown):
    violating = min(violating, total)
    unknown = min(unknown, total - violating)
    assessment = assess_report(make_report(total, violating, unknown))
    assert 0.0 <= assessment.score <= 1.0
    assert assessment.tier == RiskTier.for_score(assessment.score)
    assert assessment.unknown_checks == unknown
    assert assessment.proven_violation == (violating > 0)


def test_tier_for_score_is_monotone():
    scores = [i / 100.0 for i in range(101)]
    ranks = [RiskTier.for_score(score).rank for score in scores]
    assert ranks == sorted(ranks)
    assert RiskTier.for_score(0.0) is RiskTier.NEGLIGIBLE
    assert RiskTier.for_score(1.0) is RiskTier.CRITICAL


# ----------------------------------------------------------------------
# Monotonicity: more violations can never lower risk
# ----------------------------------------------------------------------
@given(
    total=st.integers(min_value=2, max_value=40),
    violating=st.integers(min_value=0, max_value=38),
)
@settings(max_examples=60, deadline=None)
def test_more_violating_fecs_never_lower_risk(total, violating):
    violating = min(violating, total - 1)
    lesser = assess_report(make_report(total, violating))
    greater = assess_report(make_report(total, violating + 1))
    assert greater.score >= lesser.score
    assert greater.tier.rank >= lesser.tier.rank


@given(
    total=st.integers(min_value=2, max_value=40),
    unknown=st.integers(min_value=0, max_value=38),
)
@settings(max_examples=60, deadline=None)
def test_more_unknowns_never_lower_risk(total, unknown):
    unknown = min(unknown, total - 1)
    lesser = assess_report(make_report(total, unknown=unknown))
    greater = assess_report(make_report(total, unknown=unknown + 1))
    assert greater.score >= lesser.score
    assert greater.tier.rank >= lesser.tier.rank


@given(
    failures=st.integers(min_value=2, max_value=20),
    flipped=st.integers(min_value=0, max_value=18),
)
@settings(max_examples=60, deadline=None)
def test_more_flipped_contingencies_never_lower_risk(failures, flipped):
    flipped = min(flipped, failures - 1)
    lesser = assess_sweep(make_sweep(failures=failures, flipped=flipped))
    greater = assess_sweep(make_sweep(failures=failures, flipped=flipped + 1))
    assert greater.score >= lesser.score
    assert greater.tier.rank >= lesser.tier.rank


def test_unknowns_raise_risk_over_a_clean_report():
    clean = assess_report(make_report(10))
    shaky = assess_report(make_report(10, unknown=1))
    assert clean.score == 0.0
    assert shaky.score > clean.score
    assert shaky.has_unknowns


def test_fully_unknown_report_pins_the_unknown_signal_high():
    assessment = assess_report(make_report(10, unknown=10))
    assert assessment.fully_unknown
    assert assessment.signal("unknowns").score >= 0.85
    # High enough that the combined score crosses the 0.5 hold threshold.
    assert assessment.score >= 0.5


def test_degraded_without_unknowns_still_raises_risk():
    signal = unknown_signal(unknown=0, total=10, degraded=True)
    assert signal.score > 0.0
    assert signal.score < unknown_signal(unknown=1, total=10).score


# ----------------------------------------------------------------------
# Region spread (blast radius)
# ----------------------------------------------------------------------
def test_region_spread_raises_blast_radius():
    report = make_report(10, violating=2)
    narrow = blast_radius_signal(
        report,
        fec_regions={"fec000": frozenset({"R0"}), "fec001": frozenset({"R0"})},
        total_regions=8,
    )
    wide = blast_radius_signal(
        report,
        fec_regions={"fec000": frozenset({"R0", "R1"}), "fec001": frozenset({"R2", "R3"})},
        total_regions=8,
    )
    without = blast_radius_signal(report)
    assert wide.score > narrow.score > without.score
    assert any("regions affected" in factor for factor in wide.factors)


def test_fec_region_index_metadata_and_ingress_fallback():
    fecs = [
        FlowEquivalenceClass(
            "a", metadata={"src_region": "R0", "dst_region": "R1"}
        ),
        FlowEquivalenceClass("b", ingress="r2-border0"),
        FlowEquivalenceClass("c"),
    ]
    index = fec_region_index(fecs, location_regions={"r2-border0": "R2"})
    assert index["a"] == frozenset({"R0", "R1"})
    assert index["b"] == frozenset({"R2"})
    assert "c" not in index  # no resolvable region: never guessed


# ----------------------------------------------------------------------
# History
# ----------------------------------------------------------------------
def test_history_raises_risk_but_is_capped_below_hold():
    report = make_report(10)
    clean = assess_report(report)
    bad_history = assess_report(
        report, history=ChangeHistory(epochs=10, violating_epochs=10, degraded_epochs=10)
    )
    assert bad_history.score > clean.score
    # A clean, fully-proven change with the worst possible track record must
    # stay below the 0.5 hold threshold (history weight 0.6 caps it).
    assert bad_history.score < 0.5


def test_history_from_stream_counters():
    stream = StreamReport()
    stream.record(make_report(5))
    stream.record(make_report(5, violating=1))
    stream.record(make_report(5, unknown=1))
    history = ChangeHistory.from_stream(stream)
    assert history.epochs == 3
    assert history.violating_epochs == 1
    assert history.degraded_epochs == 1
    signal = history_signal(history)
    assert signal.score > 0.0
    assert history_signal(ChangeHistory()).score == 0.0


def test_history_counters_validated():
    with pytest.raises(AnalyticsError):
        ChangeHistory(epochs=-1)
    with pytest.raises(AnalyticsError):
        ChangeHistory(epochs=2, violating_epochs=3)


# ----------------------------------------------------------------------
# Sweep-specific behaviour
# ----------------------------------------------------------------------
def test_empty_sweep_rejected():
    with pytest.raises(AnalyticsError):
        assess_sweep(SweepReport())


def test_fragility_names_the_worst_offenders():
    sweep = make_sweep(failures=4, flipped=2)
    signal = fragility_signal(sweep)
    assert signal.score > 0.0
    assert any(factor.startswith("worst:") for factor in signal.factors)


def test_sweep_proven_violation_from_any_contingency():
    baseline_only = assess_sweep(make_sweep(failures=3, baseline_violating=1))
    failure_only = assess_sweep(make_sweep(failures=3, flipped=1))
    assert baseline_only.proven_violation
    assert failure_only.proven_violation


def test_fully_unknown_sweep_flagged():
    sweep = SweepReport()
    for index in range(3):
        sweep.record(
            ContingencyResult(
                contingency=Contingency(
                    contingency_id=f"single-{index}",
                    failed_links=((f"a{index}", f"b{index}"),),
                ),
                report=make_report(4, unknown=4),
            )
        )
    assessment = assess_sweep(sweep)
    assert assessment.fully_unknown
    assert assessment.score >= 0.5
