"""Metamorphic properties of the verifier (hypothesis).

Verification is a statement about path *languages*, so its outcome must be
invariant under a consistent relabeling of the world: renaming every
location through one bijection (applied to both snapshots **and** to the
spec) and permuting flow-equivalence-class identifiers cannot change which
classes violate, which branches they violate, or — modulo the same
renaming — the witness paths reported.  These tests generate random small
snapshot pairs, apply random relabelings, and compare the two runs.

Witness-set equality is asserted on preserve-only specs, whose relation
images are finite path sets: with generous witness bounds the reported
sets are the *complete* differences, so they must map exactly through the
renaming.  (Specs built on ``any`` have infinite expected languages; their
truncated witness enumeration is deterministic per alphabet but not
renaming-invariant, so for the general spec shape the invariant covers
verdicts, violating classes and per-branch counts.)
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.rela import any_hops, any_of, atomic, locs, nochange, seq  # noqa: E402
from repro.snapshots import FlowEquivalenceClass, build_snapshot  # noqa: E402
from repro.verifier import VerificationOptions, verify_change  # noqa: E402

NODES = [f"x{i}" for i in range(6)]
FEC_IDS = [f"f{i}" for i in range(5)]

#: Generous bounds so small-language witness sets are never truncated.
EXHAUSTIVE = VerificationOptions(max_witnesses=200, max_paths=400)


#: Fixed topological order for generated paths (the *base* universe order,
#: not the renamed one): every path's hops strictly ascend in this order,
#: so any union of paths is a DAG and every path language is finite — the
#: precondition for witness sets being complete rather than a truncated,
#: enumeration-order-dependent sample.
_RANK = {node: index for index, node in enumerate(NODES)}


def path_strategy():
    return (
        st.lists(st.sampled_from(NODES), min_size=1, max_size=4, unique=True)
        .map(lambda nodes: tuple(sorted(nodes, key=_RANK.__getitem__)))
    )


def paths_strategy():
    return st.lists(path_strategy(), min_size=1, max_size=3, unique=True)


@st.composite
def snapshot_pair(draw):
    """Random (pre, post) path sets for 2-5 FECs; post may drift per FEC."""
    count = draw(st.integers(min_value=2, max_value=len(FEC_IDS)))
    pre: dict[str, list[tuple[str, ...]]] = {}
    post: dict[str, list[tuple[str, ...]]] = {}
    for fec_id in FEC_IDS[:count]:
        pre[fec_id] = draw(paths_strategy())
        if draw(st.booleans()):
            post[fec_id] = pre[fec_id]
        else:
            post[fec_id] = draw(paths_strategy())
    return pre, post


def relabeling(draw):
    node_map = dict(zip(NODES, draw(st.permutations(NODES))))
    fec_map = dict(zip(FEC_IDS, draw(st.permutations(FEC_IDS))))
    return node_map, fec_map


def build_world(pre_paths, post_paths, node_map, fec_map):
    """Snapshots + per-FEC objects under a (possibly identity) relabeling."""
    fecs = {
        fec_id: FlowEquivalenceClass(
            fec_map[fec_id], dst_prefix="203.0.113.0/24", ingress="edge"
        )
        for fec_id in pre_paths
    }

    def map_path(path):
        return tuple(node_map[node] for node in path)

    pre = build_snapshot(
        "pre",
        [(fecs[fec_id], [map_path(p) for p in paths]) for fec_id, paths in pre_paths.items()],
    )
    post = build_snapshot(
        "post",
        [(fecs[fec_id], [map_path(p) for p in paths]) for fec_id, paths in post_paths.items()],
    )
    return pre, post, fecs


IDENTITY_NODES = {node: node for node in NODES}
IDENTITY_FECS = {fec_id: fec_id for fec_id in FEC_IDS}


@st.composite
def metamorphic_case(draw):
    pre_paths, post_paths = draw(snapshot_pair())
    node_map, fec_map = relabeling(draw)
    return pre_paths, post_paths, node_map, fec_map


def shift_spec(from_node: str, to_node: str):
    shift = atomic(
        seq(any_hops(), locs({from_node}), any_hops()),
        any_of(seq(any_hops(), locs({to_node}), any_hops())),
        name="shift",
    )
    return shift.else_(nochange())


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(case=metamorphic_case(), endpoints=st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)))
def test_verdicts_and_branch_counts_invariant_under_relabeling(case, endpoints):
    """Shift-else-nochange: verdict, violating set and branch counts map."""
    pre_paths, post_paths, node_map, fec_map = case
    from_node, to_node = endpoints

    base_pre, base_post, _ = build_world(
        pre_paths, post_paths, IDENTITY_NODES, IDENTITY_FECS
    )
    base = verify_change(
        base_pre, base_post, shift_spec(from_node, to_node), options=EXHAUSTIVE
    )

    mapped_pre, mapped_post, mapped_fecs = build_world(
        pre_paths, post_paths, node_map, fec_map
    )
    mapped = verify_change(
        mapped_pre,
        mapped_post,
        shift_spec(node_map[from_node], node_map[to_node]),
        options=EXHAUSTIVE,
    )

    assert mapped.holds == base.holds
    assert mapped.total_fecs == base.total_fecs
    assert mapped.violating_fecs == base.violating_fecs
    # Branch names are relabeling-independent, so the counts map directly.
    assert dict(mapped.branch_violation_counts) == dict(base.branch_violation_counts)
    assert {ce.fec_id for ce in mapped.counterexamples} == {
        fec_map[ce.fec_id] for ce in base.counterexamples
    }
    # The per-class forwarding paths attached to counterexamples are finite
    # graph enumerations: they must map exactly through the renaming.
    mapped_by_id = {ce.fec_id: ce for ce in mapped.counterexamples}
    for ce in base.counterexamples:
        twin = mapped_by_id[fec_map[ce.fec_id]]
        assert twin.fec_description == str(mapped_fecs[ce.fec_id])
        assert twin.pre_paths == sorted(
            tuple(node_map[node] for node in path) for path in ce.pre_paths
        )
        assert twin.post_paths == sorted(
            tuple(node_map[node] for node in path) for path in ce.post_paths
        )


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(case=metamorphic_case())
def test_witness_sets_invariant_under_relabeling(case):
    """Preserve-only specs: the full report, witness sets included, maps."""
    pre_paths, post_paths, node_map, fec_map = case

    base_pre, base_post, _ = build_world(
        pre_paths, post_paths, IDENTITY_NODES, IDENTITY_FECS
    )
    base = verify_change(base_pre, base_post, nochange(), options=EXHAUSTIVE)

    mapped_pre, mapped_post, mapped_fecs = build_world(
        pre_paths, post_paths, node_map, fec_map
    )
    mapped = verify_change(mapped_pre, mapped_post, nochange(), options=EXHAUSTIVE)

    assert mapped.holds == base.holds
    assert dict(mapped.branch_violation_counts) == dict(base.branch_violation_counts)

    def mapped_facts(report, node_mapping, fec_mapping):
        return {
            fec_mapping[ce.fec_id]: {
                "pre": sorted(
                    tuple(node_mapping[node] for node in path) for path in ce.pre_paths
                ),
                "post": sorted(
                    tuple(node_mapping[node] for node in path) for path in ce.post_paths
                ),
                "violations": sorted(
                    (
                        violation.branch,
                        tuple(
                            sorted(
                                tuple(node_mapping[node] for node in path)
                                for path in violation.expected
                            )
                        ),
                        tuple(
                            sorted(
                                tuple(node_mapping[node] for node in path)
                                for path in violation.observed
                            )
                        ),
                    )
                    for violation in ce.violations
                ),
            }
            for ce in report.counterexamples
        }

    assert mapped_facts(mapped, IDENTITY_NODES, IDENTITY_FECS) == mapped_facts(
        base, node_map, fec_map
    )
    for ce in mapped.counterexamples:
        assert ce.fec_description == str(mapped_fecs[_invert(fec_map)[ce.fec_id]])


def _invert(mapping: dict[str, str]) -> dict[str, str]:
    return {value: key for key, value in mapping.items()}
