"""Contingency sweeps: failure models, derivation soundness, and the
sweep-vs-naive differential oracle.

The load-bearing invariant mirrors the session layer's: a sweep driven
through one shared :class:`~repro.verifier.contingency.ContingencySweep`
must produce, per contingency, a report byte-identical — verdicts,
per-branch violation counts, counterexample attribution and witness sets —
to a naive loop that independently simulates each contingency from scratch
and runs a one-shot ``verify_change``.  The differential tests fuzz that
over randomized small topologies, random single/k-link failure sets,
compliant and buggy changes, serial and worker paths, and memoization on
and off.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import SnapshotError, TopologyError, VerificationError
from repro.network.simulator import Simulator
from repro.rela.locations import Granularity
from repro.verifier import (
    ContingencySweep,
    VerificationOptions,
    baseline_contingency,
    k_link_failures,
    maintenance_link_sets,
    single_link_failures,
    verify_change,
)
from repro.workloads.backbone import BackboneParams, generate_backbone
from repro.workloads.contingencies import (
    drain_sweep_scenario,
    generate_sweep_scenarios,
    interconnect_maintenance_sets,
)
from repro.workloads.scale import scale_fec_list


@pytest.fixture(scope="module")
def world():
    backbone = generate_backbone(
        BackboneParams(regions=3, routers_per_group=2, parallel_links=1, prefixes_per_region=2)
    )
    fecs = scale_fec_list(backbone, num_fecs=48)
    return backbone, fecs


def report_facts(report) -> dict:
    """Everything observable about a report, in canonical order."""
    return {
        "holds": report.holds,
        "total_fecs": report.total_fecs,
        "violating_fecs": report.violating_fecs,
        "branch_violation_counts": dict(report.branch_violation_counts),
        "counterexamples": [
            {
                "fec_id": ce.fec_id,
                "fec_description": ce.fec_description,
                "pre_paths": list(ce.pre_paths),
                "post_paths": list(ce.post_paths),
                "violations": [
                    {
                        "branch": violation.branch,
                        "expected": sorted(violation.expected),
                        "observed": sorted(violation.observed),
                    }
                    for violation in ce.violations
                ],
            }
            for ce in report.counterexamples
        ],
    }


# ----------------------------------------------------------------------
# Failure models and topology surgery
# ----------------------------------------------------------------------
def test_link_bundles_collapse_parallel_members():
    backbone = generate_backbone(BackboneParams(regions=2, parallel_links=3))
    bundles = backbone.topology.link_bundles()
    assert len(set(bundles)) == len(bundles)
    assert all(a < b for a, b in bundles)
    # 3 parallel members per connected pair, one bundle each.
    assert len(backbone.topology.links()) == 3 * len(bundles)


def test_without_links_removes_whole_bundles(world):
    backbone, _ = world
    topology = backbone.topology
    pair = topology.link_bundles()[0]
    failed = topology.without_links([pair])
    assert failed.links_between(*pair) == []
    assert pair[1] not in failed.neighbors(pair[0])
    assert failed.num_routers == topology.num_routers
    assert failed.num_links == topology.num_links - len(topology.links_between(*pair))
    # The original is untouched.
    assert topology.links_between(*pair)


def test_without_links_rejects_unknown_pairs(world):
    backbone, _ = world
    with pytest.raises(TopologyError, match="no link between"):
        backbone.topology.without_links([("r0-agg0", "r2-border1")])


def test_single_link_failures_cover_every_bundle(world):
    backbone, _ = world
    contingencies = single_link_failures(backbone.topology)
    assert len(contingencies) == len(backbone.topology.link_bundles())
    assert all(len(c.failed_links) == 1 and not c.is_baseline for c in contingencies)


def test_k_link_failures_enumerate_combinations(world):
    backbone, _ = world
    candidates = backbone.topology.link_bundles()[:5]
    contingencies = k_link_failures(backbone.topology, 2, candidates=candidates)
    assert len(contingencies) == 10  # C(5, 2)
    assert all(len(c.failed_links) == 2 for c in contingencies)
    limited = k_link_failures(backbone.topology, 2, candidates=candidates, limit=4)
    assert [c.contingency_id for c in limited] == [
        c.contingency_id for c in contingencies[:4]
    ]
    with pytest.raises(VerificationError):
        k_link_failures(backbone.topology, 0)
    with pytest.raises(VerificationError):
        k_link_failures(backbone.topology, 6, candidates=candidates)
    with pytest.raises(VerificationError, match="candidate links"):
        single_link_failures(backbone.topology, candidates=[("nope", "nada")])


def test_maintenance_link_sets_validate():
    with pytest.raises(VerificationError, match="empty"):
        maintenance_link_sets([[]])
    sets = maintenance_link_sets([[("b", "a")], [("c", "d"), ("a", "b")]])
    assert sets[0].failed_links == (("a", "b"),)
    assert sets[1].failed_links == (("a", "b"), ("c", "d"))


def test_interconnect_maintenance_sets_sever_region_pairs(world):
    backbone, _ = world
    region_of = {router.name: router.region for router in backbone.topology.routers()}
    sets = interconnect_maintenance_sets(backbone)
    assert sets  # the ring always connects at least two region pairs
    for contingency in sets:
        regions = {
            frozenset((region_of[a], region_of[b])) for a, b in contingency.failed_links
        }
        assert len(regions) == 1  # one region pair per maintenance set
        pair = next(iter(regions))
        failed_topology = backbone.topology.without_links(contingency.failed_links)
        region_a, region_b = sorted(pair)
        for border_a in backbone.routers_in(region_a, "border"):
            for border_b in backbone.routers_in(region_b, "border"):
                assert not failed_topology.links_between(border_a, border_b)


# ----------------------------------------------------------------------
# Failure-aware simulation and derivation
# ----------------------------------------------------------------------
def test_under_failure_blackholes_instead_of_raising():
    """Cutting a stub region off turns its traffic into drops, not errors."""
    backbone = generate_backbone(
        BackboneParams(regions=2, routers_per_group=1, parallel_links=1)
    )
    topology = backbone.topology
    base = Simulator(topology, backbone.config)
    # Sever region r1's agg from its core: traffic to r1's prefixes can
    # reach the border but never the originating agg.
    failed = base.under_failure([("r1-agg0", "r1-core0")])
    prefix = str(backbone.region_prefixes["R1"][0])
    graph = failed.trace("r0-agg0", prefix)
    assert "drop" in graph.nodes
    # The healthy simulator still refuses inconsistent routing outright.
    assert base.drop_unreachable is False
    assert failed.drop_unreachable is True


def test_trace_unchanged_is_sound_and_reuses_objects(world):
    backbone, fecs = world
    base = Simulator(backbone.topology, backbone.config)
    base_snapshot = base.snapshot(fecs, name="base")
    for pair in backbone.topology.link_bundles()[:6]:
        failed = base.under_failure([pair])
        derived = failed.derive_snapshot(base, base_snapshot)
        full = failed.snapshot(fecs, name="full")
        for fec in fecs:
            derived_graph = derived.graph(fec.fec_id)
            assert derived_graph.fingerprint() == full.graph(fec.fec_id).fingerprint()
            if failed.trace_unchanged(base, fec.ingress, fec.dst_prefix):
                # Reuse is by object identity: the baseline's interned graph.
                assert derived_graph is base_snapshot.graph(fec.fec_id)


def test_snapshot_with_shared_store_interns_across_snapshots(world):
    backbone, fecs = world
    from repro.snapshots.graphstore import GraphStore

    store = GraphStore()
    sim = Simulator(backbone.topology, backbone.config)
    first = sim.snapshot(fecs, name="a", store=store)
    second = sim.snapshot(fecs, name="b", store=store)
    assert first.store is store and second.store is store
    for fec in fecs:
        assert first.graph_ref(fec.fec_id) == second.graph_ref(fec.fec_id)
    with pytest.raises(SnapshotError):
        # Shared stores do not bypass the duplicate-FEC guard.
        first.add(fecs[0], first.graph(fecs[0].fec_id))


# ----------------------------------------------------------------------
# Sweep driver semantics
# ----------------------------------------------------------------------
def test_sweep_prepends_baseline_once(world):
    backbone, _ = world
    scenario = drain_sweep_scenario(backbone, num_fecs=24)
    contingencies = single_link_failures(
        backbone.topology, candidates=backbone.topology.link_bundles()[:2]
    )
    sweep = scenario.sweep(contingencies).run()
    assert sweep.results[0].contingency.is_baseline
    assert sweep.contingencies == 3
    explicit = scenario.sweep([baseline_contingency()] + contingencies).run()
    assert explicit.contingencies == 3
    without = scenario.sweep(contingencies, include_baseline=False).run()
    assert without.contingencies == 2
    with pytest.raises(VerificationError):
        ContingencySweep(
            backbone.topology,
            backbone.config,
            scenario.fecs,
            scenario.change,
            scenario.spec,
            [],
            include_baseline=False,
        )


def test_drain_sweep_rejects_interface_granularity(world):
    """A router-name rename matches nothing in interface graphs: refuse it
    instead of sweeping a vacuous change that would pass even when buggy."""
    from repro.errors import WorkloadError

    backbone, _ = world
    with pytest.raises(WorkloadError, match="interface-level"):
        drain_sweep_scenario(backbone, num_fecs=12, granularity=Granularity.INTERFACE)


def test_sweep_report_accounting(world):
    backbone, _ = world
    scenario = drain_sweep_scenario(backbone, num_fecs=48, granularity=Granularity.ROUTER)
    sweep = scenario.sweep(single_link_failures(backbone.topology)).run()
    assert sweep.contingencies == len(backbone.topology.link_bundles()) + 1
    assert sweep.naive_checks == sum(r.report.unique_checks for r in sweep.results)
    assert sweep.executed_checks + sweep.cached_checks == sweep.naive_checks
    assert sweep.dedup_ratio == pytest.approx(sweep.naive_checks / sweep.executed_checks)
    assert sweep.distinct_graphs > 0
    assert sweep.elapsed_seconds >= sweep.derive_seconds
    assert not sweep.expectation_mismatches
    for result in sweep.results:
        assert result.holds == result.expected_holds


def test_most_violating_orders_by_impact(world):
    backbone, _ = world
    scenario = drain_sweep_scenario(
        backbone, num_fecs=48, granularity=Granularity.ROUTER, buggy=True
    )
    sweep = scenario.sweep(
        single_link_failures(
            backbone.topology, candidates=backbone.topology.link_bundles()[:4]
        )
    ).run()
    worst = sweep.most_violating(3)
    assert worst, "the buggy drain must violate under some contingency"
    counts = [result.report.violating_fecs for result in worst]
    assert counts == sorted(counts, reverse=True)
    assert all(not result.holds for result in worst)
    assert not sweep.expectation_mismatches


# ----------------------------------------------------------------------
# The differential oracle: sweep vs naive per-contingency one-shots
# ----------------------------------------------------------------------
def naive_reports(backbone, scenario, contingencies, options):
    """Independently simulate and one-shot verify every contingency."""
    outcomes = []
    for contingency in contingencies:
        if contingency.is_baseline:
            sim = Simulator(backbone.topology, backbone.config)
        else:
            sim = Simulator(backbone.topology, backbone.config).under_failure(
                contingency.failed_links
            )
        pre = sim.snapshot(
            scenario.fecs,
            name=f"naive-pre@{contingency.contingency_id}",
            granularity=scenario.granularity,
        )
        post, expected = scenario.change(pre)
        report = verify_change(
            pre, post, scenario.spec, db=backbone.location_db(), options=options
        )
        outcomes.append((contingency, report, expected))
    return outcomes


@pytest.mark.parametrize(
    "workers,memoize",
    [(1, True), (1, False), (2, True)],
    ids=["serial", "memoize-off", "workers"],
)
def test_sweep_differential_against_naive_loop(world, workers, memoize):
    """Randomized sweeps pinned byte-identical to naive one-shot loops."""
    backbone, _ = world
    rng = random.Random(97 + workers + (0 if memoize else 1))
    bundles = backbone.topology.link_bundles()
    scenarios = generate_sweep_scenarios(
        backbone, count=3, num_fecs=48, granularity=Granularity.ROUTER, seed=rng.randrange(2**16)
    )
    saw_violation = False
    for scenario in scenarios:
        candidates = sorted(rng.sample(bundles, rng.randint(3, 5)))
        if rng.random() < 0.5:
            contingencies = single_link_failures(backbone.topology, candidates=candidates)
        else:
            contingencies = k_link_failures(
                backbone.topology, 2, candidates=candidates, limit=5
            )
        options = VerificationOptions(workers=workers, memoize_fec_checks=memoize)
        sweep = scenario.sweep(contingencies, options=options).run()
        naive = naive_reports(
            backbone, scenario, [r.contingency for r in sweep.results], options
        )
        assert not sweep.expectation_mismatches
        for result, (contingency, naive_report, naive_expected) in zip(
            sweep.results, naive
        ):
            context = f"{scenario.scenario_id}/{contingency.contingency_id}"
            assert result.contingency is contingency
            assert result.expected_holds == naive_expected, context
            assert report_facts(result.report) == report_facts(naive_report), context
            # The distinct-combination count is a property of the change,
            # not of the cache: both engines must agree on it.
            assert result.report.unique_checks == naive_report.unique_checks, context
            assert naive_report.cached_checks == 0
            saw_violation = saw_violation or not result.holds
        if memoize:
            assert sweep.cached_checks > 0, "the sweep must share verdicts"
    assert saw_violation, "the matrix must exercise violating reports"


def test_sweep_differential_at_group_granularity(world):
    """The absorbed regime: group-level reports still match naive runs."""
    backbone, _ = world
    scenario = drain_sweep_scenario(backbone, num_fecs=48, granularity=Granularity.GROUP)
    contingencies = single_link_failures(
        backbone.topology, candidates=backbone.topology.link_bundles()[:6]
    )
    contingencies += interconnect_maintenance_sets(backbone)
    options = VerificationOptions(granularity=Granularity.GROUP)
    sweep = scenario.sweep(contingencies, options=options).run()
    naive = naive_reports(
        backbone, scenario, [r.contingency for r in sweep.results], options
    )
    for result, (contingency, naive_report, _expected) in zip(sweep.results, naive):
        assert report_facts(result.report) == report_facts(naive_report), (
            contingency.contingency_id
        )
    assert not sweep.expectation_mismatches
