"""Interned dedup-first engine vs per-FEC checking: reports must be identical.

The dedup-first engine groups FECs by interned graph refs and checks each
distinct (spec, pre graph, post graph) combination once
(``memoize_fec_checks=True``, the default); with the option off every FEC is
checked independently, exactly like the pre-interning engine.  Both paths
must produce byte-identical reports — verdicts, per-branch violation counts,
counterexample attribution and witness sets — over the whole 60-scenario
change dataset, and the worker path (graphs shipped once via the
id-indexed table) must agree with the serial path.
"""

from __future__ import annotations

import pytest

from repro.verifier import VerificationOptions, verify_change
from repro.workloads.backbone import BackboneParams, generate_backbone
from repro.workloads.changes import generate_change_dataset, no_change, traffic_shift
from repro.workloads.traffic import generate_fecs


@pytest.fixture(scope="module")
def bench_backbone():
    """The benchmark backbone the 60-scenario dataset is defined over."""
    backbone = generate_backbone(
        BackboneParams(regions=4, routers_per_group=2, parallel_links=2, prefixes_per_region=2)
    )
    fecs = generate_fecs(backbone, max_classes=24)
    snapshot = backbone.simulator().snapshot(fecs, name="pre")
    return backbone, snapshot


@pytest.fixture(scope="module")
def dataset(bench_backbone):
    backbone, snapshot = bench_backbone
    return generate_change_dataset(backbone, snapshot, count=60, seed=23)


def report_facts(report) -> dict:
    """Everything observable about a report, in canonical order."""
    return {
        "holds": report.holds,
        "total_fecs": report.total_fecs,
        "violating_fecs": report.violating_fecs,
        "branch_violation_counts": dict(report.branch_violation_counts),
        "counterexamples": [
            {
                "fec_id": ce.fec_id,
                "fec_description": ce.fec_description,
                "pre_paths": list(ce.pre_paths),
                "post_paths": list(ce.post_paths),
                "violations": [
                    {
                        "branch": violation.branch,
                        "expected": sorted(violation.expected),
                        "observed": sorted(violation.observed),
                    }
                    for violation in ce.violations
                ],
            }
            for ce in report.counterexamples
        ],
    }


def test_interning_on_vs_off_identical_over_dataset(bench_backbone, dataset):
    backbone, _snapshot = bench_backbone
    db = backbone.location_db()
    interned = VerificationOptions(memoize_fec_checks=True)
    independent = VerificationOptions(memoize_fec_checks=False)
    for scenario in dataset:
        with_interning = verify_change(
            scenario.pre, scenario.post, scenario.spec, db=db, options=interned
        )
        without = verify_change(
            scenario.pre, scenario.post, scenario.spec, db=db, options=independent
        )
        assert with_interning.holds == scenario.expect_holds, scenario.change_id
        assert report_facts(with_interning) == report_facts(without), scenario.change_id
        # Dedup never checks more than once per FEC, and the non-interned
        # path checks exactly once per FEC.
        assert with_interning.unique_checks <= without.unique_checks
        assert without.unique_checks == without.total_fecs


def test_worker_path_matches_serial_with_violations(bench_backbone):
    """Parallel workers (graph table + id batches) agree with the serial path,
    including counterexample detail for memoized violating groups."""
    backbone, snapshot = bench_backbone
    db = backbone.location_db()
    scenario = traffic_shift(
        snapshot,
        backbone.routers_in("R1", "border"),
        backbone.routers_in("R2", "border"),
        buggy_leave_unmoved=2,
        buggy_collateral=1,
    )
    serial = verify_change(scenario.pre, scenario.post, scenario.spec, db=db)
    parallel = verify_change(
        scenario.pre,
        scenario.post,
        scenario.spec,
        db=db,
        options=VerificationOptions(workers=2),
    )
    assert not serial.holds
    assert report_facts(serial) == report_facts(parallel)


def test_worker_path_matches_serial_nochange(bench_backbone):
    backbone, snapshot = bench_backbone
    db = backbone.location_db()
    scenario = no_change(snapshot)
    serial = verify_change(scenario.pre, scenario.post, scenario.spec, db=db)
    parallel = verify_change(
        scenario.pre,
        scenario.post,
        scenario.spec,
        db=db,
        options=VerificationOptions(workers=2, memoize_fec_checks=False),
    )
    assert serial.holds and parallel.holds
    assert report_facts(serial) == report_facts(parallel)
