"""Fault-injection differential suite for the resilient execution runtime.

The resilience contract (``repro/verifier/runtime.py``): under ANY fault
schedule — transient check exceptions, hung checks, worker crashes, poison
checks that never stop failing — verification completes without an
unhandled exception, and the resulting report is *equivalent to the clean
run modulo honestly-flagged unknowns*: every class the runtime does not
list in ``failed_checks`` has exactly the outcome (pass or byte-identical
counterexample) the clean run gives it, and every class it could not
complete is flagged, counted, and excluded from the ``holds`` proof.

Faults are injected with the deterministic plans in
:mod:`repro.testing.faults` at the same seam real failures pass through,
and swept across the serial path, the worker-pool path (including pool
rebuild + bisection after ``BrokenProcessPool``), the session layer
(verdict-cache purity), and contingency sweeps.  The seeded-schedule
differential at the bottom is the stress leg CI widens via
``STRESS_FAULT_SEEDS``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.errors import DegradedExecutionError
from repro.rela.parser import parse_program
from repro.testing.faults import POISON, Fault, FaultPlan, seeded_fault_plan
from repro.verifier import (
    VerificationOptions,
    VerificationSession,
    single_link_failures,
    verify_change,
)
from repro.verifier.report import StreamReport, VerificationReport
from repro.verifier.runtime import CheckFailure
from repro.workloads.backbone import BackboneParams, generate_backbone
from repro.workloads.contingencies import drain_sweep_scenario
from repro.workloads.scale import scale_fec_list


@pytest.fixture(scope="module")
def world():
    backbone = generate_backbone(
        BackboneParams(regions=3, routers_per_group=2, parallel_links=1, prefixes_per_region=2)
    )
    fecs = scale_fec_list(backbone, num_fecs=48)
    sim = backbone.simulator()
    pre = sim.snapshot(fecs, name="pre")
    post = sim.snapshot(fecs, name="post")
    spec = parse_program("spec change := { .* : preserve ; }").spec("change")
    return pre, post, spec


def options_for(workers: int, **overrides) -> VerificationOptions:
    """Fault-suite options: no backoff sleeps, one check per FEC.

    ``memoize_fec_checks=False`` turns every FEC into its own work item, so
    the worker path gets real multi-item batches to crash, bisect and
    re-submit (48 items / (2 workers * 4) = 6 per batch).
    """
    defaults = dict(workers=workers, retry_backoff=0.0, memoize_fec_checks=False)
    defaults.update(overrides)
    return VerificationOptions(**defaults)


def report_facts(report: VerificationReport) -> dict:
    """Everything verdict-observable about a report, in canonical order."""
    return {
        "holds": report.holds,
        "verdict": report.verdict,
        "total_fecs": report.total_fecs,
        "violating_fecs": report.violating_fecs,
        "unknown_fecs": report.unknown_fecs,
        "branch_violation_counts": dict(report.branch_violation_counts),
        "counterexamples": [
            (ce.fec_id, ce.fec_description, tuple(ce.pre_paths), tuple(ce.post_paths))
            for ce in report.counterexamples
        ],
        "failed": [(f.fec_id, f.reason) for f in report.failed_checks],
    }


def assert_equivalent_modulo_unknown(
    clean: VerificationReport, faulted: VerificationReport
) -> None:
    """The resilience contract's report comparison.

    With no unknowns the faulted report must be byte-identical to the
    clean one; otherwise the only admissible difference is the honestly
    flagged unknown entries (which subtract their classes from the clean
    run's counterexample list and from the ``holds`` proof).
    """
    unknown = {failure.fec_id for failure in faulted.failed_checks}
    assert faulted.unknown_fecs == len(faulted.failed_checks)
    assert faulted.total_fecs == clean.total_fecs
    if not unknown:
        assert report_facts(faulted) == report_facts(clean)
        return
    assert faulted.degraded
    assert not faulted.holds
    expected_ces = [
        (ce.fec_id, ce.fec_description, tuple(ce.pre_paths), tuple(ce.post_paths))
        for ce in clean.counterexamples
        if ce.fec_id not in unknown
    ]
    actual_ces = [
        (ce.fec_id, ce.fec_description, tuple(ce.pre_paths), tuple(ce.post_paths))
        for ce in faulted.counterexamples
    ]
    assert actual_ces == expected_ces
    assert faulted.violating_fecs == len(expected_ces)
    assert faulted.verdict == ("violated" if expected_ces else "unknown")
    # Each unknown class is flagged exactly once.
    assert len(unknown) == len(faulted.failed_checks)


# ----------------------------------------------------------------------
# Clean runs: the resilience layer must be invisible without faults
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [1, 2])
def test_resilience_options_do_not_change_clean_reports(world, workers):
    pre, post, spec = world
    baseline = verify_change(pre, post, spec, options=options_for(1))
    guarded = verify_change(
        pre,
        post,
        spec,
        options=options_for(workers, check_timeout=30.0, max_retries=3),
    )
    assert report_facts(guarded) == report_facts(baseline)
    assert not guarded.degraded
    assert guarded.pool_rebuilds == 0
    assert guarded.retried_checks == 0
    assert not guarded.serial_fallback
    # Summaries match modulo the (run-dependent) wall-clock figure.
    assert guarded.summary().split("(")[0] == baseline.summary().split("(")[0]


# ----------------------------------------------------------------------
# Transient failures: retries clear them, the report is byte-identical
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [1, 2])
def test_transient_errors_clear_after_retry(world, workers):
    pre, post, spec = world
    clean = verify_change(pre, post, spec, options=options_for(workers))
    plan = FaultPlan((Fault(kind="error", fec_id=None, attempts=1),))
    faulted = verify_change(
        pre, post, spec, options=options_for(workers, fault_plan=plan)
    )
    assert report_facts(faulted) == report_facts(clean)
    assert faulted.retried_checks > 0
    assert not faulted.degraded


def test_worker_crash_recovers_by_pool_rebuild(world):
    pre, post, spec = world
    clean = verify_change(pre, post, spec, options=options_for(2))
    victim = pre.fec_ids()[0]
    plan = FaultPlan((Fault(kind="crash", fec_id=victim, attempts=1),))
    faulted = verify_change(
        pre, post, spec, options=options_for(2, fault_plan=plan)
    )
    assert report_facts(faulted) == report_facts(clean)
    assert faulted.pool_rebuilds >= 1
    assert not faulted.degraded


# ----------------------------------------------------------------------
# Poison failures: honest unknown verdicts, everything else unaffected
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [1, 2])
def test_poison_error_degrades_to_unknown(world, workers):
    pre, post, spec = world
    clean = verify_change(pre, post, spec, options=options_for(workers))
    victim = pre.fec_ids()[0]
    plan = FaultPlan((Fault(kind="error", fec_id=victim, attempts=POISON),))
    faulted = verify_change(
        pre, post, spec, options=options_for(workers, fault_plan=plan)
    )
    assert_equivalent_modulo_unknown(clean, faulted)
    assert {failure.fec_id for failure in faulted.failed_checks} == {victim}
    assert faulted.failed_checks[0].reason == "error"
    assert "InjectedFault" in faulted.failed_checks[0].detail
    assert faulted.degraded


def test_serial_crash_simulation_degrades_to_unknown(world):
    pre, post, spec = world
    victim = pre.fec_ids()[0]
    plan = FaultPlan((Fault(kind="crash", fec_id=victim, attempts=POISON),))
    faulted = verify_change(
        pre, post, spec, options=options_for(1, fault_plan=plan)
    )
    assert {failure.fec_id for failure in faulted.failed_checks} == {victim}
    assert faulted.failed_checks[0].reason == "crash"


def test_worker_poison_crash_is_bisected_and_isolated(world):
    """A check that kills every worker that touches it must cost only its
    own verdict: the batch siblings it repeatedly took down with it are
    re-executed (bisection), and only the proven killer goes unknown."""
    pre, post, spec = world
    clean = verify_change(pre, post, spec, options=options_for(2))
    victim = pre.fec_ids()[0]
    plan = FaultPlan((Fault(kind="crash", fec_id=victim, attempts=POISON),))
    faulted = verify_change(
        pre, post, spec, options=options_for(2, fault_plan=plan)
    )
    assert_equivalent_modulo_unknown(clean, faulted)
    assert {failure.fec_id for failure in faulted.failed_checks} == {victim}
    assert faulted.failed_checks[0].reason == "crash"
    assert faulted.pool_rebuilds >= 1
    assert faulted.degraded


def test_hang_is_interrupted_by_the_check_deadline(world):
    pre, post, spec = world
    victim = pre.fec_ids()[0]
    plan = FaultPlan((Fault(kind="hang", fec_id=victim, attempts=POISON, delay=30.0),))
    started = time.perf_counter()
    faulted = verify_change(
        pre,
        post,
        spec,
        options=options_for(1, fault_plan=plan, check_timeout=0.2, max_retries=1),
    )
    elapsed = time.perf_counter() - started
    assert {failure.fec_id for failure in faulted.failed_checks} == {victim}
    assert faulted.failed_checks[0].reason == "timeout"
    # Two attempts at a 0.2s budget, not one 30s nap per attempt.
    assert elapsed < 10.0


# ----------------------------------------------------------------------
# Degradation policy: --no-degrade aborts instead of recording unknowns
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [1, 2])
def test_no_degrade_raises_instead_of_unknown(world, workers):
    pre, post, spec = world
    victim = pre.fec_ids()[0]
    plan = FaultPlan((Fault(kind="error", fec_id=victim, attempts=POISON),))
    with pytest.raises(DegradedExecutionError):
        verify_change(
            pre,
            post,
            spec,
            options=options_for(workers, fault_plan=plan, allow_degraded=False),
        )


# ----------------------------------------------------------------------
# Session layer: unknowns are never cached as verdicts
# ----------------------------------------------------------------------
def test_check_failures_never_enter_the_verdict_cache(world):
    pre, post, spec = world
    victim = pre.fec_ids()[0]
    plan = FaultPlan((Fault(kind="error", fec_id=victim, attempts=POISON),))
    options = VerificationOptions(workers=1, retry_backoff=0.0, fault_plan=plan)
    session = VerificationSession(pre, spec, options=options)
    report = session.advance(post)
    assert report.unknown_fecs >= 1
    assert report.degraded
    # Every *completed* unique check is cached; the failed one is not — the
    # next epoch must re-execute it rather than be served a stale failure.
    assert session.cached_verdicts == report.unique_checks - 1
    assert not any(
        isinstance(verdict, CheckFailure) for verdict in session._verdicts.values()
    )


def test_stream_report_accounts_degraded_epochs():
    stream = StreamReport()
    ok = VerificationReport()
    ok.record(None)
    stream.record(ok)
    assert stream.holds and stream.verdict == "holds"

    degraded = VerificationReport()
    degraded.record(CheckFailure(fec_id="fec-1", fec_description="fec-1", reason="crash"))
    stream.record(degraded)
    assert not stream.holds
    assert stream.verdict == "unknown"
    assert stream.degraded and stream.degraded_epochs == 1
    assert stream.violating_epochs == 0
    assert stream.unknown_fecs == 1
    assert stream.summary().startswith("UNKNOWN (1 degraded epochs)")


# ----------------------------------------------------------------------
# Sweeps: a poisoned sweep completes and names what it could not prove
# ----------------------------------------------------------------------
def test_sweep_completes_under_poison_and_names_unproven():
    backbone = generate_backbone(
        BackboneParams(regions=3, routers_per_group=2, parallel_links=1, prefixes_per_region=2)
    )
    scenario = drain_sweep_scenario(backbone, num_fecs=16)
    contingencies = single_link_failures(backbone.topology)[:2]

    clean_sweep = scenario.sweep(
        contingencies, options=VerificationOptions(granularity=scenario.granularity)
    ).run()
    assert not clean_sweep.degraded

    # The first FEC is the first member of its dedup group in every epoch,
    # so with memoization on it is always the representative that actually
    # carries the check the fault plan targets.
    victim = scenario.fecs[0].fec_id
    plan = FaultPlan((Fault(kind="error", fec_id=victim, attempts=POISON),))
    options = VerificationOptions(
        granularity=scenario.granularity, retry_backoff=0.0, fault_plan=plan
    )
    sweep = scenario.sweep(contingencies, options=options).run()

    # The sweep finishes every contingency despite the poison check...
    assert sweep.contingencies == clean_sweep.contingencies
    assert sweep.degraded
    assert sweep.failed_checks >= 1
    # ...and the per-contingency reports are clean-equivalent modulo the
    # flagged unknowns.
    for clean_result, result in zip(clean_sweep.results, sweep.results):
        assert_equivalent_modulo_unknown(clean_result.report, result.report)
    unproven = sweep.unproven()
    assert all(result.verdict == "unknown" for result in unproven)
    if clean_sweep.holds:
        assert {result.contingency.contingency_id for result in unproven} == {
            result.contingency.contingency_id
            for result in sweep.results
            if result.report.unknown_fecs
        }
        assert "UNKNOWN" in sweep.summary() or sweep.violating_contingencies


# ----------------------------------------------------------------------
# Seeded schedules: the stress-leg differential (CI: STRESS_FAULT_SEEDS)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(int(os.environ.get("STRESS_FAULT_SEEDS", "3"))))
def test_seeded_fault_schedules_match_clean_modulo_unknown(world, seed):
    pre, post, spec = world
    workers = 2 if seed % 2 else 1
    clean = verify_change(pre, post, spec, options=options_for(workers))
    plan = seeded_fault_plan(
        seed,
        pre.fec_ids(),
        error_rate=0.15,
        crash_rate=0.08,
        poison_rate=0.25,
        max_transient_attempts=2,
    )
    faulted = verify_change(
        pre, post, spec, options=options_for(workers, fault_plan=plan)
    )
    assert_equivalent_modulo_unknown(clean, faulted)
    # Only checks a fault rule targeted may go unknown, and only the
    # never-clearing (poison) rules at that: transient rules stop firing
    # within the retry/rebuild budget.
    poison_ids = {
        fault.fec_id for fault in plan.faults if fault.attempts >= POISON
    }
    assert {failure.fec_id for failure in faulted.failed_checks} <= poison_ids
