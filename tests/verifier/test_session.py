"""Session-vs-one-shot equivalence: the invariant the session layer rests on.

A stream of N changes verified through one
:class:`~repro.verifier.session.VerificationSession` must produce reports
byte-identical — verdicts, per-branch violation counts, counterexample
attribution and witness sets — to N independent ``verify_change`` calls
over the same epochs, whatever the cache absorbed.  The tests walk seeded
multi-epoch streams (drain/restore cycles, prefix-migration waves, link
flaps, buggy variants included) with the session and the one-shot engine
side by side, then pin the cache/eviction mechanics separately.
"""

from __future__ import annotations

import pytest

from repro.verifier import (
    VerificationOptions,
    VerificationSession,
    verify_change,
    verify_stream,
)
from repro.workloads.backbone import BackboneParams, generate_backbone
from repro.workloads.stream import (
    flapping_link_stream,
    prefix_migration_stream,
    rolling_drain_stream,
)
from repro.workloads.traffic import generate_fecs


@pytest.fixture(scope="module")
def stream_world():
    backbone = generate_backbone(
        BackboneParams(regions=4, routers_per_group=2, parallel_links=2, prefixes_per_region=2)
    )
    fecs = generate_fecs(backbone)
    initial = backbone.simulator().snapshot(fecs, name="initial")
    return backbone, initial


@pytest.fixture(scope="module")
def mixed_stream(stream_world):
    """A seeded multi-epoch dataset walking every stream family.

    Each family starts and (for the chained ones) ends at the initial
    snapshot, so the concatenation is one connected stream a single session
    can walk.  Buggy epochs are included on purpose: equivalence must hold
    for violating reports too, where witness sets and attribution carry the
    actual content.
    """
    backbone, initial = stream_world
    rolling = rolling_drain_stream(
        backbone, initial, epochs=8, rotation=2, seed=13, buggy_epochs={4}
    )
    flapping = flapping_link_stream(backbone, initial, flaps=4, seed=13)
    migration = prefix_migration_stream(backbone, initial, waves=2, seed=13, buggy_waves={1})
    return rolling.epochs + flapping.epochs + migration.epochs


def report_facts(report) -> dict:
    """Everything observable about a report, in canonical order."""
    return {
        "holds": report.holds,
        "total_fecs": report.total_fecs,
        "violating_fecs": report.violating_fecs,
        "branch_violation_counts": dict(report.branch_violation_counts),
        "counterexamples": [
            {
                "fec_id": ce.fec_id,
                "fec_description": ce.fec_description,
                "pre_paths": list(ce.pre_paths),
                "post_paths": list(ce.post_paths),
                "violations": [
                    {
                        "branch": violation.branch,
                        "expected": sorted(violation.expected),
                        "observed": sorted(violation.observed),
                    }
                    for violation in ce.violations
                ],
            }
            for ce in report.counterexamples
        ],
    }


def test_session_equivalent_to_independent_verify_change(stream_world, mixed_stream):
    """The acceptance invariant, over every family and buggy epochs."""
    _backbone, initial = stream_world
    session = VerificationSession(initial)
    assert mixed_stream[0].pre is initial
    for epoch in mixed_stream:
        assert epoch.pre is session.current  # the chain is connected
        incremental = session.advance(epoch.post, epoch.spec)
        independent = verify_change(epoch.pre, epoch.post, epoch.spec)
        assert incremental.holds == epoch.expect_holds, epoch.epoch_id
        assert report_facts(incremental) == report_facts(independent), epoch.epoch_id
        # The distinct-combination count is a property of the change, not of
        # the cache: both engines must agree on it (one-shot runs are cold).
        assert incremental.unique_checks == independent.unique_checks, epoch.epoch_id
        assert independent.cached_checks == 0
    # The walk revisited states (restores, flaps), so the cache must have
    # absorbed a meaningful share of the distinct checks.
    assert session.stream.cached_checks > 0
    assert session.stream.epochs == len(mixed_stream)


def test_session_equivalence_without_memoization(stream_world):
    """The per-FEC oracle path (memoize off) rides the session unchanged."""
    backbone, initial = stream_world
    stream = rolling_drain_stream(backbone, initial, epochs=4, rotation=1, seed=3)
    options = VerificationOptions(memoize_fec_checks=False)
    session = VerificationSession(initial, options=options)
    for epoch in stream:
        incremental = session.advance(epoch.post, epoch.spec)
        independent = verify_change(epoch.pre, epoch.post, epoch.spec, options=options)
        assert report_facts(incremental) == report_facts(independent), epoch.epoch_id
        # No dedup, hence no sharing and nothing cached across epochs.
        assert incremental.cached_checks == 0
        assert incremental.unique_checks == incremental.total_fecs


def test_session_worker_path_matches_serial(stream_world):
    """Worker pools inside a session agree with the serial session,
    including violating epochs whose counterexamples cross the pool."""
    backbone, initial = stream_world
    stream = rolling_drain_stream(
        backbone, initial, epochs=4, rotation=2, seed=13, buggy_epochs={2}
    )
    serial = VerificationSession(initial)
    parallel = VerificationSession(initial, options=VerificationOptions(workers=2))
    for epoch in stream:
        serial_report = serial.advance(epoch.post, epoch.spec)
        parallel_report = parallel.advance(epoch.post, epoch.spec)
        assert report_facts(serial_report) == report_facts(parallel_report), epoch.epoch_id
    assert not serial.stream.holds  # the buggy epoch tripped


def test_recurring_epochs_are_pure_cache_hits(stream_world):
    backbone, initial = stream_world
    stream = flapping_link_stream(backbone, initial, flaps=6, seed=13)
    session = VerificationSession(initial)
    reports = [session.advance(epoch.post, epoch.spec) for epoch in stream]
    # The first down/up pair does the work; every later flap re-lands on a
    # seen (spec instance, pre ref, post ref) set and executes nothing.
    for report in reports[:2]:
        assert report.cached_checks == 0
    for report in reports[2:]:
        assert report.cached_checks == report.unique_checks
        assert report.executed_checks == 0
    assert session.stream.cache_hit_rate > 0.5


def test_verify_change_is_a_cold_session_of_length_one(stream_world):
    backbone, initial = stream_world
    stream = rolling_drain_stream(backbone, initial, epochs=1, rotation=1, seed=13)
    epoch = stream.epochs[0]
    report = verify_change(epoch.pre, epoch.post, epoch.spec)
    assert report.cached_checks == 0
    assert report.unique_checks > 0
    session = VerificationSession(initial)
    assert report_facts(session.advance(epoch.post, epoch.spec)) == report_facts(report)


def test_verify_stream_driver(stream_world):
    backbone, initial = stream_world
    stream = flapping_link_stream(backbone, initial, flaps=4, seed=13)
    result = verify_stream(initial, ((epoch.post, epoch.spec) for epoch in stream))
    assert result.holds
    assert result.epochs == 4
    assert result.cached_checks > 0
    assert result.summary().startswith("PASS")


def test_graph_budget_eviction_keeps_reports_correct(stream_world):
    """Compaction trades cache warmth for memory, never correctness."""
    backbone, initial = stream_world
    stream = flapping_link_stream(backbone, initial, flaps=6, seed=13)
    budget = initial.distinct_graph_count() + 2
    session = VerificationSession(initial, graph_budget=budget)
    for epoch in stream:
        incremental = session.advance(epoch.post, epoch.spec)
        independent = verify_change(epoch.pre, epoch.post, epoch.spec)
        assert report_facts(incremental) == report_facts(independent), epoch.epoch_id
        assert len(session.store) <= budget + initial.distinct_graph_count()
    # Eviction dropped verdicts for evicted graphs, so unlike the unbounded
    # session the stream could not be all-cached after the first pair...
    unbounded = VerificationSession(initial)
    for epoch in stream:
        unbounded.advance(epoch.post, epoch.spec)
    assert session.stream.cached_checks <= unbounded.stream.cached_checks
    # ...but every verdict that was served stayed correct (asserted above).


def test_context_budget_bounds_per_epoch_spec_streams(stream_world):
    """Streams minting a fresh spec per epoch (migration waves) stay bounded."""
    backbone, initial = stream_world
    stream = prefix_migration_stream(backbone, initial, waves=4, seed=13)
    session = VerificationSession(initial, context_budget=2)
    for epoch in stream:
        incremental = session.advance(epoch.post, epoch.spec)
        independent = verify_change(epoch.pre, epoch.post, epoch.spec)
        assert report_facts(incremental) == report_facts(independent), epoch.epoch_id
        assert session.compiled_contexts <= 2
    # Evicted contexts took their verdicts and spec registrations along;
    # recurring instances still cache within the budget window.
    flaps = flapping_link_stream(backbone, initial, flaps=4, seed=13)
    budgeted = VerificationSession(initial, context_budget=2)
    for epoch in flaps:
        report = budgeted.advance(epoch.post, epoch.spec)
    assert report.cached_checks == report.unique_checks  # still all-cached
    assert budgeted.compiled_contexts == 2


def test_report_history_bounds_retained_reports(stream_world):
    """Totals survive report trimming; only the recent detail is retained."""
    backbone, initial = stream_world
    stream = flapping_link_stream(backbone, initial, flaps=6, seed=13)
    session = VerificationSession(initial, report_history=2)
    for epoch in stream:
        session.advance(epoch.post, epoch.spec)
    assert len(session.stream.epoch_reports) == 2
    assert session.stream.epochs == 6
    assert session.stream.total_fecs == 6 * len(initial)
    assert session.stream.holds
    assert session.stream.cached_checks > 0


def test_session_compact_reports_evictions(stream_world):
    backbone, initial = stream_world
    stream = rolling_drain_stream(backbone, initial, epochs=2, rotation=1, seed=13)
    session = VerificationSession(initial)
    for epoch in stream:
        session.advance(epoch.post, epoch.spec)
    before = len(session.store)
    cached_before = session.cached_verdicts
    evicted = session.compact()
    # The drained state's exclusive graphs are unpinned after the restore.
    assert evicted > 0
    assert len(session.store) == before - evicted
    assert session.cached_verdicts < cached_before
    # The current (initial) state stays pinned and usable.
    final = session.advance(stream.epochs[0].post, stream.epochs[0].spec)
    assert final.holds
