"""Tests for the verification engine, snapshot automata and counterexamples."""

import pytest

from repro.automata import Alphabet
from repro.errors import VerificationError
from repro.rela import (
    DstPrefixWithin,
    PSpec,
    SpecPolicy,
    any_of,
    atomic,
    drop,
    locs,
    nochange,
    seq,
)
from repro.rela.locations import Granularity, LocationDB
from repro.snapshots import FlowEquivalenceClass, ForwardingGraph, build_snapshot, drop_graph
from repro.verifier import (
    VerificationOptions,
    VerificationReport,
    build_alphabet,
    compile_spec,
    render_path,
    render_path_set,
    rewrite_hash,
    StateAutomatonBuilder,
    verify_change,
)


def make_pair(
    pre_paths: dict[str, list[tuple[str, ...]]], post_paths: dict[str, list[tuple[str, ...]]]
):
    def build(name, mapping):
        entries = []
        for fec_id, paths in mapping.items():
            fec = FlowEquivalenceClass(
                fec_id,
                dst_prefix=f"10.0.{len(entries)}.0/24",
                ingress=paths[0][0] if paths else "",
            )
            entries.append((fec, paths))
        return build_snapshot(name, entries)

    return build("pre", pre_paths), build("post", post_paths)


# ----------------------------------------------------------------------
# State automata and alphabets
# ----------------------------------------------------------------------
def test_build_alphabet_collects_all_locations():
    pre, post = make_pair({"f1": [("a", "b")]}, {"f1": [("a", "c")]})
    alphabet = build_alphabet(pre, post, extra_symbols={"zone-only"})
    for name in ("a", "b", "c", "zone-only", "drop", "#"):
        assert name in alphabet


def test_state_builder_granularity_conversion():
    db = LocationDB()
    db.add_router("r1", group="G1")
    db.add_router("r2", group="G1")
    db.add_router("r3", group="G2")
    graph = ForwardingGraph.from_paths([("r1", "r2", "r3")], granularity=Granularity.ROUTER)
    alphabet = Alphabet(["G1", "G2"])
    builder = StateAutomatonBuilder(alphabet=alphabet, granularity=Granularity.GROUP, db=db)
    fsa = builder.build(graph)
    assert fsa.accepts(["G1", "G2"])
    # Refining is impossible.
    coarse = ForwardingGraph.from_paths([("G1", "G2")], granularity=Granularity.GROUP)
    fine_builder = StateAutomatonBuilder(alphabet=alphabet, granularity=Granularity.ROUTER, db=db)
    with pytest.raises(VerificationError):
        fine_builder.build(coarse)
    # Conversion without a database is rejected.
    no_db = StateAutomatonBuilder(alphabet=alphabet, granularity=Granularity.GROUP, db=None)
    with pytest.raises(VerificationError):
        no_db.build(graph)


# ----------------------------------------------------------------------
# Counterexample rendering helpers
# ----------------------------------------------------------------------
def test_render_and_rewrite_helpers():
    assert render_path(("a", "b")) == "a-b"
    assert render_path(()) == "ε"
    assert render_path_set([("a",), ("b", "c")]) == "{a, b-c}"
    assert rewrite_hash(("x", "#", "y"), "A1 A2") == ("x", "A1 A2", "y")
    assert rewrite_hash(("x", "#"), None) == ("x", "#")


# ----------------------------------------------------------------------
# Engine verdicts
# ----------------------------------------------------------------------
def test_verify_nochange_pass_and_fail():
    pre, post = make_pair({"f1": [("a", "b")], "f2": [("c",)]},
                          {"f1": [("a", "b")], "f2": [("c",)]})
    report = verify_change(pre, post, nochange())
    assert report.holds
    assert report.total_fecs == 2
    assert report.violating_fecs == 0
    assert "PASS" in report.summary()

    _pre, bad_post = make_pair({}, {"f1": [("a", "x")], "f2": [("c",)]})
    report = verify_change(pre, bad_post, nochange())
    assert not report.holds
    assert report.violating_fecs == 1
    assert report.violations_for("nochange") == 1
    counterexample = report.counterexamples[0]
    assert counterexample.fec_id == "f1"
    assert ("a", "b") in counterexample.pre_paths
    assert ("a", "x") in counterexample.post_paths
    assert counterexample.branches == ["nochange"]
    assert "nochange" in counterexample.reason()
    assert "FAIL" in report.summary()
    assert "Cause of violation" in report.table()


def test_verify_missing_fec_counts_as_empty():
    pre, post = make_pair({"f1": [("a", "b")]}, {})
    report = verify_change(pre, post, nochange())
    assert not report.holds
    # And the other direction: a brand-new FEC in post.
    pre2, post2 = make_pair({}, {"f9": [("a", "b")]})
    report2 = verify_change(pre2, post2, nochange())
    assert not report2.holds


def test_verify_shift_spec_with_branch_attribution():
    shift = atomic(
        seq(locs({"a"}), locs({"b"})),
        any_of(seq(locs({"a"}), locs({"c"}))),
        name="shift",
    )
    spec = shift.else_(nochange())
    pre, post = make_pair(
        {"moved": [("a", "b")], "other": [("x", "y")]},
        {"moved": [("a", "c")], "other": [("x", "y")]},
    )
    assert verify_change(pre, post, spec).holds

    # Incomplete move: the flow stays on its old path -> shift branch violated.
    _1, unmoved_post = make_pair({}, {"moved": [("a", "b")], "other": [("x", "y")]})
    report = verify_change(pre, unmoved_post, spec)
    assert not report.holds
    assert report.violations_for("shift") == 1
    assert report.violations_for("nochange") == 0

    # Collateral damage: unrelated flow changes -> nochange branch violated.
    _2, collateral_post = make_pair({}, {"moved": [("a", "c")], "other": [("x", "z")]})
    report = verify_change(pre, collateral_post, spec)
    assert not report.holds
    assert report.violations_for("shift") == 0
    assert report.violations_for("nochange") == 1


def test_verify_with_spec_policy_prefix_guard():
    dealloc = atomic(".*", drop(), name="dealloc")
    policy = SpecPolicy(
        default=nochange(),
        guarded=[PSpec(DstPrefixWithin("10.0.0.0/24"), dealloc, name="deallocP")],
    )
    fec_drop = FlowEquivalenceClass("f-drop", dst_prefix="10.0.0.0/24", ingress="a")
    fec_keep = FlowEquivalenceClass("f-keep", dst_prefix="10.1.0.0/24", ingress="a")
    pre = build_snapshot("pre", [(fec_drop, [("a", "b")]), (fec_keep, [("a", "c")])])
    post = build_snapshot("post", [(fec_drop, []), (fec_keep, [("a", "c")])])
    post.replace("f-drop", drop_graph())
    assert verify_change(pre, post, policy).holds

    # Still forwarding the decommissioned prefix violates the dealloc spec.
    bad_post = pre.copy(name="bad-post")
    report = verify_change(pre, bad_post, policy)
    assert not report.holds
    assert report.violations_for("dealloc") == 1


def test_verify_options_counterexample_collection_toggle():
    pre, post = make_pair({"f1": [("a", "b")]}, {"f1": [("a", "x")]})
    options = VerificationOptions(collect_counterexamples=False)
    report = verify_change(pre, post, nochange(), options=options)
    assert not report.holds
    assert report.counterexamples == []
    assert report.violating_fecs == 1


def test_verify_parallel_workers_match_serial():
    pre_paths = {f"f{i}": [("a", "b", f"t{i}")] for i in range(8)}
    post_paths = dict(pre_paths)
    post_paths["f3"] = [("a", "z", "t3")]
    pre, post = make_pair(pre_paths, post_paths)
    serial = verify_change(pre, post, nochange())
    parallel = verify_change(pre, post, nochange(), options=VerificationOptions(workers=2))
    assert serial.holds == parallel.holds is False
    assert serial.violating_fecs == parallel.violating_fecs == 1
    assert parallel.workers == 2


def test_forwarding_graph_fingerprint_is_canonical():
    one = ForwardingGraph.from_paths([("a", "b"), ("a", "c")])
    other = ForwardingGraph.from_paths([("a", "c"), ("a", "b")])
    assert one.fingerprint() == other.fingerprint()
    # Mutation invalidates the cached digest.
    cached = one.fingerprint()
    one.add_path(("a", "d"))
    assert one.fingerprint() != cached
    # Granularity participates in the fingerprint.
    coarse = ForwardingGraph.from_paths([("a", "b"), ("a", "c")], granularity=Granularity.GROUP)
    assert coarse.fingerprint() != other.fingerprint()


def test_verify_memoizes_identical_fec_pairs():
    # Ten FECs share one forwarding behaviour, one differs; the violating FEC
    # must still be attributed to its own identifier even though the memoized
    # check ran on a representative.
    pre_paths = {f"f{i}": [("a", "b")] for i in range(10)}
    post_paths = {f"f{i}": [("a", "b")] for i in range(10)}
    post_paths["f7"] = [("a", "z")]
    pre, post = make_pair(pre_paths, post_paths)
    report = verify_change(pre, post, nochange())
    assert not report.holds
    assert report.total_fecs == 10
    assert report.violating_fecs == 1
    assert report.counterexamples[0].fec_id == "f7"


def test_verify_memoized_counterexamples_are_relabelled_per_fec():
    # Two FECs with the same violating graph pair: one check, two
    # counterexamples, sorted by FEC id.
    pre, post = make_pair(
        {"x2": [("a", "b")], "x1": [("a", "b")]},
        {"x2": [("a", "z")], "x1": [("a", "z")]},
    )
    report = verify_change(pre, post, nochange())
    assert report.violating_fecs == 2
    assert [ce.fec_id for ce in report.counterexamples] == ["x1", "x2"]
    assert report.counterexamples[0].violations[0].branch == "nochange"
    assert report.counterexamples[0].pre_paths == report.counterexamples[1].pre_paths


def test_verify_rejects_bad_spec_type():
    pre, post = make_pair({}, {})
    with pytest.raises(VerificationError):
        verify_change(pre, post, "not a spec")  # type: ignore[arg-type]


def test_compile_spec_marks_preserve_only():
    alphabet = Alphabet(["a"])
    compiled = compile_spec(nochange(), alphabet)
    assert compiled.preserve_only
    assert len(compiled.branches) == 1
    shifted = compile_spec(
        atomic("a", any_of("a")).else_(nochange()), alphabet
    )
    assert not shifted.preserve_only
    assert len(shifted.branches) == 2


def test_report_table_truncation():
    report = VerificationReport()
    pre, post = make_pair(
        {f"f{i}": [("a", str(i))] for i in range(5)},
        {f"f{i}": [("a", "changed")] for i in range(5)},
    )
    report = verify_change(pre, post, nochange())
    table = report.table(max_rows=2)
    assert "more counterexamples" in table
