"""Combinatorial sweep scale-out: incremental derivation, shards, first-worst.

Three mechanisms let ``ContingencySweep`` take on the k=2/k=3 failure
spaces, and each carries a byte-identity obligation this suite pins:

* **Incremental lattice derivation** — a k-failure snapshot derived from
  its (k−1)-failure parent must be content-identical to the from-baseline
  scan (and to full re-simulation), at every k.  A stale ``under_failure``
  memo or an unsound changed-router criterion shows up here first.
* **Sharded speculative execution** — ``run(shards=N)`` must produce a
  report byte-for-byte equal to the serial run's, across shard counts,
  worker counts and memoization settings; shard death only costs time.
* **Prioritized first-worst search** — ``run(first_worst=True)`` is a
  search *order*, not a semantics change: run to completion it must agree
  with the exhaustive sweep on every order-independent fact, and the
  ``on_contingency`` callback must see every unit and be able to stop the
  sweep early (composably with checkpoint/resume).
"""

from __future__ import annotations

import itertools

import pytest

from repro.errors import VerificationError
from repro.network.simulator import Simulator, group_fec_combos
from repro.rela.locations import Granularity
from repro.verifier import VerificationOptions, k_link_failures, single_link_failures
from repro.verifier.contingency import _ReplayRunner
from repro.workloads.backbone import BackboneParams, generate_backbone
from repro.workloads.contingencies import (
    drain_sweep_scenario,
    intra_region_bundles,
    refactor_sweep_scenario,
)
from repro.workloads.traffic import generate_fecs


def report_facts(report) -> dict:
    """Everything observable about a per-contingency report."""
    return {
        "holds": report.holds,
        "total_fecs": report.total_fecs,
        "violating_fecs": report.violating_fecs,
        "branch_violation_counts": dict(report.branch_violation_counts),
        "counterexamples": [
            {
                "fec_id": ce.fec_id,
                "fec_description": ce.fec_description,
                "pre_paths": list(ce.pre_paths),
                "post_paths": list(ce.post_paths),
            }
            for ce in report.counterexamples
        ],
    }


@pytest.fixture(scope="module")
def world():
    backbone = generate_backbone(
        BackboneParams(regions=4, routers_per_group=2, parallel_links=2, prefixes_per_region=2)
    )
    fecs = generate_fecs(backbone)
    return backbone, fecs


def sweep_facts(report) -> dict:
    """Everything order- and timing-independent about a sweep report."""
    return {
        "results": [
            (
                result.contingency.contingency_id,
                result.expected_holds,
                report_facts(result.report),
                result.report.unique_checks,
            )
            for result in sorted(
                report.results, key=lambda r: r.contingency.contingency_id
            )
        ],
        "distinct_graphs": report.distinct_graphs,
        "naive_checks": report.naive_checks,
        "executed_checks": report.executed_checks,
        "cached_checks": report.cached_checks,
    }


# ----------------------------------------------------------------------
# Incremental derivation: parent-derived == from-baseline == re-simulated
# ----------------------------------------------------------------------
@pytest.mark.parametrize("k", [2, 3])
def test_incremental_derivation_is_byte_identical(world, k):
    """The memo-staleness regression test: chained ``under_failure`` +
    parent-derived snapshots must match the from-baseline scan and full
    re-simulation, fingerprint for fingerprint, at k=2 and k=3."""
    backbone, fecs = world
    base = Simulator(backbone.topology, backbone.config)
    base_snapshot = base.snapshot(fecs, name="base")
    combos = group_fec_combos(fecs)
    candidates = intra_region_bundles(backbone)[:3]
    for links in itertools.combinations(candidates, k):
        # Derive the parent chain incrementally, one link at a time.
        parent: tuple[Simulator, object] | None = None
        for depth in range(1, k + 1):
            prefix = links[:depth]
            sim = base.under_failure(prefix)
            incremental = sim.derive_snapshot(
                base, base_snapshot, combos=combos, parent=parent
            )
            parent = (sim, incremental)
        from_baseline = base.under_failure(links).derive_snapshot(
            base, base_snapshot, combos=combos
        )
        resimulated = base.under_failure(links).snapshot(fecs, name="resim")
        assert parent is not None
        for fec in fecs:
            fp = parent[1].graph(fec.fec_id).fingerprint()
            assert fp == from_baseline.graph(fec.fec_id).fingerprint(), fec.fec_id
            assert fp == resimulated.graph(fec.fec_id).fingerprint(), fec.fec_id


@pytest.mark.parametrize("buggy", [False, True], ids=["clean", "buggy"])
def test_incremental_sweep_equals_legacy_sweep(world, buggy):
    """The sweep-level differential: ``incremental=True`` (the default
    lattice path) and ``incremental=False`` (from-baseline derivation)
    agree on every report fact, dedup accounting included."""
    backbone, _ = world
    candidates = intra_region_bundles(backbone)
    contingencies = single_link_failures(backbone.topology, candidates=candidates)
    contingencies += k_link_failures(backbone.topology, 2, candidates=candidates, limit=4)

    def run(incremental):
        scenario = drain_sweep_scenario(backbone, num_fecs=96, buggy=buggy)
        return scenario.sweep(list(contingencies), incremental=incremental).run()

    assert sweep_facts(run(True)) == sweep_facts(run(False))


# ----------------------------------------------------------------------
# Sharded speculative execution: byte-identical to serial
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "shards,workers,memoize",
    [(2, 1, True), (4, 1, True), (2, 2, True), (2, 1, False)],
    ids=["shards2", "shards4", "shards2-workers2", "shards2-memoize-off"],
)
def test_sharded_sweep_equals_serial_sweep(world, shards, workers, memoize):
    backbone, _ = world
    candidates = intra_region_bundles(backbone)
    contingencies = single_link_failures(backbone.topology, candidates=candidates)
    contingencies += k_link_failures(backbone.topology, 2, candidates=candidates, limit=4)
    options = VerificationOptions(
        granularity=Granularity.GROUP, workers=workers, memoize_fec_checks=memoize
    )

    def run(n):
        scenario = drain_sweep_scenario(backbone, num_fecs=96, buggy=True)
        report = scenario.sweep(list(contingencies), options=options).run(shards=n)
        assert report.shards == n
        return report

    serial, sharded = run(1), run(shards)
    assert sweep_facts(sharded) == sweep_facts(serial)
    # Execution order is also preserved, not just the sorted facts.
    assert [r.contingency.contingency_id for r in sharded.results] == [
        r.contingency.contingency_id for r in serial.results
    ]


def test_shards_speculate_and_serve_verdicts(world, monkeypatch):
    """With memoization on, the sharded run's serial phase is served from
    the speculated verdict map — the replay runner executes nothing."""
    backbone, _ = world
    import repro.verifier.contingency as contingency_module

    stats: dict[str, int] = {}

    class SpyRunner(_ReplayRunner):
        def __call__(self, *args, **kwargs):
            result = super().__call__(*args, **kwargs)
            stats["served"] = self.served
            stats["executed"] = self.executed
            return result

    monkeypatch.setattr(contingency_module, "_ReplayRunner", SpyRunner)
    scenario = drain_sweep_scenario(backbone, num_fecs=96)
    candidates = intra_region_bundles(backbone)
    contingencies = single_link_failures(backbone.topology, candidates=candidates)
    scenario.sweep(contingencies).run(shards=2)
    assert stats["served"] > 0
    assert stats["executed"] == 0


def test_shards_validation(world):
    backbone, _ = world
    scenario = drain_sweep_scenario(backbone, num_fecs=24)
    sweep = scenario.sweep(
        single_link_failures(backbone.topology, candidates=intra_region_bundles(backbone)[:1])
    )
    with pytest.raises(VerificationError, match="shard"):
        sweep.run(shards=0)


# ----------------------------------------------------------------------
# First-worst search and the per-contingency callback
# ----------------------------------------------------------------------
def test_first_worst_agrees_with_exhaustive_sweep(world):
    """Run to completion, the prioritized sweep reports the same worst
    contingency (and all order-independent facts) as the exhaustive one."""
    backbone, _ = world
    candidates = intra_region_bundles(backbone)
    contingencies = single_link_failures(backbone.topology, candidates=candidates)
    contingencies += k_link_failures(backbone.topology, 2, candidates=candidates)

    def scenario():
        return refactor_sweep_scenario(backbone, num_fecs=96, buggy=True)

    exhaustive = scenario().sweep(list(contingencies)).run()
    seen: list[tuple[int, str, bool]] = []
    prioritized = scenario().sweep(list(contingencies)).run(
        first_worst=True,
        on_contingency=lambda index, result, resumed: seen.append(
            (index, result.contingency.contingency_id, resumed)
        ),
    )
    assert prioritized.prioritized and not exhaustive.prioritized
    assert sweep_facts(prioritized) == sweep_facts(exhaustive)
    assert [w.contingency.contingency_id for w in prioritized.most_violating(3)] == [
        w.contingency.contingency_id for w in exhaustive.most_violating(3)
    ]
    # The callback saw every unit, live, in execution order.
    assert [entry[0] for entry in seen] == list(range(len(prioritized.results)))
    assert all(not entry[2] for entry in seen)
    assert [entry[1] for entry in seen] == [
        r.contingency.contingency_id for r in prioritized.results
    ]
    # The baseline+single head keeps input order; only the k>=2 tail moves.
    head = len([c for c in prioritized.results if len(c.contingency.failed_links) <= 1])
    assert all(
        len(c.contingency.failed_links) <= 1 for c in prioritized.results[:head]
    )
    position = prioritized.first_worst_after()
    assert position is not None and 1 <= position <= len(prioritized.results)


def test_callback_stops_the_sweep_early_and_resume_completes(world, tmp_path):
    """Returning True from ``on_contingency`` stops after that unit; a
    later checkpointed resume finishes the sweep with the full report."""
    backbone, _ = world
    candidates = intra_region_bundles(backbone)
    contingencies = single_link_failures(backbone.topology, candidates=candidates)
    path = tmp_path / "sweep.ckpt"

    def scenario():
        return drain_sweep_scenario(backbone, num_fecs=96, buggy=True)

    full = scenario().sweep(list(contingencies)).run()
    stopped = scenario().sweep(list(contingencies)).run(
        checkpoint=path, on_contingency=lambda index, result, resumed: index >= 1
    )
    assert len(stopped.results) == 2
    assert len(full.results) > 2
    replayed: list[bool] = []
    resumed = scenario().sweep(list(contingencies)).run(
        checkpoint=path,
        resume=True,
        on_contingency=lambda index, result, is_replay: replayed.append(is_replay),
    )
    assert sweep_facts(resumed) == sweep_facts(full)
    # The stopped prefix replays from the journal; the rest ran live.
    assert replayed[:2] == [True, True]
    assert not any(replayed[2:])


# ----------------------------------------------------------------------
# Failure-model determinism (the k_link_failures bugfix)
# ----------------------------------------------------------------------
def test_k_link_failures_dedups_before_limit(world):
    backbone, _ = world
    bundles = sorted(set(backbone.topology.link_bundles()))[:4]
    # Duplicate and reversed candidates collapse to the same bundle set.
    noisy = list(bundles) + [(b, a) for a, b in bundles] + list(bundles[:2])
    clean = k_link_failures(backbone.topology, 2, candidates=bundles)
    deduped = k_link_failures(backbone.topology, 2, candidates=noisy)
    assert [c.contingency_id for c in deduped] == [c.contingency_id for c in clean]
    assert len(deduped) == 6  # C(4, 2), no duplicate combinations
    # The limit counts *distinct* contingencies, applied after dedup.
    limited = k_link_failures(backbone.topology, 2, candidates=noisy, limit=5)
    assert [c.contingency_id for c in limited] == [
        c.contingency_id for c in clean[:5]
    ]


def test_single_link_failures_order_is_sorted_without_candidates(world):
    backbone, _ = world
    contingencies = single_link_failures(backbone.topology)
    pairs = [c.failed_links[0] for c in contingencies]
    assert pairs == sorted(pairs)
