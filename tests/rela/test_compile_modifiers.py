"""Behavioral tests for the Rela → RIR translation of every modifier (Figure 4).

Each test sets up small pre/post path sets and checks that the compiled
specification accepts exactly the snapshot pairs the paper's semantics
prescribes for that modifier.
"""


from repro.automata import Alphabet, FSA
from repro.rela import (
    add,
    any_of,
    atomic,
    drop,
    locs,
    nochange,
    preserve,
    remove,
    replace,
    seq,
    to_rir,
    zone,
    pre_relation,
    post_relation,
    hash_expansions,
)
from repro.rela.spec import else_chain
from repro.rir import RIRContext, check_spec

SYMBOLS = ["A", "B", "C", "D", "E"]


def holds(spec, pre_paths, post_paths) -> bool:
    alphabet = Alphabet(SYMBOLS)
    ctx = RIRContext(
        alphabet,
        FSA.from_words(alphabet, pre_paths),
        FSA.from_words(alphabet, post_paths),
    )
    return check_spec(to_rir(spec), ctx).holds


# ----------------------------------------------------------------------
# preserve
# ----------------------------------------------------------------------
def test_preserve_requires_identical_zone_paths():
    spec = atomic("A .* D", preserve())
    assert holds(spec, [["A", "B", "D"]], [["A", "B", "D"]])
    assert not holds(spec, [["A", "B", "D"]], [["A", "C", "D"]])


def test_preserve_ignores_paths_outside_zone():
    spec = atomic("A .* D", preserve())
    # Paths not in the zone are invisible to this atomic spec.
    assert holds(spec, [["B", "C"]], [["C", "B"]])


def test_nochange_spec_detects_any_difference():
    spec = nochange()
    assert holds(spec, [["A", "B"], ["C"]], [["C"], ["A", "B"]])
    assert not holds(spec, [["A", "B"]], [["A", "B"], ["C"]])
    assert not holds(spec, [["A", "B"]], [])


# ----------------------------------------------------------------------
# add
# ----------------------------------------------------------------------
def test_add_requires_new_paths_when_zone_occupied():
    spec = atomic("A .* D", add(seq("A", "C", "D")))
    # Zone occupied before: the added path must appear, existing ones stay.
    assert holds(spec, [["A", "B", "D"]], [["A", "B", "D"], ["A", "C", "D"]])
    assert not holds(spec, [["A", "B", "D"]], [["A", "B", "D"]])
    # Pre-existing target path must be preserved too.
    assert holds(spec, [["A", "C", "D"]], [["A", "C", "D"]])


def test_add_removing_old_paths_is_a_violation():
    spec = atomic("A .* D", add(seq("A", "C", "D")))
    assert not holds(spec, [["A", "B", "D"]], [["A", "C", "D"]])


# ----------------------------------------------------------------------
# remove
# ----------------------------------------------------------------------
def test_remove_deletes_exactly_the_named_paths():
    spec = atomic("A .* D", remove(seq("A", "B", "D")))
    assert holds(spec, [["A", "B", "D"], ["A", "C", "D"]], [["A", "C", "D"]])
    # Leaving the removed path in place violates the spec.
    assert not holds(spec, [["A", "B", "D"], ["A", "C", "D"]], [["A", "B", "D"], ["A", "C", "D"]])
    # Removing other zone paths as collateral damage is also a violation.
    assert not holds(spec, [["A", "B", "D"], ["A", "C", "D"]], [])


# ----------------------------------------------------------------------
# replace
# ----------------------------------------------------------------------
def test_replace_swaps_old_for_new():
    spec = atomic("A .* D", replace(seq("A", "B", "D"), seq("A", "C", "D")))
    assert holds(spec, [["A", "B", "D"]], [["A", "C", "D"]])
    assert not holds(spec, [["A", "B", "D"]], [["A", "B", "D"]])
    # Other zone paths must stay.
    assert holds(
        spec,
        [["A", "B", "D"], ["A", "E", "D"]],
        [["A", "C", "D"], ["A", "E", "D"]],
    )
    assert not holds(
        spec,
        [["A", "B", "D"], ["A", "E", "D"]],
        [["A", "C", "D"]],
    )


def test_replace_keeps_preexisting_new_paths():
    spec = atomic("A .* D", replace(seq("A", "B", "D"), seq("A", "C", "D")))
    assert holds(spec, [["A", "C", "D"]], [["A", "C", "D"]])


# ----------------------------------------------------------------------
# drop
# ----------------------------------------------------------------------
def test_drop_requires_traffic_to_be_discarded():
    spec = atomic(".*", drop())
    assert holds(spec, [["A", "B", "D"]], [["drop"]])
    assert not holds(spec, [["A", "B", "D"]], [["A", "B", "D"]])


# ----------------------------------------------------------------------
# any
# ----------------------------------------------------------------------
def test_any_accepts_any_target_path():
    spec = atomic("A .* D", any_of(seq("A", locs({"B", "C"}), "D")))
    assert holds(spec, [["A", "E", "D"]], [["A", "B", "D"]])
    assert holds(spec, [["A", "E", "D"]], [["A", "C", "D"]])
    # Staying on a zone path outside the target set is a violation.
    assert not holds(spec, [["A", "E", "D"]], [["A", "E", "D"]])
    # Disappearing entirely is a violation too.
    assert not holds(spec, [["A", "E", "D"]], [])


# ----------------------------------------------------------------------
# composition: concatenation and else
# ----------------------------------------------------------------------
def test_sequential_composition_stitches_subpaths():
    spec = (
        atomic(locs({"A"}), preserve())
        .then(atomic(seq(locs({"B"}), locs({"C"})), any_of(seq(locs({"E"}), locs({"C"})))))
        .then(atomic(locs({"D"}), preserve()))
    )
    assert holds(spec, [["A", "B", "C", "D"]], [["A", "E", "C", "D"]])
    assert not holds(spec, [["A", "B", "C", "D"]], [["A", "B", "C", "D"]])


def test_else_falls_through_to_default():
    shift = atomic(seq("A", "B"), any_of(seq("A", "C")), name="shift")
    spec = else_chain(shift, nochange())
    # Path in the shift zone must move; others must stay.
    assert holds(spec, [["A", "B"], ["D", "E"]], [["A", "C"], ["D", "E"]])
    assert not holds(spec, [["A", "B"], ["D", "E"]], [["A", "C"], ["D", "D"]])
    assert not holds(spec, [["A", "B"], ["D", "E"]], [["A", "B"], ["D", "E"]])


def test_else_priority_shadows_later_branches():
    # The first branch governs its zone even when a later branch overlaps.
    specific = atomic(seq("A", "B"), any_of(seq("A", "C")), name="specific")
    spec = else_chain(specific, nochange())
    # nochange alone would reject this pair, but the specific branch wins.
    assert holds(spec, [["A", "B"]], [["A", "C"]])


# ----------------------------------------------------------------------
# helper functions
# ----------------------------------------------------------------------
def test_zone_of_composed_specs():
    alphabet = Alphabet(SYMBOLS)
    shift = atomic(seq("A", "B"), any_of(seq("A", "C")))
    z = zone(shift.else_(nochange())).to_fsa(alphabet)
    assert z.accepts(["A", "B"])
    assert z.accepts(["A", "C"])
    assert z.accepts(["E", "E", "E"])


def test_relations_are_snapshot_independent():
    spec = atomic("A .* D", preserve())
    assert pre_relation(spec) == post_relation(spec)


def test_hash_expansions_lists_any_targets():
    shift = atomic(seq("A", "B"), any_of(seq("A", "C")))
    expansions = hash_expansions(shift.else_(nochange()))
    assert len(expansions) == 1
    assert "A" in str(expansions[0]) and "C" in str(expansions[0])
    assert hash_expansions(nochange()) == []
