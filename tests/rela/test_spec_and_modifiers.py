"""Tests for Rela specs, modifiers and the path-expression builders."""

import pytest

from repro.rela import (
    AtomicSpec,
    ElseSpec,
    SeqSpec,
    add,
    alt,
    any_hop,
    any_hops,
    any_of,
    as_regex,
    atomic,
    drop,
    drop_hop,
    else_chain,
    empty,
    epsilon,
    flatten_else,
    loc,
    locs,
    nochange,
    preserve,
    remove,
    replace,
    seq,
    seq_spec,
    star,
    within,
)
from repro.automata import Alphabet


@pytest.fixture()
def ab() -> Alphabet:
    return Alphabet(["A1", "A2", "B1", "D1"])


def test_pathexpr_builders_compile(ab):
    assert seq("A1", "A2").to_fsa(ab).accepts(["A1", "A2"])
    assert alt("A1", "B1").to_fsa(ab).accepts(["B1"])
    assert star("A1").to_fsa(ab).accepts(["A1", "A1"])
    assert within(locs({"A1", "A2"})).to_fsa(ab).accepts(["A2", "A1"])
    assert any_hop().to_fsa(ab).accepts(["D1"])
    assert any_hops().to_fsa(ab).accepts([])
    assert epsilon().to_fsa(ab).accepts([])
    assert empty().to_fsa(ab).is_empty()
    assert drop_hop().to_fsa(ab).accepts(["drop"])
    assert loc("A1").to_fsa(ab).accepts(["A1"])
    assert locs(set()).to_fsa(ab).is_empty()


def test_as_regex_accepts_strings_and_regexes(ab):
    assert as_regex("A1 A2").to_fsa(ab).accepts(["A1", "A2"])
    regex = loc("A1")
    assert as_regex(regex) is regex


def test_modifier_constructors_and_rendering():
    assert str(preserve()) == "preserve"
    assert str(drop()) == "drop"
    assert str(add("A1 A2")).startswith("add(")
    assert str(remove("A1")).startswith("remove(")
    assert str(replace("A1", "A2")).startswith("replace(")
    assert str(any_of("A1 A2")).startswith("any(")


def test_atomic_spec_counts_and_naming():
    spec = atomic("A1 .* D1", any_of("A1 A2 D1"), name="shift")
    assert spec.atomic_count() == 1
    assert spec.name == "shift"
    renamed = spec.named("other")
    assert renamed.name == "other"
    assert isinstance(renamed, AtomicSpec)


def test_seq_spec_composition():
    first = atomic("A1", preserve())
    second = atomic("D1", preserve())
    combined = seq_spec(first, second, name="both")
    assert isinstance(combined, SeqSpec)
    assert combined.atomic_count() == 2
    assert combined.name == "both"
    assert seq_spec(first) is first
    assert seq_spec(first, name="solo").name == "solo"


def test_else_spec_and_flattening():
    a = atomic("A1", preserve(), name="a")
    b = atomic("B1", preserve(), name="b")
    c = nochange()
    chained = else_chain(a, b, c, name="all")
    assert isinstance(chained, ElseSpec)
    assert chained.atomic_count() == 3
    branches = flatten_else(chained)
    assert [branch.name for branch in branches] == ["a", "b", "nochange"]
    assert flatten_else(a) == [a]
    with pytest.raises(ValueError):
        else_chain()


def test_fluent_composition_helpers():
    a = atomic("A1", preserve())
    b = atomic("B1", preserve())
    assert isinstance(a.then(b), SeqSpec)
    assert isinstance(a.else_(b), ElseSpec)
    assert a.then(b).atomic_count() == 2


def test_nochange_is_single_preserve():
    spec = nochange()
    assert spec.atomic_count() == 1
    assert spec.name == "nochange"
    assert str(spec.modifier) == "preserve"


def test_spec_string_rendering():
    spec = atomic("A1 .* D1", any_of("A1 A2 D1"), name="pathShift")
    assert "pathShift" in str(spec)
    assert "any(" in str(spec)
    combined = seq_spec(spec, nochange(), name="e2e")
    assert "e2e" in str(combined)
    chained = spec.else_(nochange())
    assert "else" in str(chained)
