"""Tests for the location database and where queries."""

import pytest

from repro.automata import Alphabet
from repro.automata.regex import SymSet
from repro.errors import LocationError
from repro.rela.locations import Granularity, Location, LocationDB


@pytest.fixture()
def db() -> LocationDB:
    database = LocationDB()
    database.add_router(
        "a1-r1", group="A1", region="A", asn=100, tier="core",
        interfaces=["a1-r1:et1", "a1-r1:et2"],
    )
    database.add_router("a1-r2", group="A1", region="A", asn=100, tier="core")
    database.add_router("b1-r1", group="B1", region="B", asn=200, tier="edge")
    return database


def test_add_router_creates_interface_records(db):
    assert len(db) == 4  # 2 named interfaces + 2 loopbacks
    assert db.router_of_interface("a1-r1:et1") == "a1-r1"
    assert db.group_of_router("b1-r1") == "B1"


def test_duplicate_interface_rejected(db):
    with pytest.raises(LocationError):
        db.add(Location(interface="a1-r1:et1", router="x", group="X"))


def test_names_at_granularities(db):
    assert db.names_at(Granularity.ROUTER) == {"a1-r1", "a1-r2", "b1-r1"}
    assert db.names_at(Granularity.GROUP) == {"A1", "B1"}
    assert "a1-r1:et1" in db.names_at(Granularity.INTERFACE)
    assert db.routers() == {"a1-r1", "a1-r2", "b1-r1"}
    assert db.groups() == {"A1", "B1"}


def test_coarsen_and_coarsening_map(db):
    assert db.coarsen("a1-r1:et1", Granularity.INTERFACE, Granularity.ROUTER) == "a1-r1"
    assert db.coarsen("a1-r2", Granularity.ROUTER, Granularity.GROUP) == "A1"
    assert db.coarsen("a1-r2", Granularity.ROUTER, Granularity.ROUTER) == "a1-r2"
    mapping = db.coarsening_map(Granularity.ROUTER, Granularity.GROUP)
    assert mapping["b1-r1"] == "B1"
    with pytest.raises(LocationError):
        db.coarsen("A1", Granularity.GROUP, Granularity.ROUTER)
    with pytest.raises(LocationError):
        db.coarsen("missing", Granularity.ROUTER, Granularity.GROUP)


def test_where_kwargs_query(db):
    regex = db.where(group="A1")
    assert isinstance(regex, SymSet)
    assert regex.names == frozenset({"a1-r1", "a1-r2"})


def test_where_query_string_with_boolean_operators(db):
    regex = db.where('region == "A" and tier == "core"')
    assert regex.names == frozenset({"a1-r1", "a1-r2"})
    regex = db.where('group == "A1" or group == "B1"', granularity=Granularity.GROUP)
    assert regex.names == frozenset({"A1", "B1"})
    regex = db.where('not (region == "A")')
    assert regex.names == frozenset({"b1-r1"})
    regex = db.where("asn == 200")
    assert regex.names == frozenset({"b1-r1"})
    regex = db.where('tier in ["core", "edge"]')
    assert regex.names == frozenset({"a1-r1", "a1-r2", "b1-r1"})


def test_where_interface_granularity(db):
    regex = db.where(group="A1", granularity=Granularity.INTERFACE)
    assert "a1-r1:et1" in regex.names


def test_where_no_match_raises(db):
    with pytest.raises(LocationError):
        db.where(group="ZZ")


def test_where_bad_query_raises(db):
    with pytest.raises(LocationError):
        db.where('group ~= "A1"')
    with pytest.raises(LocationError):
        db.where('group == "A1" trailing')


def test_location_attribute_lookup():
    location = Location(
        interface="i1", router="r1", group="G", region="R", asn=1, tier="core",
        extra={"vendor": "acme"},
    )
    assert location.attribute("router") == "r1"
    assert location.attribute("vendor") == "acme"
    with pytest.raises(LocationError):
        location.attribute("missing")
    assert location.name_at(Granularity.INTERFACE) == "i1"
    assert location.name_at(Granularity.ROUTER) == "r1"
    assert location.name_at(Granularity.GROUP) == "G"


def test_where_result_compiles_into_zone(db):
    alphabet = Alphabet(db.names_at(Granularity.ROUTER))
    fsa = db.where(group="A1").to_fsa(alphabet)
    assert fsa.accepts(["a1-r1"])
    assert not fsa.accepts(["b1-r1"])
