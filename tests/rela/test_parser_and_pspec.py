"""Tests for the textual Rela parser and prefix-predicated specs."""

import pytest

from repro.automata import Alphabet, FSA
from repro.errors import SpecSyntaxError
from repro.rela import (
    DstPrefixWithin,
    IngressIn,
    PredTrue,
    PSpec,
    SpecPolicy,
    SrcPrefixWithin,
    nochange,
    atomic,
    drop,
    to_rir,
)
from repro.rela.locations import Granularity, LocationDB
from repro.rela.parser import RelaParser, parse_program
from repro.rir import RIRContext, check_spec
from repro.snapshots.fec import FlowEquivalenceClass

PROGRAM = """
# The Section 4 example, in the textual syntax.
regex a1 := where(group == "A1")
regex d1 := where(group == "D1")
regex regionA := where(region == "A")
regex regionD := where(region == "D")
regex newpath := a1 A2 A3 d1

spec pathShift := { a1 .* d1 : any(newpath) ; }
spec e2e := { regionA* : preserve ; pathShift ; regionD* : preserve ; }
spec nochange := { .* : preserve ; }
spec change := e2e else nochange

pspec dealloc := (dstPrefix == 10.9.0.0/16) -> nochange
"""


@pytest.fixture()
def db() -> LocationDB:
    database = LocationDB()
    for name, region in [
        ("x1", "A"), ("A1", "A"), ("A2", "A"), ("A3", "A"),
        ("B1", "B"), ("B2", "B"), ("B3", "B"),
        ("D1", "D"), ("y1", "D"),
    ]:
        database.add_router(name, group=name, region=region, asn=1)
    return database


def test_parse_program_defines_regexes_specs_and_pspecs(db):
    program = parse_program(PROGRAM, db)
    assert set(program.regexes) == {"a1", "d1", "regionA", "regionD", "newpath"}
    assert set(program.specs) == {"pathShift", "e2e", "nochange", "change"}
    assert set(program.pspecs) == {"dealloc"}
    assert program.spec("change").atomic_count() == 4
    assert program.spec("e2e").name == "e2e"
    with pytest.raises(SpecSyntaxError):
        program.spec("missing")


def test_parsed_spec_verifies_the_example_change(db):
    program = parse_program(PROGRAM, db)
    change = program.spec("change")
    alphabet = Alphabet(db.names_at(Granularity.ROUTER))
    pre = FSA.from_words(alphabet, [["x1", "A1", "B1", "B2", "B3", "D1", "y1"]])
    good = FSA.from_words(alphabet, [["x1", "A1", "A2", "A3", "D1", "y1"]])
    bad = FSA.from_words(alphabet, [["x1", "A1", "A2", "A3", "B3", "D1", "y1"]])
    assert check_spec(to_rir(change), RIRContext(alphabet, pre, good)).holds
    assert not check_spec(to_rir(change), RIRContext(alphabet, pre, bad)).holds


def test_where_requires_database():
    with pytest.raises(SpecSyntaxError):
        parse_program('regex a := where(group == "A1")')


def test_parse_modifier_varieties(db):
    text = """
    spec s1 := { A1 : preserve ; }
    spec s2 := { A1 .* : drop ; }
    spec s3 := { A1 .* : add(A1 A2) ; }
    spec s4 := { A1 .* : remove(A1 A2) ; }
    spec s5 := { A1 .* : replace(A1 A2, A1 A3) ; }
    spec s6 := { A1 .* : any(A1 A3) ; }
    """
    program = parse_program(text, db)
    assert len(program.specs) == 6
    assert program.spec("s5").modifier.keyword == "replace"


def test_parse_errors_are_reported(db):
    with pytest.raises(SpecSyntaxError):
        parse_program("spec broken := { A1 preserve }", db)
    with pytest.raises(SpecSyntaxError):
        parse_program("bogus stuff", db)
    with pytest.raises(SpecSyntaxError):
        parse_program("spec s := { A1 : teleport(A2) ; }", db)
    with pytest.raises(SpecSyntaxError):
        parse_program("spec s := { A1 : replace(A2) ; }", db)
    with pytest.raises(SpecSyntaxError):
        parse_program("pspec p := dstPrefix == 10.0.0.0/8", db)


def test_predicate_parser():
    parser = RelaParser()
    predicate = parser.parse_predicate(
        "(dstPrefix == 10.0.0.0/8 and not srcPrefix == 192.168.0.0/16) or ingress in [x1, x2]"
    )
    fec_match = FlowEquivalenceClass("f1", dst_prefix="10.1.0.0/24", src_prefix="172.16.0.0/16")
    fec_ingress = FlowEquivalenceClass("f2", dst_prefix="8.8.8.0/24", ingress="x2")
    fec_miss = FlowEquivalenceClass("f3", dst_prefix="8.8.8.0/24", ingress="z9")
    assert predicate.matches(fec_match)
    assert predicate.matches(fec_ingress)
    assert not predicate.matches(fec_miss)
    with pytest.raises(SpecSyntaxError):
        parser.parse_predicate("dstPrefix != 10.0.0.0/8")
    with pytest.raises(SpecSyntaxError):
        parser.parse_predicate("unknownAttr == 10.0.0.0/8")


def test_prefix_predicates():
    fec = FlowEquivalenceClass(
        "f", dst_prefix="10.1.2.0/24", src_prefix="172.16.5.0/24", ingress="a"
    )
    assert DstPrefixWithin("10.0.0.0/8").matches(fec)
    assert not DstPrefixWithin("10.2.0.0/16").matches(fec)
    assert SrcPrefixWithin("172.16.0.0/12").matches(fec)
    assert IngressIn(["a", "b"]).matches(fec)
    assert not IngressIn(["b"]).matches(fec)
    assert PredTrue().matches(fec)
    combined = DstPrefixWithin("10.0.0.0/8") & ~IngressIn(["z"])
    assert combined.matches(fec)
    either = DstPrefixWithin("99.0.0.0/8") | SrcPrefixWithin("172.16.0.0/12")
    assert either.matches(fec)


def test_invalid_prefix_rejected():
    fec = FlowEquivalenceClass("f", dst_prefix="10.0.0.0/24")
    with pytest.raises(SpecSyntaxError):
        DstPrefixWithin("not-a-prefix").matches(fec)


def test_spec_policy_selects_first_matching_guard():
    dealloc = atomic(".*", drop(), name="dealloc")
    policy = SpecPolicy(
        default=nochange(),
        guarded=[
            PSpec(DstPrefixWithin("10.0.0.0/8"), dealloc, name="deallocP"),
            PSpec(PredTrue(), nochange(), name="fallback"),
        ],
    )
    inside = FlowEquivalenceClass("f1", dst_prefix="10.1.0.0/24")
    outside = FlowEquivalenceClass("f2", dst_prefix="8.8.8.0/24")
    assert policy.spec_for(inside).name == "dealloc"
    assert policy.spec_for(outside).name == "nochange"
    assert policy.atomic_count() == 3
    assert "deallocP" in str(policy)
