# Developer entry points.  `make test` is the tier-1 suite; `make lint`
# verifies formatting locally (ruff when installed, mechanical fallback in
# offline containers — see scripts/lint.py); `make bench` runs the gated
# benchmarks the CI bench job runs.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint format bench coverage

test:
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) scripts/lint.py

format:
	ruff format src tests benchmarks scripts

coverage:
	$(PYTHON) -m pytest -x -q --cov=repro --cov-report=term --cov-fail-under=80

bench:
	$(PYTHON) -m pytest \
		benchmarks/bench_fig6_validation_time.py \
		benchmarks/bench_spec_compile.py \
		benchmarks/bench_scale_throughput.py \
		benchmarks/bench_stream_throughput.py \
		benchmarks/bench_contingency_sweep.py \
		benchmarks/bench_gate.py \
		benchmarks/bench_serve_throughput.py \
		-q -s --benchmark-disable
