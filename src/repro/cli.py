"""Command-line interface for the Rela reproduction.

Subcommands mirror the operator workflow described in the paper:

* ``simulate`` — generate a synthetic backbone, simulate its forwarding state
  and write a snapshot JSON file;
* ``pathdiff`` — compare two snapshot files the way the manual-inspection
  workflow does (Section 2.3);
* ``verify`` — check a pre/post snapshot pair against a Rela spec written in
  the textual format (Section 4), printing violations in the Table 1 layout;
* ``casestudy`` — replay the Figure 1 change iterations end to end;
* ``stream`` — generate a rolling-maintenance change stream and verify it
  through one incremental :class:`~repro.verifier.session.VerificationSession`,
  reporting per-epoch verdicts and the cumulative cache statistics.
"""

from __future__ import annotations

import argparse
import sys

from repro.rela.locations import Granularity
from repro.rela.parser import parse_program
from repro.snapshots.pathdiff import path_diff
from repro.snapshots.snapshot import Snapshot
from repro.verifier import VerificationOptions, VerificationSession, verify_change
from repro.workloads.backbone import BackboneParams, generate_backbone
from repro.workloads.figure1 import build_scenario
from repro.workloads.stream import (
    StreamProfile,
    flapping_link_stream,
    generate_stream,
    prefix_migration_stream,
    rolling_drain_stream,
)
from repro.workloads.traffic import generate_fecs


def _cmd_simulate(args: argparse.Namespace) -> int:
    params = BackboneParams(
        regions=args.regions,
        routers_per_group=args.routers_per_group,
        parallel_links=args.parallel_links,
        prefixes_per_region=args.prefixes_per_region,
        seed=args.seed,
    )
    backbone = generate_backbone(params)
    fecs = generate_fecs(backbone, max_classes=args.max_classes)
    snapshot = backbone.simulator().snapshot(
        fecs, name=args.name, granularity=Granularity(args.granularity)
    )
    snapshot.to_json(args.output, indent=2)
    print(
        f"wrote {args.output}: {len(snapshot)} flow equivalence classes over "
        f"{backbone.topology.num_routers} routers"
    )
    return 0


def _cmd_pathdiff(args: argparse.Namespace) -> int:
    pre = Snapshot.from_json(args.pre)
    post = Snapshot.from_json(args.post)
    diff = path_diff(pre, post)
    print(diff.summary())
    for entry in diff:
        print(f"  {entry}")
    return 0 if len(diff) == 0 else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    pre = Snapshot.from_json(args.pre)
    post = Snapshot.from_json(args.post)
    with open(args.spec, encoding="utf-8") as handle:
        program = parse_program(handle.read())
    spec = program.spec(args.spec_name)
    options = VerificationOptions(
        granularity=Granularity(args.granularity), workers=args.workers
    )
    report = verify_change(pre, post, spec, options=options)
    print(report.summary())
    if not report.holds:
        print(report.table(max_rows=args.max_rows))
    return 0 if report.holds else 1


def _cmd_casestudy(args: argparse.Namespace) -> int:
    scenario = build_scenario()
    pre = scenario.pre_change()
    checks = [
        ("v1", scenario.iteration_v1(), scenario.change_spec()),
        ("v2", scenario.iteration_v2(), scenario.refined_spec()),
        ("v3", scenario.iteration_v3(), scenario.refined_spec()),
        ("final", scenario.final_implementation(), scenario.refined_spec()),
    ]
    failures = 0
    for name, post, spec in checks:
        report = verify_change(pre, post, spec, db=scenario.db)
        print(f"[{name}] {report.summary()}")
        if not report.holds:
            failures += 1
            if args.show_counterexamples:
                print(report.table(max_rows=4))
    return 0 if failures == 0 else 1


def _cmd_stream(args: argparse.Namespace) -> int:
    profile = StreamProfile(
        num_fecs=args.fecs,
        regions=args.regions,
        epochs=args.epochs,
        rotation=args.rotation,
        seed=args.seed,
    )
    if args.profile == "rolling-drain":
        stream = generate_stream(profile)
    else:
        # Migration waves and link flaps exercise per-prefix traffic, so the
        # snapshot comes from the full traffic generator rather than the
        # scale profile's one-prefix-per-region fan-out.
        backbone = generate_backbone(profile.backbone_params())
        fecs = generate_fecs(backbone, max_classes=args.fecs)
        initial = backbone.simulator().snapshot(fecs, name="initial")
        if args.profile == "prefix-migration":
            stream = prefix_migration_stream(
                backbone, initial, waves=args.epochs, seed=args.seed
            )
            if len(stream) < args.epochs:
                # One wave needs at least one prefix of its own; the region
                # caps how many waves a migration can have.
                print(
                    f"note: prefix-migration capped at {len(stream)} waves "
                    f"(the migrated region originates {len(stream)} usable prefixes)"
                )
        else:
            stream = flapping_link_stream(
                backbone, initial, flaps=args.epochs, seed=args.seed
            )
    options = VerificationOptions(workers=args.workers)
    session = VerificationSession(
        stream.initial,
        options=options,
        graph_budget=args.graph_budget,
        context_budget=args.context_budget,
    )
    for epoch in stream:
        report = session.advance(epoch.post, epoch.spec)
        cache = (
            f"{report.cached_checks}/{report.unique_checks} checks cached"
            if report.unique_checks
            else "no checks"
        )
        print(f"[{epoch.epoch_id}] {report.summary()} [{cache}]")
        if not report.holds and args.show_counterexamples:
            print(report.table(max_rows=args.max_rows))
    print(session.stream.summary())
    return 0 if session.stream.holds else 1


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="rela-repro",
        description="Relational network verification (Rela) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="generate and simulate a synthetic backbone")
    simulate.add_argument("output", help="snapshot JSON file to write")
    simulate.add_argument("--name", default="snapshot")
    simulate.add_argument("--regions", type=int, default=4)
    simulate.add_argument("--routers-per-group", type=int, default=2)
    simulate.add_argument("--parallel-links", type=int, default=2)
    simulate.add_argument("--prefixes-per-region", type=int, default=4)
    simulate.add_argument("--max-classes", type=int, default=None)
    simulate.add_argument("--granularity", default="router", choices=[g.value for g in Granularity])
    simulate.add_argument("--seed", type=int, default=7)
    simulate.set_defaults(func=_cmd_simulate)

    diff = sub.add_parser("pathdiff", help="manual-inspection style path diff of two snapshots")
    diff.add_argument("pre")
    diff.add_argument("post")
    diff.set_defaults(func=_cmd_pathdiff)

    verify = sub.add_parser("verify", help="verify a change against a Rela spec file")
    verify.add_argument("pre")
    verify.add_argument("post")
    verify.add_argument("spec", help="Rela program file (textual syntax)")
    verify.add_argument("--spec-name", default="change", help="name of the spec to check")
    verify.add_argument("--granularity", default="router", choices=[g.value for g in Granularity])
    verify.add_argument("--workers", type=int, default=1)
    verify.add_argument("--max-rows", type=int, default=20)
    verify.set_defaults(func=_cmd_verify)

    casestudy = sub.add_parser("casestudy", help="replay the Figure 1 change iterations")
    casestudy.add_argument("--show-counterexamples", action="store_true")
    casestudy.set_defaults(func=_cmd_casestudy)

    stream = sub.add_parser(
        "stream",
        help="verify a synthetic rolling-maintenance change stream through one session",
    )
    stream.add_argument(
        "--profile",
        default="rolling-drain",
        choices=["rolling-drain", "prefix-migration", "flapping"],
        help="change-stream family (see repro.workloads.stream)",
    )
    stream.add_argument("--fecs", type=int, default=5000, help="traffic classes in the snapshot")
    stream.add_argument("--regions", type=int, default=10)
    stream.add_argument("--epochs", type=int, default=20, help="epochs (waves/flaps) to verify")
    stream.add_argument(
        "--rotation", type=int, default=1, help="regions the rolling drain rotates through"
    )
    stream.add_argument("--seed", type=int, default=47)
    stream.add_argument("--workers", type=int, default=1)
    stream.add_argument(
        "--graph-budget",
        type=int,
        default=None,
        help="evict unpinned graphs (and their cached verdicts) past this store size",
    )
    stream.add_argument(
        "--context-budget",
        type=int,
        default=None,
        help="keep at most this many compiled-spec contexts (LRU; bounds per-epoch-spec streams)",
    )
    stream.add_argument("--show-counterexamples", action="store_true")
    stream.add_argument("--max-rows", type=int, default=8)
    stream.set_defaults(func=_cmd_stream)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
