"""Command-line interface for the Rela reproduction.

Subcommands mirror the operator workflow described in the paper:

* ``simulate`` — generate a synthetic backbone, simulate its forwarding state
  and write a snapshot JSON file;
* ``pathdiff`` — compare two snapshot files the way the manual-inspection
  workflow does (Section 2.3);
* ``verify`` — check a pre/post snapshot pair against a Rela spec written in
  the textual format (Section 4), printing violations in the Table 1 layout;
* ``casestudy`` — replay the Figure 1 change iterations end to end;
* ``stream`` — generate a rolling-maintenance change stream and verify it
  through one incremental :class:`~repro.verifier.session.VerificationSession`,
  reporting per-epoch verdicts and the cumulative cache statistics;
* ``sweep`` — verify a change under a failure model (all single link
  failures, k-link combinations, or planned-maintenance link sets) through
  one shared :class:`~repro.verifier.contingency.ContingencySweep`,
  reporting the most-violating contingencies and the sweep-wide dedup
  ratio;
* ``gate`` — wrap ``verify`` or ``sweep`` in the risk/safety-gate layer
  (:mod:`repro.analytics`): score the change from its proven verification
  artifacts, print a human risk table (or ``--json`` machine output) and
  encode the graded decision in the exit code — ``0`` = pass, ``3`` =
  conditional, ``5`` = hold/block — so any CI pipeline can use the verdict
  as a merge gate.

Exit codes form a contract the change-automation callers script against
(also printed in ``--help``):

* ``0`` — the specification holds (every class proven);
* ``1`` — violations found;
* ``2`` — usage or library error (malformed inputs, missing files,
  unparsable specs: one-line ``error: ...`` message, no traceback);
* ``3`` — degraded run: verification completed without finding a
  violation, but some checks ended *unknown* (crashes, timeouts) or
  execution fell back to serial after repeated worker-pool loss —
  the verdict is not a proof;
* ``4`` — unrecoverable execution failure: the worker pool was lost
  beyond recovery, ``--no-degrade`` aborted a run that would have
  had to degrade, or a ``--checkpoint``/``--state`` file is unusable
  (not a journal at all, or written by an incompatible run);
* ``130`` — interrupted (Ctrl-C or SIGTERM), no traceback.  A
  checkpointed ``stream``/``sweep`` run flushes a final journal record
  before exiting, so ``--resume`` continues from the interruption point.

``gate`` speaks its own graded contract on top: ``0`` = pass, ``3`` =
conditional (ship once the listed conditions are satisfied), ``5`` =
hold/block (do not ship); ``2``/``4``/``130`` keep their meanings.

The ``verify``/``stream``/``sweep``/``gate`` commands share the resilience
knobs ``--check-timeout``, ``--max-retries`` and ``--no-degrade`` (see
:mod:`repro.verifier.runtime`).
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from concurrent.futures.process import BrokenProcessPool

from repro.analytics import fec_region_index, gate_report, gate_sweep
from repro.errors import DegradedExecutionError, PersistenceError, ReproError
from repro.persist import options_digest, stable_digest
from repro.persist.statestore import StateStore
from repro.rela.locations import Granularity
from repro.rela.parser import parse_program
from repro.snapshots.pathdiff import path_diff
from repro.snapshots.snapshot import Snapshot
from repro.verifier import (
    VerificationOptions,
    k_link_failures,
    single_link_failures,
    verify_change,
    verify_stream,
)
from repro.workloads.backbone import BackboneParams, generate_backbone
from repro.workloads.contingencies import (
    decommission_sweep_scenario,
    drain_sweep_scenario,
    interconnect_maintenance_sets,
    refactor_sweep_scenario,
)
from repro.workloads.figure1 import build_scenario
from repro.workloads.stream import (
    StreamProfile,
    flapping_link_stream,
    generate_stream,
    prefix_migration_stream,
    rolling_drain_stream,
)
from repro.workloads.traffic import generate_fecs


def _report_exit(verdict: str, degraded: bool) -> int:
    """Map a three-valued verdict onto the CLI exit-code contract."""
    if verdict == "violated":
        return 1
    if degraded or verdict == "unknown":
        return 3
    return 0


def _print_failed_checks(report, max_rows: int) -> None:
    """One line per unknown-verdict class (honest-degradation output)."""
    for failure in report.failed_checks[:max_rows]:
        print(
            f"  unknown: {failure.fec_description} "
            f"({failure.reason} after {failure.attempts} attempts: {failure.detail})"
        )
    omitted = len(report.failed_checks) - max_rows
    if omitted > 0:
        print(f"  ... and {omitted} more unknown classes")


def _resilience_kwargs(args: argparse.Namespace) -> dict:
    """The VerificationOptions fields the shared resilience flags control."""
    return {
        "check_timeout": args.check_timeout,
        "max_retries": args.max_retries,
        "allow_degraded": not args.no_degrade,
    }


def _cmd_simulate(args: argparse.Namespace) -> int:
    params = BackboneParams(
        regions=args.regions,
        routers_per_group=args.routers_per_group,
        parallel_links=args.parallel_links,
        prefixes_per_region=args.prefixes_per_region,
        seed=args.seed,
    )
    backbone = generate_backbone(params)
    fecs = generate_fecs(backbone, max_classes=args.max_classes)
    snapshot = backbone.simulator().snapshot(
        fecs, name=args.name, granularity=Granularity(args.granularity)
    )
    snapshot.to_json(args.output, indent=2)
    print(
        f"wrote {args.output}: {len(snapshot)} flow equivalence classes over "
        f"{backbone.topology.num_routers} routers"
    )
    return 0


def _cmd_pathdiff(args: argparse.Namespace) -> int:
    pre = Snapshot.from_json(args.pre)
    post = Snapshot.from_json(args.post)
    diff = path_diff(pre, post)
    print(diff.summary())
    for entry in diff:
        print(f"  {entry}")
    return 0 if len(diff) == 0 else 1


def _run_verify(args: argparse.Namespace):
    """Run one ``verify``-shaped check (shared with ``gate verify``)."""
    pre = Snapshot.from_json(args.pre)
    post = Snapshot.from_json(args.post)
    with open(args.spec, encoding="utf-8") as handle:
        program = parse_program(handle.read())
    spec = program.spec(args.spec_name)
    options = VerificationOptions(
        granularity=Granularity(args.granularity),
        workers=args.workers,
        **_resilience_kwargs(args),
    )
    return verify_change(pre, post, spec, options=options)


def _cmd_verify(args: argparse.Namespace) -> int:
    report = _run_verify(args)
    print(report.summary())
    if report.violating_fecs:
        print(report.table(max_rows=args.max_rows))
    if report.failed_checks:
        _print_failed_checks(report, args.max_rows)
    return _report_exit(report.verdict, report.degraded)


def _cmd_casestudy(args: argparse.Namespace) -> int:
    scenario = build_scenario()
    pre = scenario.pre_change()
    checks = [
        ("v1", scenario.iteration_v1(), scenario.change_spec()),
        ("v2", scenario.iteration_v2(), scenario.refined_spec()),
        ("v3", scenario.iteration_v3(), scenario.refined_spec()),
        ("final", scenario.final_implementation(), scenario.refined_spec()),
    ]
    failures = 0
    for name, post, spec in checks:
        report = verify_change(pre, post, spec, db=scenario.db)
        print(f"[{name}] {report.summary()}")
        if not report.holds:
            failures += 1
            if args.show_counterexamples:
                print(report.table(max_rows=4))
    return 0 if failures == 0 else 1


def _cmd_stream(args: argparse.Namespace) -> int:
    profile = StreamProfile(
        num_fecs=args.fecs,
        regions=args.regions,
        epochs=args.epochs,
        rotation=args.rotation,
        seed=args.seed,
    )
    if args.profile == "rolling-drain":
        stream = generate_stream(profile)
    else:
        # Migration waves and link flaps exercise per-prefix traffic, so the
        # snapshot comes from the full traffic generator rather than the
        # scale profile's one-prefix-per-region fan-out.
        backbone = generate_backbone(profile.backbone_params())
        fecs = generate_fecs(backbone, max_classes=args.fecs)
        initial = backbone.simulator().snapshot(fecs, name="initial")
        if args.profile == "prefix-migration":
            stream = prefix_migration_stream(
                backbone, initial, waves=args.epochs, seed=args.seed
            )
            if len(stream) < args.epochs:
                # One wave needs at least one prefix of its own; the region
                # caps how many waves a migration can have.
                print(
                    f"note: prefix-migration capped at {len(stream)} waves "
                    f"(the migrated region originates {len(stream)} usable prefixes)"
                )
        else:
            stream = flapping_link_stream(
                backbone, initial, flaps=args.epochs, seed=args.seed
            )
    parser: argparse.ArgumentParser = args.parser
    if args.resume and args.checkpoint is None:
        parser.error("--resume requires --checkpoint")
    options = VerificationOptions(workers=args.workers, **_resilience_kwargs(args))
    epochs = list(stream)
    # The checkpoint signature binds the journal to this exact workload:
    # profile, generation parameters and verdict-relevant options.
    signature = stable_digest(
        (
            "stream-cli/v1",
            args.profile,
            args.fecs,
            args.regions,
            args.epochs,
            args.rotation,
            args.seed,
            options_digest(options),
        )
    )

    def on_epoch(index: int, report, resumed: bool) -> None:
        cache = (
            f"{report.cached_checks}/{report.unique_checks} checks cached"
            if report.unique_checks
            else "no checks"
        )
        if resumed:
            cache += ", resumed from checkpoint"
        print(f"[{epochs[index].epoch_id}] {report.summary()} [{cache}]")
        if report.violating_fecs and args.show_counterexamples:
            print(report.table(max_rows=args.max_rows))
        if report.failed_checks:
            _print_failed_checks(report, args.max_rows)

    result = verify_stream(
        stream.initial,
        ((epoch.post, epoch.spec) for epoch in epochs),
        options=options,
        graph_budget=args.graph_budget,
        context_budget=args.context_budget,
        checkpoint=args.checkpoint,
        resume=args.resume,
        signature=signature,
        on_epoch=on_epoch,
    )
    print(result.summary())
    return _report_exit(result.verdict, result.degraded)


_SWEEP_SCENARIOS = {
    "drain": drain_sweep_scenario,
    "refactor": refactor_sweep_scenario,
    "decommission": decommission_sweep_scenario,
}


def _parse_link(text: str) -> tuple[str, str]:
    """Parse a ``routerA~routerB`` link-bundle name."""
    parts = text.split("~")
    if len(parts) != 2 or not parts[0] or not parts[1]:
        raise argparse.ArgumentTypeError(
            f"link {text!r} is not of the form routerA~routerB"
        )
    return (parts[0], parts[1])


def _run_sweep(args: argparse.Namespace):
    """Build and run one ``sweep``-shaped run (shared with ``gate sweep``).

    Returns ``(backbone, scenario, sweep_report)`` so callers that need the
    region structure (the gate's blast-radius scoring) have it.
    """
    parser: argparse.ArgumentParser = args.parser
    if args.k is not None and args.failures != "k":
        parser.error("--k only applies to --failures k")
    if args.limit is not None and args.failures != "k":
        parser.error("--limit only applies to --failures k")
    if args.candidate_links and args.failures == "maintenance":
        parser.error("--candidate-links conflicts with --failures maintenance "
                     "(maintenance sets are derived from the region interconnects)")
    if args.resume and args.checkpoint is None:
        parser.error("--resume requires --checkpoint")
    if args.shards < 1:
        parser.error("--shards must be >= 1")

    params = BackboneParams(
        regions=args.regions,
        routers_per_group=args.routers_per_group,
        parallel_links=args.parallel_links,
        prefixes_per_region=args.prefixes_per_region,
        seed=args.seed,
    )
    backbone = generate_backbone(params)
    scenario = _SWEEP_SCENARIOS[args.scenario](
        backbone,
        num_fecs=args.fecs,
        granularity=Granularity(args.granularity),
        buggy=args.buggy,
        seed=args.seed,
    )
    candidates = args.candidate_links or None
    if args.failures == "single":
        contingencies = single_link_failures(backbone.topology, candidates=candidates)
    elif args.failures == "k":
        contingencies = k_link_failures(
            backbone.topology, args.k if args.k is not None else 2,
            candidates=candidates, limit=args.limit,
        )
    else:
        contingencies = interconnect_maintenance_sets(backbone)
    if args.with_maintenance and args.failures != "maintenance":
        contingencies = contingencies + interconnect_maintenance_sets(backbone)

    options = VerificationOptions(
        granularity=scenario.granularity,
        workers=args.workers,
        **_resilience_kwargs(args),
    )
    sweep = scenario.sweep(contingencies, options=options).run(
        checkpoint=args.checkpoint,
        resume=args.resume,
        shards=args.shards,
        first_worst=args.first_worst,
    )
    return backbone, scenario, sweep


def _cmd_sweep(args: argparse.Namespace) -> int:
    _, _, sweep = _run_sweep(args)
    for result in sweep.results:
        if args.show_contingencies or not result.holds:
            print(f"[{result.contingency}] {result.report.summary()}")
    worst = sweep.most_violating(args.max_rows)
    if worst:
        print("most-violating contingencies:")
        for result in worst:
            print(
                f"  {result.contingency}: {result.report.violating_fecs} violating classes"
            )
        if sweep.prioritized:
            position = sweep.first_worst_after()
            if position is not None:
                print(
                    f"first-worst search: worst contingency surfaced after "
                    f"{position} of {len(sweep.results)} units"
                )
    for result in sweep.expectation_mismatches:
        print(
            f"warning: {result.contingency.contingency_id} expected "
            f"holds={result.expected_holds} but verified holds={result.holds}"
        )
    unproven = sweep.unproven()
    if unproven:
        print("unproven contingencies (unknown verdicts):")
        for result in unproven:
            print(
                f"  {result.contingency}: {result.report.unknown_fecs} classes unknown"
            )
    print(sweep.summary())
    if sweep.violating_contingencies > 0:
        return 1
    if sweep.degraded:
        return 3
    return 0


def _emit_gate(decision, payload: dict, as_json: bool, summary_line: str) -> int:
    """Print a gate decision (human table or machine JSON); return its exit code."""
    if as_json:
        print(json.dumps(payload, indent=2))
    else:
        print(summary_line)
        print(decision.table())
    return decision.exit_code


def _gate_history(args: argparse.Namespace):
    """The persisted change history for a gate run (None without --state)."""
    if args.state is None:
        return None
    history = StateStore(args.state).history()
    # A store with no outcomes yet carries no signal; the risk layer treats
    # None as "no history" and skips the history factor entirely.
    return history if history.epochs else None


def _record_gate_outcome(args: argparse.Namespace, verdict: str, degraded: bool) -> None:
    """Append this gated change's outcome to the persistent history."""
    if args.state is not None:
        StateStore(args.state).record_outcome(verdict, degraded=degraded)


def _cmd_gate_verify(args: argparse.Namespace) -> int:
    report = _run_verify(args)
    decision = gate_report(report, history=_gate_history(args))
    _record_gate_outcome(args, report.verdict, report.degraded)
    payload = decision.to_dict()
    payload["mode"] = "verify"
    payload["verdict"] = {
        "verdict": report.verdict,
        "holds": report.holds,
        "total_fecs": report.total_fecs,
        "violating_fecs": report.violating_fecs,
        "unknown_fecs": report.unknown_fecs,
        "unknown_fec_ids": report.unknown_fec_ids,
        "degraded": report.degraded,
    }
    return _emit_gate(decision, payload, args.json, report.summary())


def _cmd_gate_sweep(args: argparse.Namespace) -> int:
    backbone, scenario, sweep = _run_sweep(args)
    fec_regions = fec_region_index(
        scenario.fecs, location_regions=backbone.location_regions()
    )
    decision = gate_sweep(
        sweep,
        fec_regions=fec_regions,
        total_regions=len(backbone.regions()),
        history=_gate_history(args),
    )
    _record_gate_outcome(args, sweep.verdict, sweep.degraded)
    payload = decision.to_dict()
    payload["mode"] = "sweep"
    payload["verdict"] = {
        "verdict": sweep.verdict,
        "holds": sweep.holds,
        "contingencies": sweep.contingencies,
        "violating_contingencies": sweep.violating_contingencies,
        "unknown_contingencies": sweep.unknown_contingencies,
        "flipped_contingencies": sweep.flipped_contingencies,
        "expectation_mismatches": len(sweep.expectation_mismatches),
        "unknown_fec_ids": sweep.unknown_fec_ids,
        "degraded": sweep.degraded,
    }
    return _emit_gate(decision, payload, args.json, sweep.summary())


def _add_checkpoint_flags(command: argparse.ArgumentParser) -> None:
    """The durability knobs shared by stream / sweep (and gate sweep)."""
    group = command.add_argument_group("durability")
    group.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="journal every completed epoch/contingency to this file as it "
        "lands; a killed run can be resumed from it with --resume",
    )
    group.add_argument(
        "--resume",
        action="store_true",
        help="replay the checkpoint's completed prefix instead of re-verifying "
        "it (requires --checkpoint; the final report is identical to an "
        "uninterrupted run's)",
    )


def _add_resilience_flags(command: argparse.ArgumentParser) -> None:
    """The resilience knobs shared by verify / stream / sweep."""
    group = command.add_argument_group("resilience")
    group.add_argument(
        "--check-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per FEC check; an over-budget check is retried, "
        "then recorded as an unknown verdict (default: unlimited)",
    )
    group.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="retries per check for transient failures/timeouts, and worker "
        "deaths tolerated per check before it is declared poisonous (default: 2)",
    )
    group.add_argument(
        "--no-degrade",
        action="store_true",
        help="abort with exit code 4 instead of recording unknown verdicts or "
        "falling back to serial execution after repeated worker-pool loss",
    )


_EXIT_CODE_HELP = (
    "exit codes: 0 = specification holds; 1 = violations found; "
    "2 = usage or library error; 3 = degraded run (some checks ended unknown "
    "or execution fell back to serial; no violation found); "
    "4 = unrecoverable execution failure (worker pool lost beyond recovery, "
    "--no-degrade aborted a degrading run, or a checkpoint/state file is "
    "unusable: not a journal, or written by an incompatible run); "
    "130 = interrupted (a checkpointed run flushes a final record first, "
    "so --resume continues from the interruption point). "
    "The gate subcommand encodes its graded decision instead: 0 = pass, "
    "3 = conditional, 5 = hold/block"
)

_GATE_EXIT_CODE_HELP = (
    "gate exit codes: 0 = pass (ship it); 2 = usage or library error; "
    "3 = conditional (ship once the listed conditions are satisfied); "
    "4 = unrecoverable execution failure; 5 = hold or block (do not ship); "
    "130 = interrupted"
)


def _add_verify_arguments(command: argparse.ArgumentParser) -> None:
    """The ``verify`` inputs and knobs (shared with ``gate verify``)."""
    command.add_argument("pre")
    command.add_argument("post")
    command.add_argument("spec", help="Rela program file (textual syntax)")
    command.add_argument("--spec-name", default="change", help="name of the spec to check")
    command.add_argument(
        "--granularity", default="router", choices=[g.value for g in Granularity]
    )
    command.add_argument("--workers", type=int, default=1)
    command.add_argument("--max-rows", type=int, default=20)
    _add_resilience_flags(command)


def _add_sweep_arguments(command: argparse.ArgumentParser) -> None:
    """The ``sweep`` workload and failure-model knobs (shared with ``gate sweep``)."""
    command.add_argument(
        "--scenario",
        default="drain",
        choices=sorted(_SWEEP_SCENARIOS),
        help="change under test (see repro.workloads.contingencies)",
    )
    command.add_argument(
        "--buggy", action="store_true", help="inject the scenario's bug variant"
    )
    command.add_argument("--fecs", type=int, default=2000, help="traffic classes per snapshot")
    command.add_argument("--regions", type=int, default=6)
    command.add_argument("--routers-per-group", type=int, default=2)
    command.add_argument("--parallel-links", type=int, default=2)
    command.add_argument("--prefixes-per-region", type=int, default=2)
    command.add_argument(
        "--granularity", default="group", choices=[g.value for g in Granularity]
    )
    command.add_argument("--seed", type=int, default=59)
    command.add_argument(
        "--failures",
        default="single",
        choices=["single", "k", "maintenance"],
        help="failure model: every single link, k-link combinations, or "
        "planned-maintenance interconnect severances",
    )
    command.add_argument(
        "--k", type=int, default=None, help="links failed together (with --failures k)"
    )
    command.add_argument(
        "--limit",
        type=int,
        default=None,
        help="cap the k-combination enumeration (with --failures k)",
    )
    command.add_argument(
        "--candidate-links",
        type=_parse_link,
        nargs="*",
        default=None,
        metavar="A~B",
        help="restrict single/k failures to these link bundles",
    )
    command.add_argument(
        "--with-maintenance",
        action="store_true",
        help="append the planned-maintenance interconnect severances",
    )
    command.add_argument("--workers", type=int, default=1)
    command.add_argument(
        "--shards",
        type=int,
        default=1,
        help="fork N processes to speculatively execute the contingencies' "
        "checks in parallel; the report stays byte-identical to --shards 1",
    )
    command.add_argument(
        "--first-worst",
        action="store_true",
        help="reorder k>=2 contingencies most-fragile first so the worst "
        "violation surfaces early (checkpoints bind to this order: resume "
        "with the same flag)",
    )
    command.add_argument(
        "--show-contingencies",
        action="store_true",
        help="print every contingency's report line (failing ones always print)",
    )
    command.add_argument("--max-rows", type=int, default=8)
    _add_checkpoint_flags(command)
    _add_resilience_flags(command)


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported here so the daemon machinery stays off the fast CLI paths.
    from repro.serve.server import ServeConfig, VerificationServer

    config = ServeConfig(
        host=args.host,
        port=args.port,
        socket=args.socket,
        state_dir=args.state_dir,
        pool_workers=args.pool_workers,
        exec_threads=args.exec_threads,
        queue_limit=args.queue_limit,
        tenant_inflight=args.tenant_inflight,
        max_sessions_per_tenant=args.max_sessions_per_tenant,
        max_body=args.max_body,
    )
    return VerificationServer(config).serve_forever()


def _add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (0 picks a free port; the chosen one is printed)",
    )
    parser.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="serve on a unix domain socket instead of TCP",
    )
    parser.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="persist hosted sessions here on drain; a restarted daemon "
        "reloads them warm (cached verdicts intact)",
    )
    parser.add_argument(
        "--pool-workers",
        type=int,
        default=2,
        help="shared verification worker pool size (below 2: serial, no pool)",
    )
    parser.add_argument(
        "--exec-threads",
        type=int,
        default=8,
        help="request-execution threads (independent sessions run in parallel)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=32,
        help="admitted requests at once before answering 429 + Retry-After",
    )
    parser.add_argument(
        "--tenant-inflight",
        type=int,
        default=8,
        help="per-tenant in-flight request limit (429 above it)",
    )
    parser.add_argument(
        "--max-sessions-per-tenant",
        type=int,
        default=16,
        help="hard session-count quota per tenant",
    )
    parser.add_argument(
        "--max-body",
        type=int,
        default=64 * 1024 * 1024,
        help="request body byte cap (oversized bodies get a structured 400)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="rela-repro",
        description="Relational network verification (Rela) reproduction toolkit",
        epilog=_EXIT_CODE_HELP,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="generate and simulate a synthetic backbone")
    simulate.add_argument("output", help="snapshot JSON file to write")
    simulate.add_argument("--name", default="snapshot")
    simulate.add_argument("--regions", type=int, default=4)
    simulate.add_argument("--routers-per-group", type=int, default=2)
    simulate.add_argument("--parallel-links", type=int, default=2)
    simulate.add_argument("--prefixes-per-region", type=int, default=4)
    simulate.add_argument("--max-classes", type=int, default=None)
    simulate.add_argument("--granularity", default="router", choices=[g.value for g in Granularity])
    simulate.add_argument("--seed", type=int, default=7)
    simulate.set_defaults(func=_cmd_simulate)

    diff = sub.add_parser("pathdiff", help="manual-inspection style path diff of two snapshots")
    diff.add_argument("pre")
    diff.add_argument("post")
    diff.set_defaults(func=_cmd_pathdiff)

    verify = sub.add_parser("verify", help="verify a change against a Rela spec file")
    _add_verify_arguments(verify)
    verify.set_defaults(func=_cmd_verify)

    casestudy = sub.add_parser("casestudy", help="replay the Figure 1 change iterations")
    casestudy.add_argument("--show-counterexamples", action="store_true")
    casestudy.set_defaults(func=_cmd_casestudy)

    stream = sub.add_parser(
        "stream",
        help="verify a synthetic rolling-maintenance change stream through one session",
    )
    stream.add_argument(
        "--profile",
        default="rolling-drain",
        choices=["rolling-drain", "prefix-migration", "flapping"],
        help="change-stream family (see repro.workloads.stream)",
    )
    stream.add_argument("--fecs", type=int, default=5000, help="traffic classes in the snapshot")
    stream.add_argument("--regions", type=int, default=10)
    stream.add_argument("--epochs", type=int, default=20, help="epochs (waves/flaps) to verify")
    stream.add_argument(
        "--rotation", type=int, default=1, help="regions the rolling drain rotates through"
    )
    stream.add_argument("--seed", type=int, default=47)
    stream.add_argument("--workers", type=int, default=1)
    stream.add_argument(
        "--graph-budget",
        type=int,
        default=None,
        help="evict unpinned graphs (and their cached verdicts) past this store size",
    )
    stream.add_argument(
        "--context-budget",
        type=int,
        default=None,
        help="keep at most this many compiled-spec contexts (LRU; bounds per-epoch-spec streams)",
    )
    stream.add_argument("--show-counterexamples", action="store_true")
    stream.add_argument("--max-rows", type=int, default=8)
    _add_checkpoint_flags(stream)
    _add_resilience_flags(stream)
    stream.set_defaults(func=_cmd_stream, parser=stream)

    sweep = sub.add_parser(
        "sweep",
        help="verify a change under a failure model (what-if contingency sweep)",
    )
    _add_sweep_arguments(sweep)
    sweep.set_defaults(func=_cmd_sweep, parser=sweep)

    gate = sub.add_parser(
        "gate",
        help="verify (or sweep) a change and emit a graded safety decision",
        description="Run a verification and map the result onto a graded "
        "pass/conditional/hold/block safety decision for CI pipelines.",
        epilog=_GATE_EXIT_CODE_HELP,
    )
    gate.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable repro-gate/v1 JSON document instead of a table",
    )
    gate.add_argument(
        "--state",
        default=None,
        metavar="PATH",
        help="persistent state store: read the recorded change history into "
        "the risk scoring, and append this run's outcome to it",
    )
    gate_sub = gate.add_subparsers(dest="gate_command", required=True)
    gate_verify_parser = gate_sub.add_parser(
        "verify", help="gate a single pre/post/spec verification"
    )
    _add_verify_arguments(gate_verify_parser)
    gate_verify_parser.set_defaults(func=_cmd_gate_verify)
    gate_sweep_parser = gate_sub.add_parser(
        "sweep", help="gate a synthetic contingency sweep scenario"
    )
    _add_sweep_arguments(gate_sweep_parser)
    gate_sweep_parser.set_defaults(func=_cmd_gate_sweep, parser=gate_sweep_parser)

    serve = sub.add_parser(
        "serve",
        help="run the verification daemon (HTTP/JSON API over named sessions)",
        description="Serve named per-tenant verification sessions plus "
        "stateless one-shot verify/sweep endpoints over a thin HTTP/JSON "
        "API, sharing one worker pool across all requests.  SIGTERM "
        "drains gracefully: in-flight requests finish, sessions flush to "
        "--state-dir, exit 0.",
    )
    _add_serve_arguments(serve)
    serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (see the module docstring for the exit-code contract).

    Library and I/O failures exit 2 with a one-line message instead of a
    traceback: the CLI's inputs (snapshot files, spec programs, workload
    parameters) are user data, and a typo in them is not a crash.  Ctrl-C
    exits 130 without a traceback; resilience failures the runtime could
    not absorb (an unrecoverable worker-pool loss, or a ``--no-degrade``
    run that would have had to degrade) exit 4.
    """
    parser = build_parser()
    args = parser.parse_args(argv)

    # SIGTERM (the orchestrator's "wrap it up") rides the KeyboardInterrupt
    # path: checkpointed runs flush a final interrupt marker on the way out,
    # so a drained run is resumable from exactly where it stopped.
    def _sigterm(signum, frame):
        raise KeyboardInterrupt

    previous = None
    try:
        previous = signal.signal(signal.SIGTERM, _sigterm)
    except ValueError:  # not the main thread (embedded use): no handler
        pass
    try:
        return args.func(args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except BrokenProcessPool as error:
        print(f"error: worker pool failed unrecoverably: {error}", file=sys.stderr)
        return 4
    except DegradedExecutionError as error:
        print(f"error: {error}", file=sys.stderr)
        return 4
    except PersistenceError as error:
        # Unusable durability artifacts (not-a-journal files, wrong-run
        # signatures) are unrecoverable for this invocation: rerunning the
        # same command cannot succeed until the operator intervenes.
        print(f"error: {error}", file=sys.stderr)
        return 4
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
