"""Reproduction of "Relational Network Verification" (Rela, SIGCOMM 2024).

The package is organised as:

* :mod:`repro.automata` — FSA/FST substrate (OpenFST/HFST stand-in);
* :mod:`repro.rir` — the Regular Intermediate Representation (Section 5.2);
* :mod:`repro.rela` — the Rela surface language and its compiler (Sections 4-5);
* :mod:`repro.network` — topology, routing and dataplane simulation substrate;
* :mod:`repro.snapshots` — forwarding graphs, flow equivalence classes, path diff;
* :mod:`repro.verifier` — the relational decision procedure (Section 6);
* :mod:`repro.workloads` — synthetic backbone, traffic and change generators;
* :mod:`repro.baselines` — single-snapshot and differential-analysis baselines.

The most convenient entry points are re-exported here; see ``README.md`` for
a quickstart.
"""

from __future__ import annotations

__version__ = "1.0.0"

__all__ = ["__version__"]
