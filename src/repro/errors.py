"""Exception hierarchy for the Rela reproduction package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming errors
such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class AlphabetError(ReproError):
    """A symbol was used that is not part of the relevant alphabet, or two
    automata over incompatible alphabets were combined."""


class AutomatonError(ReproError):
    """An automaton was constructed or manipulated inconsistently."""


class RegexSyntaxError(ReproError):
    """A path regular expression could not be parsed."""


class SpecSyntaxError(ReproError):
    """A Rela specification could not be parsed."""


class CompilationError(ReproError):
    """A Rela or RIR expression could not be compiled to automata."""


class SemanticsError(ReproError):
    """The set-based reference semantics could not evaluate an expression
    (for example, an unbounded complement with no length bound)."""


class LocationError(ReproError):
    """A location query referenced unknown locations or attributes."""


class TopologyError(ReproError):
    """The network topology is malformed (dangling links, duplicate names)."""


class RoutingError(ReproError):
    """Route computation failed (no viable route selection, policy errors)."""


class SnapshotError(ReproError):
    """A forwarding snapshot is malformed or cannot be (de)serialized."""


class VerificationError(ReproError):
    """The verification engine was invoked with inconsistent inputs."""


class CheckTimeoutError(ReproError):
    """A single per-FEC check exceeded its wall-clock budget
    (``VerificationOptions.check_timeout``) and was interrupted."""


class WorkerCrashError(ReproError):
    """A worker process died (OOM kill, hard crash, injected fault) while a
    check was in flight, or an in-process check simulated such a death."""


class DegradedExecutionError(ReproError):
    """Resilient execution would have had to degrade (record an ``unknown``
    verdict or fall back to serial execution) but degradation was disabled
    (``VerificationOptions.allow_degraded=False`` / ``--no-degrade``)."""


class WorkloadError(ReproError):
    """A synthetic workload generator received invalid parameters."""


class ServeError(ReproError):
    """Base class for verification-service (``repro serve``) failures."""


class ProtocolError(ServeError):
    """A service request could not be decoded: malformed JSON, an unknown
    field, a bad payload encoding, or a body over the configured size cap.
    Maps to HTTP 400 with a structured error document — never a traceback."""


class SessionNotFoundError(ServeError):
    """A service request named a tenant session that does not exist (HTTP 404)."""


class SessionExistsError(ServeError):
    """A session-create request named a tenant session that already exists
    (HTTP 409; advance the existing session or delete it first)."""


class QuotaExceededError(ServeError):
    """A tenant request exceeded its quota or the service's bounded request
    queue is full.  Maps to HTTP 429 with a ``Retry-After`` hint: the
    request was *refused before any work started*, never dropped midway."""


class AnalyticsError(ReproError):
    """The risk/gate analytics layer received inconsistent inputs
    (an empty sweep, malformed thresholds, out-of-range scores)."""


class PersistenceError(ReproError):
    """Base class for durability-layer failures (journals, state stores)."""


class JournalCorruptionError(PersistenceError):
    """A journal file is not a ``repro-journal/v1`` file at all (bad magic):
    it cannot be recovered, only replaced.  Damage *within* a well-formed
    journal — torn tails, CRC-failing records — is not an error: readers
    recover to the last good prefix and report what was dropped."""


class StateVersionError(PersistenceError):
    """A journal or state store was produced by an incompatible run: wrong
    format version, wrong run signature (different workload, spec, or
    verdict-relevant options), or a spec whose digest no longer matches.
    Resuming from it could silently change a report, so it is refused."""
