"""Differential-analysis baseline (DNA / Batfish differential questions).

Differential network analysis (paper Section 10) simulates both snapshots and
reports *diffs*: which flows changed paths, and which single-snapshot
invariants changed truth value.  Unlike Rela it has no specification of what
*should* change, so a human must read the diff and certify it.  This module
reproduces that workflow so benchmarks can compare:

* the size of the artifact a human must audit (diff entries), versus
* Rela's targeted violation reports (zero when the change is compliant).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.automata.alphabet import DROP
from repro.snapshots.pathdiff import PathDiff, path_diff
from repro.snapshots.snapshot import Snapshot


@dataclass(slots=True)
class InvariantDiff:
    """A single-snapshot invariant whose truth value changed across snapshots."""

    fec_id: str
    invariant: str
    before: bool
    after: bool

    def __str__(self) -> str:
        return f"{self.fec_id}: {self.invariant} changed {self.before} -> {self.after}"


@dataclass(slots=True)
class DifferentialReport:
    """Everything a human auditor would have to read."""

    path_differences: PathDiff
    invariant_differences: list[InvariantDiff] = field(default_factory=list)

    @property
    def audit_items(self) -> int:
        """Total number of items requiring human attention."""
        return len(self.path_differences) + len(self.invariant_differences)

    def summary(self) -> str:
        return (
            f"{len(self.path_differences)} path diffs and "
            f"{len(self.invariant_differences)} invariant diffs to audit manually"
        )


def _reaches_egress(snapshot: Snapshot, fec_id: str, *, max_paths: int) -> bool:
    paths = snapshot.graph(fec_id).path_set(max_paths=max_paths)
    return any(path and path[-1] != DROP for path in paths)


def differential_analysis(
    pre: Snapshot,
    post: Snapshot,
    *,
    max_paths: int = 1000,
) -> DifferentialReport:
    """Compute path and invariant diffs between two snapshots."""
    differences = path_diff(pre, post, max_paths=max_paths)
    invariant_diffs: list[InvariantDiff] = []
    fec_ids = list(dict.fromkeys(pre.fec_ids() + post.fec_ids()))
    for fec_id in fec_ids:
        before = _reaches_egress(pre, fec_id, max_paths=max_paths)
        after = _reaches_egress(post, fec_id, max_paths=max_paths)
        if before != after:
            invariant_diffs.append(
                InvariantDiff(
                    fec_id=fec_id, invariant="reachability", before=before, after=after
                )
            )
    return DifferentialReport(path_differences=differences, invariant_differences=invariant_diffs)
