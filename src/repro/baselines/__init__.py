"""Baselines: single-snapshot verification and differential analysis."""

from repro.baselines.differential import DifferentialReport, InvariantDiff, differential_analysis
from repro.baselines.single_snapshot import (
    InvariantResult,
    NaiveChangeCheck,
    check_isolation,
    check_loop_freedom,
    check_reachability,
    check_waypoint,
)

__all__ = [
    "InvariantResult",
    "check_reachability",
    "check_waypoint",
    "check_isolation",
    "check_loop_freedom",
    "NaiveChangeCheck",
    "DifferentialReport",
    "InvariantDiff",
    "differential_analysis",
]
