"""Single-snapshot verification baseline (paper Section 2.2).

Traditional network verification checks one snapshot against a specification:
"DNS is never blocked", "no packet reaches the high-security zone without
traversing the firewall".  The paper argues these tools are valuable for
coarse, long-lived invariants but cannot practically validate changes,
because a precise single-snapshot spec must enumerate the expected paths of
every traffic class — its size is proportional to the network, not to the
change.

This module implements a representative single-snapshot verifier over our
snapshot format so benchmarks and tests can demonstrate both points:

* the supported invariants (reachability, waypointing, isolation, loop
  freedom) are useful and cheap; and
* a "naive change spec" built from them (new path exists, old path gone)
  misses collateral damage that Rela's relational spec catches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable

from repro.automata.alphabet import DROP
from repro.snapshots.snapshot import Snapshot

Path = tuple[str, ...]


@dataclass(slots=True)
class InvariantResult:
    """Outcome of evaluating one invariant over one snapshot."""

    invariant: str
    holds: bool
    #: FEC ids violating the invariant, with a short explanation each.
    violations: list[tuple[str, str]] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.holds


def _paths(snapshot: Snapshot, fec_id: str, max_paths: int) -> set[Path]:
    return snapshot.graph(fec_id).path_set(max_paths=max_paths)


def check_reachability(
    snapshot: Snapshot,
    *,
    fec_ids: Iterable[str] | None = None,
    max_paths: int = 1000,
) -> InvariantResult:
    """Every selected class reaches some egress (is neither dropped nor lost)."""
    result = InvariantResult(invariant="reachability", holds=True)
    for fec_id in fec_ids or snapshot.fec_ids():
        paths = _paths(snapshot, fec_id, max_paths)
        delivered = [path for path in paths if path and path[-1] != DROP]
        if not delivered:
            result.holds = False
            result.violations.append((fec_id, "no forwarding path reaches an egress"))
    return result


def check_waypoint(
    snapshot: Snapshot,
    waypoints: set[str],
    *,
    fec_ids: Iterable[str] | None = None,
    max_paths: int = 1000,
) -> InvariantResult:
    """Every delivered path of the selected classes traverses a waypoint."""
    result = InvariantResult(invariant=f"waypoint({sorted(waypoints)})", holds=True)
    for fec_id in fec_ids or snapshot.fec_ids():
        for path in _paths(snapshot, fec_id, max_paths):
            if path and path[-1] == DROP:
                continue
            if not waypoints & set(path):
                result.holds = False
                result.violations.append(
                    (fec_id, f"path {'-'.join(path)} bypasses the waypoint set")
                )
                break
    return result


def check_isolation(
    snapshot: Snapshot,
    forbidden: set[str],
    *,
    fec_ids: Iterable[str] | None = None,
    max_paths: int = 1000,
) -> InvariantResult:
    """No path of the selected classes traverses a forbidden location."""
    result = InvariantResult(invariant=f"isolation({sorted(forbidden)})", holds=True)
    for fec_id in fec_ids or snapshot.fec_ids():
        for path in _paths(snapshot, fec_id, max_paths):
            if forbidden & set(path):
                result.holds = False
                result.violations.append(
                    (fec_id, f"path {'-'.join(path)} traverses a forbidden location")
                )
                break
    return result


def check_loop_freedom(snapshot: Snapshot) -> InvariantResult:
    """No forwarding graph contains a directed cycle."""
    result = InvariantResult(invariant="loop-freedom", holds=True)
    for fec, graph in snapshot.items():
        if not graph.is_acyclic():
            result.holds = False
            result.violations.append((fec.fec_id, "forwarding graph contains a loop"))
    return result


@dataclass(slots=True)
class NaiveChangeCheck:
    """The "just verify the new network" tactic the paper warns about.

    To validate "replace path P1 with P2" with a single-snapshot tool, one can
    only assert that P2 exists in the new snapshot and P1 does not.  This
    check implements exactly that — and therefore, by construction, says
    nothing about collateral damage to other traffic.
    """

    old_path: Path
    new_path: Path

    def check(self, post: Snapshot, *, max_paths: int = 1000) -> InvariantResult:
        """Evaluate the naive spec on the post-change snapshot only."""
        result = InvariantResult(
            invariant=f"naive-change({'-'.join(self.old_path)} -> {'-'.join(self.new_path)})",
            holds=True,
        )
        new_seen = False
        for fec_id in post.fec_ids():
            paths = _paths(post, fec_id, max_paths)
            if self.new_path in paths:
                new_seen = True
            if self.old_path in paths:
                result.holds = False
                result.violations.append((fec_id, "old path still present"))
        if not new_seen:
            result.holds = False
            result.violations.append(("*", "new path absent from post-change snapshot"))
        return result
