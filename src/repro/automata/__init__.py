"""Automata substrate: regular languages and rational relations.

This package is the reproduction's stand-in for OpenFST/HFST (Section 7 of
the paper).  It provides finite state automata (:class:`~repro.automata.fsa.FSA`),
finite state transducers (:class:`~repro.automata.fst.FST`), a regular
expression AST and parser, and the comparison routines the Rela decision
procedure is built on.

Performance architecture
------------------------
The verification hot path (``_check_one_fec`` → ``FST.image`` →
``compare``) runs once per flow equivalence class, over alphabets with
hundreds of network locations, so it avoids every construction whose cost
scales with ``|Sigma|``:

* **Lazy product decision procedures** (:mod:`repro.automata.lazy`): subset,
  equality and difference questions are decided by exploring the product of
  one automaton with the implicitly-completed, implicitly-complemented
  subset construction of the other, on the fly.  Missing moves are an
  implicit sink (the empty subset), the boolean procedures exit on the first
  accepting product state, shortest witnesses come straight off the product
  BFS tree, and the "languages agree" verdict — the common case in change
  validation — costs a single joint pass.  Per-product-state work is bounded
  by the automata's local out-degree, never by ``|Sigma|``.
* **Fused image** (:meth:`~repro.automata.fst.FST.image`): ``P ▷ R`` walks
  ``(acceptor, transducer)`` state pairs directly, driven by the acceptor's
  (small) transition rows against a cached by-input-label arc index on the
  transducer, instead of materializing ``identity(P)``, a full composition,
  and a projection per class per spec branch.
* **Delayed transducer operations** (the OpenFST-style layer in
  :mod:`repro.automata.lazy`): spec *compilation* is a DAG of delayed
  nodes instead of materialized transducers.  :class:`~repro.automata.lazy.LazyFST`
  defines the arc-iteration protocol shared with concrete FSTs — ``initial``,
  ``is_accepting(state)``, ``eps_arcs(state)`` (input-epsilon arcs as
  ``(out, dst)`` pairs) and ``step(state, symbol)`` — and the node types
  compose freely over it:

  - :class:`~repro.automata.lazy.LazyIdentity` — ``I(P)`` straight off the
    language automaton's transitions;
  - :class:`~repro.automata.lazy.LazyComplementZone` — the branch-shadowing
    prefix ``I(¬Z)``, determinized along the queried frontier with an
    implicit (accepting) sink; no completion, no complement, no
    ``|Sigma|``-indexed rows;
  - :class:`~repro.automata.lazy.LazyUnion` /
    :class:`~repro.automata.lazy.LazyCompose` — delayed ``R1 | R2`` and
    ``R1 ∘ R2`` whose pair spaces are interned and expanded on demand, so a
    30+-branch ``else`` chain never builds the multiplicative product.

  Expansions are memoized per node, and
  :func:`~repro.automata.lazy.relation_image` (== ``LazyFST.image``) is the
  decision boundary that forces a delayed relation against a snapshot
  automaton; :meth:`LazyFST.to_fst` fully materializes a node for tests.
* **Eager oracle retained**: the textbook constructions
  (:meth:`FSA.complete`, :meth:`FSA.complement`, :meth:`FSA.difference`,
  :meth:`FSA.equivalent`, :meth:`FST.compose`, :meth:`FST.union`,
  :meth:`FST.image_via_compose`) are kept unchanged and serve as the
  reference oracle; the property tests in
  ``tests/automata/test_properties.py`` assert both the lazy decision
  procedures and the delayed-operation nodes agree with the oracle on
  randomized automata, including witness sets.
"""

from repro.automata.alphabet import DROP, HASH, Alphabet
from repro.automata.equivalence import (
    ComparisonResult,
    check_equal,
    check_subset,
    compare,
    symmetric_difference,
)
from repro.automata.fsa import EPSILON, FSA
from repro.automata.fst import FST
from repro.automata.lazy import (
    LazyComplementZone,
    LazyCompose,
    LazyFST,
    LazyIdentity,
    LazyUnion,
    difference_dfa,
    is_equivalent,
    is_subset,
    relation_image,
    shortest_witness,
)
from repro.automata.regex import (
    AnySym,
    Complement,
    Concat,
    Empty,
    Epsilon,
    Intersect,
    Regex,
    Star,
    Sym,
    SymSet,
    Union,
    concat_all,
    literal,
    parse_regex,
    union_all,
)

__all__ = [
    "Alphabet",
    "DROP",
    "HASH",
    "EPSILON",
    "FSA",
    "FST",
    "Regex",
    "Empty",
    "Epsilon",
    "Sym",
    "SymSet",
    "AnySym",
    "Union",
    "Concat",
    "Star",
    "Intersect",
    "Complement",
    "literal",
    "union_all",
    "concat_all",
    "parse_regex",
    "ComparisonResult",
    "compare",
    "check_equal",
    "check_subset",
    "symmetric_difference",
    "difference_dfa",
    "is_subset",
    "is_equivalent",
    "shortest_witness",
    "LazyFST",
    "LazyIdentity",
    "LazyComplementZone",
    "LazyUnion",
    "LazyCompose",
    "relation_image",
]
