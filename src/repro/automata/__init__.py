"""Automata substrate: regular languages and rational relations.

This package is the reproduction's stand-in for OpenFST/HFST (Section 7 of
the paper).  It provides finite state automata (:class:`~repro.automata.fsa.FSA`),
finite state transducers (:class:`~repro.automata.fst.FST`), a regular
expression AST and parser, and the comparison routines the Rela decision
procedure is built on.
"""

from repro.automata.alphabet import DROP, HASH, Alphabet
from repro.automata.equivalence import (
    ComparisonResult,
    check_equal,
    check_subset,
    compare,
    symmetric_difference,
)
from repro.automata.fsa import EPSILON, FSA
from repro.automata.fst import FST
from repro.automata.regex import (
    AnySym,
    Complement,
    Concat,
    Empty,
    Epsilon,
    Intersect,
    Regex,
    Star,
    Sym,
    SymSet,
    Union,
    concat_all,
    literal,
    parse_regex,
    union_all,
)

__all__ = [
    "Alphabet",
    "DROP",
    "HASH",
    "EPSILON",
    "FSA",
    "FST",
    "Regex",
    "Empty",
    "Epsilon",
    "Sym",
    "SymSet",
    "AnySym",
    "Union",
    "Concat",
    "Star",
    "Intersect",
    "Complement",
    "literal",
    "union_all",
    "concat_all",
    "parse_regex",
    "ComparisonResult",
    "compare",
    "check_equal",
    "check_subset",
    "symmetric_difference",
]
