"""Automata substrate: regular languages and rational relations.

This package is the reproduction's stand-in for OpenFST/HFST (Section 7 of
the paper).  It provides finite state automata (:class:`~repro.automata.fsa.FSA`),
finite state transducers (:class:`~repro.automata.fst.FST`), a regular
expression AST and parser, and the comparison routines the Rela decision
procedure is built on.

Performance architecture
------------------------
The verification hot path (``_check_one_fec`` → ``FST.image`` →
``compare``) runs once per flow equivalence class, over alphabets with
hundreds of network locations, so it avoids every construction whose cost
scales with ``|Sigma|``:

* **Lazy product decision procedures** (:mod:`repro.automata.lazy`): subset,
  equality and difference questions are decided by exploring the product of
  one automaton with the implicitly-completed, implicitly-complemented
  subset construction of the other, on the fly.  Missing moves are an
  implicit sink (the empty subset), the boolean procedures exit on the first
  accepting product state, shortest witnesses come straight off the product
  BFS tree, and the "languages agree" verdict — the common case in change
  validation — costs a single joint pass.  Per-product-state work is bounded
  by the automata's local out-degree, never by ``|Sigma|``.
* **Fused image** (:meth:`~repro.automata.fst.FST.image`): ``P ▷ R`` walks
  ``(acceptor, transducer)`` state pairs directly, driven by the acceptor's
  (small) transition rows against a cached by-input-label arc index on the
  transducer, instead of materializing ``identity(P)``, a full composition,
  and a projection per class per spec branch.
* **Eager oracle retained**: the textbook constructions
  (:meth:`FSA.complete`, :meth:`FSA.complement`, :meth:`FSA.difference`,
  :meth:`FSA.equivalent`, :meth:`FST.image_via_compose`) are kept unchanged
  and serve as the reference oracle — spec *compilation* still uses eager
  complements (it runs once per verification run, not per class), and the
  property tests in ``tests/automata/test_properties.py`` assert the lazy
  engine agrees with the oracle on randomized NFAs, including witness sets.
"""

from repro.automata.alphabet import DROP, HASH, Alphabet
from repro.automata.equivalence import (
    ComparisonResult,
    check_equal,
    check_subset,
    compare,
    symmetric_difference,
)
from repro.automata.fsa import EPSILON, FSA
from repro.automata.fst import FST
from repro.automata.lazy import (
    difference_dfa,
    is_equivalent,
    is_subset,
    shortest_witness,
)
from repro.automata.regex import (
    AnySym,
    Complement,
    Concat,
    Empty,
    Epsilon,
    Intersect,
    Regex,
    Star,
    Sym,
    SymSet,
    Union,
    concat_all,
    literal,
    parse_regex,
    union_all,
)

__all__ = [
    "Alphabet",
    "DROP",
    "HASH",
    "EPSILON",
    "FSA",
    "FST",
    "Regex",
    "Empty",
    "Epsilon",
    "Sym",
    "SymSet",
    "AnySym",
    "Union",
    "Concat",
    "Star",
    "Intersect",
    "Complement",
    "literal",
    "union_all",
    "concat_all",
    "parse_regex",
    "ComparisonResult",
    "compare",
    "check_equal",
    "check_subset",
    "symmetric_difference",
    "difference_dfa",
    "is_subset",
    "is_equivalent",
    "shortest_witness",
]
