"""Language equivalence, inclusion and witness extraction.

The Rela decision procedure reduces every specification to equalities and
inclusions between regular path sets (Section 6.2).  This module packages the
comparisons used by the verifier:

* :func:`compare` — full two-sided comparison with witness words for both
  directions (paths the post-change network is *missing* and paths it
  *unexpectedly* contains);
* :func:`check_equal`, :func:`check_subset` — boolean decision procedures;
* :func:`symmetric_difference` — the automaton of all disagreement words.

All of them are backed by the lazy product engine in
:mod:`repro.automata.lazy`: differences are explored on the fly with an
implicit sink instead of materializing completed/complemented DFAs over the
full alphabet.  The eager constructions on :class:`FSA` remain available as
the reference oracle (see the property tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.automata.alphabet import require_same_alphabet
from repro.automata.fsa import FSA, Word
from repro.automata.lazy import difference_dfa, is_equivalent, is_subset


@dataclass(slots=True)
class ComparisonResult:
    """Outcome of comparing two regular path sets.

    Attributes
    ----------
    equal:
        Whether the two languages are identical.
    left_subset_of_right / right_subset_of_left:
        The two inclusion directions, decided independently.
    missing:
        Witness words accepted by the left language but not the right.  For a
        spec ``PreState ▷ Rpre = PostState ▷ Rpost`` these are the *expected*
        post-change paths that the network does not exhibit.
    unexpected:
        Witness words accepted by the right language but not the left: paths
        the post-change network exhibits even though the spec forbids them.
    """

    equal: bool
    left_subset_of_right: bool
    right_subset_of_left: bool
    missing: list[Word] = field(default_factory=list)
    unexpected: list[Word] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.equal


def symmetric_difference(left: FSA, right: FSA) -> FSA:
    """Automaton accepting every word on which the two languages disagree."""
    require_same_alphabet(left.alphabet, right.alphabet)
    return difference_dfa(left, right).union(difference_dfa(right, left))


def check_equal(left: FSA, right: FSA) -> bool:
    """Decide language equality (lazy, early-exit on the first disagreement)."""
    return is_equivalent(left, right)

def check_subset(left: FSA, right: FSA) -> bool:
    """Decide language inclusion ``left ⊆ right`` (lazy, early-exit)."""
    return is_subset(left, right)


def compare(
    left: FSA,
    right: FSA,
    *,
    max_witnesses: int = 10,
    max_witness_length: int = 64,
) -> ComparisonResult:
    """Compare two path sets and collect witnesses for each disagreement side.

    Witness enumeration is breadth-first, so the shortest disagreeing paths
    are reported first; at most ``max_witnesses`` per direction are produced.
    Both difference automata are built by the lazy product construction, so
    the common "languages agree" case never materializes a completed DFA.
    """
    require_same_alphabet(left.alphabet, right.alphabet)
    # The common "languages agree" case is decided by a single joint product
    # pass; only a disagreement falls through to the per-direction products,
    # each explored exactly once (the materialized difference doubles as the
    # inclusion verdict and the witness source).
    if is_equivalent(left, right):
        return ComparisonResult(equal=True, left_subset_of_right=True, right_subset_of_left=True)
    left_minus_right = difference_dfa(left, right)
    right_minus_left = difference_dfa(right, left)
    left_in_right = left_minus_right.is_empty()
    right_in_left = right_minus_left.is_empty()

    missing: list[Word] = []
    unexpected: list[Word] = []
    if not left_in_right:
        missing = list(
            left_minus_right.enumerate_words(
                max_count=max_witnesses, max_length=max_witness_length
            )
        )
    if not right_in_left:
        unexpected = list(
            right_minus_left.enumerate_words(
                max_count=max_witnesses, max_length=max_witness_length
            )
        )
    return ComparisonResult(
        equal=left_in_right and right_in_left,
        left_subset_of_right=left_in_right,
        right_subset_of_left=right_in_left,
        missing=missing,
        unexpected=unexpected,
    )
