"""On-the-fly (lazy) product constructions for the verification hot path.

The eager decision procedure in :mod:`repro.automata.fsa` answers
``L(A) \\ L(B)`` questions with the textbook pipeline: determinize ``B``,
*complete* it over the full alphabet (one sink transition per missing
``(state, symbol)`` pair), complement it, and build the product with ``A``.
On verification alphabets with hundreds of network locations the completion
step alone materializes ``|Sigma| * |states|`` transitions, almost all of
which a single flow equivalence class never touches.

This module decides the same questions by exploring the product of ``A`` with
the *implicitly completed, implicitly complemented* determinization of ``B``
on the fly:

* both sides are determinized by the subset construction, but only along the
  product frontier — subsets that no reachable product state needs are never
  created;
* a missing move of ``B`` is represented by the empty subset, which acts as
  the implicit non-accepting sink — ``complete()`` is never called and no
  ``Sigma``-indexed rows exist anywhere;
* only symbols on which ``A`` can actually move are expanded, so the work per
  product state is bounded by ``A``'s local out-degree, not ``|Sigma|``;
* the boolean procedures exit on the *first* accepting product state, and the
  shortest-witness procedure reads the witness straight off the product BFS
  tree.

The eager path (:meth:`FSA.difference`, :meth:`FSA.complement`,
:meth:`FSA.is_subset_of`, :meth:`FSA.equivalent`) is kept unchanged as the
reference oracle; property tests assert both agree on randomized NFAs.
"""

from __future__ import annotations

from collections import deque

from repro.automata.alphabet import require_same_alphabet
from repro.automata.fsa import EPSILON, FSA, Word

__all__ = [
    "difference_dfa",
    "is_subset",
    "is_equivalent",
    "shortest_witness",
]

_EMPTY: frozenset[int] = frozenset()


def _initial_pair(left: FSA, right: FSA) -> tuple[frozenset[int], frozenset[int]]:
    return (
        left.epsilon_closure([left.initial]),
        right.epsilon_closure([right.initial]),
    )


def _moves(fsa: FSA, subset: frozenset[int]) -> dict[int, set[int]]:
    """Symbol moves of a determinized subset (epsilon moves excluded)."""
    moves: dict[int, set[int]] = {}
    for state in subset:
        for symbol, dsts in fsa.transitions[state].items():
            if symbol is EPSILON:
                continue
            moves.setdefault(symbol, set()).update(dsts)
    return moves


def _right_target(right: FSA, subset: frozenset[int], symbol: int) -> frozenset[int]:
    """Follow ``symbol`` in the implicit completion of determinized ``right``.

    The empty subset is the implicit sink: it absorbs every symbol and is
    never accepting, which is exactly what ``complete()`` would have
    materialized eagerly.
    """
    dsts: set[int] = set()
    for state in subset:
        dsts.update(right.transitions[state].get(symbol, ()))
    return right.epsilon_closure(dsts) if dsts else _EMPTY


def _is_accepting(left: FSA, right: FSA, lsub: frozenset[int], rsub: frozenset[int]) -> bool:
    """Product acceptance for ``L(left) \\ L(right)``: left accepts, right doesn't."""
    return bool(lsub & left.accepting) and not (rsub & right.accepting)


def difference_dfa(left: FSA, right: FSA) -> FSA:
    """The reachable product DFA for ``L(left) \\ L(right)``.

    Equivalent in language to ``left.difference(right)`` but built lazily:
    only product states reachable from the initial pair exist, the sink is
    implicit, and no state ever carries a full-``Sigma`` transition row.  The
    result is a trim-free DFA suitable for :meth:`FSA.enumerate_words`.
    """
    require_same_alphabet(left.alphabet, right.alphabet)
    result = FSA(left.alphabet)
    start = _initial_pair(left, right)
    pair_ids: dict[tuple[frozenset[int], frozenset[int]], int] = {start: result.initial}
    if _is_accepting(left, right, *start):
        result.mark_accepting(result.initial)
    queue: deque[tuple[frozenset[int], frozenset[int]]] = deque([start])
    rows = result.transitions
    while queue:
        pair = queue.popleft()
        lsub, rsub = pair
        src = pair_ids[pair]
        for symbol, ldsts in _moves(left, lsub).items():
            ltarget = left.epsilon_closure(ldsts)
            rtarget = _right_target(right, rsub, symbol)
            key = (ltarget, rtarget)
            dst = pair_ids.get(key)
            if dst is None:
                dst = result.add_state()
                pair_ids[key] = dst
                if _is_accepting(left, right, ltarget, rtarget):
                    result.mark_accepting(dst)
                queue.append(key)
            # The product is deterministic by construction, so each
            # (src, symbol) slot is written exactly once; skip the generic
            # validating add_transition.
            rows[src][symbol] = {dst}
    return result


def is_subset(left: FSA, right: FSA) -> bool:
    """Decide ``L(left) ⊆ L(right)`` lazily, exiting on the first violation.

    A violation is an accepting product state — a word accepted by ``left``
    while the (implicitly completed) determinization of ``right`` is in a
    non-accepting subset.
    """
    require_same_alphabet(left.alphabet, right.alphabet)
    start = _initial_pair(left, right)
    if _is_accepting(left, right, *start):
        return False
    seen = {start}
    queue: deque[tuple[frozenset[int], frozenset[int]]] = deque([start])
    while queue:
        lsub, rsub = queue.popleft()
        for symbol, ldsts in _moves(left, lsub).items():
            ltarget = left.epsilon_closure(ldsts)
            rtarget = _right_target(right, rsub, symbol)
            key = (ltarget, rtarget)
            if key in seen:
                continue
            if _is_accepting(left, right, ltarget, rtarget):
                return False
            seen.add(key)
            queue.append(key)
    return True


def is_equivalent(left: FSA, right: FSA) -> bool:
    """Decide ``L(left) = L(right)`` with one joint product exploration.

    Both sides are determinized on the fly over the *same* product frontier;
    a reachable pair whose two subsets disagree on acceptance witnesses a
    word in the symmetric difference and exits immediately.  Expanding on the
    union of both sides' locally available symbols keeps the per-state work
    bounded by the automata's actual out-degrees — the "equal" verdict (the
    overwhelmingly common case in change validation) costs a single pass.
    """
    require_same_alphabet(left.alphabet, right.alphabet)
    start = _initial_pair(left, right)
    if bool(start[0] & left.accepting) != bool(start[1] & right.accepting):
        return False
    seen = {start}
    queue: deque[tuple[frozenset[int], frozenset[int]]] = deque([start])
    while queue:
        lsub, rsub = queue.popleft()
        lmoves = _moves(left, lsub)
        rmoves = _moves(right, rsub)
        for symbol in lmoves.keys() | rmoves.keys():
            ldsts = lmoves.get(symbol)
            ltarget = left.epsilon_closure(ldsts) if ldsts else _EMPTY
            rdsts = rmoves.get(symbol)
            rtarget = right.epsilon_closure(rdsts) if rdsts else _EMPTY
            key = (ltarget, rtarget)
            if key in seen:
                continue
            if bool(ltarget & left.accepting) != bool(rtarget & right.accepting):
                return False
            seen.add(key)
            queue.append(key)
    return True


def shortest_witness(left: FSA, right: FSA) -> Word | None:
    """A shortest word in ``L(left) \\ L(right)``, or ``None`` if none exists.

    The witness is read directly off the product BFS tree, so the common
    "inclusion holds" case costs one frontier exploration and the failing
    case stops at the first accepting product state.
    """
    require_same_alphabet(left.alphabet, right.alphabet)
    start = _initial_pair(left, right)
    if _is_accepting(left, right, *start):
        return ()
    seen = {start}
    queue: deque[tuple[frozenset[int], frozenset[int], tuple[int, ...]]] = deque(
        [(start[0], start[1], ())]
    )
    while queue:
        lsub, rsub, word = queue.popleft()
        for symbol, ldsts in sorted(_moves(left, lsub).items()):
            ltarget = left.epsilon_closure(ldsts)
            rtarget = _right_target(right, rsub, symbol)
            key = (ltarget, rtarget)
            if key in seen:
                continue
            seen.add(key)
            extended = word + (symbol,)
            if _is_accepting(left, right, ltarget, rtarget):
                return left.alphabet.ids_to_word(extended)
            queue.append((ltarget, rtarget, extended))
    return None
