"""On-the-fly (lazy) product constructions and delayed FST operations.

The module has two halves, both built on the same idea — explore product
state spaces along the reachable frontier instead of materializing them:

**Decision procedures** (`difference_dfa`, `is_subset`, `is_equivalent`,
`shortest_witness`).  The eager decision procedure in
:mod:`repro.automata.fsa` answers ``L(A) \\ L(B)`` questions with the
textbook pipeline: determinize ``B``, *complete* it over the full alphabet
(one sink transition per missing ``(state, symbol)`` pair), complement it,
and build the product with ``A``.  On verification alphabets with hundreds
of network locations the completion step alone materializes
``|Sigma| * |states|`` transitions, almost all of which a single flow
equivalence class never touches.  The lazy procedures explore the product of
``A`` with the *implicitly completed, implicitly complemented*
determinization of ``B`` on the fly:

* both sides are determinized by the subset construction, but only along the
  product frontier — subsets that no reachable product state needs are never
  created;
* a missing move of ``B`` is represented by the empty subset, which acts as
  the implicit non-accepting sink — ``complete()`` is never called and no
  ``Sigma``-indexed rows exist anywhere;
* only symbols on which ``A`` can actually move are expanded, so the work per
  product state is bounded by ``A``'s local out-degree, not ``|Sigma|``;
* the boolean procedures exit on the *first* accepting product state, and the
  shortest-witness procedure reads the witness straight off the product BFS
  tree.

**Delayed transducer operations** (:class:`LazyFST` and its node types
:class:`LazyIdentity`, :class:`LazyComplementZone`, :class:`LazyUnion`,
:class:`LazyCompose`).  Spec compilation builds deep
``identity(complement(zone)) ∘ (branch | ...)`` chains — one shadowing
prefix per ``else`` branch — and composing those transducers eagerly blows
up multiplicatively (an OpenFST-style delayed composition problem).  A
``LazyFST`` is a *recipe*: it exposes the same arc-iteration interface as a
concrete :class:`~repro.automata.fst.FST` (``initial`` / ``is_accepting`` /
``eps_arcs`` / ``step``) but expands states on demand and memoizes the
expansions, so an image query only ever touches the part of the product
that the acceptor's actual paths reach.  Concrete ``FST``\\ s implement the
same protocol, so delayed nodes freely mix eager leaves (small atomic
relations) with lazy combinators.  :func:`relation_image` is the decision
boundary where a delayed relation is forced into a concrete path-set FSA.

The eager path (:meth:`FSA.difference`, :meth:`FSA.complement`,
:meth:`FSA.is_subset_of`, :meth:`FSA.equivalent`, :meth:`FST.compose`,
:meth:`FST.union`) is kept unchanged as the reference oracle; property tests
assert both halves agree with the oracle on randomized automata.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator, Sequence

from repro.automata.alphabet import require_same_alphabet
from repro.automata.fsa import EPSILON, FSA, Word
from repro.automata.fst import FST, Label
from repro.automata.guard import POLL_MASK, active_deadline, check_deadline

__all__ = [
    "difference_dfa",
    "is_subset",
    "is_equivalent",
    "shortest_witness",
    "LazyFST",
    "LazyIdentity",
    "LazyComplementZone",
    "LazyUnion",
    "LazyCompose",
    "relation_image",
]

_EMPTY: frozenset[int] = frozenset()


def _initial_pair(left: FSA, right: FSA) -> tuple[frozenset[int], frozenset[int]]:
    return (
        left.epsilon_closure([left.initial]),
        right.epsilon_closure([right.initial]),
    )


def _moves(fsa: FSA, subset: frozenset[int]) -> dict[int, set[int]]:
    """Symbol moves of a determinized subset (epsilon moves excluded)."""
    moves: dict[int, set[int]] = {}
    for state in subset:
        for symbol, dsts in fsa.transitions[state].items():
            if symbol is EPSILON:
                continue
            moves.setdefault(symbol, set()).update(dsts)
    return moves


def _right_target(right: FSA, subset: frozenset[int], symbol: int) -> frozenset[int]:
    """Follow ``symbol`` in the implicit completion of determinized ``right``.

    The empty subset is the implicit sink: it absorbs every symbol and is
    never accepting, which is exactly what ``complete()`` would have
    materialized eagerly.
    """
    dsts: set[int] = set()
    for state in subset:
        dsts.update(right.transitions[state].get(symbol, ()))
    return right.epsilon_closure(dsts) if dsts else _EMPTY


def _is_accepting(left: FSA, right: FSA, lsub: frozenset[int], rsub: frozenset[int]) -> bool:
    """Product acceptance for ``L(left) \\ L(right)``: left accepts, right doesn't."""
    return bool(lsub & left.accepting) and not (rsub & right.accepting)


def difference_dfa(left: FSA, right: FSA) -> FSA:
    """The reachable product DFA for ``L(left) \\ L(right)``.

    Equivalent in language to ``left.difference(right)`` but built lazily:
    only product states reachable from the initial pair exist, the sink is
    implicit, and no state ever carries a full-``Sigma`` transition row.  The
    result is a trim-free DFA suitable for :meth:`FSA.enumerate_words`.
    """
    require_same_alphabet(left.alphabet, right.alphabet)
    result = FSA(left.alphabet)
    start = _initial_pair(left, right)
    pair_ids: dict[tuple[frozenset[int], frozenset[int]], int] = {start: result.initial}
    if _is_accepting(left, right, *start):
        result.mark_accepting(result.initial)
    queue: deque[tuple[frozenset[int], frozenset[int]]] = deque([start])
    rows = result.transitions
    deadline = active_deadline()
    steps = 0
    while queue:
        if deadline is not None:
            steps += 1
            if not steps & POLL_MASK:
                check_deadline(deadline)
        pair = queue.popleft()
        lsub, rsub = pair
        src = pair_ids[pair]
        for symbol, ldsts in _moves(left, lsub).items():
            ltarget = left.epsilon_closure(ldsts)
            rtarget = _right_target(right, rsub, symbol)
            key = (ltarget, rtarget)
            dst = pair_ids.get(key)
            if dst is None:
                dst = result.add_state()
                pair_ids[key] = dst
                if _is_accepting(left, right, ltarget, rtarget):
                    result.mark_accepting(dst)
                queue.append(key)
            # The product is deterministic by construction, so each
            # (src, symbol) slot is written exactly once; skip the generic
            # validating add_transition.
            rows[src][symbol] = {dst}
    return result


def is_subset(left: FSA, right: FSA) -> bool:
    """Decide ``L(left) ⊆ L(right)`` lazily, exiting on the first violation.

    A violation is an accepting product state — a word accepted by ``left``
    while the (implicitly completed) determinization of ``right`` is in a
    non-accepting subset.
    """
    require_same_alphabet(left.alphabet, right.alphabet)
    start = _initial_pair(left, right)
    if _is_accepting(left, right, *start):
        return False
    seen = {start}
    queue: deque[tuple[frozenset[int], frozenset[int]]] = deque([start])
    deadline = active_deadline()
    steps = 0
    while queue:
        if deadline is not None:
            steps += 1
            if not steps & POLL_MASK:
                check_deadline(deadline)
        lsub, rsub = queue.popleft()
        for symbol, ldsts in _moves(left, lsub).items():
            ltarget = left.epsilon_closure(ldsts)
            rtarget = _right_target(right, rsub, symbol)
            key = (ltarget, rtarget)
            if key in seen:
                continue
            if _is_accepting(left, right, ltarget, rtarget):
                return False
            seen.add(key)
            queue.append(key)
    return True


def is_equivalent(left: FSA, right: FSA) -> bool:
    """Decide ``L(left) = L(right)`` with one joint product exploration.

    Both sides are determinized on the fly over the *same* product frontier;
    a reachable pair whose two subsets disagree on acceptance witnesses a
    word in the symmetric difference and exits immediately.  Expanding on the
    union of both sides' locally available symbols keeps the per-state work
    bounded by the automata's actual out-degrees — the "equal" verdict (the
    overwhelmingly common case in change validation) costs a single pass.
    """
    require_same_alphabet(left.alphabet, right.alphabet)
    start = _initial_pair(left, right)
    if bool(start[0] & left.accepting) != bool(start[1] & right.accepting):
        return False
    seen = {start}
    queue: deque[tuple[frozenset[int], frozenset[int]]] = deque([start])
    deadline = active_deadline()
    steps = 0
    while queue:
        if deadline is not None:
            steps += 1
            if not steps & POLL_MASK:
                check_deadline(deadline)
        lsub, rsub = queue.popleft()
        lmoves = _moves(left, lsub)
        rmoves = _moves(right, rsub)
        for symbol in lmoves.keys() | rmoves.keys():
            ldsts = lmoves.get(symbol)
            ltarget = left.epsilon_closure(ldsts) if ldsts else _EMPTY
            rdsts = rmoves.get(symbol)
            rtarget = right.epsilon_closure(rdsts) if rdsts else _EMPTY
            key = (ltarget, rtarget)
            if key in seen:
                continue
            if bool(ltarget & left.accepting) != bool(rtarget & right.accepting):
                return False
            seen.add(key)
            queue.append(key)
    return True


def shortest_witness(left: FSA, right: FSA) -> Word | None:
    """A shortest word in ``L(left) \\ L(right)``, or ``None`` if none exists.

    The witness is read directly off the product BFS tree, so the common
    "inclusion holds" case costs one frontier exploration and the failing
    case stops at the first accepting product state.
    """
    require_same_alphabet(left.alphabet, right.alphabet)
    start = _initial_pair(left, right)
    if _is_accepting(left, right, *start):
        return ()
    seen = {start}
    queue: deque[tuple[frozenset[int], frozenset[int], tuple[int, ...]]] = deque(
        [(start[0], start[1], ())]
    )
    deadline = active_deadline()
    steps = 0
    while queue:
        if deadline is not None:
            steps += 1
            if not steps & POLL_MASK:
                check_deadline(deadline)
        lsub, rsub, word = queue.popleft()
        for symbol, ldsts in sorted(_moves(left, lsub).items()):
            ltarget = left.epsilon_closure(ldsts)
            rtarget = _right_target(right, rsub, symbol)
            key = (ltarget, rtarget)
            if key in seen:
                continue
            seen.add(key)
            extended = word + (symbol,)
            if _is_accepting(left, right, ltarget, rtarget):
                return left.alphabet.ids_to_word(extended)
            queue.append((ltarget, rtarget, extended))
    return None


# ======================================================================
# Delayed (OpenFST-style) transducer operations
# ======================================================================
#
# A delayed transducer implements the arc-iteration protocol shared with
# concrete FSTs:
#
#   initial                      -- integer identifier of the start state
#   is_accepting(state)          -- acceptance test
#   eps_arcs(state)              -- arcs whose *input* label is epsilon, as
#                                   (output_label, dst) pairs
#   step(state, symbol)          -- arcs consuming ``symbol`` on the input
#                                   tape, as (output_label, dst) pairs
#
# States are interned to dense integers per node, so a composition of
# compositions hashes shallow (int, int) pairs instead of nested tuples.
# Expansions are memoized: across the many flow equivalence classes of one
# verification run, each reachable spec-relation state is expanded once.

ArcList = Sequence[tuple[Label, int]]


class LazyFST:
    """Base class of delayed transducer nodes.

    Subclasses implement :meth:`_expand_eps` and :meth:`_expand_step` (and
    :meth:`is_accepting`); the base class memoizes the expansions so repeated
    image queries against the same relation share work.
    """

    __slots__ = ("alphabet", "initial", "_eps_cache", "_step_cache")

    def __init__(self, alphabet) -> None:
        self.alphabet = alphabet
        self.initial: int = 0
        self._eps_cache: dict[int, ArcList] = {}
        self._step_cache: dict[tuple[int, int], ArcList] = {}

    # -- protocol --------------------------------------------------------
    def is_accepting(self, state: int) -> bool:
        raise NotImplementedError

    def eps_arcs(self, state: int) -> ArcList:
        """Arcs with an epsilon input label, expanded on demand."""
        arcs = self._eps_cache.get(state)
        if arcs is None:
            arcs = self._eps_cache[state] = self._expand_eps(state)
        return arcs

    def step(self, state: int, symbol: int) -> ArcList:
        """Arcs consuming ``symbol`` on the input tape, expanded on demand."""
        key = (state, symbol)
        arcs = self._step_cache.get(key)
        if arcs is None:
            arcs = self._step_cache[key] = self._expand_step(state, symbol)
        return arcs

    # -- expansion hooks -------------------------------------------------
    def _expand_eps(self, state: int) -> ArcList:
        raise NotImplementedError

    def _expand_step(self, state: int, symbol: int) -> ArcList:
        raise NotImplementedError

    # -- forcing ---------------------------------------------------------
    def image(self, fsa: FSA) -> FSA:
        """``P ▷ R`` over the delayed graph (the decision boundary)."""
        return relation_image(self, fsa)

    def _all_arcs(self, state: int) -> Iterator[tuple[Label, Label, int]]:
        for out_label, dst in self.eps_arcs(state):
            yield (EPSILON, out_label, dst)
        for symbol in self.alphabet.ids():
            for out_label, dst in self.step(state, symbol):
                yield (symbol, out_label, dst)

    def to_fst(self) -> FST:
        """Force the delayed graph into a concrete FST.

        This enumerates every symbol of the alphabet at every reachable
        state, which is exactly the ``|Sigma| * |states|`` materialization
        the delayed representation avoids — it exists for tests, debugging
        and pair enumeration, not for the verification path.
        """
        fst = FST(self.alphabet)
        ids = {self.initial: fst.initial}
        queue: deque[int] = deque([self.initial])
        while queue:
            state = queue.popleft()
            src = ids[state]
            if self.is_accepting(state):
                fst.mark_accepting(src)
            for in_label, out_label, dst in self._all_arcs(state):
                target = ids.get(dst)
                if target is None:
                    target = ids[dst] = fst.add_state()
                    queue.append(dst)
                fst.add_arc(src, in_label, out_label, target)
        return fst

    def relation(
        self, *, max_count: int = 10_000, max_length: int = 32
    ) -> set[tuple[tuple[str, ...], tuple[str, ...]]]:
        """The relation as a bounded set of word pairs (via :meth:`to_fst`)."""
        return self.to_fst().relation(max_count=max_count, max_length=max_length)


class LazyIdentity(LazyFST):
    """``I(P)`` without materializing the identity transducer.

    States are the language automaton's own states; every symbol move
    becomes an on-demand ``symbol:symbol`` arc.
    """

    __slots__ = ("language",)

    def __init__(self, language: FSA) -> None:
        super().__init__(language.alphabet)
        self.language = language
        self.initial = language.initial

    def is_accepting(self, state: int) -> bool:
        return state in self.language.accepting

    def _expand_eps(self, state: int) -> ArcList:
        dsts = self.language.transitions[state].get(EPSILON)
        return [(EPSILON, dst) for dst in dsts] if dsts else ()

    def _expand_step(self, state: int, symbol: int) -> ArcList:
        dsts = self.language.transitions[state].get(symbol)
        return [(symbol, dst) for dst in dsts] if dsts else ()


class LazyComplementZone(LazyFST):
    """``I(¬L(zone))`` — the branch-shadowing prefix — fully delayed.

    The zone automaton is determinized by the subset construction along the
    queried frontier only; the empty subset is the implicit sink (which is
    *accepting* here, because the sink lies outside the zone).  Neither the
    completed DFA nor the complement is ever materialized, so the per-query
    cost is bounded by the symbols an acceptor actually presents, not by
    ``|Sigma|``.
    """

    __slots__ = ("zone", "_ids", "_subsets", "_closures")

    def __init__(self, zone: FSA) -> None:
        super().__init__(zone.alphabet)
        self.zone = zone
        self._ids: dict[frozenset[int], int] = {}
        self._subsets: list[frozenset[int]] = []
        #: Per-state epsilon closures, computed on first use.  Zone regexes
        #: compile to Thompson NFAs whose closures would otherwise be
        #: recomputed inside every subset step of every image walk.
        self._closures: dict[int, frozenset[int]] = {}
        self.initial = self._intern(zone.epsilon_closure([zone.initial]))

    def _intern(self, subset: frozenset[int]) -> int:
        state = self._ids.get(subset)
        if state is None:
            state = self._ids[subset] = len(self._subsets)
            self._subsets.append(subset)
        return state

    def _closure(self, state: int) -> frozenset[int]:
        closure = self._closures.get(state)
        if closure is None:
            closure = self._closures[state] = self.zone.epsilon_closure((state,))
        return closure

    def is_accepting(self, state: int) -> bool:
        return not (self._subsets[state] & self.zone.accepting)

    def _expand_eps(self, state: int) -> ArcList:
        return ()

    def _expand_step(self, state: int, symbol: int) -> ArcList:
        target: set[int] = set()
        closure = self._closure
        for member in self._subsets[state]:
            for dst in self.zone.transitions[member].get(symbol, ()):
                target |= closure(dst)
        return [(symbol, self._intern(frozenset(target) if target else _EMPTY))]


class LazyUnion(LazyFST):
    """Delayed relation union, n-ary.

    A fresh initial state (0) carries epsilon arcs into every operand;
    operand states are interned as ``(operand_index, state)`` pairs.  Nested
    ``LazyUnion`` operands are flattened on construction, so a prioritized
    union of 30+ spec branches dispatches through *one* level of delegation
    instead of a chain — the delegation depth of a product walk stays
    constant in the branch count.
    """

    __slots__ = ("operands", "_ids", "_members")

    def __init__(self, *operands: FST | LazyFST) -> None:
        if not operands:
            raise ValueError("LazyUnion needs at least one operand")
        flattened: list[FST | LazyFST] = []
        for operand in operands:
            if isinstance(operand, LazyUnion):
                flattened.extend(operand.operands)
            else:
                flattened.append(operand)
        require_same_alphabet(*[operand.alphabet for operand in flattened])
        super().__init__(flattened[0].alphabet)
        self.operands: tuple[FST | LazyFST, ...] = tuple(flattened)
        self._ids: dict[tuple[int, int], int] = {}
        # State 0 is the fresh initial; _members[0] is a placeholder.
        self._members: list[tuple[int, int]] = [(-1, -1)]

    def _intern(self, operand_index: int, state: int) -> int:
        key = (operand_index, state)
        interned = self._ids.get(key)
        if interned is None:
            interned = self._ids[key] = len(self._members)
            self._members.append(key)
        return interned

    def is_accepting(self, state: int) -> bool:
        if state == 0:
            return False
        index, inner = self._members[state]
        return self.operands[index].is_accepting(inner)

    def _expand_eps(self, state: int) -> ArcList:
        if state == 0:
            return [
                (EPSILON, self._intern(index, operand.initial))
                for index, operand in enumerate(self.operands)
            ]
        index, inner = self._members[state]
        return [
            (out, self._intern(index, dst))
            for out, dst in self.operands[index].eps_arcs(inner)
        ]

    def _expand_step(self, state: int, symbol: int) -> ArcList:
        if state == 0:
            return ()
        index, inner = self._members[state]
        return [
            (out, self._intern(index, dst))
            for out, dst in self.operands[index].step(inner, symbol)
        ]


class LazyCompose(LazyFST):
    """Delayed relation composition ``left ∘ right``.

    Mirrors :meth:`FST.compose` (free epsilon moves on either side), but the
    pair space is explored on demand: composing a 30-branch shadowing chain
    never builds the product — an image query walks only the pairs the
    acceptor's paths reach, and interning keeps composite states as dense
    integers so nested compositions stay cheap to hash.
    """

    __slots__ = ("left", "right", "_ids", "_pairs")

    def __init__(self, left: FST | LazyFST, right: FST | LazyFST) -> None:
        require_same_alphabet(left.alphabet, right.alphabet)
        super().__init__(left.alphabet)
        self.left = left
        self.right = right
        self._ids: dict[tuple[int, int], int] = {}
        self._pairs: list[tuple[int, int]] = []
        self.initial = self._intern(left.initial, right.initial)

    def _intern(self, lstate: int, rstate: int) -> int:
        key = (lstate, rstate)
        state = self._ids.get(key)
        if state is None:
            state = self._ids[key] = len(self._pairs)
            self._pairs.append(key)
        return state

    def is_accepting(self, state: int) -> bool:
        lstate, rstate = self._pairs[state]
        return self.left.is_accepting(lstate) and self.right.is_accepting(rstate)

    def _expand_eps(self, state: int) -> ArcList:
        lstate, rstate = self._pairs[state]
        arcs: list[tuple[Label, int]] = []
        for mid, ldst in self.left.eps_arcs(lstate):
            if mid is EPSILON:
                # left advances alone, producing nothing for right to read.
                arcs.append((EPSILON, self._intern(ldst, rstate)))
            else:
                for out, rdst in self.right.step(rstate, mid):
                    arcs.append((out, self._intern(ldst, rdst)))
        for out, rdst in self.right.eps_arcs(rstate):
            # right advances alone, reading nothing from left.
            arcs.append((out, self._intern(lstate, rdst)))
        return arcs

    def _expand_step(self, state: int, symbol: int) -> ArcList:
        lstate, rstate = self._pairs[state]
        arcs: list[tuple[Label, int]] = []
        for mid, ldst in self.left.step(lstate, symbol):
            if mid is EPSILON:
                arcs.append((EPSILON, self._intern(ldst, rstate)))
            else:
                for out, rdst in self.right.step(rstate, mid):
                    arcs.append((out, self._intern(ldst, rdst)))
        return arcs


def relation_image(relation: FST | LazyFST, fsa: FSA) -> FSA:
    """``P ▷ R`` for any relation implementing the arc-iteration protocol.

    The same fused product walk as :meth:`FST.image` — the acceptor consumes
    the relation's input tape while the output tape becomes the result's
    transitions — but driven through ``eps_arcs``/``step`` so delayed
    relation graphs are expanded exactly as far as the acceptor reaches.
    This is where a lazy spec relation is forced into a concrete path set.
    """
    require_same_alphabet(relation.alphabet, fsa.alphabet)
    result = FSA(fsa.alphabet)
    start = (fsa.initial, relation.initial)
    pair_ids: dict[tuple[int, int], int] = {start: result.initial}
    if fsa.initial in fsa.accepting and relation.is_accepting(relation.initial):
        result.mark_accepting(result.initial)
    queue: deque[tuple[int, int]] = deque([start])
    rows = result.transitions

    def state_for(p: int, t: int) -> int:
        key = (p, t)
        state = pair_ids.get(key)
        if state is None:
            state = pair_ids[key] = result.add_state()
            if p in fsa.accepting and relation.is_accepting(t):
                result.mark_accepting(state)
            queue.append(key)
        return state

    def link(src_row: dict, label: Label, dst: int) -> None:
        bucket = src_row.get(label)
        if bucket is None:
            src_row[label] = {dst}
        else:
            bucket.add(dst)

    deadline = active_deadline()
    steps = 0
    while queue:
        if deadline is not None:
            steps += 1
            if not steps & POLL_MASK:
                check_deadline(deadline)
        p, t = queue.popleft()
        src_row = rows[pair_ids[(p, t)]]
        # The relation advances alone, emitting its output label.
        for out_label, dst_t in relation.eps_arcs(t):
            link(src_row, out_label, state_for(p, dst_t))
        # Synchronized moves, driven off the acceptor's (small) rows.
        for symbol, p_dsts in fsa.transitions[p].items():
            if symbol is EPSILON:
                for dst_p in p_dsts:
                    link(src_row, EPSILON, state_for(dst_p, t))
                continue
            matches = relation.step(t, symbol)
            if not matches:
                continue
            for out_label, dst_t in matches:
                for dst_p in p_dsts:
                    link(src_row, out_label, state_for(dst_p, dst_t))
    return result
