"""Finite state automata over path symbols.

This module provides the regular-language half of the substrate that the
paper obtains from OpenFST/HFST: nondeterministic finite automata with
epsilon transitions, the classical closure operations (union, concatenation,
Kleene star, intersection, complement, difference), determinization,
minimization, emptiness, and witness extraction.

Representation
--------------
States are dense integers ``0..n-1``.  Transitions are stored per state as a
mapping from symbol identifier (or :data:`EPSILON`) to the set of destination
states.  Every automaton references the :class:`~repro.automata.alphabet.Alphabet`
whose identifiers it uses; automata can only be combined when they share the
same alphabet instance.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator, Sequence

from repro.automata.alphabet import Alphabet, require_same_alphabet
from repro.errors import AutomatonError

#: Label used for epsilon (empty-word) transitions.
EPSILON = None

Symbol = int | None
Word = tuple[str, ...]


class FSA:
    """A nondeterministic finite automaton with epsilon transitions."""

    __slots__ = ("alphabet", "transitions", "initial", "accepting")

    def __init__(self, alphabet: Alphabet):
        self.alphabet = alphabet
        #: ``transitions[state][symbol] -> set of destination states``
        self.transitions: list[dict[Symbol, set[int]]] = []
        self.initial: int = self.add_state()
        self.accepting: set[int] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_state(self) -> int:
        """Add a fresh state and return its identifier."""
        self.transitions.append({})
        return len(self.transitions) - 1

    def add_transition(self, src: int, symbol: Symbol, dst: int) -> None:
        """Add a transition ``src --symbol--> dst``.

        ``symbol`` is a symbol identifier from the automaton's alphabet, or
        :data:`EPSILON` for an empty-word move.
        """
        if not (0 <= src < len(self.transitions) and 0 <= dst < len(self.transitions)):
            raise AutomatonError(f"transition references unknown state: {src} -> {dst}")
        if symbol is not EPSILON and not (0 <= symbol < len(self.alphabet)):
            raise AutomatonError(f"transition uses unknown symbol id {symbol!r}")
        self.transitions[src].setdefault(symbol, set()).add(dst)

    def mark_accepting(self, state: int) -> None:
        """Mark ``state`` as accepting."""
        if not 0 <= state < len(self.transitions):
            raise AutomatonError(f"unknown state {state}")
        self.accepting.add(state)

    @property
    def num_states(self) -> int:
        """Number of states."""
        return len(self.transitions)

    @property
    def num_transitions(self) -> int:
        """Number of transition edges (counting each destination separately)."""
        return sum(len(dsts) for row in self.transitions for dsts in row.values())

    # ------------------------------------------------------------------
    # Primitive languages
    # ------------------------------------------------------------------
    @classmethod
    def empty_language(cls, alphabet: Alphabet) -> FSA:
        """The automaton accepting no words at all (the RIR ``0``)."""
        return cls(alphabet)

    @classmethod
    def epsilon_language(cls, alphabet: Alphabet) -> FSA:
        """The automaton accepting only the empty word (the RIR ``1``)."""
        fsa = cls(alphabet)
        fsa.mark_accepting(fsa.initial)
        return fsa

    @classmethod
    def symbol(cls, alphabet: Alphabet, name: str) -> FSA:
        """The automaton accepting the single one-symbol word ``name``."""
        fsa = cls(alphabet)
        end = fsa.add_state()
        fsa.add_transition(fsa.initial, alphabet.intern(name), end)
        fsa.mark_accepting(end)
        return fsa

    @classmethod
    def any_symbol(cls, alphabet: Alphabet, names: Iterable[str] | None = None) -> FSA:
        """Automaton accepting any single symbol drawn from ``names``.

        When ``names`` is ``None`` the automaton accepts any single symbol of
        the alphabet as it exists *now*; it is the caller's responsibility to
        have registered all locations first (this mirrors the ``.`` wildcard
        in Rela path expressions).
        """
        fsa = cls(alphabet)
        end = fsa.add_state()
        symbol_names = alphabet.names() if names is None else list(names)
        for name in symbol_names:
            fsa.add_transition(fsa.initial, alphabet.intern(name), end)
        fsa.mark_accepting(end)
        return fsa

    @classmethod
    def from_word(cls, alphabet: Alphabet, word: Sequence[str]) -> FSA:
        """Automaton accepting exactly one word."""
        fsa = cls(alphabet)
        current = fsa.initial
        for name in word:
            nxt = fsa.add_state()
            fsa.add_transition(current, alphabet.intern(name), nxt)
            current = nxt
        fsa.mark_accepting(current)
        return fsa

    @classmethod
    def from_words(cls, alphabet: Alphabet, words: Iterable[Sequence[str]]) -> FSA:
        """Automaton accepting exactly the given finite set of words."""
        fsa = cls(alphabet)
        for word in words:
            current = fsa.initial
            for name in word:
                nxt = fsa.add_state()
                fsa.add_transition(current, alphabet.intern(name), nxt)
                current = nxt
            fsa.mark_accepting(current)
        return fsa

    # ------------------------------------------------------------------
    # Copy / embed helpers
    # ------------------------------------------------------------------
    def copy(self) -> FSA:
        """Return a structural copy sharing the same alphabet."""
        clone = FSA(self.alphabet)
        clone.transitions = [
            {symbol: set(dsts) for symbol, dsts in row.items()} for row in self.transitions
        ]
        clone.initial = self.initial
        clone.accepting = set(self.accepting)
        return clone

    def _embed(self, other: FSA) -> int:
        """Copy ``other``'s states into ``self`` and return the state offset."""
        offset = len(self.transitions)
        for row in other.transitions:
            self.transitions.append(
                {symbol: {dst + offset for dst in dsts} for symbol, dsts in row.items()}
            )
        return offset

    # ------------------------------------------------------------------
    # Regular operations (Thompson-style)
    # ------------------------------------------------------------------
    def union(self, other: FSA) -> FSA:
        """Language union."""
        require_same_alphabet(self.alphabet, other.alphabet)
        result = FSA(self.alphabet)
        off_a = result._embed(self)
        off_b = result._embed(other)
        result.add_transition(result.initial, EPSILON, self.initial + off_a)
        result.add_transition(result.initial, EPSILON, other.initial + off_b)
        result.accepting = {s + off_a for s in self.accepting} | {
            s + off_b for s in other.accepting
        }
        return result

    def concat(self, other: FSA) -> FSA:
        """Language concatenation."""
        require_same_alphabet(self.alphabet, other.alphabet)
        result = FSA(self.alphabet)
        off_a = result._embed(self)
        off_b = result._embed(other)
        result.add_transition(result.initial, EPSILON, self.initial + off_a)
        for state in self.accepting:
            result.add_transition(state + off_a, EPSILON, other.initial + off_b)
        result.accepting = {s + off_b for s in other.accepting}
        return result

    def star(self) -> FSA:
        """Kleene star."""
        result = FSA(self.alphabet)
        offset = result._embed(self)
        result.add_transition(result.initial, EPSILON, self.initial + offset)
        for state in self.accepting:
            result.add_transition(state + offset, EPSILON, self.initial + offset)
        result.accepting = {s + offset for s in self.accepting} | {result.initial}
        return result

    def plus(self) -> FSA:
        """One-or-more repetitions."""
        return self.concat(self.star())

    def optional(self) -> FSA:
        """Zero-or-one occurrence."""
        return self.union(FSA.epsilon_language(self.alphabet))

    # ------------------------------------------------------------------
    # Epsilon handling
    # ------------------------------------------------------------------
    def epsilon_closure(self, states: Iterable[int]) -> frozenset[int]:
        """The set of states reachable from ``states`` via epsilon moves."""
        closure = set(states)
        stack = list(closure)
        while stack:
            state = stack.pop()
            for dst in self.transitions[state].get(EPSILON, ()):
                if dst not in closure:
                    closure.add(dst)
                    stack.append(dst)
        return frozenset(closure)

    def remove_epsilons(self) -> FSA:
        """Return an equivalent automaton without epsilon transitions."""
        result = FSA(self.alphabet)
        while result.num_states < self.num_states:
            result.add_state()
        result.initial = self.initial
        for state in range(self.num_states):
            closure = self.epsilon_closure([state])
            if closure & self.accepting:
                result.mark_accepting(state)
            for member in closure:
                for symbol, dsts in self.transitions[member].items():
                    if symbol is EPSILON:
                        continue
                    for dst in dsts:
                        result.add_transition(state, symbol, dst)
        return result

    # ------------------------------------------------------------------
    # Determinization / completion / minimization
    # ------------------------------------------------------------------
    def determinize(self) -> FSA:
        """Subset construction.

        The result has no epsilon transitions and at most one destination per
        (state, symbol) pair.  It is trimmed (only reachable subsets are
        materialized) but not necessarily complete.
        """
        result = FSA(self.alphabet)
        start = self.epsilon_closure([self.initial])
        subset_ids: dict[frozenset[int], int] = {start: result.initial}
        if start & self.accepting:
            result.mark_accepting(result.initial)
        queue: deque[frozenset[int]] = deque([start])
        while queue:
            subset = queue.popleft()
            src_id = subset_ids[subset]
            moves: dict[int, set[int]] = {}
            for state in subset:
                for symbol, dsts in self.transitions[state].items():
                    if symbol is EPSILON:
                        continue
                    moves.setdefault(symbol, set()).update(dsts)
            for symbol, dsts in moves.items():
                target = self.epsilon_closure(dsts)
                if target not in subset_ids:
                    new_id = result.add_state()
                    subset_ids[target] = new_id
                    if target & self.accepting:
                        result.mark_accepting(new_id)
                    queue.append(target)
                result.add_transition(src_id, symbol, subset_ids[target])
        return result

    def is_deterministic(self) -> bool:
        """True when the automaton has no epsilon moves and no symbol fan-out."""
        for row in self.transitions:
            if EPSILON in row:
                return False
            if any(len(dsts) > 1 for dsts in row.values()):
                return False
        return True

    def complete(self) -> FSA:
        """Return a complete DFA (every state has a move on every symbol).

        The automaton must already be deterministic; a non-accepting sink
        state is added if any move is missing.
        """
        if not self.is_deterministic():
            raise AutomatonError("complete() requires a deterministic automaton")
        result = self.copy()
        symbols = list(self.alphabet.ids())
        sink: int | None = None
        for state in range(result.num_states):
            for symbol in symbols:
                if symbol not in result.transitions[state]:
                    if sink is None:
                        sink = result.add_state()
                    result.add_transition(state, symbol, sink)
        if sink is not None:
            for symbol in symbols:
                result.add_transition(sink, symbol, sink)
        return result

    def complement(self) -> FSA:
        """Language complement with respect to the full alphabet, Sigma*."""
        dfa = self.determinize().complete()
        result = dfa.copy()
        result.accepting = {
            state for state in range(result.num_states) if state not in dfa.accepting
        }
        return result

    def minimize(self) -> FSA:
        """Return the minimal DFA for this language (Hopcroft's algorithm)."""
        dfa = self.determinize().complete()
        n = dfa.num_states
        if n == 0:
            return dfa
        symbols = list(self.alphabet.ids())

        # Reverse transition table: inverse[symbol][state] -> set of predecessors
        inverse: dict[int, list[set[int]]] = {
            symbol: [set() for _ in range(n)] for symbol in symbols
        }
        for src in range(n):
            for symbol, dsts in dfa.transitions[src].items():
                for dst in dsts:
                    inverse[symbol][dst].add(src)

        accepting = set(dfa.accepting)
        non_accepting = set(range(n)) - accepting
        partition: list[set[int]] = [block for block in (accepting, non_accepting) if block]

        # Hopcroft worklist with the smaller-half rule: when a block splits,
        # only the smaller half needs to become a new splitter (unless the
        # block was already pending, in which case both halves stay pending).
        # Pushing both halves for every symbol — the textbook shortcut —
        # makes refinement quadratic in the partition count.
        worklist: deque[tuple[int, int]] = deque()
        pending: set[tuple[int, int]] = set()

        def push(index: int, symbol: int) -> None:
            key = (index, symbol)
            if key not in pending:
                pending.add(key)
                worklist.append(key)

        seed = min(range(len(partition)), key=lambda index: len(partition[index]))
        for symbol in symbols:
            push(seed, symbol)

        while worklist:
            block_index, symbol = worklist.popleft()
            pending.discard((block_index, symbol))
            splitter = partition[block_index]
            predecessors: set[int] = set()
            for state in splitter:
                predecessors |= inverse[symbol][state]
            if not predecessors:
                continue
            for index in range(len(partition)):
                block = partition[index]
                inside = block & predecessors
                outside = block - predecessors
                if not inside or not outside:
                    continue
                partition[index] = inside
                partition.append(outside)
                new_index = len(partition) - 1
                smaller = new_index if len(outside) <= len(inside) else index
                for sym in symbols:
                    if (index, sym) in pending:
                        # The pending entry now refers to ``inside``; keep it
                        # and add the other half so both remain splitters.
                        push(new_index, sym)
                    else:
                        push(smaller, sym)

        block_of = {}
        for index, block in enumerate(partition):
            for state in block:
                block_of[state] = index

        result = FSA(self.alphabet)
        while result.num_states < len(partition):
            result.add_state()
        result.initial = block_of[dfa.initial]
        for state in dfa.accepting:
            result.mark_accepting(block_of[state])
        seen: set[tuple[int, int]] = set()
        for src in range(n):
            for symbol, dsts in dfa.transitions[src].items():
                for dst in dsts:
                    key = (block_of[src], symbol)
                    if key in seen:
                        continue
                    seen.add(key)
                    result.add_transition(block_of[src], symbol, block_of[dst])
        return result.trim(keep_initial=True)

    def trim(self, *, keep_initial: bool = True) -> FSA:
        """Drop states that are unreachable or cannot reach an accepting state."""
        reachable = self._reachable_from({self.initial})
        productive = self._coreachable_from(self.accepting)
        useful = reachable & productive
        if keep_initial:
            useful.add(self.initial)

        order = sorted(useful)
        remap = {old: new for new, old in enumerate(order)}
        result = FSA(self.alphabet)
        while result.num_states < len(order):
            result.add_state()
        if not order:
            return FSA(self.alphabet)
        result.initial = remap[self.initial]
        for old in order:
            for symbol, dsts in self.transitions[old].items():
                for dst in dsts:
                    if dst in remap:
                        result.add_transition(remap[old], symbol, remap[dst])
        result.accepting = {remap[s] for s in self.accepting if s in remap}
        return result

    def _reachable_from(self, sources: set[int]) -> set[int]:
        seen = set(sources)
        stack = list(sources)
        while stack:
            state = stack.pop()
            for dsts in self.transitions[state].values():
                for dst in dsts:
                    if dst not in seen:
                        seen.add(dst)
                        stack.append(dst)
        return seen

    def _coreachable_from(self, targets: set[int]) -> set[int]:
        predecessors: list[set[int]] = [set() for _ in range(self.num_states)]
        for src in range(self.num_states):
            for dsts in self.transitions[src].values():
                for dst in dsts:
                    predecessors[dst].add(src)
        seen = set(targets)
        stack = list(targets)
        while stack:
            state = stack.pop()
            for pred in predecessors[state]:
                if pred not in seen:
                    seen.add(pred)
                    stack.append(pred)
        return seen

    # ------------------------------------------------------------------
    # Boolean language operations
    # ------------------------------------------------------------------
    def intersect(self, other: FSA) -> FSA:
        """Language intersection via the product construction."""
        require_same_alphabet(self.alphabet, other.alphabet)
        left = self.remove_epsilons()
        right = other.remove_epsilons()
        result = FSA(self.alphabet)
        pair_ids: dict[tuple[int, int], int] = {(left.initial, right.initial): result.initial}
        if left.initial in left.accepting and right.initial in right.accepting:
            result.mark_accepting(result.initial)
        queue: deque[tuple[int, int]] = deque([(left.initial, right.initial)])
        while queue:
            a, b = queue.popleft()
            src = pair_ids[(a, b)]
            row_a = left.transitions[a]
            row_b = right.transitions[b]
            shared = set(row_a) & set(row_b)
            for symbol in shared:
                for dst_a in row_a[symbol]:
                    for dst_b in row_b[symbol]:
                        key = (dst_a, dst_b)
                        if key not in pair_ids:
                            new_id = result.add_state()
                            pair_ids[key] = new_id
                            if dst_a in left.accepting and dst_b in right.accepting:
                                result.mark_accepting(new_id)
                            queue.append(key)
                        result.add_transition(src, symbol, pair_ids[key])
        return result

    def difference(self, other: FSA) -> FSA:
        """Words accepted by ``self`` but not by ``other``.

        This is the *eager* construction (complete complement + product),
        kept as the reference oracle.  The verification hot path uses
        :func:`repro.automata.lazy.difference_dfa` instead, which never
        materializes a completed DFA over the full alphabet.
        """
        return self.intersect(other.complement())

    # ------------------------------------------------------------------
    # Decision procedures
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        """True when the automaton accepts no word."""
        if not self.accepting:
            return True
        reachable = self._reachable_from({self.initial})
        return not (reachable & self.accepting)

    def accepts(self, word: Sequence[str]) -> bool:
        """True when the automaton accepts the given word of symbol names."""
        try:
            ids = self.alphabet.word_to_ids(word)
        except Exception:
            return False
        current = self.epsilon_closure([self.initial])
        for symbol in ids:
            nxt: set[int] = set()
            for state in current:
                nxt |= self.transitions[state].get(symbol, set())
            if not nxt:
                return False
            current = self.epsilon_closure(nxt)
        return bool(current & self.accepting)

    def shortest_accepted(self) -> Word | None:
        """A shortest accepted word, or ``None`` when the language is empty."""
        start = self.epsilon_closure([self.initial])
        if start & self.accepting:
            return ()
        seen = {start}
        queue: deque[tuple[frozenset[int], tuple[int, ...]]] = deque([(start, ())])
        while queue:
            subset, word = queue.popleft()
            moves: dict[int, set[int]] = {}
            for state in subset:
                for symbol, dsts in self.transitions[state].items():
                    if symbol is EPSILON:
                        continue
                    moves.setdefault(symbol, set()).update(dsts)
            for symbol, dsts in sorted(moves.items()):
                target = self.epsilon_closure(dsts)
                if target in seen:
                    continue
                seen.add(target)
                extended = word + (symbol,)
                if target & self.accepting:
                    return self.alphabet.ids_to_word(extended)
                queue.append((target, extended))
        return None

    def enumerate_words(self, *, max_count: int = 100, max_length: int = 64) -> Iterator[Word]:
        """Enumerate accepted words in breadth-first (shortest first) order.

        At most ``max_count`` words are produced and no word longer than
        ``max_length`` is explored.  Only prefixes that can still reach an
        accepting state are expanded, so enumeration over an empty or sparse
        language terminates quickly even when the automaton has cycles.  This
        is used for counterexample listing and for the finite-language
        reference semantics in tests.
        """
        productive = self._coreachable_from(set(self.accepting))
        if not productive:
            return
        produced = 0
        start = self.epsilon_closure([self.initial]) & productive
        if not start:
            return
        queue: deque[tuple[frozenset[int], tuple[int, ...]]] = deque([(frozenset(start), ())])
        while queue and produced < max_count:
            subset, word = queue.popleft()
            if subset & self.accepting:
                yield self.alphabet.ids_to_word(word)
                produced += 1
                if produced >= max_count:
                    return
            if len(word) >= max_length:
                continue
            moves: dict[int, set[int]] = {}
            for state in subset:
                for symbol, dsts in self.transitions[state].items():
                    if symbol is EPSILON:
                        continue
                    moves.setdefault(symbol, set()).update(dsts & productive)
            for symbol, dsts in sorted(moves.items()):
                if not dsts:
                    continue
                target = self.epsilon_closure(dsts) & productive
                if target:
                    queue.append((frozenset(target), word + (symbol,)))

    def language(self, *, max_count: int = 10_000, max_length: int = 64) -> set[Word]:
        """The accepted language as a set of words, subject to bounds."""
        return set(self.enumerate_words(max_count=max_count, max_length=max_length))

    def has_finite_language(self) -> bool:
        """True when the accepted language is finite (no productive cycle)."""
        trimmed = self.remove_epsilons().trim()
        n = trimmed.num_states
        if n == 0 or trimmed.is_empty():
            return True
        # A useful cycle exists iff the trimmed automaton's graph has a cycle.
        color = [0] * n  # 0 = white, 1 = grey, 2 = black
        stack: list[tuple[int, Iterator[int]]] = []

        def successors(state: int) -> Iterator[int]:
            for dsts in trimmed.transitions[state].values():
                yield from dsts

        for root in range(n):
            if color[root] != 0:
                continue
            color[root] = 1
            stack.append((root, successors(root)))
            while stack:
                state, it = stack[-1]
                advanced = False
                for nxt in it:
                    if color[nxt] == 1:
                        return False
                    if color[nxt] == 0:
                        color[nxt] = 1
                        stack.append((nxt, successors(nxt)))
                        advanced = True
                        break
                if not advanced:
                    color[state] = 2
                    stack.pop()
        return True

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def equivalent(self, other: FSA) -> bool:
        """Language equality (eager reference oracle; hot path uses
        :func:`repro.automata.equivalence.check_equal`)."""
        require_same_alphabet(self.alphabet, other.alphabet)
        return self.difference(other).is_empty() and other.difference(self).is_empty()

    def is_subset_of(self, other: FSA) -> bool:
        """Language inclusion ``self ⊆ other`` (eager reference oracle)."""
        require_same_alphabet(self.alphabet, other.alphabet)
        return self.difference(other).is_empty()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FSA(states={self.num_states}, transitions={self.num_transitions}, "
            f"accepting={len(self.accepting)})"
        )
