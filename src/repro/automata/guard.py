"""Cooperative wall-clock deadlines for product walks.

The runtime's per-check deadline guard (:func:`repro.verifier.runtime._deadline`)
is SIGALRM-based, and ``SIGALRM`` can only be armed on the main thread of a
process.  Checks executed *in-thread* — the embedded service runner, the
resilient pool's serial fallback, a sharded sweep's shard-local session —
used to silently lose their ``check_timeout`` protection: a pathological
product walk could hang the thread with no cutoff short of the process-level
CI timeout.

This module is the non-main-thread fallback: a thread-local monotonic-clock
deadline that the lazy decision procedures poll at product-walk step
boundaries (:mod:`repro.automata.lazy`).  The contract:

* the runtime *arms* the deadline around a check body
  (:func:`arm_deadline` / :func:`disarm_deadline`) when SIGALRM is
  unavailable — wrong thread or platform;
* every unbounded exploration loop captures :func:`active_deadline` once on
  entry (the deadline cannot change mid-check) and, when armed, calls
  :func:`check_deadline` every few hundred steps, raising
  :class:`~repro.errors.CheckTimeoutError` past the deadline.

The poll granularity trades precision for overhead: a disarmed walk pays one
``is not None`` test per step, an armed walk one ``time.monotonic()`` call
per 256 steps.  Product walks that finish in fewer steps never poll — they
also never hang, so nothing is lost.
"""

from __future__ import annotations

import threading
import time

from repro.errors import CheckTimeoutError

__all__ = ["arm_deadline", "disarm_deadline", "active_deadline", "check_deadline"]

#: How many walk steps pass between clock reads once a deadline is armed.
#: Must be a power of two minus one (used as a bitmask by the walk loops).
POLL_MASK = 255

_STATE = threading.local()


def arm_deadline(seconds: float) -> float:
    """Arm this thread's cooperative deadline ``seconds`` from now."""
    deadline = time.monotonic() + seconds
    _STATE.deadline = deadline
    return deadline


def disarm_deadline() -> None:
    """Clear this thread's cooperative deadline."""
    _STATE.deadline = None


def active_deadline() -> float | None:
    """The monotonic deadline armed on this thread, or ``None``."""
    return getattr(_STATE, "deadline", None)


def check_deadline(deadline: float) -> None:
    """Raise :class:`CheckTimeoutError` when ``deadline`` has passed."""
    if time.monotonic() > deadline:
        raise CheckTimeoutError(
            "check exceeded its wall-clock budget (cooperative deadline)"
        )
