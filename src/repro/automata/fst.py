"""Finite state transducers (FSTs) encoding regular (rational) relations.

An FST is an automaton whose transitions carry a pair of labels: an input
symbol and an output symbol, either of which may be epsilon.  The language it
accepts is a set of *pairs* of words, i.e. a binary relation on paths.  The
paper compiles every Rela relation (identity, cross product, union,
concatenation, star, composition) to an FST and then applies it to the
``PreState`` / ``PostState`` path sets via the image operation ``P ▷ R``
(Section 6.1).

This module mirrors those constructions:

* :meth:`FST.identity` — ``I(P)``;
* :meth:`FST.cross` — ``P1 × P2`` (built exactly as in the paper: the first
  automaton reading on the input tape only, concatenated with the second
  automaton writing on the output tape only);
* :meth:`FST.union`, :meth:`FST.concat`, :meth:`FST.star` — the regular
  operations on relations;
* :meth:`FST.compose` — relation composition ``R1 ∘ R2``;
* :meth:`FST.image` — ``P ▷ R``, implemented as ``project_out(I(P) ∘ R)``.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator

from repro.automata.alphabet import Alphabet, require_same_alphabet
from repro.automata.fsa import EPSILON, FSA
from repro.errors import AutomatonError

Label = int | None
Arc = tuple[Label, Label, int]


class FST:
    """A finite state transducer over a shared :class:`Alphabet`."""

    __slots__ = ("alphabet", "arcs", "initial", "accepting", "_input_index")

    def __init__(self, alphabet: Alphabet):
        self.alphabet = alphabet
        #: ``arcs[state]`` is a list of ``(input_label, output_label, dst)``.
        self.arcs: list[list[Arc]] = []
        #: Lazily built per-state index of arcs by input label (see
        #: :meth:`_arcs_by_input`); invalidated by :meth:`add_arc`.
        self._input_index: (
            list[tuple[list[tuple[Label, int]], dict[int, list[tuple[Label, int]]]]] | None
        ) = None
        self.initial: int = self.add_state()
        self.accepting: set[int] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_state(self) -> int:
        """Add a fresh state and return its identifier."""
        self.arcs.append([])
        return len(self.arcs) - 1

    def add_arc(self, src: int, in_label: Label, out_label: Label, dst: int) -> None:
        """Add an arc ``src --in:out--> dst`` (labels may be :data:`EPSILON`)."""
        if not (0 <= src < len(self.arcs) and 0 <= dst < len(self.arcs)):
            raise AutomatonError(f"arc references unknown state: {src} -> {dst}")
        for label in (in_label, out_label):
            if label is not EPSILON and not (0 <= label < len(self.alphabet)):
                raise AutomatonError(f"arc uses unknown symbol id {label!r}")
        self.arcs[src].append((in_label, out_label, dst))
        self._input_index = None

    def _arcs_by_input(
        self,
    ) -> list[tuple[list[tuple[Label, int]], dict[int, list[tuple[Label, int]]]]]:
        """Per-state arcs grouped by input label: ``(eps_arcs, by_symbol)``.

        Built once and cached, so a spec transducer compiled at the start of
        a verification run amortizes the grouping over every flow
        equivalence class it is applied to.  This is what keeps
        :meth:`image` proportional to the acceptor's local out-degree rather
        than the transducer's arc count (which is ``O(|Sigma|)`` per state
        for spec relations like ``preserve``).
        """
        index = self._input_index
        if index is None:
            index = []
            for row in self.arcs:
                eps_arcs: list[tuple[Label, int]] = []
                by_symbol: dict[int, list[tuple[Label, int]]] = {}
                for in_label, out_label, dst in row:
                    if in_label is EPSILON:
                        eps_arcs.append((out_label, dst))
                    else:
                        by_symbol.setdefault(in_label, []).append((out_label, dst))
                index.append((eps_arcs, by_symbol))
            self._input_index = index
        return index

    # ------------------------------------------------------------------
    # Arc-iteration protocol (shared with repro.automata.lazy.LazyFST)
    # ------------------------------------------------------------------
    # Concrete transducers and delayed-operation nodes expose the same
    # ``initial`` / ``is_accepting`` / ``eps_arcs`` / ``step`` interface, so
    # lazy combinators (LazyCompose, LazyUnion, ...) can take eager FSTs as
    # operands and the fused image walk can drive either uniformly.
    def is_accepting(self, state: int) -> bool:
        """Whether ``state`` is accepting (protocol form of ``accepting``)."""
        return state in self.accepting

    def eps_arcs(self, state: int) -> list[tuple[Label, int]]:
        """Arcs of ``state`` whose input label is epsilon: (out, dst) pairs."""
        return self._arcs_by_input()[state][0]

    def step(self, state: int, symbol: int) -> list[tuple[Label, int]]:
        """Arcs of ``state`` consuming ``symbol``: (out, dst) pairs."""
        return self._arcs_by_input()[state][1].get(symbol, [])

    def mark_accepting(self, state: int) -> None:
        """Mark ``state`` as accepting."""
        if not 0 <= state < len(self.arcs):
            raise AutomatonError(f"unknown state {state}")
        self.accepting.add(state)

    @property
    def num_states(self) -> int:
        """Number of states."""
        return len(self.arcs)

    @property
    def num_arcs(self) -> int:
        """Number of arcs."""
        return sum(len(row) for row in self.arcs)

    def _embed(self, other: FST) -> int:
        offset = len(self.arcs)
        for row in other.arcs:
            self.arcs.append([(i, o, dst + offset) for (i, o, dst) in row])
        self._input_index = None
        return offset

    # ------------------------------------------------------------------
    # Primitive relations
    # ------------------------------------------------------------------
    @classmethod
    def empty_relation(cls, alphabet: Alphabet) -> FST:
        """The relation containing no pairs (the RIR relation ``0``)."""
        return cls(alphabet)

    @classmethod
    def epsilon_relation(cls, alphabet: Alphabet) -> FST:
        """The relation ``{(ε, ε)}`` (the RIR relation ``1``)."""
        fst = cls(alphabet)
        fst.mark_accepting(fst.initial)
        return fst

    @classmethod
    def identity(cls, fsa: FSA) -> FST:
        """``I(P)``: relate every path accepted by ``fsa`` to itself."""
        fst = cls(fsa.alphabet)
        while fst.num_states < fsa.num_states + 1:
            fst.add_state()
        # State i of the FSA becomes state i+1 of the FST; state 0 remains a
        # dedicated initial state so the FSA's own initial index is preserved.
        offset = 1
        fst.add_arc(fst.initial, EPSILON, EPSILON, fsa.initial + offset)
        for src in range(fsa.num_states):
            for symbol, dsts in fsa.transitions[src].items():
                for dst in dsts:
                    if symbol is EPSILON:
                        fst.add_arc(src + offset, EPSILON, EPSILON, dst + offset)
                    else:
                        fst.add_arc(src + offset, symbol, symbol, dst + offset)
        fst.accepting = {state + offset for state in fsa.accepting}
        return fst

    @classmethod
    def cross(cls, left: FSA, right: FSA) -> FST:
        """``P1 × P2``: relate every path of ``left`` to every path of ``right``.

        Built exactly as sketched in the paper: ``left`` is turned into a
        transducer that reads its language on the input tape while writing
        epsilon, ``right`` into one that writes its language on the output
        tape while reading epsilon, and the two are concatenated.
        """
        require_same_alphabet(left.alphabet, right.alphabet)
        reader = cls._one_tape(left, tape="input")
        writer = cls._one_tape(right, tape="output")
        return reader.concat(writer)

    @classmethod
    def _one_tape(cls, fsa: FSA, *, tape: str) -> FST:
        fst = cls(fsa.alphabet)
        while fst.num_states < fsa.num_states + 1:
            fst.add_state()
        offset = 1
        fst.add_arc(fst.initial, EPSILON, EPSILON, fsa.initial + offset)
        for src in range(fsa.num_states):
            for symbol, dsts in fsa.transitions[src].items():
                for dst in dsts:
                    if symbol is EPSILON:
                        fst.add_arc(src + offset, EPSILON, EPSILON, dst + offset)
                    elif tape == "input":
                        fst.add_arc(src + offset, symbol, EPSILON, dst + offset)
                    else:
                        fst.add_arc(src + offset, EPSILON, symbol, dst + offset)
        fst.accepting = {state + offset for state in fsa.accepting}
        return fst

    # ------------------------------------------------------------------
    # Regular operations on relations
    # ------------------------------------------------------------------
    def union(self, other: FST) -> FST:
        """Relation union."""
        require_same_alphabet(self.alphabet, other.alphabet)
        result = FST(self.alphabet)
        off_a = result._embed(self)
        off_b = result._embed(other)
        result.add_arc(result.initial, EPSILON, EPSILON, self.initial + off_a)
        result.add_arc(result.initial, EPSILON, EPSILON, other.initial + off_b)
        result.accepting = {s + off_a for s in self.accepting} | {
            s + off_b for s in other.accepting
        }
        return result

    def concat(self, other: FST) -> FST:
        """Relation concatenation (pairwise concatenation of path pairs)."""
        require_same_alphabet(self.alphabet, other.alphabet)
        result = FST(self.alphabet)
        off_a = result._embed(self)
        off_b = result._embed(other)
        result.add_arc(result.initial, EPSILON, EPSILON, self.initial + off_a)
        for state in self.accepting:
            result.add_arc(state + off_a, EPSILON, EPSILON, other.initial + off_b)
        result.accepting = {s + off_b for s in other.accepting}
        return result

    def star(self) -> FST:
        """Kleene star of the relation."""
        result = FST(self.alphabet)
        offset = result._embed(self)
        result.add_arc(result.initial, EPSILON, EPSILON, self.initial + offset)
        for state in self.accepting:
            result.add_arc(state + offset, EPSILON, EPSILON, self.initial + offset)
        result.accepting = {s + offset for s in self.accepting} | {result.initial}
        return result

    def inverse(self) -> FST:
        """Swap the input and output tapes (the converse relation)."""
        result = FST(self.alphabet)
        while result.num_states < self.num_states:
            result.add_state()
        result.initial = self.initial
        for src, row in enumerate(self.arcs):
            for in_label, out_label, dst in row:
                result.add_arc(src, out_label, in_label, dst)
        result.accepting = set(self.accepting)
        return result

    def trim(self) -> FST:
        """Drop states not on any initial→accepting path (same relation).

        Chained compositions multiply dead product states; trimming between
        stages keeps long ``RCompose`` chains (e.g. branch shadowing in
        multi-branch specs) from accumulating them multiplicatively.
        """
        reachable = {self.initial}
        stack = [self.initial]
        while stack:
            state = stack.pop()
            for _, _, dst in self.arcs[state]:
                if dst not in reachable:
                    reachable.add(dst)
                    stack.append(dst)
        predecessors: list[list[int]] = [[] for _ in range(self.num_states)]
        for src, row in enumerate(self.arcs):
            for _, _, dst in row:
                predecessors[dst].append(src)
        coreachable = set(self.accepting)
        stack = list(coreachable)
        while stack:
            state = stack.pop()
            for pred in predecessors[state]:
                if pred not in coreachable:
                    coreachable.add(pred)
                    stack.append(pred)
        useful = reachable & coreachable
        useful.add(self.initial)
        order = sorted(useful)
        remap = {old: new for new, old in enumerate(order)}
        result = FST(self.alphabet)
        while result.num_states < len(order):
            result.add_state()
        result.initial = remap[self.initial]
        for old in order:
            row = result.arcs[remap[old]]
            for in_label, out_label, dst in self.arcs[old]:
                if dst in remap:
                    row.append((in_label, out_label, remap[dst]))
        result.accepting = {remap[state] for state in self.accepting if state in remap}
        return result

    def compose(self, other: FST) -> FST:
        """Relation composition ``self ∘ other``.

        A pair ``(p, r)`` is in the result iff there exists ``q`` with
        ``(p, q) ∈ self`` and ``(q, r) ∈ other``.  The construction is the
        standard unweighted product with free epsilon moves on either side;
        because relations are unweighted sets, the duplicate-path ambiguity
        that weighted composition filters guard against is harmless here.
        """
        require_same_alphabet(self.alphabet, other.alphabet)
        result = FST(self.alphabet)
        pair_ids: dict[tuple[int, int], int] = {
            (self.initial, other.initial): result.initial
        }
        if self.initial in self.accepting and other.initial in other.accepting:
            result.mark_accepting(result.initial)
        queue: deque[tuple[int, int]] = deque([(self.initial, other.initial)])

        def state_for(a: int, b: int) -> int:
            key = (a, b)
            if key not in pair_ids:
                new_id = result.add_state()
                pair_ids[key] = new_id
                if a in self.accepting and b in other.accepting:
                    result.mark_accepting(new_id)
                queue.append(key)
            return pair_ids[key]

        index_b = other._arcs_by_input()
        rows = result.arcs
        while queue:
            a, b = queue.popleft()
            row = rows[pair_ids[(a, b)]]
            eps_b, by_in_b = index_b[b]
            for in_a, out_a, dst_a in self.arcs[a]:
                if out_a is EPSILON:
                    # self advances alone, producing nothing for other to read.
                    row.append((in_a, EPSILON, state_for(dst_a, b)))
                else:
                    # Match other's arcs by input label via the cached index
                    # instead of scanning its whole arc row.
                    for out_b, dst_b in by_in_b.get(out_a, ()):
                        row.append((in_a, out_b, state_for(dst_a, dst_b)))
            for out_b, dst_b in eps_b:
                # other advances alone, reading nothing from self.
                row.append((EPSILON, out_b, state_for(a, dst_b)))
        return result

    # ------------------------------------------------------------------
    # Projections and application
    # ------------------------------------------------------------------
    def project_input(self) -> FSA:
        """The domain of the relation, as an FSA."""
        return self._project(index=0)

    def project_output(self) -> FSA:
        """The range of the relation, as an FSA."""
        return self._project(index=1)

    def _project(self, *, index: int) -> FSA:
        fsa = FSA(self.alphabet)
        while fsa.num_states < self.num_states:
            fsa.add_state()
        fsa.initial = self.initial
        for src, row in enumerate(self.arcs):
            for arc in row:
                label = arc[index]
                dst = arc[2]
                fsa.add_transition(src, label if label is not EPSILON else EPSILON, dst)
        fsa.accepting = set(self.accepting)
        return fsa

    def image(self, fsa: FSA) -> FSA:
        """``P ▷ R``: the set of paths related to some path accepted by ``fsa``.

        Computed as a single fused product walk over ``(fsa_state, fst_state)``
        pairs: the acceptor consumes the relation's input tape directly while
        the relation's output tape becomes the result's transitions.  This is
        language-equivalent to ``identity(fsa).compose(self).project_output()``
        (kept as :meth:`image_via_compose`, the reference oracle) but never
        materializes the identity transducer or the intermediate composition —
        one FST construction and one epsilon-handling pass fewer per flow
        equivalence class per spec branch.
        """
        require_same_alphabet(self.alphabet, fsa.alphabet)
        result = FSA(self.alphabet)
        start = (fsa.initial, self.initial)
        pair_ids: dict[tuple[int, int], int] = {start: result.initial}
        if fsa.initial in fsa.accepting and self.initial in self.accepting:
            result.mark_accepting(result.initial)
        queue: deque[tuple[int, int]] = deque([start])

        def state_for(p: int, t: int) -> int:
            key = (p, t)
            state = pair_ids.get(key)
            if state is None:
                state = result.add_state()
                pair_ids[key] = state
                if p in fsa.accepting and t in self.accepting:
                    result.mark_accepting(state)
                queue.append(key)
            return state

        rows = result.transitions
        index = self._arcs_by_input()

        def link(src_row: dict, label: Label, dst: int) -> None:
            bucket = src_row.get(label)
            if bucket is None:
                src_row[label] = {dst}
            else:
                bucket.add(dst)

        while queue:
            p, t = queue.popleft()
            src_row = rows[pair_ids[(p, t)]]
            eps_arcs, by_symbol = index[t]
            # The transducer advances alone, emitting its output label.
            for out_label, dst_t in eps_arcs:
                link(src_row, out_label, state_for(p, dst_t))
            # Drive the synchronized moves off the acceptor's (small) row,
            # not the transducer's (Sigma-sized, for spec relations) arcs.
            for symbol, p_dsts in fsa.transitions[p].items():
                if symbol is EPSILON:
                    # The acceptor advances alone on its epsilon moves.
                    for dst_p in p_dsts:
                        link(src_row, EPSILON, state_for(dst_p, t))
                    continue
                matches = by_symbol.get(symbol)
                if not matches:
                    continue
                for out_label, dst_t in matches:
                    for dst_p in p_dsts:
                        link(src_row, out_label, state_for(dst_p, dst_t))
        return result

    def image_via_compose(self, fsa: FSA) -> FSA:
        """Eager reference implementation of :meth:`image` (the oracle)."""
        return FST.identity(fsa).compose(self).project_output()

    def preimage(self, fsa: FSA) -> FSA:
        """The set of paths that map (via this relation) into ``fsa``.

        The preimage under ``R`` is the image under the converse relation, so
        this reuses the fused product walk of :meth:`image`.
        """
        return self.inverse().image(fsa)

    # ------------------------------------------------------------------
    # Enumeration (used by tests and counterexample rendering)
    # ------------------------------------------------------------------
    def enumerate_pairs(
        self, *, max_count: int = 100, max_length: int = 32
    ) -> Iterator[tuple[tuple[str, ...], tuple[str, ...]]]:
        """Enumerate accepted (input, output) word pairs, shortest-first.

        ``max_length`` bounds the number of arcs traversed, not the word
        length; pairs are deduplicated before being yielded.
        """
        seen: set[tuple[tuple[int, ...], tuple[int, ...]]] = set()
        queue: deque[tuple[int, tuple[int, ...], tuple[int, ...], int]] = deque(
            [(self.initial, (), (), 0)]
        )
        produced = 0
        while queue and produced < max_count:
            state, word_in, word_out, depth = queue.popleft()
            if state in self.accepting:
                key = (word_in, word_out)
                if key not in seen:
                    seen.add(key)
                    yield (
                        self.alphabet.ids_to_word(word_in),
                        self.alphabet.ids_to_word(word_out),
                    )
                    produced += 1
                    if produced >= max_count:
                        return
            if depth >= max_length:
                continue
            for in_label, out_label, dst in self.arcs[state]:
                next_in = word_in + (in_label,) if in_label is not EPSILON else word_in
                next_out = word_out + (out_label,) if out_label is not EPSILON else word_out
                queue.append((dst, next_in, next_out, depth + 1))
        return

    def relation(
        self, *, max_count: int = 10_000, max_length: int = 32
    ) -> set[tuple[tuple[str, ...], tuple[str, ...]]]:
        """The relation as a set of word pairs, subject to bounds."""
        return set(self.enumerate_pairs(max_count=max_count, max_length=max_length))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FST(states={self.num_states}, arcs={self.num_arcs}, "
            f"accepting={len(self.accepting)})"
        )
