"""Symbol alphabets for path automata.

Forwarding paths are words over an alphabet of *network locations* (interface,
router, or router-group names) plus two special symbols used by the Rela
compilation strategy:

* ``DROP`` — the paper models dropped packets as a path ending in the special
  location ``drop`` (Section 5.1).
* ``HASH`` — the ``any`` modifier is compiled by rewriting whole path sets to
  the placeholder symbol ``#`` (Section 5.3).

An :class:`Alphabet` interns symbol names to dense integer identifiers so the
automata layer can use fast integer keyed transition tables while the public
API speaks in human readable location names.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import AlphabetError

#: Name of the special symbol that models packet drops.
DROP = "drop"

#: Name of the placeholder symbol used when compiling the ``any`` modifier.
HASH = "#"


class Alphabet:
    """A growable, interned set of path symbols.

    The alphabet is shared by every automaton participating in one
    verification problem.  Symbols can be added at any time; operations that
    need the full alphabet (such as complementation) use the set of symbols
    known at the moment they run, which is why callers should register all
    network locations before compiling specifications.
    """

    __slots__ = ("_name_to_id", "_id_to_name")

    def __init__(self, symbols: Iterable[str] = (), *, with_specials: bool = True):
        self._name_to_id: dict[str, int] = {}
        self._id_to_name: list[str] = []
        if with_specials:
            self.intern(DROP)
            self.intern(HASH)
        for symbol in symbols:
            self.intern(symbol)

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    def intern(self, name: str) -> int:
        """Return the identifier for ``name``, registering it if new."""
        if not isinstance(name, str) or not name:
            raise AlphabetError(f"symbol names must be non-empty strings, got {name!r}")
        existing = self._name_to_id.get(name)
        if existing is not None:
            return existing
        symbol_id = len(self._id_to_name)
        self._name_to_id[name] = symbol_id
        self._id_to_name.append(name)
        return symbol_id

    def intern_all(self, names: Iterable[str]) -> list[int]:
        """Intern every name in ``names`` and return their identifiers."""
        return [self.intern(name) for name in names]

    def id_of(self, name: str) -> int:
        """Return the identifier of an already-registered symbol."""
        try:
            return self._name_to_id[name]
        except KeyError:
            raise AlphabetError(f"unknown symbol {name!r}") from None

    def name_of(self, symbol_id: int) -> str:
        """Return the name of a symbol identifier."""
        try:
            return self._id_to_name[symbol_id]
        except IndexError:
            raise AlphabetError(f"unknown symbol id {symbol_id!r}") from None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, name: object) -> bool:
        return name in self._name_to_id

    def __len__(self) -> int:
        return len(self._id_to_name)

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_name)

    def names(self) -> list[str]:
        """All registered symbol names, in registration order."""
        return list(self._id_to_name)

    def ids(self) -> range:
        """All registered symbol identifiers."""
        return range(len(self._id_to_name))

    @property
    def drop_id(self) -> int:
        """Identifier of the special ``drop`` symbol."""
        return self.id_of(DROP)

    @property
    def hash_id(self) -> int:
        """Identifier of the special ``#`` placeholder symbol."""
        return self.id_of(HASH)

    def word_to_ids(self, word: Iterable[str]) -> tuple[int, ...]:
        """Translate a word of symbol names into symbol identifiers."""
        return tuple(self.id_of(name) for name in word)

    def ids_to_word(self, ids: Iterable[int]) -> tuple[str, ...]:
        """Translate a word of symbol identifiers back into names."""
        return tuple(self.name_of(symbol_id) for symbol_id in ids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Alphabet({len(self)} symbols)"


def require_same_alphabet(*alphabets: Alphabet) -> Alphabet:
    """Check that all automata participating in an operation share an alphabet.

    Sharing is by identity: symbol identifiers are only meaningful relative to
    the :class:`Alphabet` instance that produced them.
    """
    first = alphabets[0]
    for other in alphabets[1:]:
        if other is not first:
            raise AlphabetError(
                "automata must share the same Alphabet instance to be combined"
            )
    return first
