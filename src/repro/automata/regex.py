"""Regular expression ASTs over path symbols and their compilation to FSAs.

The Rela surface language and the RIR both manipulate *regular path sets*.
This module provides the shared regular-expression representation: an
immutable AST with the usual constructors (symbol, epsilon, empty, union,
concatenation, Kleene star, intersection, complement, difference) plus a
small text parser used by tests, examples and the Rela front end.

The text syntax is deliberately simple:

* identifiers (``A1``, ``core-1``, ``drop``) denote single symbols;
* ``.`` denotes any single symbol;
* juxtaposition (whitespace) denotes concatenation: ``A1 B1 D1``;
* ``|`` denotes union, ``&`` intersection, ``!`` prefix complement;
* ``*``, ``+``, ``?`` are postfix repetition operators;
* parentheses group.
"""

from __future__ import annotations

import re as _re
from dataclasses import dataclass
from collections.abc import Callable, Sequence

from repro.automata.alphabet import Alphabet
from repro.automata.fsa import FSA
from repro.errors import RegexSyntaxError


class Regex:
    """Base class for regular-expression AST nodes."""

    __slots__ = ()

    # -- combinator helpers (fluent construction) -----------------------
    def union(self, other: Regex) -> Regex:
        return Union(self, other)

    def concat(self, other: Regex) -> Regex:
        return Concat(self, other)

    def star(self) -> Regex:
        return Star(self)

    def plus(self) -> Regex:
        return Concat(self, Star(self))

    def optional(self) -> Regex:
        return Union(self, Epsilon())

    def intersect(self, other: Regex) -> Regex:
        return Intersect(self, other)

    def complement(self) -> Regex:
        return Complement(self)

    def difference(self, other: Regex) -> Regex:
        return Intersect(self, Complement(other))

    def __or__(self, other: Regex) -> Regex:
        return self.union(other)

    def __add__(self, other: Regex) -> Regex:
        return self.concat(other)

    def __and__(self, other: Regex) -> Regex:
        return self.intersect(other)

    # -- compilation -----------------------------------------------------
    def to_fsa(self, alphabet: Alphabet) -> FSA:
        """Compile this regular expression to an FSA over ``alphabet``."""
        raise NotImplementedError

    # -- introspection ----------------------------------------------------
    def symbols(self) -> set[str]:
        """The set of symbol names mentioned by this expression."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class Empty(Regex):
    """The empty language (no words)."""

    def to_fsa(self, alphabet: Alphabet) -> FSA:
        return FSA.empty_language(alphabet)

    def symbols(self) -> set[str]:
        return set()

    def __str__(self) -> str:
        return "0"


@dataclass(frozen=True, slots=True)
class Epsilon(Regex):
    """The language containing only the empty word."""

    def to_fsa(self, alphabet: Alphabet) -> FSA:
        return FSA.epsilon_language(alphabet)

    def symbols(self) -> set[str]:
        return set()

    def __str__(self) -> str:
        return "1"


@dataclass(frozen=True, slots=True)
class Sym(Regex):
    """A single, specific symbol (network location)."""

    name: str

    def to_fsa(self, alphabet: Alphabet) -> FSA:
        return FSA.symbol(alphabet, self.name)

    def symbols(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class SymSet(Regex):
    """Any one symbol drawn from a finite set of names.

    This is how ``where`` queries and router groups compile: the union of all
    matching locations, as a single-hop path set.
    """

    names: frozenset[str]

    def to_fsa(self, alphabet: Alphabet) -> FSA:
        return FSA.any_symbol(alphabet, sorted(self.names))

    def symbols(self) -> set[str]:
        return set(self.names)

    def __str__(self) -> str:
        if len(self.names) == 1:
            return next(iter(self.names))
        return "[" + "|".join(sorted(self.names)) + "]"


@dataclass(frozen=True, slots=True)
class AnySym(Regex):
    """Any single symbol of the alphabet (the ``.`` wildcard)."""

    def to_fsa(self, alphabet: Alphabet) -> FSA:
        return FSA.any_symbol(alphabet)

    def symbols(self) -> set[str]:
        return set()

    def __str__(self) -> str:
        return "."


@dataclass(frozen=True, slots=True)
class Union(Regex):
    left: Regex
    right: Regex

    def to_fsa(self, alphabet: Alphabet) -> FSA:
        return self.left.to_fsa(alphabet).union(self.right.to_fsa(alphabet))

    def symbols(self) -> set[str]:
        return self.left.symbols() | self.right.symbols()

    def __str__(self) -> str:
        return f"({self.left}|{self.right})"


@dataclass(frozen=True, slots=True)
class Concat(Regex):
    left: Regex
    right: Regex

    def to_fsa(self, alphabet: Alphabet) -> FSA:
        return self.left.to_fsa(alphabet).concat(self.right.to_fsa(alphabet))

    def symbols(self) -> set[str]:
        return self.left.symbols() | self.right.symbols()

    def __str__(self) -> str:
        return f"{self.left} {self.right}"


@dataclass(frozen=True, slots=True)
class Star(Regex):
    inner: Regex

    def to_fsa(self, alphabet: Alphabet) -> FSA:
        return self.inner.to_fsa(alphabet).star()

    def symbols(self) -> set[str]:
        return self.inner.symbols()

    def __str__(self) -> str:
        return f"({self.inner})*"


@dataclass(frozen=True, slots=True)
class Intersect(Regex):
    left: Regex
    right: Regex

    def to_fsa(self, alphabet: Alphabet) -> FSA:
        return self.left.to_fsa(alphabet).intersect(self.right.to_fsa(alphabet))

    def symbols(self) -> set[str]:
        return self.left.symbols() | self.right.symbols()

    def __str__(self) -> str:
        return f"({self.left}&{self.right})"


@dataclass(frozen=True, slots=True)
class Complement(Regex):
    inner: Regex

    def to_fsa(self, alphabet: Alphabet) -> FSA:
        # Minimize before handing the complement to downstream identity /
        # composition constructions: the subset construction behind
        # complement() can be far from minimal for unions of zone regexes,
        # and every extra state multiplies through relation products.
        return self.inner.to_fsa(alphabet).complement().minimize()

    def symbols(self) -> set[str]:
        return self.inner.symbols()

    def __str__(self) -> str:
        return f"!({self.inner})"


def literal(word: Sequence[str]) -> Regex:
    """A regex accepting exactly the given word of symbol names."""
    result: Regex = Epsilon()
    for name in word:
        result = Concat(result, Sym(name)) if not isinstance(result, Epsilon) else Sym(name)
    return result


def union_all(parts: Sequence[Regex]) -> Regex:
    """Union of an arbitrary number of regexes (empty language when none)."""
    if not parts:
        return Empty()
    result = parts[0]
    for part in parts[1:]:
        result = Union(result, part)
    return result


def concat_all(parts: Sequence[Regex]) -> Regex:
    """Concatenation of an arbitrary number of regexes (epsilon when none)."""
    if not parts:
        return Epsilon()
    result = parts[0]
    for part in parts[1:]:
        result = Concat(result, part)
    return result


# ----------------------------------------------------------------------
# Text parser
# ----------------------------------------------------------------------
_TOKEN_RE = _re.compile(
    r"\s*(?:(?P<lparen>\()|(?P<rparen>\))|(?P<star>\*)|(?P<plus>\+)|(?P<opt>\?)"
    r"|(?P<union>\|)|(?P<inter>&)|(?P<compl>!)|(?P<dot>\.)"
    r"|(?P<ident>[A-Za-z0-9_#][A-Za-z0-9_\-./:#]*))"
)


class _Parser:
    """Recursive-descent parser for the text regex syntax."""

    def __init__(self, text: str, resolve: Callable[[str], Regex] | None = None):
        self.text = text
        self.resolve = resolve
        self.tokens = self._tokenize(text)
        self.pos = 0

    @staticmethod
    def _tokenize(text: str) -> list[tuple[str, str]]:
        tokens: list[tuple[str, str]] = []
        index = 0
        while index < len(text):
            match = _TOKEN_RE.match(text, index)
            if match is None:
                stripped = text[index:].strip()
                if not stripped:
                    break
                raise RegexSyntaxError(f"unexpected character at {text[index:]!r}")
            index = match.end()
            kind = match.lastgroup
            value = match.group(match.lastgroup)
            tokens.append((kind, value))
        return tokens

    def _peek(self) -> tuple[str, str] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _advance(self) -> tuple[str, str]:
        token = self._peek()
        if token is None:
            raise RegexSyntaxError(f"unexpected end of expression in {self.text!r}")
        self.pos += 1
        return token

    def parse(self) -> Regex:
        expr = self._parse_union()
        if self._peek() is not None:
            raise RegexSyntaxError(
                f"trailing tokens after expression in {self.text!r}: {self.tokens[self.pos:]}"
            )
        return expr

    def _parse_union(self) -> Regex:
        left = self._parse_intersection()
        while self._peek() is not None and self._peek()[0] == "union":
            self._advance()
            right = self._parse_intersection()
            left = Union(left, right)
        return left

    def _parse_intersection(self) -> Regex:
        left = self._parse_concat()
        while self._peek() is not None and self._peek()[0] == "inter":
            self._advance()
            right = self._parse_concat()
            left = Intersect(left, right)
        return left

    def _parse_concat(self) -> Regex:
        parts: list[Regex] = []
        while True:
            token = self._peek()
            if token is None or token[0] in {"union", "inter", "rparen"}:
                break
            parts.append(self._parse_postfix())
        if not parts:
            return Epsilon()
        return concat_all(parts)

    def _parse_postfix(self) -> Regex:
        expr = self._parse_atom()
        while True:
            token = self._peek()
            if token is None:
                break
            if token[0] == "star":
                self._advance()
                expr = Star(expr)
            elif token[0] == "plus":
                self._advance()
                expr = Concat(expr, Star(expr))
            elif token[0] == "opt":
                self._advance()
                expr = Union(expr, Epsilon())
            else:
                break
        return expr

    def _parse_atom(self) -> Regex:
        kind, value = self._advance()
        if kind == "lparen":
            inner = self._parse_union()
            closing = self._advance()
            if closing[0] != "rparen":
                raise RegexSyntaxError(f"expected ')' in {self.text!r}")
            return inner
        if kind == "dot":
            return AnySym()
        if kind == "compl":
            return Complement(self._parse_postfix())
        if kind == "ident":
            if self.resolve is not None:
                resolved = self.resolve(value)
                if resolved is not None:
                    return resolved
            return Sym(value)
        raise RegexSyntaxError(f"unexpected token {value!r} in {self.text!r}")


def parse_regex(text: str, resolve: Callable[[str], Regex] | None = None) -> Regex:
    """Parse the text regex syntax into a :class:`Regex` AST.

    ``resolve`` maps identifiers to previously defined sub-expressions (used
    by the Rela front end for named ``regex`` definitions); identifiers it
    returns ``None`` for are treated as plain symbols.
    """
    return _Parser(text, resolve).parse()
