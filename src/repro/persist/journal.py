"""The ``repro-journal/v1`` append-only, checksummed record format.

Every durable artifact in the persistence layer — sweep/stream checkpoint
files, the gate's state store, saved verification sessions — is one journal
file: a fixed magic line followed by length-prefixed records, each
protected by its own CRC-32.  The format is deliberately boring, because
the recovery story has to be exact:

* **Framing.**  The file starts with the ASCII magic ``repro-journal/v1``
  and a newline.  Each record is an 8-byte little-endian header
  ``(payload length, CRC-32 of payload)`` followed by the payload bytes.
  The first payload byte is a tag: ``J`` for a UTF-8 JSON body (schema
  visible to stdlib tooling — ``scripts/check_journal.py`` validates these
  without importing ``repro``), ``P`` for a pickled Python body (reports,
  counterexamples, forwarding graphs).
* **Header record.**  The first record is always JSON:
  ``{"record": "header", "kind": ..., "format": 1, "signature": ...}``.
  The *kind* names the journal's role (``sweep``/``stream``/``state``) and
  the *signature* binds it to one workload so a checkpoint can never be
  resumed against a different run (see
  :class:`~repro.persist.checkpoint.Checkpoint`).
* **Durability.**  Writers flush to the OS after every record, so a
  SIGKILLed process loses at most the record being written (the OS page
  cache survives process death); ``sync()`` additionally ``fsync``\\ s for
  power-loss durability at interrupt/close time.
* **Recovery.**  Reading stops at the first frame that is torn (fewer
  bytes than the header promises), CRC-inconsistent, or undecodable, and
  reports the dropped byte count in :class:`RecoveryInfo` — corruption is
  *detected and reported*, never silently skipped, and everything before
  it is served.  :func:`open_for_append` truncates the file back to that
  last good prefix before appending, so one bad tail can never poison
  later records.  Only a file that fails the magic check is unrecoverable
  (:class:`~repro.errors.JournalCorruptionError`): it is not one of ours.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import struct
from dataclasses import dataclass
from pathlib import Path
from zlib import crc32

from repro.errors import JournalCorruptionError

#: The version-bearing first line of every journal file.
MAGIC = b"repro-journal/v1\n"

#: The journal format version written into (and required of) header records.
FORMAT_VERSION = 1

#: Record framing: little-endian (payload length, CRC-32 of payload).
_FRAME = struct.Struct("<II")

#: Payload tags: JSON body vs pickled body.
TAG_JSON = b"J"
TAG_PICKLE = b"P"


@dataclass(slots=True)
class RecoveryInfo:
    """What reading a journal had to do to recover it."""

    #: Byte offset of the end of the last fully-valid record (the length a
    #: recovering writer truncates the file to before appending).
    valid_length: int = 0
    #: Bytes past :attr:`valid_length` that were present but unusable.
    dropped_bytes: int = 0
    #: Human-readable cause when bytes were dropped (torn tail, CRC, ...).
    reason: str = ""

    @property
    def clean(self) -> bool:
        """True when the whole file was valid (nothing dropped)."""
        return self.dropped_bytes == 0


def header_record(kind: str, signature: str, meta: dict | None = None) -> dict:
    """The JSON header record a fresh journal starts with."""
    record = {
        "record": "header",
        "kind": kind,
        "format": FORMAT_VERSION,
        "signature": signature,
    }
    if meta:
        record["meta"] = meta
    return record


def _encode(tag: bytes, body: bytes) -> bytes:
    payload = tag + body
    return _FRAME.pack(len(payload), crc32(payload)) + payload


class JournalWriter:
    """Appends framed, checksummed records to one journal file.

    Use :meth:`create` for a fresh journal (writes magic + header) or
    :func:`open_for_append` to continue a recovered one.  Every append
    flushes to the OS, so records survive the writing process being killed;
    :meth:`sync` forces them to stable storage.
    """

    def __init__(self, path: str | Path, handle: io.BufferedWriter) -> None:
        self.path = Path(path)
        self._handle: io.BufferedWriter | None = handle

    @classmethod
    def create(cls, path: str | Path, header: dict) -> JournalWriter:
        """Start a fresh journal at ``path`` (truncating any existing file)."""
        handle = open(path, "wb")
        writer = cls(path, handle)
        handle.write(MAGIC)
        writer.append_json(header)
        return writer

    def append_json(self, record: dict) -> None:
        """Append one JSON-bodied record and flush it to the OS."""
        body = json.dumps(record, sort_keys=True).encode("utf-8")
        self._append(_encode(TAG_JSON, body))

    def append_pickle(self, record: object) -> None:
        """Append one pickle-bodied record and flush it to the OS."""
        self._append(_encode(TAG_PICKLE, pickle.dumps(record)))

    def _append(self, frame: bytes) -> None:
        if self._handle is None:
            raise JournalCorruptionError(f"journal {self.path} is closed")
        self._handle.write(frame)
        self._handle.flush()

    def sync(self) -> None:
        """``fsync`` everything written so far to stable storage."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self, *, sync: bool = True) -> None:
        if self._handle is not None:
            if sync:
                self.sync()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> JournalWriter:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_journal(
    path: str | Path,
) -> tuple[dict | None, list[object], RecoveryInfo]:
    """Read a journal, recovering to the last good prefix.

    Returns ``(header, records, recovery)``: the parsed header record (or
    ``None`` when the file is missing, empty, or its header never made it
    to disk intact), the decoded record bodies after the header in file
    order, and the :class:`RecoveryInfo` describing any bytes dropped.

    Raises :class:`~repro.errors.JournalCorruptionError` only when the file
    exists, is at least magic-sized, and does not start with the journal
    magic — that file is not a (possibly damaged) journal, it is something
    else, and truncating it would destroy someone's data.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return None, [], RecoveryInfo()
    if not data:
        return None, [], RecoveryInfo()
    if len(data) < len(MAGIC):
        if MAGIC.startswith(data):
            # A torn write of the magic itself: recover to an empty file.
            return None, [], RecoveryInfo(0, len(data), "torn magic")
        raise JournalCorruptionError(
            f"{path} is not a repro-journal/v1 file (bad magic)"
        )
    if not data.startswith(MAGIC):
        raise JournalCorruptionError(
            f"{path} is not a repro-journal/v1 file (bad magic)"
        )

    offset = len(MAGIC)
    records: list[object] = []
    header: dict | None = None
    recovery = RecoveryInfo(valid_length=offset)
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            recovery.reason = "torn record header at end of file"
            break
        length, checksum = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if length == 0 or end > len(data):
            recovery.reason = "torn record payload at end of file"
            break
        payload = data[start:end]
        if crc32(payload) != checksum:
            recovery.reason = f"CRC mismatch in record at byte {offset}"
            break
        tag, body = payload[:1], payload[1:]
        try:
            if tag == TAG_JSON:
                record: object = json.loads(body.decode("utf-8"))
            elif tag == TAG_PICKLE:
                record = pickle.loads(body)
            else:
                recovery.reason = f"unknown record tag {tag!r} at byte {offset}"
                break
        except Exception as error:  # CRC passed but the body will not decode
            recovery.reason = f"undecodable record at byte {offset}: {error!r}"
            break
        if header is None:
            if not (
                isinstance(record, dict)
                and record.get("record") == "header"
                and record.get("format") == FORMAT_VERSION
            ):
                recovery.reason = f"first record at byte {offset} is not a valid header"
                break
            header = record
        else:
            records.append(record)
        offset = end
        recovery.valid_length = offset
    recovery.dropped_bytes = len(data) - recovery.valid_length
    return header, records, recovery


def open_for_append(
    path: str | Path,
) -> tuple[JournalWriter, dict | None, list[object], RecoveryInfo]:
    """Recover a journal and return a writer positioned after its good prefix.

    The file is truncated to the last fully-valid record before the writer
    opens, so damage can never sit between old and new records.  Returns
    ``(writer, header, records, recovery)``; when the header itself did not
    survive, the caller should discard the writer and start fresh with
    :meth:`JournalWriter.create`.
    """
    path = Path(path)
    header, records, recovery = read_journal(path)
    if not recovery.clean:
        with open(path, "rb+") as handle:
            handle.truncate(recovery.valid_length)
    handle = open(path, "ab")
    return JournalWriter(path, handle), header, records, recovery
