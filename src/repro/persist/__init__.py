"""Durability layer: journaled checkpoints, crash-resume, persistent state.

Everything here writes one on-disk format — the append-only, per-record
checksummed ``repro-journal/v1`` file (:mod:`repro.persist.journal`) — in
three roles:

* **Checkpoints** (:class:`Checkpoint`): sweep/stream runs journal each
  completed unit as it lands, so a killed run resumes from its last
  completed unit with a byte-identical final report.
* **State stores** (:class:`StateStore`): the gate's persistent change
  history and saved :class:`~repro.verifier.session.VerificationSession`
  state across CLI invocations.
* **Digests** (:func:`stable_digest` / :func:`options_digest`): the
  cross-process run signatures that bind every journal to exactly one
  workload, spec, and verdict-relevant option set.

Corruption is graceful degradation, not a crash: torn tails and
CRC-failing records are truncated to the last good prefix and reported
(:class:`RecoveryInfo`); only a file that is not a journal at all raises
:class:`~repro.errors.JournalCorruptionError`, and artifacts from an
incompatible run raise :class:`~repro.errors.StateVersionError` rather
than silently changing a report.
"""

from __future__ import annotations

from repro.persist.checkpoint import Checkpoint
from repro.persist.digest import (
    VERDICT_RELEVANT_OPTION_FIELDS,
    options_digest,
    stable_digest,
)
from repro.persist.journal import (
    FORMAT_VERSION,
    MAGIC,
    JournalWriter,
    RecoveryInfo,
    header_record,
    open_for_append,
    read_journal,
)

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "VERDICT_RELEVANT_OPTION_FIELDS",
    "Checkpoint",
    "JournalWriter",
    "RecoveryInfo",
    "StateStore",
    "header_record",
    "open_for_append",
    "options_digest",
    "read_journal",
    "stable_digest",
]


def __getattr__(name: str):
    # StateStore imports the session/analytics layers, which import this
    # package; resolving it lazily keeps the import graph acyclic.
    if name == "StateStore":
        from repro.persist.statestore import StateStore

        return StateStore
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
