"""Persistent state across CLI invocations: gate history and saved sessions.

A :class:`StateStore` is one ``repro-journal/v1`` file (kind ``state``)
playing two roles:

* **Outcome history** — every gated change appends one small JSON record
  (verdict + degraded flag); :meth:`StateStore.history` folds them into the
  :class:`~repro.analytics.risk.ChangeHistory` the safety gate's risk
  scoring consumes.  ``repro gate verify --state history.journal`` makes a
  change class that violated last week score hotter this week — history
  that previously died with the process.
* **Saved sessions** — :meth:`StateStore.save_session` persists a
  :class:`~repro.verifier.session.VerificationSession`'s durable state
  (registered specs, cached verdicts with their graphs, cumulative stream
  counters, current snapshot) and :meth:`StateStore.load_session` rebuilds
  it.  Restored verdicts re-enter service only through the session's
  pending-adoption path — exact alphabet-signature match plus spec-digest
  validation — so a stale store can never change a report; at worst it
  contributes nothing and the run is merely cold.

Outcome records survive :meth:`save_session` rewrites (the rewrite is an
atomic tmp-file + ``os.replace``), and a torn tail from a killed writer is
truncated on the next append, exactly as for checkpoints.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import StateVersionError
from repro.persist.digest import options_digest, stable_digest
from repro.persist.journal import (
    JournalWriter,
    RecoveryInfo,
    header_record,
    open_for_append,
    read_journal,
)

if TYPE_CHECKING:
    from repro.analytics.risk import ChangeHistory
    from repro.rela.locations import LocationDB
    from repro.verifier.engine import VerificationOptions
    from repro.verifier.session import VerificationSession

#: Saved-session payload format (bumped on incompatible layout changes).
SESSION_FORMAT = 1

#: State journals are not bound to one workload (a gate history spans many
#: changes), so their header signature is a role constant.
_STATE_SIGNATURE = "state/v1"


class StateStore:
    """The persistent state journal at one path (created lazily on write)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        #: Recovery details from the most recent read (None before any).
        self.last_recovery: RecoveryInfo | None = None

    # ------------------------------------------------------------------
    # Outcome history (the gate's persistent memory)
    # ------------------------------------------------------------------
    def record_outcome(self, verdict: str, *, degraded: bool = False) -> None:
        """Append one gated change's outcome (creates the store if missing)."""
        writer, header, _, recovery = open_for_append(self.path)
        self.last_recovery = recovery
        if header is None:
            writer.close(sync=False)
            writer = JournalWriter.create(
                self.path, header_record("state", _STATE_SIGNATURE)
            )
        elif header.get("kind") != "state":
            writer.close(sync=False)
            raise StateVersionError(
                f"{self.path} is a {header.get('kind')!r} journal, not a state store"
            )
        with writer:
            writer.append_json(
                {"record": "outcome", "verdict": verdict, "degraded": bool(degraded)}
            )

    def outcomes(self) -> list[dict]:
        """Every recorded outcome, oldest first (empty for a missing store)."""
        return [
            record
            for record in self._records()
            if isinstance(record, dict) and record.get("record") == "outcome"
        ]

    def history(self) -> ChangeHistory:
        """The recorded outcomes folded into the risk layer's history."""
        from repro.analytics.risk import ChangeHistory

        outcomes = self.outcomes()
        return ChangeHistory(
            epochs=len(outcomes),
            violating_epochs=sum(1 for o in outcomes if o.get("verdict") == "violated"),
            degraded_epochs=sum(1 for o in outcomes if o.get("degraded")),
        )

    # ------------------------------------------------------------------
    # Saved sessions
    # ------------------------------------------------------------------
    def save_session(self, session: VerificationSession) -> None:
        """Persist ``session``'s durable state (atomic rewrite).

        The rewrite preserves every outcome record already in the store and
        replaces any previously-saved session.  Compiled automata are
        derived state and are never persisted; ``CheckFailure`` verdicts
        are never cached in the first place, so a loaded session retries
        unknowns fresh by construction.
        """
        specs = sorted(
            (token, instance) for instance, token, _ in session._registry.values()
        )
        spec_digests = {
            token: session._spec_digests.get(token) or stable_digest(instance)
            for token, instance in specs
        }
        default_token = None
        for instance, token, _ in session._registry.values():
            if instance is session._default_spec:
                default_token = token
                break

        # Both the live verdict cache and any not-yet-adopted pending
        # entries flatten into one persistent-form list: on load, all of
        # them re-enter through the same pending-adoption validation.
        context_keys = {
            context.token: key for key, context in session._contexts.items()
        }
        verdicts: list[tuple] = []
        for (ctx_token, spec_key, pre_ref, post_ref), outcome in session._verdicts.items():
            key = context_keys.get(ctx_token)
            if key is None:
                continue  # context already evicted; its verdicts are dead
            spec_token, signature = key
            verdicts.append(
                (
                    spec_token,
                    signature,
                    spec_key,
                    session._store.graph(pre_ref),
                    session._store.graph(post_ref),
                    outcome,
                )
            )
        for (spec_token, signature), bucket in session._pending_verdicts.items():
            for (spec_key, _, _), entry in bucket.items():
                pre_graph, post_graph, outcome = entry
                verdicts.append(
                    (spec_token, signature, spec_key, pre_graph, post_graph, outcome)
                )

        payload = {
            "record": "session",
            "format": SESSION_FORMAT,
            "options": session.options,
            "options_digest": options_digest(session.options),
            "db": session.db,
            "graph_budget": session.graph_budget,
            "context_budget": session.context_budget,
            "report_history": session.stream.max_retained_reports,
            "specs": specs,
            "spec_digests": spec_digests,
            "default_token": default_token,
            "current": session.current,
            "verdicts": verdicts,
            "stream": session.stream,
        }

        tmp = self.path.with_name(self.path.name + ".tmp")
        writer = JournalWriter.create(tmp, header_record("state", _STATE_SIGNATURE))
        with writer:
            for outcome_record in self.outcomes():
                writer.append_json(outcome_record)
            writer.append_pickle(payload)
        os.replace(tmp, self.path)

    def load_session(
        self,
        *,
        options: VerificationOptions | None = None,
        db: LocationDB | None = None,
    ) -> VerificationSession:
        """Rebuild the session saved by :meth:`save_session`.

        ``options``/``db`` default to the saved ones; an ``options``
        override must agree on every verdict-relevant field
        (:class:`~repro.errors.StateVersionError` otherwise — see
        :data:`~repro.persist.digest.VERDICT_RELEVANT_OPTION_FIELDS`).
        """
        from repro.verifier.session import VerificationSession

        payload = None
        for record in self._records():
            if isinstance(record, dict) and record.get("record") == "session":
                payload = record  # the last one wins (rewrites keep only one)
        if payload is None:
            raise StateVersionError(f"no saved session in state store {self.path}")
        if payload.get("format") != SESSION_FORMAT:
            raise StateVersionError(
                f"state store {self.path} holds a format-{payload.get('format')!r} "
                f"session, this build reads format {SESSION_FORMAT}"
            )
        if options is not None and options_digest(options) != payload["options_digest"]:
            raise StateVersionError(
                "given options differ from the saved session's on a "
                "verdict-relevant field: cached verdicts would not be valid, "
                "refusing to load"
            )

        specs: list[tuple] = payload["specs"]
        instance_by_token = dict(specs)
        default_token = payload["default_token"]
        session = VerificationSession(
            payload["current"],
            instance_by_token.get(default_token),
            db=db if db is not None else payload["db"],
            options=options if options is not None else payload["options"],
            graph_budget=payload["graph_budget"],
            context_budget=payload["context_budget"],
        )
        # Saved tokens are NOT pre-claimed: the loading process will pass
        # its own spec instances, and the session's registration path binds
        # them to saved tokens by content digest (a live spec matching a
        # saved digest takes over that token and its pending verdicts).
        # Starting the token counter past every saved token keeps genuinely
        # new specs from colliding with journaled ones.
        session._next_spec_token = max((t for t, _ in specs), default=-1) + 1
        session._pending_spec_digests = dict(payload["spec_digests"])
        for spec_token, signature, spec_key, pre_graph, post_graph, outcome in payload[
            "verdicts"
        ]:
            bucket = session._pending_verdicts.setdefault(
                (spec_token, tuple(signature)), {}
            )
            bucket[(spec_key, pre_graph.fingerprint(), post_graph.fingerprint())] = (
                pre_graph,
                post_graph,
                outcome,
            )
        session.stream = payload["stream"]
        return session

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _records(self) -> list[object]:
        header, records, recovery = read_journal(self.path)
        self.last_recovery = recovery
        if header is None:
            return []
        if header.get("kind") != "state":
            raise StateVersionError(
                f"{self.path} is a {header.get('kind')!r} journal, not a state store"
            )
        return records
