"""Canonical, cross-process digests of run-identifying values.

Checkpoint resume and state-store loading must refuse artifacts produced
by a *different* run — different workload, different spec, different
verdict-relevant options — because silently adopting their cached verdicts
could change a report.  That refusal needs a digest that is stable across
processes, and ``pickle`` is not: strings hash differently per process
(``PYTHONHASHSEED``), so pickling anything containing a ``set`` or
``frozenset`` of strings yields different bytes on every run.

:func:`stable_digest` instead walks the value and feeds a *canonical*
byte stream to SHA-256: mappings by sorted key, sets by sorted element
representation, dataclasses and plain objects as ``(qualified class name,
field dict)``.  Two structurally-equal values built by two processes from
the same code digest identically; any change to a spec's zones, a
workload's FEC list, or an option that affects verdicts changes the
digest.
"""

from __future__ import annotations

import dataclasses
import enum
from hashlib import sha256
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.verifier.engine import VerificationOptions


def stable_digest(value: object) -> str:
    """A SHA-256 hex digest of ``value``, stable across processes."""
    digest = sha256()
    _feed(value, digest.update)
    return digest.hexdigest()


def _feed(value: object, update) -> None:
    # Each branch writes a type marker before its content, so values of
    # different shapes can never collide by concatenation ("ab", "c") vs
    # ("a", "bc").
    if value is None:
        update(b"N;")
    elif isinstance(value, bool):
        update(b"B1;" if value else b"B0;")
    elif isinstance(value, int):
        text = str(value).encode()
        update(b"I%d:%s;" % (len(text), text))
    elif isinstance(value, float):
        text = repr(value).encode()
        update(b"F%d:%s;" % (len(text), text))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        update(b"S%d:%s;" % (len(raw), raw))
    elif isinstance(value, bytes):
        update(b"Y%d:%s;" % (len(value), value))
    elif isinstance(value, enum.Enum):
        _feed((type(value).__qualname__, value.value), update)
    elif isinstance(value, (list, tuple)):
        update(b"L(")
        for item in value:
            _feed(item, update)
        update(b")")
    elif isinstance(value, (set, frozenset)):
        update(b"E(")
        for item in sorted(value, key=repr):
            _feed(item, update)
        update(b")")
    elif isinstance(value, dict):
        update(b"D(")
        for key in sorted(value, key=repr):
            _feed(key, update)
            _feed(value[key], update)
        update(b")")
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        update(b"C(")
        _feed(type(value).__qualname__, update)
        for field in dataclasses.fields(value):
            _feed(field.name, update)
            _feed(getattr(value, field.name), update)
        update(b")")
    elif callable(value):
        # Functions (change transforms) digest by name only: their code is
        # part of the repo, not of the run's data identity.
        _feed(("callable", getattr(value, "__qualname__", repr(type(value)))), update)
    elif hasattr(value, "__dict__"):
        update(b"O(")
        _feed(type(value).__qualname__, update)
        _feed(vars(value), update)
        update(b")")
    elif hasattr(value, "__slots__"):
        update(b"O(")
        _feed(type(value).__qualname__, update)
        slot_values = {
            name: getattr(value, name)
            for name in type(value).__slots__
            if hasattr(value, name)
        }
        _feed(slot_values, update)
        update(b")")
    else:  # last resort: repr (deterministic for anything sane left over)
        _feed(("repr", repr(value)), update)


#: The :class:`~repro.verifier.engine.VerificationOptions` fields that can
#: change a verdict or a counterexample.  Resuming with different *workers*
#: or resilience knobs is allowed — parallelism and retry policy change how
#: fast checks run, never what they conclude.
VERDICT_RELEVANT_OPTION_FIELDS = (
    "granularity",
    "max_witnesses",
    "max_paths",
    "max_witness_length",
    "collect_counterexamples",
    "fast_path_identical_graphs",
    "memoize_fec_checks",
    "lazy_spec_compilation",
)


def options_digest(options: VerificationOptions | None) -> str:
    """Digest of the verdict-relevant option fields (None = engine defaults)."""
    if options is None:
        from repro.verifier.engine import VerificationOptions

        options = VerificationOptions()
    return stable_digest(
        (
            "options/v1",
            {
                name: getattr(options, name)
                for name in VERDICT_RELEVANT_OPTION_FIELDS
            },
        )
    )
