"""Journaled run checkpoints: crash-resume for sweeps and streams.

A :class:`Checkpoint` wraps one ``repro-journal/v1`` file (see
:mod:`repro.persist.journal`) recording a verification run's completed
*units* — one record per contingency of a
:class:`~repro.verifier.contingency.ContingencySweep`, one per epoch of
:func:`~repro.verifier.session.verify_stream` — as they land.  Each unit
record is atomic and self-contained: the unit's result object, the session
verdict-cache deltas its verification produced
(:meth:`~repro.verifier.session.VerificationSession.drain_deltas`), and any
graphs it added to a shared store.  A process killed mid-unit therefore
loses exactly that unit and nothing else; the journal's good prefix is the
run's completed prefix.

Resume replays that prefix — recorded results are folded into the report,
deltas are preloaded into the fresh session, graphs re-interned in order —
and re-runs everything after it, which makes the resumed run's final
report byte-identical to an uninterrupted run's (the differential bar
pinned by ``tests/persist/``).  Two rules keep that sound:

* **Contiguous clean prefix only.**  Units replay strictly in order from
  index 0; the first missing, out-of-order, or *degraded* unit ends the
  prefix.  Degraded units (any ``CheckFailure``/unknown verdict) are
  journaled as markers without results, so a resumed run retries them
  fresh — the same contract as session memoization, which never caches a
  ``CheckFailure`` either.
* **Signature binding.**  The journal header carries the run's signature
  (:func:`~repro.persist.digest.stable_digest` over the workload's
  identity).  Resuming against a journal whose kind or signature differs
  raises :class:`~repro.errors.StateVersionError` instead of silently
  mixing two runs' verdicts.

Corruption is a recovery path, not a crash: a torn or CRC-failing tail is
truncated (and reported via :attr:`Checkpoint.recovery`), and a journal
whose header never made it to disk is simply restarted.  Only a file that
is not a journal at all raises
:class:`~repro.errors.JournalCorruptionError`.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import StateVersionError, VerificationError
from repro.persist.journal import (
    JournalWriter,
    RecoveryInfo,
    header_record,
    open_for_append,
)


class Checkpoint:
    """One run's journaled checkpoint file (create via :meth:`open`)."""

    def __init__(
        self,
        writer: JournalWriter | None,
        completed_units: list[dict],
        recovery: RecoveryInfo | None,
    ) -> None:
        self._writer = writer
        #: The contiguous clean prefix of completed units, in index order
        #: (empty unless the checkpoint was opened with ``resume=True``).
        self.completed_units = completed_units
        #: How reading the existing journal went (None for a fresh file).
        self.recovery = recovery
        self._next_index = len(completed_units)
        #: True when the previous run left an interrupt marker (it was
        #: stopped by SIGTERM/SIGINT after its last completed unit).
        self.interrupted = False

    @property
    def path(self) -> Path | None:
        return self._writer.path if self._writer is not None else None

    @classmethod
    def open(
        cls,
        path: str | Path,
        *,
        kind: str,
        signature: str,
        resume: bool = False,
        meta: dict | None = None,
    ) -> Checkpoint:
        """Open (or create) the checkpoint journal at ``path``.

        With ``resume=False`` any existing file is replaced by a fresh
        journal.  With ``resume=True`` the existing journal is recovered,
        validated against ``kind`` and ``signature``, truncated to its last
        good record, and its clean prefix of unit records is returned via
        :attr:`completed_units`; a missing file (or one whose header never
        survived) resumes from nothing.
        """
        path = Path(path)
        header = header_record(kind, signature, meta)
        if not resume:
            return cls(JournalWriter.create(path, header), [], None)

        writer, existing, records, recovery = open_for_append(path)
        if existing is None:
            # Missing, empty, or died before the header record landed:
            # nothing to resume, start a fresh journal.
            writer.close(sync=False)
            return cls(JournalWriter.create(path, header), [], recovery)
        if existing.get("kind") != kind:
            writer.close(sync=False)
            raise StateVersionError(
                f"checkpoint {path} is a {existing.get('kind')!r} journal, "
                f"not {kind!r} — refusing to resume from it"
            )
        if existing.get("signature") != signature:
            writer.close(sync=False)
            raise StateVersionError(
                f"checkpoint {path} was written by a different run "
                f"(signature {existing.get('signature')!r} != {signature!r}): "
                "resuming from it could change the report, refusing"
            )

        completed: list[dict] = []
        interrupted = False
        for record in records:
            if not isinstance(record, dict):
                break
            if record.get("record") == "interrupt":
                interrupted = True
                continue
            if record.get("record") != "unit":
                continue
            if record.get("index") != len(completed) or record.get("degraded"):
                # Out-of-order / degraded unit: the usable prefix ends here.
                # Degraded units are retried fresh on resume, by contract.
                break
            completed.append(record)
        checkpoint = cls(writer, completed, recovery)
        checkpoint.interrupted = interrupted
        return checkpoint

    def record_unit(
        self,
        index: int,
        unit_id: str,
        *,
        degraded: bool = False,
        **payload,
    ) -> None:
        """Journal one completed unit (flushed to the OS before returning).

        Degraded units are recorded as result-free markers: they terminate
        any future resume's replay prefix, so their unknown verdicts are
        retried rather than replayed.
        """
        if self._writer is None:
            raise VerificationError("checkpoint is closed")
        if index != self._next_index:
            raise VerificationError(
                f"checkpoint units must be recorded in order "
                f"(got index {index}, expected {self._next_index})"
            )
        self._next_index += 1
        record = {"record": "unit", "index": index, "id": unit_id, "degraded": degraded}
        if not degraded:
            record.update(payload)
        self._writer.append_pickle(record)

    def interrupt(self) -> None:
        """Flush a final interrupt marker and close (the SIGTERM/SIGINT path).

        The marker records that the run was stopped cleanly *between* units;
        everything journaled so far is fsynced to stable storage so a
        subsequent ``--resume`` picks up exactly where the operator stopped.
        """
        if self._writer is None:
            return
        self._writer.append_json({"record": "interrupt"})
        self.close()

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None
