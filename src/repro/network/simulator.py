"""Dataplane simulation: from FIBs to per-FEC forwarding graphs.

This is the reproduction's stand-in for the operator's simulation toolchain
(paper Section 2.3, steps 1-3): given a topology, router configurations and a
set of traffic descriptors, it computes each flow equivalence class's
forwarding graph — the DAG-format path set Rela consumes (Section 6.1).

Two entry points are provided:

* :class:`Simulator` — the full pipeline: run the BGP computation, build
  FIBs, then trace every traffic class;
* :func:`trace_forwarding` — dataplane-only tracing over an explicit
  :class:`~repro.network.fib.Fib`, used by workloads that handcraft FIBs
  (such as the Figure 1 case study) and by tests.

The simulator is also the substrate of *contingency sweeps* (what-if
verification under failures, :mod:`repro.verifier.contingency`):
:meth:`Simulator.under_failure` derives a simulator over the topology with
a set of link bundles failed (recomputing BGP/IGP/FIB state lazily, with
unreachable exits degrading to dropped traffic instead of errors), and
:meth:`Simulator.derive_snapshot` re-traces **only** the traffic classes
whose forwarding the failure can actually change: a class whose baseline
trace visits only routers with identical FIB decisions under the failure
provably forwards identically, so its baseline graph object is reused —
which also makes cross-contingency interning an identity hit.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.automata.alphabet import DROP
from repro.errors import RoutingError
from repro.network.addressing import Prefix
from repro.network.bgp import BGPComputation, NetworkConfig, SelectedRoutes
from repro.network.fib import Fib, build_fibs
from repro.network.topology import Topology
from repro.rela.locations import Granularity
from repro.snapshots.fec import FlowEquivalenceClass
from repro.snapshots.forwarding_graph import ForwardingGraph
from repro.snapshots.graphstore import GraphStore
from repro.snapshots.snapshot import Snapshot


@dataclass(slots=True)
class TraceOptions:
    """Options controlling forwarding-graph construction."""

    #: Granularity of the emitted graphs (interface expands parallel links).
    granularity: Granularity = Granularity.ROUTER
    #: Safety bound on the number of routers visited per trace.
    max_hops: int = 1024


def trace_forwarding(
    topology: Topology,
    fib: Fib,
    ingress: str,
    destination: Prefix | str,
    *,
    options: TraceOptions | None = None,
) -> ForwardingGraph:
    """Trace the forwarding graph of traffic entering at ``ingress``.

    The trace follows FIB longest-prefix-match decisions hop by hop,
    recording every (router, next-hop) edge used.  Routers whose entry marks
    them as egress become sinks; missing entries or explicit drop entries
    send traffic to the special ``drop`` sink.
    """
    options = options or TraceOptions()
    router_graph = _trace_router_graph(
        topology, fib, ingress, Prefix.coerce(destination), max_hops=options.max_hops
    )
    return _convert_router_graph(topology, router_graph, options.granularity)


def _trace_router_graph(
    topology: Topology,
    fib: Fib,
    ingress: str,
    destination: Prefix,
    *,
    max_hops: int = 1024,
) -> ForwardingGraph:
    """The router-level FIB trace (the granularity-independent core)."""
    if not topology.has_router(ingress):
        raise RoutingError(f"unknown ingress router {ingress!r}")

    router_graph = ForwardingGraph(granularity=Granularity.ROUTER)
    router_graph.add_node(ingress)
    router_graph.sources.add(ingress)

    visited: set[str] = set()
    queue: deque[str] = deque([ingress])
    hops = 0
    dropped = False
    while queue and hops < max_hops:
        router = queue.popleft()
        if router in visited:
            continue
        visited.add(router)
        hops += 1
        entry = fib.lookup(router, destination)
        if entry is None or entry.is_drop():
            # Dropped traffic is modelled as the special single-location path
            # "drop" (paper Section 5.1), not as a partial path.
            dropped = True
            continue
        if entry.egress:
            router_graph.sinks.add(router)
            if entry.next_hops:
                # An egress that also forwards (e.g. anycast origin) keeps going.
                pass
            else:
                continue
        for next_hop in sorted(entry.next_hops):
            if not topology.has_router(next_hop):
                raise RoutingError(
                    f"FIB of {router!r} points to unknown router {next_hop!r}"
                )
            router_graph.add_edge(router, next_hop)
            if next_hop not in visited:
                queue.append(next_hop)

    if dropped:
        router_graph.add_node(DROP)
        router_graph.sources.add(DROP)
        router_graph.sinks.add(DROP)
    return router_graph


def _convert_router_graph(
    topology: Topology, router_graph: ForwardingGraph, granularity: Granularity
) -> ForwardingGraph:
    """Coarsen or expand a router-level trace to the requested granularity."""
    if granularity is Granularity.ROUTER:
        return router_graph
    if granularity is Granularity.GROUP:
        mapping = {router.name: router.group for router in topology}
        return router_graph.coarsen(mapping, Granularity.GROUP)
    return _expand_to_interfaces(topology, router_graph)


def _expand_to_interfaces(topology: Topology, router_graph: ForwardingGraph) -> ForwardingGraph:
    """Expand a router-level graph to interface granularity.

    Every router-level edge ``u -> v`` becomes, per parallel link member, an
    edge from the member's ``u``-side interface to its ``v``-side interface;
    consecutive hops are stitched inside each router (ingress interface to
    egress interface).  Ingress routers contribute their loopback as the
    source location and egress routers their loopback as the sink, so paths
    always start and end at a stable per-router location.
    """
    graph = ForwardingGraph(granularity=Granularity.INTERFACE)

    def loopback(router: str) -> str:
        return f"{router}:lo0"

    # Interfaces at which traffic can enter each router (loopback for sources).
    entry_points: dict[str, set[str]] = {}
    for source in router_graph.sources:
        if source == DROP:
            graph.add_node(DROP)
            graph.sources.add(DROP)
            graph.sinks.add(DROP)
            continue
        entry_points.setdefault(source, set()).add(loopback(source))
        graph.sources.add(loopback(source))
        graph.add_node(loopback(source))

    # First pass: record the per-edge interface pairs.
    edge_interfaces: dict[tuple[str, str], list[tuple[str, str]]] = {}
    for src, dst in sorted(router_graph.edges):
        if dst == DROP:
            continue
        members = topology.links_between(src, dst)
        pairs: list[tuple[str, str]] = []
        for link in members:
            if link.a == src:
                pairs.append((link.interface_a(), link.interface_b()))
            else:
                pairs.append((link.interface_b(), link.interface_a()))
        if not pairs:
            raise RoutingError(f"forwarding edge {src!r}->{dst!r} has no physical link")
        edge_interfaces[(src, dst)] = pairs
        for egress_iface, ingress_iface in pairs:
            graph.add_edge(egress_iface, ingress_iface)
            entry_points.setdefault(dst, set()).add(ingress_iface)

    # Second pass: stitch entry interfaces to egress interfaces inside routers,
    # and handle drops and sinks.
    for src, dst in sorted(router_graph.edges):
        if dst == DROP:
            for entry in sorted(entry_points.get(src, {loopback(src)})):
                graph.add_edge(entry, DROP)
            graph.sinks.add(DROP)
            continue
        for entry in sorted(entry_points.get(src, {loopback(src)})):
            for egress_iface, _ingress_iface in edge_interfaces[(src, dst)]:
                graph.add_edge(entry, egress_iface)
    for sink in router_graph.sinks:
        if sink == DROP:
            graph.add_node(DROP)
            graph.sinks.add(DROP)
            continue
        sink_lo = loopback(sink)
        graph.add_node(sink_lo)
        for entry in sorted(entry_points.get(sink, set())):
            if entry != sink_lo:
                graph.add_edge(entry, sink_lo)
        graph.sinks.add(sink_lo)
    return graph


class Simulator:
    """The full control-plane + dataplane simulation pipeline.

    ``drop_unreachable`` selects the failure-mode FIB semantics (see
    :func:`~repro.network.fib.build_fibs`): simulators produced by
    :meth:`under_failure` blackhole traffic whose exits were cut off instead
    of raising, because that is what the failed network would do.
    """

    def __init__(
        self,
        topology: Topology,
        config: NetworkConfig,
        *,
        drop_unreachable: bool = False,
    ):
        self.topology = topology
        self.config = config
        self.drop_unreachable = drop_unreachable
        self._selected: SelectedRoutes | None = None
        self._fib: Fib | None = None
        # Trace memoization: classes that differ only in source prefix or
        # metadata share one trace and one graph object, and derived
        # contingency snapshots reuse baseline graphs by identity.  Cached
        # graphs may get frozen by snapshot interning; they are never
        # mutated here.
        self._router_traces: dict[tuple[str, str], ForwardingGraph] = {}
        self._traces: dict[tuple[str, str, Granularity], ForwardingGraph] = {}

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def compute_routes(self) -> SelectedRoutes:
        """Run the BGP computation (cached)."""
        if self._selected is None:
            self._selected = BGPComputation(self.topology, self.config).compute()
        return self._selected

    def fib(self) -> Fib:
        """The FIBs derived from the routing computation (cached)."""
        if self._fib is None:
            self._fib = build_fibs(
                self.topology, self.compute_routes(), drop_unreachable=self.drop_unreachable
            )
        return self._fib

    # ------------------------------------------------------------------
    # Contingencies
    # ------------------------------------------------------------------
    def under_failure(self, failed_links: Iterable[tuple[str, str]]) -> "Simulator":
        """A simulator over this topology with the given link bundles failed.

        This is the failure-aware recompute entry point of contingency
        sweeps: the derived simulator shares the (unmutated) configuration,
        recomputes BGP routes / IGP costs / FIBs over the failed topology on
        first use, and installs drop entries where the failure cut a route's
        exit off (``drop_unreachable=True``) rather than rejecting the
        network as malformed.

        Memo-staleness audit (incremental k-failure derivation): every
        ``Simulator`` owns *instance-level* trace memos (``_router_traces``,
        ``_traces``, ``_selected``, ``_fib``), and this method always
        returns a **fresh** instance with empty memos over the reduced
        topology.  Chained derivation (``base.under_failure(k1)`` followed
        by ``base.under_failure(k1 + k2)``) therefore cannot leak a parent
        or baseline trace into a child simulator through shared mutable
        state — the only cross-simulator reuse is the explicit,
        criterion-guarded graph adoption in :meth:`derive_snapshot`.
        """
        return Simulator(
            self.topology.without_links(failed_links),
            self.config,
            drop_unreachable=True,
        )

    def router_trace(self, ingress: str, destination: Prefix | str) -> ForwardingGraph:
        """Memoized router-level FIB trace of one (ingress, destination)."""
        destination = Prefix.coerce(destination)
        key = (ingress, str(destination))
        graph = self._router_traces.get(key)
        if graph is None:
            graph = _trace_router_graph(self.topology, self.fib(), ingress, destination)
            self._router_traces[key] = graph
        return graph

    def trace_unchanged(
        self, baseline: "Simulator", ingress: str, destination: Prefix | str
    ) -> bool:
        """Whether this simulator provably forwards a class as ``baseline`` does.

        Sound reuse criterion for contingency derivation: the baseline's
        router-level trace visits a known router set, and a FIB trace is a
        pure function of the FIB decisions at the visited routers (the BFS
        is deterministic).  If every visited router keeps an identical FIB
        entry for the destination, the failed network traces the identical
        graph — including at interface granularity, because an unchanged
        entry can only point over surviving bundles (the failed topology
        cannot produce next hops across removed adjacencies) and failures
        remove whole bundles, never individual members.
        """
        destination = Prefix.coerce(destination)
        base_graph = baseline.router_trace(ingress, destination)
        fib = self.fib()
        base_fib = baseline.fib()
        for node in base_graph.nodes:
            if node == DROP:
                continue
            if fib.lookup(node, destination) != base_fib.lookup(node, destination):
                return False
        return True

    # ------------------------------------------------------------------
    # Dataplane
    # ------------------------------------------------------------------
    def trace(
        self,
        ingress: str,
        destination: Prefix | str,
        *,
        granularity: Granularity = Granularity.ROUTER,
    ) -> ForwardingGraph:
        """Forwarding graph of one traffic class (memoized)."""
        destination = Prefix.coerce(destination)
        key = (ingress, str(destination), granularity)
        graph = self._traces.get(key)
        if graph is None:
            graph = _convert_router_graph(
                self.topology, self.router_trace(ingress, destination), granularity
            )
            self._traces[key] = graph
        return graph

    def snapshot(
        self,
        fecs: list[FlowEquivalenceClass],
        *,
        name: str = "snapshot",
        granularity: Granularity = Granularity.ROUTER,
        store: GraphStore | None = None,
    ) -> Snapshot:
        """Simulate all traffic classes and assemble a snapshot.

        Traces are memoized by (ingress, destination): classes that differ
        only in source prefix or metadata share one trace *and* one graph
        object, and the snapshot's interning store collapses any remaining
        cross-destination duplicates — a 10^5-class backbone stores each
        distinct forwarding behaviour exactly once.  Passing ``store``
        interns into a shared (e.g. sweep-wide) store instead of a fresh
        per-snapshot one.
        """
        if store is None:
            snapshot = Snapshot(name=name, granularity=granularity)
        else:
            snapshot = Snapshot.with_shared_store(store, name=name, granularity=granularity)
        for fec in fecs:
            snapshot.add(fec, self.trace(fec.ingress, fec.dst_prefix, granularity=granularity))
        return snapshot

    def changed_routers(
        self, reference: "Simulator", destinations: Iterable[str]
    ) -> dict[str, frozenset[str]]:
        """Per destination, the routers whose FIB decision differs from ``reference``.

        The *FIB-delta index* behind incremental contingency derivation: one
        all-routers scan per distinct destination replaces a per-(ingress,
        destination) walk over every reference trace.  A combination is then
        provably unaffected iff its reference trace is disjoint from the
        destination's delta set — exactly the :meth:`trace_unchanged`
        predicate, reorganized so the FIB comparisons are shared across all
        ingresses of a destination.
        """
        fib = self.fib()
        reference_fib = reference.fib()
        # A router whose entire table is unchanged cannot differ on any
        # destination; screen with one dict comparison per router so the
        # (linear-scan) LPM lookups below only run for genuine suspects.
        suspects = [
            router.name
            for router in self.topology
            if not fib.table_equals(router.name, reference_fib)
        ]
        index: dict[str, frozenset[str]] = {}
        for destination in sorted(set(destinations)):
            dest = Prefix.coerce(destination)
            index[destination] = frozenset(
                name
                for name in suspects
                if fib.lookup(name, dest) != reference_fib.lookup(name, dest)
            )
        return index

    def derive_snapshot(
        self,
        baseline: "Simulator",
        base_snapshot: Snapshot,
        *,
        name: str | None = None,
        combos: dict[tuple[str, str], list[str]] | None = None,
        parent: tuple["Simulator", Snapshot] | None = None,
        siblings: Sequence[tuple["Simulator", Snapshot]] = (),
    ) -> Snapshot:
        """``base_snapshot`` as this (failed) simulator would have traced it.

        Copy-on-write derivation for contingency sweeps: classes whose
        reference traces are provably unaffected (:meth:`trace_unchanged`)
        keep their reference graph objects — and therefore their interned
        refs, so cross-contingency dedup is an identity hit — and only the
        affected (ingress, destination) combinations are re-traced.
        ``combos`` optionally passes the precomputed ``(ingress, dst) →
        fec ids`` grouping so a sweep does not regroup per contingency.

        ``parent`` is the incremental-derivation seam: a ``(simulator,
        snapshot)`` pair for a *neighboring* contingency (typically this
        contingency's (k−1)-failure parent, which differs by one link).  When
        given, the changed-FIB-decision criterion runs against the parent's
        FIBs and traces instead of the baseline's — far fewer decisions
        change between lattice neighbors than against the healthy network —
        and uses the :meth:`changed_routers` delta index.  Unchanged classes
        adopt the parent's graph objects, which is sound by induction: the
        parent snapshot is (content-)identical to what full simulation would
        produce, and an unaffected class forwards identically to the parent.
        With ``parent=None`` the legacy from-baseline scan is used verbatim.

        ``siblings`` are *secondary* references consulted when the parent's
        criterion fails — typically the single-failure node of the last
        failed link.  A combination the last link flips (changed vs the
        parent) usually forwards exactly as it does under that link's
        *solo* failure: the criterion re-runs against the sibling, and on a
        pass the sibling's trace and graph are adopted instead of re-traced.
        Soundness is reference-agnostic — the criterion only ever compares
        this simulator's own FIB decisions against a reference's over the
        reference trace's routers, and a pass proves the deterministic BFS
        reproduces that exact graph here (identical FIB entries can only
        point over bundles that survive in *both* topologies, and failures
        remove whole bundles, so even interface-granularity conversion
        agrees).  Only combinations affected by the last link *jointly with*
        the earlier ones — the slice overlap, not the slice union — pay a
        real re-trace.
        """
        if parent is not None:
            reference, reference_snapshot = parent
        else:
            reference, reference_snapshot = baseline, base_snapshot
        derived = reference_snapshot.copy(name=name or f"{base_snapshot.name}-derived")
        if combos is None:
            combos = group_fec_combos(base_snapshot.fecs())
        granularity = base_snapshot.granularity
        if parent is None:
            for (ingress, destination), fec_ids in combos.items():
                if self.trace_unchanged(baseline, ingress, destination):
                    continue
                graph = self.trace(ingress, destination, granularity=granularity)
                for fec_id in fec_ids:
                    derived.replace(fec_id, graph)
            return derived
        destinations = {dst for _, dst in combos}
        delta = self.changed_routers(reference, destinations)
        sibling_refs = [
            (sib, sib_snapshot, self.changed_routers(sib, destinations), sib._router_traces)
            for sib, sib_snapshot in siblings
        ]
        traces = self._router_traces
        reference_traces = reference._router_traces
        for (ingress, destination), fec_ids in combos.items():
            changed = delta[destination]
            # The combo key doubles as the router-trace memo key, so probe the
            # reference's memo directly and only fall back to a real trace
            # call (coerce + BFS) on a miss.
            reference_trace = reference_traces.get((ingress, destination))
            if reference_trace is None:
                reference_trace = reference.router_trace(ingress, destination)
            if not changed or changed.isdisjoint(reference_trace.nodes):
                # Criterion-guarded memo adoption: an unaffected combination
                # provably traces the identical router graph, so the child
                # inherits the reference's trace object.  This keeps the whole
                # derivation lattice warm — a (k+1)-failure grandchild probing
                # this simulator as *its* reference hits memoized traces
                # instead of re-walking the FIB per combination.
                traces.setdefault((ingress, destination), reference_trace)
                continue
            adopted = False
            for sibling, sibling_snapshot, sibling_delta, sibling_traces in sibling_refs:
                sibling_changed = sibling_delta[destination]
                sibling_trace = sibling_traces.get((ingress, destination))
                if sibling_trace is None:
                    sibling_trace = sibling.router_trace(ingress, destination)
                if sibling_changed and not sibling_changed.isdisjoint(sibling_trace.nodes):
                    continue
                # Same criterion, different reference: this combination
                # forwards exactly as it does under the sibling's failure
                # set, so adopt its trace *and* its snapshot graph (object
                # identity, hence identical interned refs).
                traces.setdefault((ingress, destination), sibling_trace)
                graph = sibling_snapshot.graph(fec_ids[0])
                for fec_id in fec_ids:
                    derived.replace(fec_id, graph)
                adopted = True
                break
            if adopted:
                continue
            graph = self.trace(ingress, destination, granularity=granularity)
            for fec_id in fec_ids:
                derived.replace(fec_id, graph)
        return derived


def group_fec_combos(
    fecs: Iterable[FlowEquivalenceClass],
) -> dict[tuple[str, str], list[str]]:
    """Group FEC ids by their (ingress, destination prefix) trace key."""
    combos: dict[tuple[str, str], list[str]] = {}
    for fec in fecs:
        combos.setdefault((fec.ingress, str(fec.dst_prefix)), []).append(fec.fec_id)
    return combos
