"""Dataplane simulation: from FIBs to per-FEC forwarding graphs.

This is the reproduction's stand-in for the operator's simulation toolchain
(paper Section 2.3, steps 1-3): given a topology, router configurations and a
set of traffic descriptors, it computes each flow equivalence class's
forwarding graph — the DAG-format path set Rela consumes (Section 6.1).

Two entry points are provided:

* :class:`Simulator` — the full pipeline: run the BGP computation, build
  FIBs, then trace every traffic class;
* :func:`trace_forwarding` — dataplane-only tracing over an explicit
  :class:`~repro.network.fib.Fib`, used by workloads that handcraft FIBs
  (such as the Figure 1 case study) and by tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.automata.alphabet import DROP
from repro.errors import RoutingError
from repro.network.addressing import Prefix
from repro.network.bgp import BGPComputation, NetworkConfig, SelectedRoutes
from repro.network.fib import Fib, build_fibs
from repro.network.topology import Topology
from repro.rela.locations import Granularity
from repro.snapshots.fec import FlowEquivalenceClass
from repro.snapshots.forwarding_graph import ForwardingGraph
from repro.snapshots.snapshot import Snapshot


@dataclass(slots=True)
class TraceOptions:
    """Options controlling forwarding-graph construction."""

    #: Granularity of the emitted graphs (interface expands parallel links).
    granularity: Granularity = Granularity.ROUTER
    #: Safety bound on the number of routers visited per trace.
    max_hops: int = 1024


def trace_forwarding(
    topology: Topology,
    fib: Fib,
    ingress: str,
    destination: Prefix | str,
    *,
    options: TraceOptions | None = None,
) -> ForwardingGraph:
    """Trace the forwarding graph of traffic entering at ``ingress``.

    The trace follows FIB longest-prefix-match decisions hop by hop,
    recording every (router, next-hop) edge used.  Routers whose entry marks
    them as egress become sinks; missing entries or explicit drop entries
    send traffic to the special ``drop`` sink.
    """
    options = options or TraceOptions()
    destination = Prefix.coerce(destination)
    if not topology.has_router(ingress):
        raise RoutingError(f"unknown ingress router {ingress!r}")

    router_graph = ForwardingGraph(granularity=Granularity.ROUTER)
    router_graph.add_node(ingress)
    router_graph.sources.add(ingress)

    visited: set[str] = set()
    queue: deque[str] = deque([ingress])
    hops = 0
    dropped = False
    while queue and hops < options.max_hops:
        router = queue.popleft()
        if router in visited:
            continue
        visited.add(router)
        hops += 1
        entry = fib.lookup(router, destination)
        if entry is None or entry.is_drop():
            # Dropped traffic is modelled as the special single-location path
            # "drop" (paper Section 5.1), not as a partial path.
            dropped = True
            continue
        if entry.egress:
            router_graph.sinks.add(router)
            if entry.next_hops:
                # An egress that also forwards (e.g. anycast origin) keeps going.
                pass
            else:
                continue
        for next_hop in sorted(entry.next_hops):
            if not topology.has_router(next_hop):
                raise RoutingError(
                    f"FIB of {router!r} points to unknown router {next_hop!r}"
                )
            router_graph.add_edge(router, next_hop)
            if next_hop not in visited:
                queue.append(next_hop)

    if dropped:
        router_graph.add_node(DROP)
        router_graph.sources.add(DROP)
        router_graph.sinks.add(DROP)

    if options.granularity is Granularity.ROUTER:
        return router_graph
    if options.granularity is Granularity.GROUP:
        mapping = {router.name: router.group for router in topology}
        return router_graph.coarsen(mapping, Granularity.GROUP)
    return _expand_to_interfaces(topology, router_graph)


def _expand_to_interfaces(topology: Topology, router_graph: ForwardingGraph) -> ForwardingGraph:
    """Expand a router-level graph to interface granularity.

    Every router-level edge ``u -> v`` becomes, per parallel link member, an
    edge from the member's ``u``-side interface to its ``v``-side interface;
    consecutive hops are stitched inside each router (ingress interface to
    egress interface).  Ingress routers contribute their loopback as the
    source location and egress routers their loopback as the sink, so paths
    always start and end at a stable per-router location.
    """
    graph = ForwardingGraph(granularity=Granularity.INTERFACE)

    def loopback(router: str) -> str:
        return f"{router}:lo0"

    # Interfaces at which traffic can enter each router (loopback for sources).
    entry_points: dict[str, set[str]] = {}
    for source in router_graph.sources:
        if source == DROP:
            graph.add_node(DROP)
            graph.sources.add(DROP)
            graph.sinks.add(DROP)
            continue
        entry_points.setdefault(source, set()).add(loopback(source))
        graph.sources.add(loopback(source))
        graph.add_node(loopback(source))

    # First pass: record the per-edge interface pairs.
    edge_interfaces: dict[tuple[str, str], list[tuple[str, str]]] = {}
    for src, dst in sorted(router_graph.edges):
        if dst == DROP:
            continue
        members = topology.links_between(src, dst)
        pairs: list[tuple[str, str]] = []
        for link in members:
            if link.a == src:
                pairs.append((link.interface_a(), link.interface_b()))
            else:
                pairs.append((link.interface_b(), link.interface_a()))
        if not pairs:
            raise RoutingError(f"forwarding edge {src!r}->{dst!r} has no physical link")
        edge_interfaces[(src, dst)] = pairs
        for egress_iface, ingress_iface in pairs:
            graph.add_edge(egress_iface, ingress_iface)
            entry_points.setdefault(dst, set()).add(ingress_iface)

    # Second pass: stitch entry interfaces to egress interfaces inside routers,
    # and handle drops and sinks.
    for src, dst in sorted(router_graph.edges):
        if dst == DROP:
            for entry in sorted(entry_points.get(src, {loopback(src)})):
                graph.add_edge(entry, DROP)
            graph.sinks.add(DROP)
            continue
        for entry in sorted(entry_points.get(src, {loopback(src)})):
            for egress_iface, _ingress_iface in edge_interfaces[(src, dst)]:
                graph.add_edge(entry, egress_iface)
    for sink in router_graph.sinks:
        if sink == DROP:
            graph.add_node(DROP)
            graph.sinks.add(DROP)
            continue
        sink_lo = loopback(sink)
        graph.add_node(sink_lo)
        for entry in sorted(entry_points.get(sink, set())):
            if entry != sink_lo:
                graph.add_edge(entry, sink_lo)
        graph.sinks.add(sink_lo)
    return graph


class Simulator:
    """The full control-plane + dataplane simulation pipeline."""

    def __init__(self, topology: Topology, config: NetworkConfig):
        self.topology = topology
        self.config = config
        self._selected: SelectedRoutes | None = None
        self._fib: Fib | None = None

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def compute_routes(self) -> SelectedRoutes:
        """Run the BGP computation (cached)."""
        if self._selected is None:
            self._selected = BGPComputation(self.topology, self.config).compute()
        return self._selected

    def fib(self) -> Fib:
        """The FIBs derived from the routing computation (cached)."""
        if self._fib is None:
            self._fib = build_fibs(self.topology, self.compute_routes())
        return self._fib

    # ------------------------------------------------------------------
    # Dataplane
    # ------------------------------------------------------------------
    def trace(
        self,
        ingress: str,
        destination: Prefix | str,
        *,
        granularity: Granularity = Granularity.ROUTER,
    ) -> ForwardingGraph:
        """Forwarding graph of one traffic class."""
        return trace_forwarding(
            self.topology,
            self.fib(),
            ingress,
            destination,
            options=TraceOptions(granularity=granularity),
        )

    def snapshot(
        self,
        fecs: list[FlowEquivalenceClass],
        *,
        name: str = "snapshot",
        granularity: Granularity = Granularity.ROUTER,
    ) -> Snapshot:
        """Simulate all traffic classes and assemble a snapshot.

        Traces are memoized by (ingress, destination): classes that differ
        only in source prefix or metadata share one trace *and* one graph
        object, and the snapshot's interning store collapses any remaining
        cross-destination duplicates — a 10^5-class backbone stores each
        distinct forwarding behaviour exactly once.
        """
        snapshot = Snapshot(name=name, granularity=granularity)
        traced: dict[tuple[str, str], ForwardingGraph] = {}
        for fec in fecs:
            key = (fec.ingress, str(fec.dst_prefix))
            graph = traced.get(key)
            if graph is None:
                graph = self.trace(fec.ingress, fec.dst_prefix, granularity=granularity)
                traced[key] = graph
            snapshot.add(fec, graph)
        return snapshot
