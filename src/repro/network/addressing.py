"""IP prefixes and longest-prefix-match tables.

A tiny, dependency-free IPv4 prefix layer used by the routing substrate: the
FIB performs longest-prefix match over announced prefixes, and traffic
descriptors (flow equivalence classes) carry destination prefixes that must
be matched against route announcements and the Rela prefix predicates.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from collections.abc import Iterable, Iterator
from functools import lru_cache

from repro.errors import RoutingError


@dataclass(frozen=True, slots=True, order=True)
class Prefix:
    """An IPv4 prefix in CIDR form."""

    network: int
    length: int

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"10.0.0.0/24"`` into a Prefix."""
        try:
            net = ipaddress.IPv4Network(text, strict=False)
        except ValueError as exc:
            raise RoutingError(f"invalid IPv4 prefix {text!r}: {exc}") from exc
        return cls(network=int(net.network_address), length=net.prefixlen)

    @classmethod
    def coerce(cls, value: "Prefix | str") -> "Prefix":
        """Accept either a Prefix or a CIDR string (parse results are cached)."""
        if isinstance(value, Prefix):
            return value
        return _parse_cached(value)

    def __str__(self) -> str:
        return f"{ipaddress.IPv4Address(self.network)}/{self.length}"

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------
    def contains(self, other: "Prefix | str") -> bool:
        """True when ``other`` is a (non-strict) subnet of this prefix."""
        other = Prefix.coerce(other)
        if other.length < self.length:
            return False
        shift = 32 - self.length
        return (other.network >> shift) == (self.network >> shift)

    def overlaps(self, other: "Prefix | str") -> bool:
        """True when the two prefixes share any address."""
        other = Prefix.coerce(other)
        return self.contains(other) or other.contains(self)

    def subnets(self, *, new_length: int) -> Iterator["Prefix"]:
        """Enumerate subnets of this prefix at the given length."""
        if new_length < self.length or new_length > 32:
            raise RoutingError(
                f"cannot split /{self.length} prefix into /{new_length} subnets"
            )
        count = 1 << (new_length - self.length)
        step = 1 << (32 - new_length)
        for index in range(count):
            yield Prefix(network=self.network + index * step, length=new_length)


@lru_cache(maxsize=65536)
def _parse_cached(text: str) -> Prefix:
    return Prefix.parse(text)


class PrefixTable:
    """A longest-prefix-match table mapping prefixes to arbitrary values.

    Lookups are served from a by-length index (prefix length → masked
    network → prefix) probed from the longest installed length downward, so
    a match costs one dict probe per distinct installed length instead of a
    scan over every entry — the difference between microseconds and
    milliseconds for the FIB-trace hot path.  The result is identical to the
    textbook linear scan: within one length at most one prefix can contain a
    destination, and the first (longest) length probed that hits wins.
    """

    def __init__(self) -> None:
        self._entries: dict[Prefix, object] = {}
        self._by_length: dict[int, dict[int, Prefix]] = {}
        self._lengths_desc: tuple[int, ...] = ()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, prefix: Prefix | str) -> bool:
        return Prefix.coerce(prefix) in self._entries

    def insert(self, prefix: Prefix | str, value: object) -> None:
        """Insert or replace the value stored for ``prefix``."""
        prefix = Prefix.coerce(prefix)
        self._entries[prefix] = value
        bucket = self._by_length.get(prefix.length)
        if bucket is None:
            bucket = self._by_length[prefix.length] = {}
            self._lengths_desc = tuple(sorted(self._by_length, reverse=True))
        bucket[prefix.network >> (32 - prefix.length) if prefix.length else 0] = prefix

    def remove(self, prefix: Prefix | str) -> None:
        """Remove an entry (missing entries are ignored)."""
        prefix = Prefix.coerce(prefix)
        if self._entries.pop(prefix, None) is None:
            return
        bucket = self._by_length.get(prefix.length)
        if bucket is not None:
            bucket.pop(prefix.network >> (32 - prefix.length) if prefix.length else 0, None)
            if not bucket:
                del self._by_length[prefix.length]
                self._lengths_desc = tuple(sorted(self._by_length, reverse=True))

    def exact(self, prefix: Prefix | str) -> object | None:
        """The value stored for exactly this prefix, if any."""
        return self._entries.get(Prefix.coerce(prefix))

    def lookup(self, destination: Prefix | str) -> object | None:
        """Longest-prefix match for a destination prefix (or address)."""
        prefix = self.lookup_prefix(destination)
        return self._entries[prefix] if prefix is not None else None

    def lookup_prefix(self, destination: Prefix | str) -> Prefix | None:
        """The matching prefix itself rather than its value."""
        destination = Prefix.coerce(destination)
        network = destination.network
        max_length = destination.length
        for length in self._lengths_desc:
            if length > max_length:
                continue
            hit = self._by_length[length].get(network >> (32 - length) if length else 0)
            if hit is not None:
                return hit
        return None

    def prefixes(self) -> list[Prefix]:
        """All prefixes in the table."""
        return list(self._entries)

    def entries_equal(self, other: "PrefixTable") -> bool:
        """Whether both tables hold identical (prefix, value) entries.

        One dict comparison — used to screen out provably-unchanged routers
        before any per-destination longest-prefix-match work.
        """
        return self._entries == other._entries

    def items(self) -> Iterable[tuple[Prefix, object]]:
        return self._entries.items()


def allocate_prefixes(base: str, count: int, *, new_length: int = 24) -> list[Prefix]:
    """Carve ``count`` subnets of ``new_length`` out of a base supernet.

    Used by the synthetic traffic generator to hand each destination region a
    block of customer prefixes.
    """
    base_prefix = Prefix.parse(base)
    subnets = []
    for index, subnet in enumerate(base_prefix.subnets(new_length=new_length)):
        if index >= count:
            break
        subnets.append(subnet)
    if len(subnets) < count:
        raise RoutingError(
            f"cannot allocate {count} /{new_length} prefixes from {base}"
        )
    return subnets
