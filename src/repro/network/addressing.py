"""IP prefixes and longest-prefix-match tables.

A tiny, dependency-free IPv4 prefix layer used by the routing substrate: the
FIB performs longest-prefix match over announced prefixes, and traffic
descriptors (flow equivalence classes) carry destination prefixes that must
be matched against route announcements and the Rela prefix predicates.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from collections.abc import Iterable, Iterator

from repro.errors import RoutingError


@dataclass(frozen=True, slots=True, order=True)
class Prefix:
    """An IPv4 prefix in CIDR form."""

    network: int
    length: int

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"10.0.0.0/24"`` into a Prefix."""
        try:
            net = ipaddress.IPv4Network(text, strict=False)
        except ValueError as exc:
            raise RoutingError(f"invalid IPv4 prefix {text!r}: {exc}") from exc
        return cls(network=int(net.network_address), length=net.prefixlen)

    @classmethod
    def coerce(cls, value: "Prefix | str") -> "Prefix":
        """Accept either a Prefix or a CIDR string."""
        if isinstance(value, Prefix):
            return value
        return cls.parse(value)

    def __str__(self) -> str:
        return f"{ipaddress.IPv4Address(self.network)}/{self.length}"

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------
    def contains(self, other: "Prefix | str") -> bool:
        """True when ``other`` is a (non-strict) subnet of this prefix."""
        other = Prefix.coerce(other)
        if other.length < self.length:
            return False
        shift = 32 - self.length
        return (other.network >> shift) == (self.network >> shift)

    def overlaps(self, other: "Prefix | str") -> bool:
        """True when the two prefixes share any address."""
        other = Prefix.coerce(other)
        return self.contains(other) or other.contains(self)

    def subnets(self, *, new_length: int) -> Iterator["Prefix"]:
        """Enumerate subnets of this prefix at the given length."""
        if new_length < self.length or new_length > 32:
            raise RoutingError(
                f"cannot split /{self.length} prefix into /{new_length} subnets"
            )
        count = 1 << (new_length - self.length)
        step = 1 << (32 - new_length)
        for index in range(count):
            yield Prefix(network=self.network + index * step, length=new_length)


class PrefixTable:
    """A longest-prefix-match table mapping prefixes to arbitrary values."""

    def __init__(self) -> None:
        self._entries: dict[Prefix, object] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, prefix: Prefix | str) -> bool:
        return Prefix.coerce(prefix) in self._entries

    def insert(self, prefix: Prefix | str, value: object) -> None:
        """Insert or replace the value stored for ``prefix``."""
        self._entries[Prefix.coerce(prefix)] = value

    def remove(self, prefix: Prefix | str) -> None:
        """Remove an entry (missing entries are ignored)."""
        self._entries.pop(Prefix.coerce(prefix), None)

    def exact(self, prefix: Prefix | str) -> object | None:
        """The value stored for exactly this prefix, if any."""
        return self._entries.get(Prefix.coerce(prefix))

    def lookup(self, destination: Prefix | str) -> object | None:
        """Longest-prefix match for a destination prefix (or address)."""
        destination = Prefix.coerce(destination)
        best: Prefix | None = None
        for prefix in self._entries:
            if prefix.contains(destination) and (best is None or prefix.length > best.length):
                best = prefix
        return self._entries[best] if best is not None else None

    def lookup_prefix(self, destination: Prefix | str) -> Prefix | None:
        """The matching prefix itself rather than its value."""
        destination = Prefix.coerce(destination)
        best: Prefix | None = None
        for prefix in self._entries:
            if prefix.contains(destination) and (best is None or prefix.length > best.length):
                best = prefix
        return best

    def prefixes(self) -> list[Prefix]:
        """All prefixes in the table."""
        return list(self._entries)

    def items(self) -> Iterable[tuple[Prefix, object]]:
        return self._entries.items()


def allocate_prefixes(base: str, count: int, *, new_length: int = 24) -> list[Prefix]:
    """Carve ``count`` subnets of ``new_length`` out of a base supernet.

    Used by the synthetic traffic generator to hand each destination region a
    block of customer prefixes.
    """
    base_prefix = Prefix.parse(base)
    subnets = []
    for index, subnet in enumerate(base_prefix.subnets(new_length=new_length)):
        if index >= count:
            break
        subnets.append(subnet)
    if len(subnets) < count:
        raise RoutingError(
            f"cannot allocate {count} /{new_length} prefixes from {base}"
        )
    return subnets
