"""Routing policies: prefix filters, allow-lists and local-preference setting.

The change iterations in Section 2.1 of the paper all revolve around routing
policy: an allow-list on the A2 routers, local-preference overrides in region
B, a typo in an import policy at B2.  This module models the minimal policy
vocabulary needed to reproduce those behaviours:

* a policy is an ordered list of :class:`PolicyRule` records;
* each rule matches a set of prefixes (or everything) and either denies the
  route or permits it while optionally adjusting its local preference.

Policies are attached per neighbor, per direction (import/export) in the
router configurations consumed by the BGP substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from collections.abc import Iterable, Sequence

from repro.network.addressing import Prefix


class PolicyAction(str, Enum):
    """What a matching rule does with a route."""

    PERMIT = "permit"
    DENY = "deny"


@dataclass(frozen=True, slots=True)
class PolicyRule:
    """One match/action rule.

    ``prefixes`` is the match condition: the rule applies to routes whose
    prefix is contained in any of the listed prefixes; an empty tuple matches
    every route.  On ``PERMIT``, ``set_local_pref`` (when given) overrides the
    route's local preference.
    """

    action: PolicyAction = PolicyAction.PERMIT
    prefixes: tuple[Prefix, ...] = ()
    set_local_pref: int | None = None

    def matches(self, prefix: Prefix) -> bool:
        """Whether this rule applies to a route for ``prefix``."""
        if not self.prefixes:
            return True
        return any(entry.contains(prefix) for entry in self.prefixes)


@dataclass(slots=True)
class RoutePolicy:
    """An ordered rule list with an implicit default action.

    The first matching rule wins.  When no rule matches, ``default_action``
    applies (real-world BGP route maps usually end with an implicit deny for
    imports from other ASes, but an implicit permit keeps the synthetic
    configurations short, so the default is configurable).
    """

    name: str = "policy"
    rules: list[PolicyRule] = field(default_factory=list)
    default_action: PolicyAction = PolicyAction.PERMIT

    def evaluate(self, prefix: Prefix) -> tuple[PolicyAction, int | None]:
        """Return the action and optional local-pref override for ``prefix``."""
        for rule in self.rules:
            if rule.matches(prefix):
                return rule.action, rule.set_local_pref
        return self.default_action, None

    def permits(self, prefix: Prefix) -> bool:
        """Whether a route for ``prefix`` survives this policy."""
        action, _ = self.evaluate(prefix)
        return action is PolicyAction.PERMIT


# ----------------------------------------------------------------------
# Convenience constructors used by configurations and workloads
# ----------------------------------------------------------------------
def permit_all(name: str = "permit-all") -> RoutePolicy:
    """A policy that accepts every route unchanged."""
    return RoutePolicy(name=name)


def deny_all(name: str = "deny-all") -> RoutePolicy:
    """A policy that rejects every route."""
    return RoutePolicy(name=name, default_action=PolicyAction.DENY)


def allow_list(prefixes: Iterable[Prefix | str], *, name: str = "allow-list") -> RoutePolicy:
    """Permit only the listed prefixes (the A2 allow-list of Figure 1b)."""
    parsed = tuple(Prefix.coerce(prefix) for prefix in prefixes)
    return RoutePolicy(
        name=name,
        rules=[PolicyRule(action=PolicyAction.PERMIT, prefixes=parsed)],
        default_action=PolicyAction.DENY,
    )


def set_local_pref(
    prefixes: Iterable[Prefix | str],
    local_pref: int,
    *,
    name: str = "set-local-pref",
    otherwise: Sequence[PolicyRule] = (),
) -> RoutePolicy:
    """Permit everything, overriding local preference for the given prefixes."""
    parsed = tuple(Prefix.coerce(prefix) for prefix in prefixes)
    rules = [PolicyRule(action=PolicyAction.PERMIT, prefixes=parsed, set_local_pref=local_pref)]
    rules.extend(otherwise)
    return RoutePolicy(name=name, rules=rules)


def deny_prefixes(prefixes: Iterable[Prefix | str], *, name: str = "deny-prefixes") -> RoutePolicy:
    """Deny the listed prefixes and permit everything else (a prefix filter)."""
    parsed = tuple(Prefix.coerce(prefix) for prefix in prefixes)
    return RoutePolicy(
        name=name,
        rules=[PolicyRule(action=PolicyAction.DENY, prefixes=parsed)],
    )
