"""IGP shortest paths over the topology's link costs.

The BGP-style route selection in :mod:`repro.network.bgp` breaks ties using
the IGP cost toward the route's egress (hot-potato routing), and the Figure 1
case study's third iteration hinges on mis-set link costs making the
``A3-B3-D1`` detour cheaper than the direct ``A3-D1`` link.  This module
provides the cost computations: single-source Dijkstra over routers and
equal-cost next-hop extraction for ECMP forwarding.
"""

from __future__ import annotations

import heapq

from repro.errors import RoutingError
from repro.network.topology import Topology


def shortest_path_costs(topology: Topology, source: str) -> dict[str, int]:
    """Dijkstra from ``source``: minimal IGP cost to every reachable router."""
    if not topology.has_router(source):
        raise RoutingError(f"unknown router {source!r}")
    costs: dict[str, int] = {source: 0}
    heap: list[tuple[int, str]] = [(0, source)]
    visited: set[str] = set()
    while heap:
        cost, router = heapq.heappop(heap)
        if router in visited:
            continue
        visited.add(router)
        for neighbor in topology.neighbors(router):
            edge_cost = topology.link_cost(router, neighbor)
            candidate = cost + edge_cost
            if candidate < costs.get(neighbor, float("inf")):
                costs[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))
    return costs


def igp_cost(topology: Topology, source: str, target: str) -> int | None:
    """Minimal IGP cost between two routers, ``None`` when disconnected."""
    costs = shortest_path_costs(topology, source)
    return costs.get(target)


def equal_cost_next_hops(topology: Topology, source: str, target: str) -> set[str]:
    """Neighbors of ``source`` on some shortest IGP path toward ``target``.

    This is the ECMP next-hop set used for intra-AS forwarding toward a BGP
    next hop: a neighbor ``n`` qualifies when ``cost(source, n) + cost(n,
    target)`` equals ``cost(source, target)``.
    """
    if source == target:
        return set()
    source_costs = shortest_path_costs(topology, source)
    if target not in source_costs:
        return set()
    total = source_costs[target]
    target_costs = shortest_path_costs(topology, target)
    next_hops: set[str] = set()
    for neighbor in topology.neighbors(source):
        edge = topology.link_cost(source, neighbor)
        remaining = target_costs.get(neighbor)
        if remaining is not None and edge + remaining == total:
            next_hops.add(neighbor)
    return next_hops


def all_pairs_costs(topology: Topology) -> dict[str, dict[str, int]]:
    """Shortest-path costs between every router pair (used by simulations)."""
    return {router.name: shortest_path_costs(topology, router.name) for router in topology}


class IgpCostCache:
    """Memoized single-source IGP costs over one (immutable) topology.

    :func:`equal_cost_next_hops` runs two fresh Dijkstras per call, which is
    fine for a one-off query but quadratically wasteful inside
    :func:`~repro.network.fib.build_fibs` (one call per router × prefix ×
    selected route) and prohibitive for contingency sweeps that rebuild FIBs
    once per failed link.  The cache runs at most one Dijkstra per distinct
    source ever queried and answers next-hop queries from the cached maps.
    The topology must not gain links while a cache is alive.
    """

    __slots__ = ("topology", "_costs")

    def __init__(self, topology: Topology):
        self.topology = topology
        self._costs: dict[str, dict[str, int]] = {}

    def costs_from(self, source: str) -> dict[str, int]:
        """Memoized :func:`shortest_path_costs` from ``source``."""
        costs = self._costs.get(source)
        if costs is None:
            costs = shortest_path_costs(self.topology, source)
            self._costs[source] = costs
        return costs

    def cost(self, source: str, target: str) -> int | None:
        """Minimal IGP cost between two routers, ``None`` when disconnected."""
        return self.costs_from(source).get(target)

    def equal_cost_next_hops(self, source: str, target: str) -> set[str]:
        """As :func:`equal_cost_next_hops`, but from the cached cost maps."""
        if source == target:
            return set()
        total = self.costs_from(source).get(target)
        if total is None:
            return set()
        target_costs = self.costs_from(target)
        next_hops: set[str] = set()
        for neighbor in self.topology.neighbors(source):
            edge = self.topology.link_cost(source, neighbor)
            remaining = target_costs.get(neighbor)
            if remaining is not None and edge + remaining == total:
                next_hops.add(neighbor)
        return next_hops
