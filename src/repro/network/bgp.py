"""A BGP-style path-vector routing substrate.

The paper's workflow starts from a control-plane simulator that computes the
network's forwarding state from router configurations (Section 2.3); Rela
itself only consumes the resulting forwarding paths.  To reproduce the whole
workflow end to end we implement a simplified but recognizable BGP:

* routers originate prefixes;
* routes propagate over eBGP sessions (physically adjacent routers in
  different ASes) and an implicit iBGP full mesh inside each AS;
* import policies can deny routes or set local preference (which is how the
  Figure 1 change iterations go wrong);
* best-route selection follows the classic order: highest local preference,
  then shortest AS path, then lowest IGP cost to the exit, with ties kept as
  an ECMP set.

The output is, per router and prefix, the set of selected routes, which
:mod:`repro.network.fib` turns into forwarding tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Iterable

from repro.errors import RoutingError
from repro.network.addressing import Prefix
from repro.network.igp import shortest_path_costs
from repro.network.policy import PolicyAction, RoutePolicy, permit_all
from repro.network.topology import Topology

DEFAULT_LOCAL_PREF = 100


@dataclass(frozen=True, slots=True)
class Route:
    """One BGP route as held in a router's RIB."""

    prefix: Prefix
    origin: str
    as_path: tuple[int, ...] = ()
    local_pref: int = DEFAULT_LOCAL_PREF
    #: The physically adjacent neighbor this route was learned from over
    #: eBGP, or the iBGP peer holding the exit, or ``None`` when originated
    #: locally.
    learned_from: str | None = None
    #: The router at which traffic exits toward the prefix (the eBGP exit or
    #: the originating router).
    exit_router: str = ""

    def key(self) -> tuple[int, int]:
        """Selection key fragments that are comparable network-wide."""
        return (-self.local_pref, len(self.as_path))


@dataclass(slots=True)
class RouterConfig:
    """Per-router configuration consumed by the routing computation."""

    name: str
    originated: list[Prefix] = field(default_factory=list)
    import_policies: dict[str, RoutePolicy] = field(default_factory=dict)
    export_policies: dict[str, RoutePolicy] = field(default_factory=dict)
    default_local_pref: int = DEFAULT_LOCAL_PREF

    def originate(self, prefix: Prefix | str) -> None:
        """Originate a prefix from this router."""
        self.originated.append(Prefix.coerce(prefix))

    def set_import_policy(self, neighbor: str, policy: RoutePolicy) -> None:
        """Attach an import policy for routes learned from ``neighbor``."""
        self.import_policies[neighbor] = policy

    def set_export_policy(self, neighbor: str, policy: RoutePolicy) -> None:
        """Attach an export policy for routes advertised to ``neighbor``."""
        self.export_policies[neighbor] = policy

    def import_policy(self, neighbor: str) -> RoutePolicy:
        return self.import_policies.get(neighbor, permit_all())

    def export_policy(self, neighbor: str) -> RoutePolicy:
        return self.export_policies.get(neighbor, permit_all())


class NetworkConfig:
    """The collection of all router configurations."""

    def __init__(self, configs: Iterable[RouterConfig] = ()):
        self._configs: dict[str, RouterConfig] = {}
        for config in configs:
            self._configs[config.name] = config

    def router(self, name: str) -> RouterConfig:
        """Get (or lazily create) the configuration of a router."""
        if name not in self._configs:
            self._configs[name] = RouterConfig(name=name)
        return self._configs[name]

    def routers(self) -> list[RouterConfig]:
        return list(self._configs.values())

    def copy(self) -> "NetworkConfig":
        """A deep copy, so change iterations can be derived from a base config."""
        clone = NetworkConfig()
        for name, config in self._configs.items():
            clone._configs[name] = RouterConfig(
                name=name,
                originated=list(config.originated),
                import_policies=dict(config.import_policies),
                export_policies=dict(config.export_policies),
                default_local_pref=config.default_local_pref,
            )
        return clone


#: Selected routes: router name -> prefix -> list of equally-good routes.
SelectedRoutes = dict[str, dict[Prefix, list[Route]]]


#: Shared permissive policy used when a neighbor has no explicit policy.
#: :class:`RoutePolicy` evaluation is read-only, so one instance is safe to
#: share across every router and round.
_PERMIT_ALL = permit_all()


class BGPComputation:
    """Fixed-point computation of BGP route propagation and selection."""

    def __init__(self, topology: Topology, config: NetworkConfig, *, max_rounds: int | None = None):
        self.topology = topology
        self.config = config
        self.max_rounds = max_rounds or (2 * topology.num_routers + 10)
        self._igp_costs: dict[str, dict[str, int]] = {}
        self._asn_cache: dict[str, int] | None = None
        self._session_cache: dict[str, list[tuple[str, bool]]] = {}
        self._config_cache: dict[str, RouterConfig] = {}

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _asn(self, router: str) -> int:
        cache = self._asn_cache
        if cache is None:
            cache = self._asn_cache = {entry.name: entry.asn for entry in self.topology}
        return cache[router]

    def _router_config(self, name: str) -> RouterConfig:
        cached = self._config_cache.get(name)
        if cached is None:
            cached = self._config_cache[name] = self.config.router(name)
        return cached

    def _igp_cost(self, source: str, target: str) -> int:
        if source == target:
            return 0
        if source not in self._igp_costs:
            self._igp_costs[source] = shortest_path_costs(self.topology, source)
        return self._igp_costs[source].get(target, 1 << 30)

    def _sessions(self, router: str) -> list[tuple[str, bool]]:
        """Peers of ``router`` as (peer, is_ebgp) pairs.

        eBGP sessions exist between physically adjacent routers in different
        ASes; iBGP sessions form an implicit full mesh within an AS.  The
        session set depends only on the (immutable) topology, so it is
        memoized per router.
        """
        cached = self._session_cache.get(router)
        if cached is not None:
            return cached
        sessions: list[tuple[str, bool]] = []
        own_asn = self._asn(router)
        for neighbor in sorted(self.topology.neighbors(router)):
            if self._asn(neighbor) != own_asn:
                sessions.append((neighbor, True))
        for other in self.topology.routers_in_asn(own_asn):
            if other.name != router:
                sessions.append((other.name, False))
        self._session_cache[router] = sessions
        return sessions

    # ------------------------------------------------------------------
    # Main computation
    # ------------------------------------------------------------------
    def compute(self) -> SelectedRoutes:
        """Run route propagation to a fixed point and return selected routes.

        The fixed point is driven as a *wavefront*: per round, best-route
        selection is recomputed only for ``(router, prefix)`` pairs whose
        Adj-RIB-in changed in the previous round, and a router re-advertises
        a prefix only when its selection for that prefix actually changed.
        This is an exactness-preserving pruning of the textbook
        all-pairs-every-round sweep: re-advertising an *unchanged* selection
        is idempotent — the same best route exports and imports to the same
        value, which the previous round already wrote into the peer's rib, so
        the write comparison fails and nothing changes.  Skipping that work
        leaves the per-round rib evolution, the convergence round count and
        the final fixed point identical while cutting the steady-state cost
        from ``O(routers × sessions × prefixes)`` per round to the size of
        the actual change wavefront — the property that makes per-contingency
        recomputation affordable in k-failure sweeps.
        """
        # Adj-RIB-in per router: (peer or None) -> prefix -> Route
        ribs: dict[str, dict[str | None, dict[Prefix, Route]]] = {
            router.name: {None: {}} for router in self.topology
        }
        for config in self.config.routers():
            if not self.topology.has_router(config.name):
                raise RoutingError(f"configuration references unknown router {config.name!r}")
            for prefix in config.originated:
                ribs[config.name][None][prefix] = Route(
                    prefix=prefix,
                    origin=config.name,
                    as_path=(),
                    local_pref=config.default_local_pref,
                    learned_from=None,
                    exit_router=config.name,
                )

        sessions = {name: self._sessions(name) for name in ribs}
        selection: SelectedRoutes = {name: {} for name in ribs}
        dirty: set[tuple[str, Prefix]] = {
            (name, prefix)
            for name, per_peer in ribs.items()
            for routes in per_peer.values()
            for prefix in routes
        }
        for _round in range(self.max_rounds):
            frontier = self._reselect(ribs, selection, dirty)
            if not frontier:
                break
            dirty = set()
            changed = False
            for name, prefix, routes in frontier:
                for peer, is_ebgp in sessions[name]:
                    advertised = self._pick_advertised(name, routes, is_ebgp)
                    if advertised is None:
                        continue
                    exported = self._apply_export(name, peer, advertised)
                    if exported is None:
                        continue
                    imported = self._apply_import(name, peer, exported, is_ebgp)
                    if imported is None:
                        continue
                    peer_rib = ribs[peer].setdefault(name, {})
                    if peer_rib.get(prefix) != imported:
                        peer_rib[prefix] = imported
                        dirty.add((peer, prefix))
                        changed = True
            if not changed:
                break
        # Fold any dirt left by a max_rounds exhaustion so the returned
        # selection always reflects the final ribs.
        self._reselect(ribs, selection, dirty)
        return selection

    def _reselect(
        self,
        ribs: dict[str, dict[str | None, dict[Prefix, Route]]],
        selection: SelectedRoutes,
        dirty: set[tuple[str, Prefix]],
    ) -> list[tuple[str, Prefix, list[Route]]]:
        """Recompute selection for ``dirty`` pairs; return the ones that changed."""
        frontier: list[tuple[str, Prefix, list[Route]]] = []
        for name, prefix in sorted(dirty, key=lambda pair: (pair[0], str(pair[1]))):
            candidates: list[Route] = []
            for routes in ribs[name].values():
                route = routes.get(prefix)
                if route is not None:
                    candidates.append(route)
            best = self._select(name, candidates)
            if selection[name].get(prefix) != best:
                selection[name][prefix] = best
                frontier.append((name, prefix, best))
        return frontier

    def _pick_advertised(self, router: str, routes: list[Route], is_ebgp: bool) -> Route | None:
        """The single best route ``router`` advertises to a peer.

        Routes learned over iBGP are not re-advertised to iBGP peers, which is
        the standard loop-avoidance rule for a full mesh.
        """
        own_asn = self._asn(router)
        for route in routes:
            if is_ebgp:
                return route
            learned_over_ibgp = (
                route.learned_from is not None and self._asn(route.learned_from) == own_asn
            )
            if not learned_over_ibgp:
                return route
        return None

    def _apply_export(self, router: str, peer: str, route: Route) -> Route | None:
        policy = self._router_config(router).export_policies.get(peer, _PERMIT_ALL)
        action, local_pref = policy.evaluate(route.prefix)
        if action is PolicyAction.DENY:
            return None
        if local_pref is not None:
            route = replace(route, local_pref=local_pref)
        return route

    def _apply_import(self, router: str, peer: str, route: Route, is_ebgp: bool) -> Route | None:
        peer_asn = self._asn(peer)
        sender_asn = self._asn(router)
        as_path = route.as_path
        if is_ebgp:
            # The sender prepends its own ASN; the receiver rejects routes
            # whose AS path already contains its ASN (loop prevention).
            as_path = (sender_asn,) + as_path
            if peer_asn in as_path:
                return None
            exit_router = peer
            local_pref = self._router_config(peer).default_local_pref
        else:
            exit_router = route.exit_router
            local_pref = route.local_pref
        policy = self._router_config(peer).import_policies.get(router, _PERMIT_ALL)
        action, override = policy.evaluate(route.prefix)
        if action is PolicyAction.DENY:
            return None
        if override is not None:
            local_pref = override
        return Route(
            prefix=route.prefix,
            origin=route.origin,
            as_path=as_path,
            local_pref=local_pref,
            learned_from=router,
            exit_router=exit_router,
        )

    def _select_all(
        self, ribs: dict[str, dict[str | None, dict[Prefix, Route]]]
    ) -> SelectedRoutes:
        selected: SelectedRoutes = {}
        for router, per_peer in ribs.items():
            by_prefix: dict[Prefix, list[Route]] = {}
            for routes in per_peer.values():
                for prefix, route in routes.items():
                    by_prefix.setdefault(prefix, []).append(route)
            selected[router] = {
                prefix: self._select(router, routes) for prefix, routes in by_prefix.items()
            }
        return selected

    def _select(self, router: str, routes: list[Route]) -> list[Route]:
        """Best-route selection with ECMP ties."""

        def full_key(route: Route) -> tuple[int, int, int]:
            local_pref, as_len = route.key()
            return (local_pref, as_len, self._igp_cost(router, route.exit_router))

        best_key = min(full_key(route) for route in routes)
        chosen = [route for route in routes if full_key(route) == best_key]
        chosen.sort(key=lambda route: (route.exit_router, route.learned_from or ""))
        return chosen
