"""Network topology model: routers, router groups, regions, ASes and links.

The topology is the static substrate beneath everything else: the routing
simulator computes paths over it, the location database used by Rela ``where``
queries is derived from it, and the synthetic backbone generator
(:mod:`repro.workloads.backbone`) produces instances of it.

The model mirrors the structure described in Section 2.1 of the paper: the
network is divided into BGP autonomous systems; each AS spans geographic
regions; each region contains *router groups* (circles in Figure 1) of
functionally equivalent routers; routers are connected by (possibly many
parallel) physical links, each with an IGP cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator

from repro.errors import TopologyError
from repro.rela.locations import Location, LocationDB


@dataclass(frozen=True, slots=True)
class Router:
    """A router (device)."""

    name: str
    group: str
    region: str = ""
    asn: int = 0
    tier: str = ""

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Link:
    """One physical link member between two routers.

    Parallel links between the same router pair are modelled as multiple
    :class:`Link` records with distinct ``member`` indices; this is what
    makes interface-level analysis much heavier than router-level analysis
    (paper Section 6.1 and Figure 7).
    """

    a: str
    b: str
    member: int = 0
    cost: int = 1

    def interface_a(self) -> str:
        """Name of the interface on router ``a``."""
        return f"{self.a}|{self.b}|{self.member}"

    def interface_b(self) -> str:
        """Name of the interface on router ``b``."""
        return f"{self.b}|{self.a}|{self.member}"

    def endpoints(self) -> tuple[str, str]:
        return (self.a, self.b)

    def __str__(self) -> str:
        return f"{self.a}<->{self.b}#{self.member}"


class Topology:
    """A network topology: routers plus (parallel) links."""

    def __init__(self, name: str = "network"):
        self.name = name
        self._routers: dict[str, Router] = {}
        self._links: list[Link] = []
        self._adjacency: dict[str, set[str]] = {}
        # Bundle index: unordered router pair -> its parallel link members.
        # Maintained incrementally (links are only ever added), it makes
        # ``links_between``/``link_cost`` O(#members) instead of O(#links),
        # which is what every Dijkstra edge relaxation pays.
        self._bundles: dict[frozenset[str], list[Link]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_router(
        self,
        name: str,
        *,
        group: str,
        region: str = "",
        asn: int = 0,
        tier: str = "",
    ) -> Router:
        """Add a router; the group/region/ASN become queryable attributes."""
        if name in self._routers:
            raise TopologyError(f"duplicate router {name!r}")
        router = Router(name=name, group=group, region=region, asn=asn, tier=tier)
        self._routers[name] = router
        self._adjacency[name] = set()
        return router

    def add_link(self, a: str, b: str, *, members: int = 1, cost: int = 1) -> list[Link]:
        """Add ``members`` parallel links between two existing routers."""
        if a not in self._routers or b not in self._routers:
            raise TopologyError(f"link endpoints must be existing routers: {a!r}, {b!r}")
        if a == b:
            raise TopologyError(f"self-links are not allowed: {a!r}")
        if members < 1:
            raise TopologyError("a link bundle needs at least one member")
        created = [Link(a=a, b=b, member=index, cost=cost) for index in range(members)]
        self._links.extend(created)
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)
        self._bundles.setdefault(frozenset((a, b)), []).extend(created)
        return created

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_routers(self) -> int:
        return len(self._routers)

    @property
    def num_links(self) -> int:
        return len(self._links)

    def routers(self) -> list[Router]:
        """All routers."""
        return list(self._routers.values())

    def router(self, name: str) -> Router:
        """Look up a router by name."""
        try:
            return self._routers[name]
        except KeyError:
            raise TopologyError(f"unknown router {name!r}") from None

    def has_router(self, name: str) -> bool:
        return name in self._routers

    def links(self) -> list[Link]:
        """All link members."""
        return list(self._links)

    def neighbors(self, name: str) -> set[str]:
        """Routers adjacent to ``name``."""
        if name not in self._adjacency:
            raise TopologyError(f"unknown router {name!r}")
        return set(self._adjacency[name])

    def links_between(self, a: str, b: str) -> list[Link]:
        """All parallel link members between two routers (either direction)."""
        return list(self._bundles.get(frozenset((a, b)), ()))

    def link_bundles(self) -> list[tuple[str, str]]:
        """All connected router pairs, as sorted ``(a, b)`` tuples.

        One entry per *bundle* (parallel members collapse): this is the unit
        failure models enumerate, since failing a single member of a bundle
        leaves router-level forwarding unchanged (IGP costs take the minimum
        over surviving members of the same cost).
        """
        return sorted(tuple(sorted(pair)) for pair in self._bundles)

    def link_cost(self, a: str, b: str) -> int:
        """The minimum IGP cost among parallel members between two routers."""
        members = self.links_between(a, b)
        if not members:
            raise TopologyError(f"no link between {a!r} and {b!r}")
        return min(link.cost for link in members)

    def routers_in_group(self, group: str) -> list[Router]:
        """All routers belonging to a router group."""
        return [router for router in self._routers.values() if router.group == group]

    def routers_in_region(self, region: str) -> list[Router]:
        """All routers belonging to a geographic region."""
        return [router for router in self._routers.values() if router.region == region]

    def routers_in_asn(self, asn: int) -> list[Router]:
        """All routers belonging to a BGP autonomous system."""
        return [router for router in self._routers.values() if router.asn == asn]

    def groups(self) -> set[str]:
        """All router group names."""
        return {router.group for router in self._routers.values()}

    def __iter__(self) -> Iterator[Router]:
        return iter(self._routers.values())

    # ------------------------------------------------------------------
    # Derived artifacts
    # ------------------------------------------------------------------
    def to_location_db(self) -> LocationDB:
        """Build the Rela location database for this topology.

        One record per link interface is created (plus a loopback per router
        so routers without links remain queryable); record attributes carry
        the router/group/region/ASN/tier metadata used by ``where`` queries.
        """
        db = LocationDB()
        seen_interfaces: set[str] = set()
        for link in self._links:
            for interface, owner in ((link.interface_a(), link.a), (link.interface_b(), link.b)):
                if interface in seen_interfaces:
                    continue
                seen_interfaces.add(interface)
                router = self._routers[owner]
                db.add(
                    Location(
                        interface=interface,
                        router=router.name,
                        group=router.group,
                        region=router.region,
                        asn=router.asn,
                        tier=router.tier,
                    )
                )
        for router in self._routers.values():
            loopback = f"{router.name}:lo0"
            if loopback not in seen_interfaces:
                db.add(
                    Location(
                        interface=loopback,
                        router=router.name,
                        group=router.group,
                        region=router.region,
                        asn=router.asn,
                        tier=router.tier,
                    )
                )
        return db

    def validate(self) -> None:
        """Check structural invariants (dangling links, empty groups)."""
        for link in self._links:
            if link.a not in self._routers or link.b not in self._routers:
                raise TopologyError(f"link {link} references unknown routers")
        for router in self._routers.values():
            if not router.group:
                raise TopologyError(f"router {router.name!r} has no group")

    def subset(self, router_names: Iterable[str], *, name: str | None = None) -> "Topology":
        """The sub-topology induced by the given routers."""
        keep = set(router_names)
        missing = keep - set(self._routers)
        if missing:
            raise TopologyError(f"unknown routers in subset: {sorted(missing)}")
        sub = Topology(name=name or f"{self.name}-subset")
        for router_name in keep:
            router = self._routers[router_name]
            sub.add_router(
                router.name,
                group=router.group,
                region=router.region,
                asn=router.asn,
                tier=router.tier,
            )
        bundles: dict[tuple[str, str, int], int] = {}
        for link in self._links:
            if link.a in keep and link.b in keep:
                bundles[(link.a, link.b, link.cost)] = (
                    bundles.get((link.a, link.b, link.cost), 0) + 1
                )
        for (a, b, cost), members in bundles.items():
            sub.add_link(a, b, members=members, cost=cost)
        return sub

    def without_links(
        self, failed: Iterable[tuple[str, str]], *, name: str | None = None
    ) -> "Topology":
        """The topology with the given link bundles failed (removed).

        ``failed`` names unordered router pairs; *every* parallel member of a
        named pair is removed, modelling the failure (or planned drain) of
        the whole physical bundle.  Routers are never removed — an isolated
        router simply has no adjacency, and the routing layers turn that
        into dropped traffic.  Naming a pair with no links is an error: a
        contingency that fails a non-existent link is a typo, not a no-op.
        """
        gone = {frozenset(pair) for pair in failed}
        for pair in gone:
            if len(pair) != 2 or pair not in self._bundles:
                a, b = sorted(pair) if len(pair) == 2 else (next(iter(pair)),) * 2
                raise TopologyError(f"no link between {a!r} and {b!r} to fail")
        derived = Topology(name=name or f"{self.name}-failed")
        for router in self._routers.values():
            derived.add_router(
                router.name,
                group=router.group,
                region=router.region,
                asn=router.asn,
                tier=router.tier,
            )
        for pair, members in self._bundles.items():
            if pair in gone:
                continue
            for link in members:
                derived._links.append(link)
                derived._adjacency[link.a].add(link.b)
                derived._adjacency[link.b].add(link.a)
                derived._bundles.setdefault(pair, []).append(link)
        return derived
