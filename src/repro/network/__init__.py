"""Network substrate: topology, addressing, policy, routing and simulation."""

from repro.network.addressing import Prefix, PrefixTable, allocate_prefixes
from repro.network.bgp import (
    DEFAULT_LOCAL_PREF,
    BGPComputation,
    NetworkConfig,
    Route,
    RouterConfig,
)
from repro.network.fib import Fib, FibEntry, build_fibs
from repro.network.igp import all_pairs_costs, equal_cost_next_hops, igp_cost, shortest_path_costs
from repro.network.policy import (
    PolicyAction,
    PolicyRule,
    RoutePolicy,
    allow_list,
    deny_all,
    deny_prefixes,
    permit_all,
    set_local_pref,
)
from repro.network.simulator import Simulator, TraceOptions, trace_forwarding
from repro.network.topology import Link, Router, Topology

__all__ = [
    "Prefix",
    "PrefixTable",
    "allocate_prefixes",
    "Topology",
    "Router",
    "Link",
    "PolicyAction",
    "PolicyRule",
    "RoutePolicy",
    "permit_all",
    "deny_all",
    "allow_list",
    "set_local_pref",
    "deny_prefixes",
    "Route",
    "RouterConfig",
    "NetworkConfig",
    "BGPComputation",
    "DEFAULT_LOCAL_PREF",
    "Fib",
    "FibEntry",
    "build_fibs",
    "shortest_path_costs",
    "igp_cost",
    "equal_cost_next_hops",
    "all_pairs_costs",
    "Simulator",
    "TraceOptions",
    "trace_forwarding",
]
