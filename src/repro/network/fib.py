"""Forwarding information bases (FIBs).

A FIB maps, per router, destination prefixes to the set of ECMP next-hop
routers (or marks the router as the egress for that prefix).  FIBs are either
derived from the BGP route selection (:func:`build_fibs`) or constructed
directly — the Figure 1 case-study workload handcrafts per-iteration FIBs so
that each buggy behaviour from the paper is reproduced exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator

from repro.errors import RoutingError
from repro.network.addressing import Prefix, PrefixTable
from repro.network.bgp import SelectedRoutes
from repro.network.igp import IgpCostCache
from repro.network.topology import Topology


@dataclass(frozen=True, slots=True)
class FibEntry:
    """The forwarding decision of one router for one prefix."""

    prefix: Prefix
    #: ECMP next-hop routers; empty for egress or drop entries.
    next_hops: frozenset[str] = frozenset()
    #: True when the router is the traffic's exit (it originates the prefix).
    egress: bool = False

    def is_drop(self) -> bool:
        """True when traffic matching this entry is discarded."""
        return not self.next_hops and not self.egress


class Fib:
    """The forwarding state of the entire network (per-router prefix tables)."""

    def __init__(self) -> None:
        self._tables: dict[str, PrefixTable] = {}

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def set_entry(
        self,
        router: str,
        prefix: Prefix | str,
        next_hops: Iterable[str] = (),
        *,
        egress: bool = False,
    ) -> FibEntry:
        """Install (or replace) the entry of ``router`` for ``prefix``."""
        prefix = Prefix.coerce(prefix)
        entry = FibEntry(prefix=prefix, next_hops=frozenset(next_hops), egress=egress)
        self._tables.setdefault(router, PrefixTable()).insert(prefix, entry)
        return entry

    def remove_entry(self, router: str, prefix: Prefix | str) -> None:
        """Remove the entry of ``router`` for ``prefix`` (ignored if absent)."""
        table = self._tables.get(router)
        if table is not None:
            table.remove(prefix)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def routers(self) -> list[str]:
        """Routers that have at least one entry."""
        return list(self._tables)

    def table(self, router: str) -> PrefixTable:
        """The prefix table of one router (empty table if none)."""
        return self._tables.get(router, PrefixTable())

    def table_equals(self, router: str, other: "Fib") -> bool:
        """Whether ``router``'s entire table is identical in both FIBs.

        A router with an identical table cannot differ from ``other`` on any
        destination, so contingency delta indexing screens routers with this
        one-dict comparison before doing per-destination lookups.
        """
        mine = self._tables.get(router)
        theirs = other._tables.get(router)
        if mine is None or theirs is None:
            return (mine is None or len(mine) == 0) and (theirs is None or len(theirs) == 0)
        return mine.entries_equal(theirs)

    def lookup(self, router: str, destination: Prefix | str) -> FibEntry | None:
        """Longest-prefix-match lookup of ``destination`` at ``router``."""
        table = self._tables.get(router)
        if table is None:
            return None
        entry = table.lookup(destination)
        return entry if isinstance(entry, FibEntry) else None

    def entries(self, router: str) -> Iterator[FibEntry]:
        """All entries installed on one router."""
        for _prefix, entry in self.table(router).items():
            if isinstance(entry, FibEntry):
                yield entry

    def num_routes(self) -> int:
        """Total number of installed entries across all routers."""
        return sum(len(table) for table in self._tables.values())

    def copy(self) -> "Fib":
        """A copy that can be mutated to model a change."""
        clone = Fib()
        for router, table in self._tables.items():
            for prefix, entry in table.items():
                clone._tables.setdefault(router, PrefixTable()).insert(prefix, entry)
        return clone


def build_fibs(
    topology: Topology, selected: SelectedRoutes, *, drop_unreachable: bool = False
) -> Fib:
    """Derive FIBs from BGP route selection.

    For each router and prefix with selected routes:

    * locally originated routes make the router an egress;
    * routes whose exit router is the router itself (it imported them over
      eBGP) forward to the adjacent external neighbor;
    * routes exiting elsewhere in the AS forward along all equal-cost IGP
      next hops toward the exit router (hot-potato ECMP).

    A route whose exit is IGP-unreachable is an error on a healthy network
    (``drop_unreachable=False``, the default: selection should never pick
    it).  Under a failure contingency it is real life — the exit got cut
    off — so ``drop_unreachable=True`` skips such routes, and a router left
    with no viable route at all installs a *drop* entry, blackholing the
    traffic the way a real FIB with no matching route does.
    """
    fib = Fib()
    # IGP next-hop resolution happens inside the router's own AS: traffic
    # headed to an exit elsewhere in the AS must not detour through another
    # AS to get there.  One memoized cost cache per AS keeps this at one
    # Dijkstra per (AS, router) instead of two per selected route.
    intra_as: dict[int, IgpCostCache] = {}

    def as_costs(asn: int) -> IgpCostCache:
        if asn not in intra_as:
            members = [router.name for router in topology.routers_in_asn(asn)]
            intra_as[asn] = IgpCostCache(topology.subset(members, name=f"as-{asn}"))
        return intra_as[asn]

    for router, by_prefix in selected.items():
        asn = topology.router(router).asn
        for prefix, routes in by_prefix.items():
            next_hops: set[str] = set()
            egress = False
            for route in routes:
                if route.learned_from is None and route.exit_router == router:
                    egress = True
                elif route.exit_router == router and route.learned_from is not None:
                    next_hops.add(route.learned_from)
                else:
                    hops = as_costs(asn).equal_cost_next_hops(router, route.exit_router)
                    if not hops:
                        if drop_unreachable:
                            continue
                        raise RoutingError(
                            f"router {router!r} has no IGP path toward exit "
                            f"{route.exit_router!r} for {prefix}"
                        )
                    next_hops |= hops
            fib.set_entry(router, prefix, next_hops, egress=egress)
    return fib
