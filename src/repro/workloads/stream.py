"""Rolling-maintenance change streams: the workload of verification sessions.

The paper's operators do not validate isolated changes — they validate
*sequences*: a maintenance window rolls drains and restores across regions
night after night, a prefix migration lands in waves, a flaky link flaps a
router in and out of service.  Between consecutive epochs the network barely
moves, and across epochs whole states *recur* (every restore returns to the
pre-drain state), which is exactly the regime
:class:`~repro.verifier.session.VerificationSession` exploits.

This module generates those streams synthetically, in the style of the
60-scenario change dataset (:mod:`repro.workloads.changes`): every stream is
a pure function of its seed, every epoch carries its own spec and an
asserted ``expect_holds``, and buggy variants (a drain that leaves traffic
behind, a migration wave that keeps forwarding) are available for tests and
baselines.  Three families are provided:

* :func:`rolling_drain_stream` — drain/restore cycles over a rotation of
  regions: all traffic through a region's border routers detours onto a
  partner region's borders, then returns.  Restores land back on previously
  seen states, so a session re-verifies nothing from the second cycle on.
* :func:`prefix_migration_stream` — a region's customer prefixes are
  decommissioned in waves under prefix-guarded policies (the Section 7
  example, stretched over time).
* :func:`flapping_link_stream` — one border router flaps: traffic moves to
  its group peer and back, epoch after epoch — the pathological best case
  for cross-epoch caching and the realistic worst case for cold re-runs.

``benchmarks/bench_stream_throughput.py`` drives the rolling-drain family
through a session and through cold per-epoch ``verify_change`` calls and
gates the incremental speedup in CI.
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.rela import (
    DstPrefixWithin,
    PSpec,
    RelaSpec,
    SpecPolicy,
    any_hops,
    any_of,
    atomic,
    drop,
    locs,
    nochange,
    seq,
)
from repro.rela.locations import Granularity
from repro.snapshots.forwarding_graph import ForwardingGraph
from repro.snapshots.forwarding_graph import drop_graph as make_drop_graph
from repro.snapshots.snapshot import Snapshot
from repro.workloads.backbone import Backbone, BackboneParams, generate_backbone
from repro.workloads.changes import _mention_refs, _rename_nodes
from repro.workloads.scale import generate_scale_snapshot


@dataclass(slots=True)
class StreamEpoch:
    """One epoch of a change stream: a (pre, post, spec) triple plus intent."""

    epoch_id: str
    #: Epoch archetype: ``drain`` / ``restore`` / ``migration-wave`` /
    #: ``flap-down`` / ``flap-up``.
    kind: str
    description: str
    #: Network state before this epoch's change (the previous epoch's
    #: ``post``, or the stream's initial snapshot for the first epoch).
    pre: Snapshot
    #: Network state after this epoch's change.
    post: Snapshot
    #: Specification governing this epoch.  Recurring epochs (the second
    #: drain of the same region, every flap) carry the *same spec instance*,
    #: so sessions share compiled forms and cached verdicts across them.
    spec: RelaSpec | SpecPolicy
    #: Whether the epoch's implementation complies with its spec.
    expect_holds: bool = True


@dataclass(slots=True)
class ChangeStream:
    """A seeded sequence of epochs over one network, session-ready.

    ``epochs[i].pre is epochs[i-1].post`` for every ``i`` (and
    ``epochs[0].pre is initial``): the stream is a connected walk through
    snapshot states sharing one copy-on-write graph store, so both a
    verification session and independent per-epoch ``verify_change`` calls
    consume it directly.
    """

    stream_id: str
    initial: Snapshot
    epochs: list[StreamEpoch] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.epochs)

    def __iter__(self) -> Iterator[StreamEpoch]:
        return iter(self.epochs)

    @property
    def expect_holds(self) -> bool:
        """Whether every epoch is expected to comply."""
        return all(epoch.expect_holds for epoch in self.epochs)


@dataclass(slots=True)
class StreamProfile:
    """Knobs of the benchmark stream (backbone shape + stream shape)."""

    #: Total flow equivalence classes in the initial snapshot.
    num_fecs: int = 5000
    #: Geographic regions of the underlying backbone.
    regions: int = 10
    #: Routers per group (agg/core/border) in each region.
    routers_per_group: int = 2
    #: Parallel link members between connected routers.
    parallel_links: int = 2
    #: Customer prefixes originated per region.
    prefixes_per_region: int = 2
    #: Epochs in the stream (a drain and a restore are one epoch each).
    epochs: int = 20
    #: Number of regions the rolling drain rotates through before the cycle
    #: repeats (each rotated region contributes a drain + restore pair).
    rotation: int = 2
    #: Seed for backbone generation and rotation order.
    seed: int = 47

    def __post_init__(self) -> None:
        if self.num_fecs < 1:
            raise WorkloadError("the stream profile needs at least one traffic class")
        if self.epochs < 1:
            raise WorkloadError("a change stream needs at least one epoch")
        if not 1 <= self.rotation <= self.regions:
            raise WorkloadError("rotation must be between 1 and the region count")

    def backbone_params(self) -> BackboneParams:
        return BackboneParams(
            regions=self.regions,
            routers_per_group=self.routers_per_group,
            parallel_links=self.parallel_links,
            prefixes_per_region=self.prefixes_per_region,
            seed=self.seed,
        )


# ----------------------------------------------------------------------
# Graph surgery shared by the families
# ----------------------------------------------------------------------
def _shift_snapshot(
    pre: Snapshot,
    mapping: dict[str, str],
    *,
    name: str,
    leave_unmoved: int = 0,
) -> tuple[Snapshot, int]:
    """Rename routers per ``mapping`` in every graph mentioning a source.

    One rename per *distinct* affected graph; every FEC sharing that graph
    shares the renamed result (the copy-on-write snapshot plus the interning
    store keep this O(#unique graphs)).  ``leave_unmoved`` keeps the first N
    affected FECs on their old paths — the incomplete-move bug — and the
    number actually left is returned alongside the new snapshot.  Only FECs
    whose paths avoid every *target* router count: a path already traversing
    the targets satisfies ``any(through targets)`` unmoved, so leaving it
    would not be a spec-visible bug and ``expect_holds`` could not be
    asserted from the count.
    """
    from_set = set(mapping)
    to_set = set(mapping.values())
    post = pre.copy(name=name)
    affected_refs = _mention_refs(pre, from_set)
    detectable_refs = affected_refs - _mention_refs(pre, to_set)
    renamed: dict[int, ForwardingGraph] = {}
    left = 0
    for fec_id in pre.fec_ids():
        ref = pre.graph_ref(fec_id)
        if ref not in affected_refs:
            continue
        if left < leave_unmoved and ref in detectable_refs:
            left += 1
            continue
        moved = renamed.get(ref)
        if moved is None:
            moved = _rename_nodes(pre.store.graph(ref), mapping)
            renamed[ref] = moved
        post.replace(fec_id, moved)
    return post, left


def _drain_spec(from_routers: list[str], to_routers: list[str], *, name: str) -> RelaSpec:
    """Traffic through ``from_routers`` must move onto ``to_routers``."""
    shift = atomic(
        seq(any_hops(), locs(set(from_routers)), any_hops()),
        any_of(seq(any_hops(), locs(set(to_routers)), any_hops())),
        name=f"{name}-shift",
    )
    return shift.else_(nochange())


def _restore_spec(
    from_routers: list[str], to_routers: list[str], *, name: str
) -> RelaSpec:
    """Detoured traffic may return: everything on the detour routers ends on
    the original or detour routers, and nothing else changes.

    The zone covers *all* paths through the detour (``to_routers``), which
    includes traffic natively homed there — hence the permissive target set
    ``from ∪ to`` rather than ``from`` alone: native traffic staying put is
    compliant, detoured traffic returning home is compliant, and a restore
    that blackholes or strands traffic elsewhere violates.
    """
    release = atomic(
        seq(any_hops(), locs(set(to_routers)), any_hops()),
        any_of(seq(any_hops(), locs(set(from_routers) | set(to_routers)), any_hops())),
        name=f"{name}-release",
    )
    return release.else_(nochange())


# ----------------------------------------------------------------------
# Families
# ----------------------------------------------------------------------
def rolling_drain_stream(
    backbone: Backbone,
    initial: Snapshot,
    *,
    epochs: int = 20,
    rotation: int = 2,
    seed: int = 47,
    stream_id: str = "rolling-drain",
    buggy_epochs: frozenset[int] | set[int] = frozenset(),
) -> ChangeStream:
    """Drain/restore cycles rolling over a rotation of regions.

    Epoch ``2k`` drains rotation region ``k mod rotation`` (all traffic
    through its border routers detours onto a partner region's borders);
    epoch ``2k+1`` restores it.  Restores return to *previously seen*
    snapshots — the same objects, hence the same interned graph refs — so
    from the second cycle on a verification session's epochs are pure cache
    hits, while cold per-epoch verification repays the full check cost every
    night.  Epoch indices in ``buggy_epochs`` (drain epochs only) leave one
    distinct graph group unmoved: an incomplete drain the spec catches.
    """
    regions = backbone.regions()
    if rotation < 1 or rotation > len(regions):
        raise WorkloadError("rotation must be between 1 and the region count")
    rng = random.Random(seed)
    rotated = rng.sample(regions, rotation)
    half = len(regions) // 2

    # Per-region drain plumbing, built once and reused by every cycle:
    # recurring epochs must carry recurring spec instances for a session to
    # recognise them.
    plans: list[dict] = []
    for region in rotated:
        partner = regions[(regions.index(region) + half) % len(regions)]
        if partner == region:
            partner = regions[(regions.index(region) + 1) % len(regions)]
        from_routers = backbone.routers_in(region, "border")
        to_routers = backbone.routers_in(partner, "border")
        if not from_routers or not to_routers:
            raise WorkloadError(f"regions {region}/{partner} have no border routers")
        mapping = {
            src: to_routers[index % len(to_routers)]
            for index, src in enumerate(from_routers)
        }
        plans.append(
            {
                "region": region,
                "partner": partner,
                "mapping": mapping,
                "drain_spec": _drain_spec(from_routers, to_routers, name=f"drain-{region}"),
                "restore_spec": _restore_spec(
                    from_routers, to_routers, name=f"restore-{region}"
                ),
                "drained": None,  # memoized compliant drained snapshot
            }
        )

    stream = ChangeStream(stream_id=stream_id, initial=initial)
    current = initial
    for index in range(epochs):
        plan = plans[(index // 2) % rotation]
        region, partner = plan["region"], plan["partner"]
        draining = index % 2 == 0
        if draining:
            buggy = index in buggy_epochs
            if not buggy and plan["drained"] is not None:
                post, left = plan["drained"], 0
            else:
                post, left = _shift_snapshot(
                    current,
                    plan["mapping"],
                    name=f"{initial.name}-{stream_id}-e{index:03d}",
                    leave_unmoved=1 if buggy else 0,
                )
                if not buggy:
                    plan["drained"] = post
            stream.epochs.append(
                StreamEpoch(
                    epoch_id=f"{stream_id}-e{index:03d}",
                    kind="drain",
                    description=f"drain {region} borders onto {partner}"
                    + (" (incomplete: bug)" if left else ""),
                    pre=current,
                    post=post,
                    spec=plan["drain_spec"],
                    expect_holds=left == 0,
                )
            )
        else:
            # Restore to the state before this region's drain (epochs
            # strictly alternate, so the previous epoch is that drain).
            # After a *buggy* drain the pre state still complies with the
            # release spec (unmoved traffic is untouched traffic), so
            # restores hold either way.
            post = stream.epochs[-1].pre
            stream.epochs.append(
                StreamEpoch(
                    epoch_id=f"{stream_id}-e{index:03d}",
                    kind="restore",
                    description=f"restore {region} borders from {partner}",
                    pre=current,
                    post=post,
                    spec=plan["restore_spec"],
                    expect_holds=True,
                )
            )
        current = stream.epochs[-1].post
    return stream


def prefix_migration_stream(
    backbone: Backbone,
    initial: Snapshot,
    *,
    region: str | None = None,
    waves: int = 4,
    seed: int = 47,
    stream_id: str = "prefix-migration",
    buggy_waves: frozenset[int] | set[int] = frozenset(),
) -> ChangeStream:
    """Decommission a region's prefixes in waves (Section 7, over time).

    Wave ``k`` drops the traffic of its slice of the region's customer
    prefixes under a prefix-guarded policy (``dealloc`` for this wave's
    prefixes, ``nochange`` for everything else — classes dropped by earlier
    waves stay dropped and satisfy ``nochange``).  Waves in ``buggy_waves``
    keep forwarding the traffic they were supposed to drop.
    """
    regions = backbone.regions()
    rng = random.Random(seed)
    region = region or rng.choice(regions)
    prefixes = backbone.region_prefixes.get(region)
    if not prefixes:
        raise WorkloadError(f"region {region!r} originates no prefixes")
    waves = min(waves, len(prefixes))
    slices = [prefixes[index::waves] for index in range(waves)]

    dealloc = atomic(any_hops(), drop(), name="dealloc")
    dropped = make_drop_graph(granularity=initial.granularity)
    stream = ChangeStream(stream_id=stream_id, initial=initial)
    current = initial
    for index, wave_prefixes in enumerate(slices):
        predicates = [DstPrefixWithin(str(prefix)) for prefix in wave_prefixes]
        policy = SpecPolicy(
            default=nochange(),
            guarded=[
                PSpec(predicate, dealloc, name=f"dealloc-w{index}") for predicate in predicates
            ],
        )
        buggy = index in buggy_waves
        post = current.copy(name=f"{initial.name}-{stream_id}-w{index}")
        matched = 0
        for fec in current.fecs():
            if any(predicate.matches(fec) for predicate in predicates):
                matched += 1
                if not buggy:
                    post.replace(fec.fec_id, dropped)
        if matched == 0:
            raise WorkloadError(f"wave {index} matches no flow equivalence class")
        stream.epochs.append(
            StreamEpoch(
                epoch_id=f"{stream_id}-w{index}",
                kind="migration-wave",
                description=f"decommission wave {index}: "
                + ", ".join(str(prefix) for prefix in wave_prefixes)
                + (" (still forwarding: bug)" if buggy else ""),
                pre=current,
                post=post,
                spec=policy,
                expect_holds=not buggy,
            )
        )
        current = post
    return stream


def flapping_link_stream(
    backbone: Backbone,
    initial: Snapshot,
    *,
    flaps: int = 6,
    region: str | None = None,
    seed: int = 47,
    stream_id: str = "flapping",
) -> ChangeStream:
    """One border router flaps in and out of service, ``flaps`` epochs long.

    Down epochs move the router's traffic onto its group peer; up epochs
    return to the exact previous state.  The whole stream visits two
    snapshots and two spec instances — after the first down/up pair a
    session verifies nothing new, which is the point.
    """
    regions = backbone.regions()
    rng = random.Random(seed)
    region = region or rng.choice(regions)
    borders = backbone.routers_in(region, "border")
    if len(borders) < 2:
        raise WorkloadError("flapping needs at least two border routers in the region")
    router, peer = borders[0], borders[1]
    mapping = {router: peer}

    down_spec = _drain_spec([router], [peer], name=f"flap-{router}")
    up_spec = _restore_spec([router], [peer], name=f"flap-{router}")
    down_snapshot, _ = _shift_snapshot(
        initial, mapping, name=f"{initial.name}-{stream_id}-down"
    )

    stream = ChangeStream(stream_id=stream_id, initial=initial)
    current = initial
    for index in range(flaps):
        going_down = index % 2 == 0
        post = down_snapshot if going_down else initial
        stream.epochs.append(
            StreamEpoch(
                epoch_id=f"{stream_id}-e{index:03d}",
                kind="flap-down" if going_down else "flap-up",
                description=f"{router} {'fails onto' if going_down else 'recovers from'} {peer}",
                pre=current,
                post=post,
                spec=down_spec if going_down else up_spec,
                expect_holds=True,
            )
        )
        current = post
    return stream


# ----------------------------------------------------------------------
# Benchmark entry point
# ----------------------------------------------------------------------
def generate_stream(profile: StreamProfile | None = None) -> ChangeStream:
    """The benchmark stream: a rolling drain over a scale-style snapshot.

    The initial snapshot uses the ``scale`` workload's realistic duplication
    (distinct graphs scale with the topology, classes with ``num_fecs``), so
    per-epoch cost is dominated by the distinct graph-pair checks a session
    can cache, exactly as on the paper's backbone.
    """
    profile = profile or StreamProfile()
    backbone = generate_backbone(profile.backbone_params())
    initial = generate_scale_snapshot(
        backbone, num_fecs=profile.num_fecs, name="stream-initial"
    )
    return rolling_drain_stream(
        backbone,
        initial,
        epochs=profile.epochs,
        rotation=profile.rotation,
        seed=profile.seed,
    )


def stream_backbone(profile: StreamProfile | None = None) -> Backbone:
    """The backbone underlying :func:`generate_stream` (for tests/CLI)."""
    profile = profile or StreamProfile()
    return generate_backbone(profile.backbone_params())
