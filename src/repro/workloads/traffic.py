"""Synthetic traffic: flow equivalence classes over the backbone.

The operator's workflow derives traffic classes from NetFlow measurements
(paper Section 2.3); we generate them synthetically: for a configurable
sample of (ingress region, destination region) pairs, one flow equivalence
class per customer prefix of the destination region, entering at an
aggregation router of the source region.
"""

from __future__ import annotations

import random

from repro.errors import WorkloadError
from repro.snapshots.fec import FlowEquivalenceClass
from repro.workloads.backbone import Backbone


def generate_fecs(
    backbone: Backbone,
    *,
    max_classes: int | None = None,
    seed: int = 11,
) -> list[FlowEquivalenceClass]:
    """Generate flow equivalence classes for every region pair.

    ``max_classes`` caps the number of classes (a uniform random sample is
    kept), which is how benchmarks scale the verification workload.
    """
    rng = random.Random(seed)
    fecs: list[FlowEquivalenceClass] = []
    regions = backbone.regions()
    index = 0
    for src_region in regions:
        ingresses = backbone.ingress_routers(src_region)
        if not ingresses:
            raise WorkloadError(f"region {src_region} has no ingress routers")
        for dst_region in regions:
            if src_region == dst_region:
                continue
            for prefix in backbone.region_prefixes[dst_region]:
                ingress = ingresses[index % len(ingresses)]
                fecs.append(
                    FlowEquivalenceClass(
                        fec_id=f"fec-{index:06d}",
                        dst_prefix=str(prefix),
                        src_prefix=f"172.{16 + (index % 16)}.0.0/16",
                        ingress=ingress,
                        metadata={"src_region": src_region, "dst_region": dst_region},
                    )
                )
                index += 1
    if max_classes is not None and len(fecs) > max_classes:
        fecs = rng.sample(fecs, max_classes)
        fecs.sort(key=lambda fec: fec.fec_id)
    return fecs


def fecs_to_region(
    backbone: Backbone, fecs: list[FlowEquivalenceClass], region: str
) -> list[FlowEquivalenceClass]:
    """The subset of classes destined to one region (by prefix membership)."""
    prefixes = backbone.region_prefixes.get(region, [])
    selected = []
    for fec in fecs:
        if any(prefix.contains(fec.dst_prefix) for prefix in prefixes):
            selected.append(fec)
    return selected
