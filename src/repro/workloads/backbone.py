"""Synthetic global backbone generator.

The paper evaluates Rela on a confidential global WAN with on the order of
10^3 routers, 10^4 routes per router and 10^6 traffic classes.  We cannot use
that data, so this module generates a parametric backbone with the same
*structure*: multiple geographic regions, two BGP autonomous systems, router
groups per region organised in tiers (aggregation, core, border), parallel
links between groups, and per-region customer prefixes.  The knobs let
benchmarks scale the instance from laptop-sized to stress-sized while keeping
the same shape.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.network.addressing import Prefix
from repro.network.bgp import NetworkConfig
from repro.network.simulator import Simulator
from repro.network.topology import Topology
from repro.rela.locations import LocationDB


@dataclass(slots=True)
class BackboneParams:
    """Size and shape knobs of the synthetic backbone."""

    #: Number of geographic regions (the paper's network spans many).
    regions: int = 4
    #: Routers per group (each group is a circle in the paper's Figure 1).
    routers_per_group: int = 2
    #: Parallel link members between connected routers (drives interface-level cost).
    parallel_links: int = 2
    #: Customer /24 prefixes originated per region.
    prefixes_per_region: int = 4
    #: Random seed for reproducible generation.
    seed: int = 7

    def __post_init__(self) -> None:
        if self.regions < 2:
            raise WorkloadError("a backbone needs at least two regions")
        if self.routers_per_group < 1:
            raise WorkloadError("router groups need at least one router")
        if self.parallel_links < 1:
            raise WorkloadError("links need at least one member")
        if self.prefixes_per_region < 1:
            raise WorkloadError("each region needs at least one prefix")


#: Tier names within each region, in traffic order (ingress → egress).
TIERS = ("agg", "core", "border")


@dataclass(slots=True)
class Backbone:
    """A generated backbone: topology, configuration and region metadata."""

    params: BackboneParams
    topology: Topology
    config: NetworkConfig
    #: Region name -> originated customer prefixes.
    region_prefixes: dict[str, list[Prefix]] = field(default_factory=dict)

    def location_db(self) -> LocationDB:
        """The Rela location database for this backbone."""
        return self.topology.to_location_db()

    def simulator(self) -> Simulator:
        """A simulator over this backbone's topology and configuration."""
        return Simulator(self.topology, self.config)

    def regions(self) -> list[str]:
        """All region names."""
        return sorted(self.region_prefixes)

    def group_name(self, region: str, tier: str) -> str:
        """The router-group name of a tier within a region (e.g. ``R0-CORE``)."""
        return f"{region}-{tier.upper()}"

    def routers_in(self, region: str, tier: str) -> list[str]:
        """Router names of one group."""
        group = self.group_name(region, tier)
        return sorted(router.name for router in self.topology.routers_in_group(group))

    def ingress_routers(self, region: str) -> list[str]:
        """Routers where customer traffic enters a region (the agg tier)."""
        return self.routers_in(region, "agg")

    def location_regions(self) -> dict[str, str]:
        """Region of every location name a graph or FEC can mention.

        Maps each router name *and* each router-group name to its region —
        the region-metadata index the risk layer's blast-radius scoring uses
        to turn violating flow classes into an affected-region spread
        (:func:`repro.analytics.risk.fec_region_index`).  Works at router
        and group granularity alike, since both kinds of names appear.
        """
        mapping: dict[str, str] = {}
        for router in self.topology.routers():
            if not router.region:
                continue
            mapping[router.name] = router.region
            if router.group:
                mapping.setdefault(router.group, router.region)
        return mapping

    def region_of(self, location: str) -> str | None:
        """Region of one router or group name (``None`` when unknown)."""
        return self.location_regions().get(location)


def generate_backbone(params: BackboneParams | None = None) -> Backbone:
    """Generate a synthetic backbone.

    Layout per region ``R{i}``: an aggregation group, a core group and a
    border group, fully meshed tier-to-tier inside the region.  Regions are
    joined border-to-border in a ring plus random chords, and the region set
    is split across two autonomous systems (mirroring the paper's Figure 1
    where the change crosses an AS boundary).  Aggregation routers originate
    their region's customer prefixes.
    """
    params = params or BackboneParams()
    rng = random.Random(params.seed)
    topology = Topology("synthetic-backbone")
    config = NetworkConfig()
    region_prefixes: dict[str, list[Prefix]] = {}

    region_names = [f"R{index}" for index in range(params.regions)]
    half = (params.regions + 1) // 2

    for region_index, region in enumerate(region_names):
        asn = 100 if region_index < half else 200
        for tier in TIERS:
            group = f"{region}-{tier.upper()}"
            for router_index in range(params.routers_per_group):
                topology.add_router(
                    f"{region.lower()}-{tier}{router_index}",
                    group=group,
                    region=region,
                    asn=asn,
                    tier=tier,
                )
        # Full mesh between consecutive tiers inside the region.
        for tier_a, tier_b in zip(TIERS, TIERS[1:]):
            for a in topology.routers_in_group(f"{region}-{tier_a.upper()}"):
                for b in topology.routers_in_group(f"{region}-{tier_b.upper()}"):
                    topology.add_link(
                        a.name, b.name, members=params.parallel_links, cost=10
                    )

        # Customer prefixes originate at the aggregation routers.
        prefixes = [
            Prefix.parse(f"10.{region_index}.{offset}.0/24")
            for offset in range(params.prefixes_per_region)
        ]
        region_prefixes[region] = prefixes
        for router in topology.routers_in_group(f"{region}-AGG"):
            for prefix in prefixes:
                config.router(router.name).originate(prefix)

    # Inter-region ring over border groups, plus a few random chords.
    def join_regions(region_a: str, region_b: str) -> None:
        borders_a = topology.routers_in_group(f"{region_a}-BORDER")
        borders_b = topology.routers_in_group(f"{region_b}-BORDER")
        for a in borders_a:
            for b in borders_b:
                if not topology.links_between(a.name, b.name):
                    topology.add_link(a.name, b.name, members=params.parallel_links, cost=100)

    for index in range(params.regions):
        join_regions(region_names[index], region_names[(index + 1) % params.regions])
    chords = max(0, params.regions - 3)
    for _ in range(chords):
        region_a, region_b = rng.sample(region_names, 2)
        join_regions(region_a, region_b)

    topology.validate()
    return Backbone(
        params=params,
        topology=topology,
        config=config,
        region_prefixes=region_prefixes,
    )
