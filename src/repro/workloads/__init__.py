"""Synthetic workloads: backbone, traffic, changes, streams, contingency sweeps, Figure 1."""

from repro.workloads.backbone import Backbone, BackboneParams, generate_backbone
from repro.workloads.contingencies import (
    SweepScenario,
    decommission_sweep_scenario,
    drain_sweep_scenario,
    generate_sweep_scenarios,
    interconnect_maintenance_sets,
    refactor_sweep_scenario,
)
from repro.workloads.changes import (
    ChangeScenario,
    generate_change_dataset,
    multi_shift,
    no_change,
    path_prune,
    prefix_decommission,
    traffic_shift,
)
from repro.workloads.figure1 import Figure1Scenario, build_scenario, build_topology
from repro.workloads.scale import (
    ScaleProfile,
    generate_scale_change,
    generate_scale_snapshot,
    scale_backbone,
    scale_fec_list,
)
from repro.workloads.stream import (
    ChangeStream,
    StreamEpoch,
    StreamProfile,
    flapping_link_stream,
    generate_stream,
    prefix_migration_stream,
    rolling_drain_stream,
)
from repro.workloads.traffic import fecs_to_region, generate_fecs

__all__ = [
    "Backbone",
    "BackboneParams",
    "generate_backbone",
    "generate_fecs",
    "fecs_to_region",
    "ChangeScenario",
    "no_change",
    "traffic_shift",
    "multi_shift",
    "prefix_decommission",
    "path_prune",
    "generate_change_dataset",
    "ScaleProfile",
    "scale_backbone",
    "scale_fec_list",
    "generate_scale_snapshot",
    "generate_scale_change",
    "SweepScenario",
    "drain_sweep_scenario",
    "refactor_sweep_scenario",
    "decommission_sweep_scenario",
    "generate_sweep_scenarios",
    "interconnect_maintenance_sets",
    "ChangeStream",
    "StreamEpoch",
    "StreamProfile",
    "rolling_drain_stream",
    "prefix_migration_stream",
    "flapping_link_stream",
    "generate_stream",
    "Figure1Scenario",
    "build_scenario",
    "build_topology",
]
