"""Change-scenario generator: the stand-in for the paper's change dataset.

The paper's evaluation (Section 9) uses all high-risk changes reviewed by the
operator's technical committee over seven months.  That dataset is
confidential, so this module generates synthetic change scenarios drawn from
the archetypes the paper describes:

* **no-change refactors** — half of the real changes expect *no* forwarding
  impact at all (route aggregation, community standardisation); their spec is
  the single atomic ``.* : preserve``;
* **traffic shifts** — move traffic off a router group onto another
  (the Figure 1 change is one of these);
* **prefix decommissions** — a prefix must be dropped everywhere
  (the Section 7 example);
* **path pruning / filter insertion** — specific paths are removed while the
  rest of the flow's ECMP fan-out stays;
* **link maintenance** — interface-granularity shifts off a drained link;
* **multi-shifts** — compositions of several shifts, which produce the large
  specs in the tail of Figure 5 and the N-sweep of Figure 7.

Each scenario packages the pre/post snapshots, the Rela spec, the spec size
(number of atomic terms) and whether the implementation is expected to
comply, so benchmarks can regenerate Figures 5-7 and the baseline
comparisons.  Buggy variants (incomplete moves, collateral damage) are used
by tests and the baseline benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.rela import (
    RelaSpec,
    SpecPolicy,
    DstPrefixWithin,
    PSpec,
    any_hops,
    any_of,
    atomic,
    drop,
    locs,
    nochange,
    remove,
    seq,
)
from repro.rela.locations import Granularity
from repro.rela.spec import else_chain
from repro.snapshots.forwarding_graph import ForwardingGraph
from repro.snapshots.forwarding_graph import drop_graph as make_drop_graph
from repro.snapshots.snapshot import Snapshot
from repro.workloads.backbone import Backbone


@dataclass(slots=True)
class ChangeScenario:
    """One synthetic change: snapshots, spec and expectations."""

    change_id: str
    archetype: str
    description: str
    pre: Snapshot
    post: Snapshot
    spec: RelaSpec | SpecPolicy
    atomic_count: int
    granularity: Granularity = Granularity.ROUTER
    #: Whether the change implementation complies with the spec.
    expect_holds: bool = True


# ----------------------------------------------------------------------
# Graph surgery helpers
# ----------------------------------------------------------------------
def _rename_nodes(graph: ForwardingGraph, mapping: dict[str, str]) -> ForwardingGraph:
    """Replace node names in a graph (keeps granularity)."""
    return graph.coarsen(mapping, graph.granularity)


def _remove_node(graph: ForwardingGraph, node: str) -> ForwardingGraph:
    """Remove a node and its edges from a graph (used for path pruning)."""
    pruned = ForwardingGraph(granularity=graph.granularity)
    for name in graph.nodes:
        if name != node:
            pruned.add_node(name)
    for src, dst in graph.edges:
        if node not in (src, dst):
            pruned.add_edge(src, dst)
    pruned.sources = {name for name in graph.sources if name != node}
    pruned.sinks = {name for name in graph.sinks if name != node}
    return pruned


def _graph_mentions(graph: ForwardingGraph, names: set[str]) -> bool:
    return bool(graph.nodes & names)


def _mention_refs(snapshot: Snapshot, names: set[str]) -> set[int]:
    """Refs of the snapshot's distinct graphs that mention any of ``names``.

    Snapshots intern their graphs, so membership tests — like the rename /
    prune transforms below — run once per *distinct* forwarding behaviour
    and are shared by every FEC with that behaviour.  On a backbone-scale
    snapshot this is the difference between O(#FECs) and O(#unique graphs)
    graph work.
    """
    store = snapshot.store
    return {
        ref
        for ref in {snapshot.graph_ref(fec_id) for fec_id in snapshot.fec_ids()}
        if ref is not None and _graph_mentions(store.graph(ref), names)
    }


# ----------------------------------------------------------------------
# Archetypes
# ----------------------------------------------------------------------
def no_change(pre: Snapshot, *, change_id: str = "refactor", buggy: bool = False) -> ChangeScenario:
    """A refactor with no expected forwarding impact (half of the real dataset).

    The buggy variant perturbs one flow's forwarding graph, modelling a
    "no-op" change that actually alters forwarding — the kind of latent error
    the paper notes could have caused an outage.
    """
    post = pre.copy(name=f"{pre.name}-post")
    if buggy:
        fec_ids = post.fec_ids()
        if not fec_ids:
            raise WorkloadError("cannot inject a bug into an empty snapshot")
        victim = fec_ids[len(fec_ids) // 2]
        graph = post.graph(victim)
        if graph.nodes:
            node = sorted(graph.nodes)[0]
            post.replace(victim, _rename_nodes(graph, {node: f"{node}-misrouted"}))
    return ChangeScenario(
        change_id=change_id,
        archetype="no_change",
        description="routing policy refactor with no intended forwarding impact",
        pre=pre,
        post=post,
        spec=nochange(),
        atomic_count=1,
        granularity=pre.granularity,
        expect_holds=not buggy,
    )


def traffic_shift(
    pre: Snapshot,
    from_routers: list[str],
    to_routers: list[str],
    *,
    change_id: str = "shift",
    buggy_leave_unmoved: int = 0,
    buggy_collateral: int = 0,
) -> ChangeScenario:
    """Move all traffic traversing ``from_routers`` onto ``to_routers``.

    The spec is the prioritized union of a shift spec for the affected zone
    and ``nochange`` for everything else.  ``buggy_leave_unmoved`` leaves the
    first N affected flows on their old paths (an incomplete move, like v1 of
    the paper's example); ``buggy_collateral`` perturbs N unaffected flows
    (collateral damage, like v2).
    """
    if not from_routers or not to_routers:
        raise WorkloadError("traffic_shift needs non-empty router lists")
    mapping = {
        src: to_routers[index % len(to_routers)] for index, src in enumerate(from_routers)
    }
    from_set = set(from_routers)
    to_set = set(to_routers)

    post = pre.copy(name=f"{pre.name}-post")
    affected_refs = _mention_refs(pre, from_set)
    affected: list[str] = []
    unaffected: list[str] = []
    for fec_id in pre.fec_ids():
        if pre.graph_ref(fec_id) in affected_refs:
            affected.append(fec_id)
        else:
            unaffected.append(fec_id)
    # Rename each distinct affected graph once; every FEC sharing that graph
    # shares the renamed (and re-interned) result.
    renamed: dict[int, ForwardingGraph] = {}
    left_unmoved = 0
    for index, fec_id in enumerate(affected):
        if index < buggy_leave_unmoved:
            left_unmoved += 1
            continue
        ref = pre.graph_ref(fec_id)
        moved = renamed.get(ref)
        if moved is None:
            moved = _rename_nodes(pre.store.graph(ref), mapping)
            renamed[ref] = moved
        post.replace(fec_id, moved)
    # Collateral damage is injected as a blackhole of an unrelated flow: that
    # is always a spec violation, whereas merely re-routing a flow that
    # already traverses the target routers would be tolerated by ``any``.
    collateral_injected = 0
    blackhole = make_drop_graph(granularity=pre.granularity)
    for fec_id in unaffected:
        if collateral_injected >= buggy_collateral:
            break
        post.replace(fec_id, blackhole)
        collateral_injected += 1

    shift_spec = atomic(
        seq(any_hops(), locs(from_set), any_hops()),
        any_of(seq(any_hops(), locs(set(to_routers)), any_hops())),
        name=f"{change_id}-shift",
    )
    spec = shift_spec.else_(nochange())
    return ChangeScenario(
        change_id=change_id,
        archetype="traffic_shift",
        description=f"shift traffic off {sorted(from_set)} onto {sorted(set(to_routers))}",
        pre=pre,
        post=post,
        spec=spec,
        atomic_count=spec.atomic_count(),
        granularity=pre.granularity,
        expect_holds=left_unmoved == 0 and collateral_injected == 0,
    )


def _shifts_independent(shifts: list[tuple[list[str], list[str]]]) -> bool:
    """Whether no shift moves traffic off another shift's target routers.

    Shifts are applied to the post snapshot sequentially, so when a later
    shift's source routers intersect an earlier shift's target routers (or
    vice versa), traffic that one branch requires to traverse its targets is
    renamed away again and the prioritized-union spec is violated for every
    flow that exercises the overlap.  ``from/from`` and ``to/to`` overlaps
    are harmless: the earliest matching branch governs a path, and target
    routers are never renamed when this predicate holds.
    """
    from_sets = [set(from_routers) for from_routers, _ in shifts]
    to_sets = [set(to_routers) for _, to_routers in shifts]
    for i, to_set in enumerate(to_sets):
        for j, from_set in enumerate(from_sets):
            if i != j and from_set & to_set:
                return False
    return True


def multi_shift(
    pre: Snapshot,
    shifts: list[tuple[list[str], list[str]]],
    *,
    change_id: str = "multi-shift",
) -> ChangeScenario:
    """Several traffic shifts rolled into one change (the Figure 5 tail).

    Each shift contributes one atomic spec; the change spec is the
    prioritized union of all shift specs followed by ``nochange``, so the
    spec size is ``len(shifts) + 1``.

    The implementation is only expected to comply when the shifts are
    *independent* (see :func:`_shifts_independent`): a shift whose sources
    intersect another shift's targets re-moves traffic that an earlier
    branch pinned to those targets.  ``expect_holds`` reflects that
    condition, which is exact on backbones where every region pair carries
    traffic.
    """
    if not shifts:
        raise WorkloadError("multi_shift needs at least one shift")
    post = pre.copy(name=f"{pre.name}-post")
    branch_specs: list[RelaSpec] = []
    for index, (from_routers, to_routers) in enumerate(shifts):
        mapping = {
            src: to_routers[position % len(to_routers)]
            for position, src in enumerate(from_routers)
        }
        from_set = set(from_routers)
        # One rename per distinct post graph per shift round (shifts apply
        # sequentially, so round ``i`` reads the graphs round ``i-1`` wrote).
        moved_by_ref: dict[int, ForwardingGraph | None] = {}
        for fec_id in pre.fec_ids():
            ref = post.graph_ref(fec_id)
            if ref not in moved_by_ref:
                graph = post.store.graph(ref)
                moved_by_ref[ref] = (
                    _rename_nodes(graph, mapping) if _graph_mentions(graph, from_set) else None
                )
            moved = moved_by_ref[ref]
            if moved is not None:
                post.replace(fec_id, moved)
        branch_specs.append(
            atomic(
                seq(any_hops(), locs(from_set), any_hops()),
                any_of(seq(any_hops(), locs(set(to_routers)), any_hops())),
                name=f"{change_id}-shift-{index}",
            )
        )
    branch_specs.append(nochange())
    spec = else_chain(*branch_specs, name=change_id)
    return ChangeScenario(
        change_id=change_id,
        archetype="multi_shift",
        description=f"{len(shifts)} traffic shifts in one maintenance window",
        pre=pre,
        post=post,
        spec=spec,
        atomic_count=spec.atomic_count(),
        granularity=pre.granularity,
        expect_holds=_shifts_independent(shifts),
    )


def prefix_decommission(
    pre: Snapshot,
    prefix: str,
    *,
    change_id: str = "decommission",
    buggy_still_forwarding: bool = False,
) -> ChangeScenario:
    """Decommission a prefix: the network must drop its traffic everywhere.

    This reproduces the Section 7 example: a prefix-guarded spec applies the
    ``drop`` modifier to matching classes and ``nochange`` to the rest.
    """
    post = pre.copy(name=f"{pre.name}-post")
    matched = 0
    predicate = DstPrefixWithin(prefix)
    dropped = make_drop_graph(granularity=pre.granularity)
    for fec in pre.fecs():
        if predicate.matches(fec):
            matched += 1
            if not buggy_still_forwarding:
                post.replace(fec.fec_id, dropped)
    if matched == 0:
        raise WorkloadError(f"no flow equivalence class matches prefix {prefix}")
    dealloc = atomic(any_hops(), drop(), name="dealloc")
    policy = SpecPolicy(
        default=nochange(),
        guarded=[PSpec(DstPrefixWithin(prefix), dealloc, name="deallocP")],
    )
    return ChangeScenario(
        change_id=change_id,
        archetype="prefix_decommission",
        description=f"decommission {prefix}: drop its traffic on every path",
        pre=pre,
        post=post,
        spec=policy,
        atomic_count=policy.atomic_count(),
        granularity=pre.granularity,
        expect_holds=not buggy_still_forwarding,
    )


def path_prune(
    pre: Snapshot,
    router: str,
    *,
    change_id: str = "prune",
    buggy_keep_paths: bool = False,
) -> ChangeScenario:
    """Insert a filter so that paths through ``router`` disappear.

    Flows whose entire path set went through the router end up dropped; flows
    with ECMP alternatives keep only the alternatives.  The spec uses the
    ``remove`` modifier over the pruned path shape.
    """
    post = pre.copy(name=f"{pre.name}-post")
    affected = 0
    pruned_by_ref: dict[int, ForwardingGraph] = {}
    for fec_id in pre.fec_ids():
        ref = pre.graph_ref(fec_id)
        graph = pre.store.graph(ref)
        if router not in graph.nodes:
            continue
        affected += 1
        if buggy_keep_paths:
            continue
        pruned = pruned_by_ref.get(ref)
        if pruned is None:
            pruned = _remove_node(graph, router)
            if pruned.is_empty():
                pruned = make_drop_graph(granularity=pre.granularity)
            pruned_by_ref[ref] = pruned
        post.replace(fec_id, pruned)
    if affected == 0:
        raise WorkloadError(f"no flow equivalence class traverses {router!r}")
    through_router = seq(any_hops(), locs({router}), any_hops())
    spec = else_chain(
        atomic(any_hops(), remove(through_router), name=f"{change_id}-filter"),
        name=change_id,
    )
    return ChangeScenario(
        change_id=change_id,
        archetype="path_prune",
        description=f"filter out forwarding paths through {router}",
        pre=pre,
        post=post,
        spec=spec,
        atomic_count=spec.atomic_count(),
        granularity=pre.granularity,
        expect_holds=not buggy_keep_paths,
    )


def independent_multi_shift(
    backbone: Backbone,
    pre: Snapshot,
    *,
    num_shifts: int = 36,
    change_id: str = "arch-migration",
) -> ChangeScenario:
    """A compliant ``num_shifts``-shift maintenance window (scenario-35 class).

    Deterministic stand-in for the paper's routing-architecture changes
    (the ~40-atomic tail of Figure 5): traffic moves from border routers of
    one half of the regions onto the other half, so shifts are independent
    (:func:`_shifts_independent`) and the change complies by construction.
    Used by the spec-compilation guard test and microbenchmark.
    """
    regions = backbone.regions()
    half = len(regions) // 2
    if half == 0:
        raise WorkloadError("independent_multi_shift needs at least two regions")
    from_regions, to_regions = regions[:half], regions[half:]
    shifts = [
        (
            backbone.routers_in(from_regions[index % len(from_regions)], "border"),
            backbone.routers_in(to_regions[index % len(to_regions)], "border"),
        )
        for index in range(num_shifts)
    ]
    return multi_shift(pre, shifts, change_id=change_id)


# ----------------------------------------------------------------------
# Dataset generation (Figures 5 and 6)
# ----------------------------------------------------------------------
def generate_change_dataset(
    backbone: Backbone,
    pre: Snapshot,
    *,
    count: int = 30,
    seed: int = 23,
) -> list[ChangeScenario]:
    """Generate a dataset of change scenarios with a Figure 5 like size mix.

    Roughly half the changes are no-change refactors (spec size 1); most of
    the rest are single shifts, prefix decommissions and filter insertions
    (sizes 2-4); a small tail of multi-shift maintenance windows produces the
    large specs (sizes up to ~37) that the paper attributes to infrequent
    routing-architecture changes.

    Each scenario is generated from its own entry of a sorted, deterministic
    per-scenario seed schedule derived from ``seed``, so scenario ``i`` is a
    pure function of ``(seed, count, i)``: benchmark workers running the
    same dataset parameters can regenerate any slice independently (and in
    any order) and still agree on every scenario, instead of depending on
    the shared generator state that threading one RNG through the whole
    loop would create.  (The schedule depends on ``count`` — regenerating
    with a different ``count`` is a different dataset, which is why the CI
    gate validates the CDF population size.)
    """
    schedule_rng = random.Random(seed)
    scenario_seeds = sorted(schedule_rng.randrange(2**32) for _ in range(count))
    regions = backbone.regions()
    scenarios: list[ChangeScenario] = []

    def border_routers(region: str) -> list[str]:
        return backbone.routers_in(region, "border")

    def core_routers(region: str) -> list[str]:
        return backbone.routers_in(region, "core")

    for index in range(count):
        rng = random.Random(scenario_seeds[index])
        change_id = f"change-{index:03d}"
        slot = rng.random()
        if slot < 0.5:
            scenarios.append(no_change(pre, change_id=change_id))
        elif slot < 0.7:
            region_a, region_b = rng.sample(regions, 2)
            scenarios.append(
                traffic_shift(
                    pre,
                    border_routers(region_a),
                    border_routers(region_b),
                    change_id=change_id,
                )
            )
        elif slot < 0.8:
            region = rng.choice(regions)
            prefix = str(rng.choice(backbone.region_prefixes[region]))
            scenarios.append(prefix_decommission(pre, prefix, change_id=change_id))
        elif slot < 0.9:
            region = rng.choice(regions)
            routers = core_routers(region) or border_routers(region)
            scenarios.append(path_prune(pre, routers[0], change_id=change_id))
        else:
            # Multi-shift maintenance window: 6 or, rarely, 36 shifts.  The
            # shifts move traffic from one half of the regions onto the
            # other, so no shift's sources intersect another's targets:
            # maintenance windows comply with their spec by construction
            # (see _shifts_independent), like the paper's reviewed changes.
            num_shifts = 36 if rng.random() < 0.2 else rng.choice([3, 6, 9, 12])
            shuffled = list(regions)
            rng.shuffle(shuffled)
            half = len(shuffled) // 2
            from_regions, to_regions = shuffled[:half], shuffled[half:]
            shifts = []
            for _ in range(num_shifts):
                shifts.append(
                    (
                        border_routers(rng.choice(from_regions)),
                        border_routers(rng.choice(to_regions)),
                    )
                )
            scenarios.append(multi_shift(pre, shifts, change_id=change_id))
    return scenarios
