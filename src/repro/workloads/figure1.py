"""The paper's running example change (Figure 1, Sections 2.1, 4 and 8.1).

A large cloud provider wants traffic bundle T1, which flows
``A1-B1-B2-B3-D1``, to move to ``A1-A2-A3-D1`` so that it no longer traverses
region B — without affecting any other traffic.  The engineers needed four
implementation attempts over three weeks:

* **v1** — an allow-list change on A2 that did not move T1 at all (region B
  announced T1 prefixes with a higher local preference), but did cause a set
  of benign side-effect path changes;
* **v2** — local-preference changes that moved T1, but a typo in B2's import
  policy caused collateral damage to unrelated traffic T2, and T1 actually
  bounced back through B3 because of old link-cost misconfiguration;
* **v3** — fixed the typo; the B3 bounce remained (missed amid the noise);
* **final** — the intended behaviour.

This module reconstructs the scenario with synthetic prefixes and
per-iteration FIBs so that the whole case study can be replayed: the same
traffic bundles, the same kinds of errors, and counterexample counts matching
Section 8.1 (17 ``nochange`` + 15 ``e2e`` violations for v1; 15 ``e2e`` +
24 ``nochange`` + 0 ``sideEffects`` for v2; a clean pass for the final
implementation).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.network.addressing import Prefix
from repro.network.fib import Fib
from repro.network.simulator import TraceOptions, trace_forwarding
from repro.network.topology import Topology
from repro.rela import (
    LocationDB,
    RelaSpec,
    any_hops,
    any_of,
    atomic,
    locs,
    nochange,
    preserve,
    seq,
    seq_spec,
    within,
)
from repro.rela.locations import Granularity
from repro.snapshots.fec import FlowEquivalenceClass
from repro.snapshots.snapshot import Snapshot

#: Number of flow equivalence classes in each traffic bundle; chosen to match
#: the counterexample counts reported in Section 8.1 of the paper.
T1_CLASSES = 15
T2_CLASSES = 24
SIDE_EFFECT_CLASSES = 17

_REGION_A = ("x1", "A1", "A2", "A3")
_REGION_B = ("B1", "B2", "B3")
_REGION_C = ("x2", "C1", "C2")
_REGION_D = ("D1", "D2", "y1", "y2")


@dataclass(slots=True)
class Figure1Scenario:
    """All artifacts of the example change: topology, traffic, FIBs, specs."""

    topology: Topology
    db: LocationDB
    t1_fecs: list[FlowEquivalenceClass]
    t2_fecs: list[FlowEquivalenceClass]
    side_effect_fecs: list[FlowEquivalenceClass]

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------
    def all_fecs(self) -> list[FlowEquivalenceClass]:
        """Every flow equivalence class in the scenario."""
        return self.t1_fecs + self.t2_fecs + self.side_effect_fecs

    # ------------------------------------------------------------------
    # Snapshots (pre-change and per-iteration post-change)
    # ------------------------------------------------------------------
    def pre_change(self) -> Snapshot:
        """The forwarding state before any change."""
        return self._snapshot(
            "pre-change",
            t1_path=("x1", "A1", "B1", "B2", "B3", "D1", "y1"),
            t2_path=("x2", "C1", "B1", "B2", "B3", "D1", "y2"),
            side_effect_path=("x1", "A1", "B1", "B2", "D2", "y1"),
        )

    def iteration_v1(self) -> Snapshot:
        """v1 (Figure 1b): T1 unmoved; benign side-effect changes appear."""
        return self._snapshot(
            "post-change-v1",
            t1_path=("x1", "A1", "B1", "B2", "B3", "D1", "y1"),
            t2_path=("x2", "C1", "B1", "B2", "B3", "D1", "y2"),
            side_effect_path=("x1", "A1", "A2", "D2", "y1"),
        )

    def iteration_v2(self) -> Snapshot:
        """v2 (Figure 1c): T1 bounces through B3; T2 suffers collateral damage."""
        return self._snapshot(
            "post-change-v2",
            t1_path=("x1", "A1", "A2", "A3", "B3", "D1", "y1"),
            t2_path=("x2", "C1", "C2", "D1", "y2"),
            side_effect_path=("x1", "A1", "A2", "D2", "y1"),
        )

    def iteration_v3(self) -> Snapshot:
        """v3 (Figure 1d): collateral damage fixed; the B3 bounce remains."""
        return self._snapshot(
            "post-change-v3",
            t1_path=("x1", "A1", "A2", "A3", "B3", "D1", "y1"),
            t2_path=("x2", "C1", "B1", "B2", "B3", "D1", "y2"),
            side_effect_path=("x1", "A1", "A2", "D2", "y1"),
        )

    def final_implementation(self) -> Snapshot:
        """The correct implementation: T1 moved, nothing else affected."""
        return self._snapshot(
            "post-change-final",
            t1_path=("x1", "A1", "A2", "A3", "D1", "y1"),
            t2_path=("x2", "C1", "B1", "B2", "B3", "D1", "y2"),
            side_effect_path=("x1", "A1", "A2", "D2", "y1"),
        )

    def iterations(self) -> dict[str, Snapshot]:
        """All post-change snapshots keyed by iteration name."""
        return {
            "v1": self.iteration_v1(),
            "v2": self.iteration_v2(),
            "v3": self.iteration_v3(),
            "final": self.final_implementation(),
        }

    # ------------------------------------------------------------------
    # Specifications (Section 4 and the Section 8.1 refinement)
    # ------------------------------------------------------------------
    def change_spec(self) -> RelaSpec:
        """The original spec of Section 4: ``e2e else nochange``."""
        return self._e2e_spec().else_(nochange()).named("change")

    def refined_spec(self) -> RelaSpec:
        """The refined spec of Section 8.1: ``e2e else sideEffects else nochange``."""
        side_effects = atomic(
            seq(locs({"x1"}), locs({"A1"}), any_hops(), locs({"D2"}), locs({"y1"})),
            any_of(seq(locs({"x1"}), locs({"A1"}), locs({"A2"}), locs({"D2"}), locs({"y1"}))),
            name="sideEffects",
        )
        return self._e2e_spec().else_(side_effects).else_(nochange()).named("change-refined")

    def _e2e_spec(self) -> RelaSpec:
        a1 = locs({"A1"})
        d1 = locs({"D1"})
        new_path = seq(a1, locs({"A2"}), locs({"A3"}), d1)
        path_shift = atomic(seq(a1, any_hops(), d1), any_of(new_path), name="pathShift")
        return seq_spec(
            atomic(within(locs(_REGION_A)), preserve()),
            path_shift,
            atomic(within(locs(_REGION_D)), preserve()),
            name="e2e",
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _snapshot(
        self,
        name: str,
        *,
        t1_path: Sequence[str],
        t2_path: Sequence[str],
        side_effect_path: Sequence[str],
    ) -> Snapshot:
        """Build a snapshot by installing per-bundle FIB paths and tracing them."""
        fib = Fib()
        for fec in self.t1_fecs:
            _install_path(fib, t1_path, fec.dst_prefix)
        for fec in self.t2_fecs:
            _install_path(fib, t2_path, fec.dst_prefix)
        for fec in self.side_effect_fecs:
            _install_path(fib, side_effect_path, fec.dst_prefix)

        snapshot = Snapshot(name=name, granularity=Granularity.ROUTER)
        options = TraceOptions(granularity=Granularity.ROUTER)
        for fec in self.all_fecs():
            graph = trace_forwarding(
                self.topology, fib, fec.ingress, fec.dst_prefix, options=options
            )
            snapshot.add(fec, graph)
        return snapshot


def _install_path(fib: Fib, path: Sequence[str], prefix: Prefix | str) -> None:
    """Install a linear forwarding chain for ``prefix`` along ``path``."""
    for current, nxt in zip(path, path[1:]):
        fib.set_entry(current, prefix, [nxt])
    fib.set_entry(path[-1], prefix, [], egress=True)


def build_topology() -> Topology:
    """The Figure 1 topology: two ASes spanning regions A, B, C and D."""
    topology = Topology("figure1-backbone")
    for name in _REGION_A:
        topology.add_router(name, group=name, region="A", asn=100, tier="backbone")
    for name in _REGION_C:
        topology.add_router(name, group=name, region="C", asn=100, tier="backbone")
    for name in _REGION_B:
        topology.add_router(name, group=name, region="B", asn=200, tier="backbone")
    for name in _REGION_D:
        topology.add_router(name, group=name, region="D", asn=200, tier="backbone")

    links = [
        ("x1", "A1"), ("A1", "A2"), ("A2", "A3"), ("A3", "D1"),
        ("A1", "B1"), ("B1", "B2"), ("B2", "B3"), ("B3", "D1"),
        ("A3", "B3"), ("B2", "D2"), ("A2", "D2"),
        ("x2", "C1"), ("C1", "B1"), ("C1", "C2"), ("C2", "D1"),
        ("D1", "y1"), ("D1", "y2"), ("D2", "y1"),
    ]
    for a, b in links:
        topology.add_link(a, b, members=2, cost=1)
    return topology


def build_scenario() -> Figure1Scenario:
    """Construct the full Figure 1 scenario (topology, traffic, FECs)."""
    topology = build_topology()
    t1_fecs = [
        FlowEquivalenceClass(
            fec_id=f"t1-{index:03d}",
            dst_prefix=f"10.1.{index}.0/24",
            src_prefix="172.16.0.0/16",
            ingress="x1",
            metadata={"bundle": "T1"},
        )
        for index in range(T1_CLASSES)
    ]
    t2_fecs = [
        FlowEquivalenceClass(
            fec_id=f"t2-{index:03d}",
            dst_prefix=f"10.2.{index}.0/24",
            src_prefix="172.17.0.0/16",
            ingress="x2",
            metadata={"bundle": "T2"},
        )
        for index in range(T2_CLASSES)
    ]
    side_effect_fecs = [
        FlowEquivalenceClass(
            fec_id=f"se-{index:03d}",
            dst_prefix=f"10.3.{index}.0/24",
            src_prefix="172.16.0.0/16",
            ingress="x1",
            metadata={"bundle": "side-effect"},
        )
        for index in range(SIDE_EFFECT_CLASSES)
    ]
    return Figure1Scenario(
        topology=topology,
        db=topology.to_location_db(),
        t1_fecs=t1_fecs,
        t2_fecs=t2_fecs,
        side_effect_fecs=side_effect_fecs,
    )
