"""Contingency-sweep workloads: changes to verify under failure models.

A sweep scenario packages what a what-if contingency sweep needs beyond the
failure model itself: the backbone, the traffic classes every contingency
re-simulates, the Rela spec, and the *change transform* — a function that
applies the change under test to a (possibly degraded) pre-change snapshot
and states whether the implementation complies **on that snapshot**.  The
per-snapshot expectation matters: a buggy drain that leaves one traffic
group behind is only spec-visible under contingencies where that group's
paths still avoid the drain targets, so ``expect_holds`` is computed from
the snapshot the change actually lands on, never assumed.

Like the change dataset (:mod:`repro.workloads.changes`) and the stream
families (:mod:`repro.workloads.stream`), every scenario is a pure function
of its seed, and buggy variants are first-class: the differential tests
drive both compliant and violating sweeps through the
:class:`~repro.verifier.contingency.ContingencySweep` and the naive
per-contingency one-shot loop and require byte-identical reports.

Scenario archetypes:

* :func:`drain_sweep_scenario` — the classic question: a border drain
  (group- or router-level traffic shift), verified under failures.  The
  buggy variant leaves one distinct traffic group unmoved.
* :func:`refactor_sweep_scenario` — a no-op change (``nochange``); the
  buggy variant misroutes one class, which every contingency must catch.
* :func:`decommission_sweep_scenario` — the Section 7 prefix
  decommission; the buggy variant keeps forwarding, which a contingency
  that already blackholed the traffic *cannot* catch (dropped is dropped) —
  the expectation accounts for that.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import dataclass

from repro.automata.alphabet import DROP
from repro.errors import WorkloadError
from repro.rela import (
    DstPrefixWithin,
    PSpec,
    RelaSpec,
    SpecPolicy,
    any_hops,
    atomic,
    drop,
    nochange,
)
from repro.rela.locations import Granularity
from repro.snapshots.fec import FlowEquivalenceClass
from repro.snapshots.forwarding_graph import drop_graph as make_drop_graph
from repro.snapshots.snapshot import Snapshot
from repro.verifier.contingency import (
    Contingency,
    ContingencySweep,
    LinkPair,
    maintenance_link_sets,
)
from repro.verifier.engine import VerificationOptions
from repro.workloads.backbone import Backbone
from repro.workloads.scale import scale_fec_list
from repro.workloads.stream import _drain_spec, _shift_snapshot


@dataclass(slots=True)
class SweepScenario:
    """One change to verify under a contingency failure model."""

    scenario_id: str
    archetype: str
    description: str
    backbone: Backbone
    fecs: list[FlowEquivalenceClass]
    spec: RelaSpec | SpecPolicy
    #: The change transform: degraded pre snapshot -> (post snapshot,
    #: expect_holds on that snapshot).
    change: Callable[[Snapshot], tuple[Snapshot, bool]]
    granularity: Granularity = Granularity.ROUTER
    #: Whether the scenario carries an injected bug (the *expectation* per
    #: contingency still comes from the change transform).
    buggy: bool = False

    def sweep(
        self,
        contingencies: list[Contingency],
        *,
        options: VerificationOptions | None = None,
        include_baseline: bool = True,
        incremental: bool = True,
    ) -> ContingencySweep:
        """A ready-to-run sweep of this scenario over ``contingencies``."""
        if options is None:
            options = VerificationOptions(granularity=self.granularity)
        return ContingencySweep(
            self.backbone.topology,
            self.backbone.config,
            self.fecs,
            self.change,
            self.spec,
            contingencies,
            db=self.backbone.location_db(),
            options=options,
            granularity=self.granularity,
            include_baseline=include_baseline,
            incremental=incremental,
        )


def _drain_mapping(
    backbone: Backbone, from_region: str, to_region: str, granularity: Granularity
) -> tuple[dict[str, str], list[str], list[str]]:
    """The rename mapping and spec endpoints of a border drain."""
    if granularity is Granularity.INTERFACE:
        # Interface graphs name nodes "router|peer|member" / "router:lo0",
        # so a router-name rename would match nothing: the change transform
        # would silently be a no-op and even a buggy drain would "hold".
        # Refuse rather than sweep a vacuous change.
        raise WorkloadError(
            "drain sweeps support router or group granularity; interface-level "
            "graphs need an interface-level change transform"
        )
    if granularity is Granularity.GROUP:
        from_locs = [backbone.group_name(from_region, "border")]
        to_locs = [backbone.group_name(to_region, "border")]
        mapping = {from_locs[0]: to_locs[0]}
    else:
        from_locs = backbone.routers_in(from_region, "border")
        to_locs = backbone.routers_in(to_region, "border")
        if not from_locs or not to_locs:
            raise WorkloadError(
                f"regions {from_region}/{to_region} have no border routers"
            )
        mapping = {
            src: to_locs[index % len(to_locs)] for index, src in enumerate(from_locs)
        }
    return mapping, from_locs, to_locs


def drain_sweep_scenario(
    backbone: Backbone,
    *,
    num_fecs: int = 2000,
    granularity: Granularity = Granularity.GROUP,
    from_region: str | None = None,
    to_region: str | None = None,
    buggy: bool = False,
    seed: int = 59,
    scenario_id: str = "drain-sweep",
) -> SweepScenario:
    """A border drain to hold under failures ("does the drain still hold?").

    All traffic through the drained region's border locations must move
    onto the partner region's; everything else must not change.  The buggy
    variant leaves one distinct traffic group on its old paths — detectable
    only under contingencies where that group's paths avoid the targets,
    which the change transform accounts for per snapshot.
    """
    rng = random.Random(seed)
    regions = backbone.regions()
    if len(regions) < 2:
        raise WorkloadError("a drain sweep needs at least two regions")
    from_region = from_region or regions[-1]
    to_region = to_region or regions[0]
    if from_region == to_region:
        raise WorkloadError("cannot drain a region onto itself")
    mapping, from_locs, to_locs = _drain_mapping(
        backbone, from_region, to_region, granularity
    )
    spec = _drain_spec(from_locs, to_locs, name=f"{scenario_id}-{from_region}")
    leave = 1 + rng.randrange(2) if buggy else 0

    def change(pre: Snapshot) -> tuple[Snapshot, bool]:
        post, left = _shift_snapshot(
            pre, mapping, name=f"{pre.name}-post", leave_unmoved=leave
        )
        return post, left == 0

    return SweepScenario(
        scenario_id=scenario_id,
        archetype="drain",
        description=(
            f"drain {from_region} borders onto {to_region}"
            + (" (incomplete: bug)" if buggy else "")
        ),
        backbone=backbone,
        fecs=scale_fec_list(backbone, num_fecs=num_fecs),
        spec=spec,
        change=change,
        granularity=granularity,
        buggy=buggy,
    )


def refactor_sweep_scenario(
    backbone: Backbone,
    *,
    num_fecs: int = 2000,
    granularity: Granularity = Granularity.GROUP,
    buggy: bool = False,
    seed: int = 59,
    scenario_id: str = "refactor-sweep",
) -> SweepScenario:
    """A no-op refactor that must stay a no-op under every contingency.

    The buggy variant misroutes one class (renames a node of its graph),
    which is spec-visible on any snapshot: ``nochange`` compares the class
    against itself, so whatever the contingency did to its paths, the
    perturbation is a difference.
    """
    rng = random.Random(seed)
    fecs = scale_fec_list(backbone, num_fecs=num_fecs)
    victim = fecs[rng.randrange(len(fecs))].fec_id

    def change(pre: Snapshot) -> tuple[Snapshot, bool]:
        post = pre.copy(name=f"{pre.name}-post")
        if buggy:
            graph = pre.graph(victim)
            node = sorted(graph.nodes)[0]
            post.replace(victim, graph.coarsen({node: f"{node}-misrouted"}, pre.granularity))
        return post, not buggy

    return SweepScenario(
        scenario_id=scenario_id,
        archetype="refactor",
        description="no-op refactor" + (" that misroutes one class (bug)" if buggy else ""),
        backbone=backbone,
        fecs=fecs,
        spec=nochange(),
        change=change,
        granularity=granularity,
        buggy=buggy,
    )


def decommission_sweep_scenario(
    backbone: Backbone,
    *,
    num_fecs: int = 2000,
    granularity: Granularity = Granularity.GROUP,
    region: str | None = None,
    buggy: bool = False,
    seed: int = 59,
    scenario_id: str = "decommission-sweep",
) -> SweepScenario:
    """A prefix decommission that must drop traffic under every contingency.

    The buggy variant keeps forwarding the traffic it was supposed to drop.
    Expectation subtlety: under a contingency that already blackholes the
    prefix's traffic (its pre paths are all ``drop``), keeping "forwarding"
    it satisfies the spec — dropped is dropped — so the expectation is
    computed from the degraded snapshot, not from the bug flag.
    """
    rng = random.Random(seed)
    regions = backbone.regions()
    region = region or rng.choice(regions)
    prefixes = backbone.region_prefixes.get(region)
    if not prefixes:
        raise WorkloadError(f"region {region!r} originates no prefixes")
    prefix = str(prefixes[0])
    predicate = DstPrefixWithin(prefix)
    dealloc = atomic(any_hops(), drop(), name="dealloc")
    policy = SpecPolicy(
        default=nochange(),
        guarded=[PSpec(predicate, dealloc, name=f"dealloc-{region}")],
    )
    fecs = scale_fec_list(backbone, num_fecs=num_fecs)
    matched_ids = [fec.fec_id for fec in fecs if predicate.matches(fec)]
    if not matched_ids:
        raise WorkloadError(f"no traffic class is destined to {prefix}")

    def change(pre: Snapshot) -> tuple[Snapshot, bool]:
        dropped = make_drop_graph(granularity=pre.granularity)
        post = pre.copy(name=f"{pre.name}-post")
        holds = True
        for fec_id in matched_ids:
            if buggy:
                # Still forwarding: only a violation where the degraded
                # network was actually delivering the traffic.
                if set(pre.graph(fec_id).nodes) != {DROP}:
                    holds = False
            else:
                post.replace(fec_id, dropped)
        return post, holds

    return SweepScenario(
        scenario_id=scenario_id,
        archetype="decommission",
        description=(
            f"decommission {prefix}"
            + (" but keep forwarding it (bug)" if buggy else "")
        ),
        backbone=backbone,
        fecs=fecs,
        spec=policy,
        change=change,
        granularity=granularity,
        buggy=buggy,
    )


# ----------------------------------------------------------------------
# Failure-model conveniences and the seeded scenario generator
# ----------------------------------------------------------------------
def interconnect_maintenance_sets(backbone: Backbone) -> list[Contingency]:
    """Planned-maintenance contingencies severing whole region interconnects.

    One contingency per connected region pair, failing *every* link bundle
    between the two regions' border groups — the unit a real maintenance
    window drains.  Unlike single-bundle failures (absorbed by parallel
    redundancy at group level), a severed interconnect genuinely reroutes
    transit traffic, so these contingencies exhibit new forwarding
    behaviour for the sweep to dedup.
    """
    region_of = {router.name: router.region for router in backbone.topology.routers()}
    by_region_pair: dict[tuple[str, str], list[LinkPair]] = {}
    for a, b in backbone.topology.link_bundles():
        region_a, region_b = region_of[a], region_of[b]
        if region_a != region_b:
            key = (min(region_a, region_b), max(region_a, region_b))
            by_region_pair.setdefault(key, []).append((a, b))
    return maintenance_link_sets(
        (by_region_pair[key] for key in sorted(by_region_pair)), prefix="interconnect"
    )


def intra_region_bundles(backbone: Backbone, *, tiers: tuple[str, str] = ("agg", "core")) -> list[LinkPair]:
    """One representative intra-region link bundle per region, sorted.

    Selects each region's first-``tiers[0]``-to-first-``tiers[1]`` bundle
    (``rN-agg0 ~ rN-core0`` by default) — the candidate set the k≥2 sweeps
    and the ``bench_k2_sweep`` benchmark combine over.  Intra-region
    aggregation-to-core bundles are the interesting k=2 unit: with anycast
    origination at every aggregation router and full-mesh ECMP, each
    failure flips a region-wide slice of traffic, so pairs of them exhibit
    genuinely new joint forwarding behaviour instead of degenerating to
    the union of the singles.
    """
    region_of = {router.name: router.region for router in backbone.topology.routers()}
    wanted: set[LinkPair] = set()
    for region in backbone.regions():
        first = backbone.routers_in(region, tiers[0])
        second = backbone.routers_in(region, tiers[1])
        if first and second:
            pair = (first[0], second[0])
            wanted.add((min(pair), max(pair)))
    return sorted(
        {
            (min(a, b), max(a, b))
            for a, b in backbone.topology.link_bundles()
            if region_of[a] == region_of[b]
            and (min(a, b), max(a, b)) in wanted
        }
    )


def generate_sweep_scenarios(
    backbone: Backbone,
    *,
    count: int = 6,
    num_fecs: int = 500,
    granularity: Granularity = Granularity.ROUTER,
    seed: int = 67,
) -> list[SweepScenario]:
    """A seeded mix of sweep scenarios, buggy variants included.

    Scenario ``i`` is a pure function of ``(seed, count, i)`` (the sorted
    per-scenario seed schedule of the change dataset), so tests and
    benchmarks can regenerate any slice independently.  Roughly half the
    scenarios are compliant drains; the rest split between refactors,
    decommissions and their buggy variants.
    """
    schedule_rng = random.Random(seed)
    scenario_seeds = sorted(schedule_rng.randrange(2**32) for _ in range(count))
    regions = backbone.regions()
    scenarios: list[SweepScenario] = []
    for index in range(count):
        rng = random.Random(scenario_seeds[index])
        scenario_id = f"sweep-{index:03d}"
        slot = rng.random()
        buggy = rng.random() < 0.4
        if slot < 0.5:
            from_region, to_region = rng.sample(regions, 2)
            scenarios.append(
                drain_sweep_scenario(
                    backbone,
                    num_fecs=num_fecs,
                    granularity=granularity,
                    from_region=from_region,
                    to_region=to_region,
                    buggy=buggy,
                    seed=scenario_seeds[index],
                    scenario_id=scenario_id,
                )
            )
        elif slot < 0.75:
            scenarios.append(
                refactor_sweep_scenario(
                    backbone,
                    num_fecs=num_fecs,
                    granularity=granularity,
                    buggy=buggy,
                    seed=scenario_seeds[index],
                    scenario_id=scenario_id,
                )
            )
        else:
            scenarios.append(
                decommission_sweep_scenario(
                    backbone,
                    num_fecs=num_fecs,
                    granularity=granularity,
                    buggy=buggy,
                    seed=scenario_seeds[index],
                    scenario_id=scenario_id,
                )
            )
    return scenarios
