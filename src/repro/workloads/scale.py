"""The ``scale`` workload profile: backbone-scale changes with realistic duplication.

The paper's evaluation network carries on the order of 10^6 traffic classes,
but a change only ever touches a sliver of them: most classes keep their
forwarding behaviour bit-for-bit, and the touched ones move in groups (all
classes entering at one router towards one region follow the same DAG).  This
module generates that regime at 10^5+ classes on a laptop:

* flow equivalence classes fan out over (ingress router, destination region)
  combinations — many classes per combination, as NetFlow aggregation
  produces — so the *distinct* forwarding graphs number in the hundreds
  while the classes number in the hundreds of thousands;
* the snapshot is built with one simulator trace per combination and shared
  graph objects (the snapshot's interning store collapses the rest);
* the change shifts one region's worth of traffic (a
  :func:`~repro.workloads.changes.traffic_shift` off a region's border
  routers), leaving everything else untouched.

``benchmarks/bench_scale_throughput.py`` drives this profile and reports
FECs/sec, the setup-vs-check split and peak RSS; the CI bench job runs a
CI-sized population through the same path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.rela.locations import Granularity
from repro.snapshots.fec import FlowEquivalenceClass
from repro.snapshots.snapshot import Snapshot
from repro.workloads.backbone import Backbone, BackboneParams, generate_backbone
from repro.workloads.changes import ChangeScenario, traffic_shift


@dataclass(slots=True)
class ScaleProfile:
    """Knobs of the backbone-scale workload."""

    #: Total flow equivalence classes in the snapshot (the headline axis).
    num_fecs: int = 100_000
    #: Geographic regions of the underlying backbone.
    regions: int = 8
    #: Routers per group (agg/core/border) in each region.
    routers_per_group: int = 2
    #: Parallel link members between connected routers.
    parallel_links: int = 2
    #: Customer prefixes originated per region.
    prefixes_per_region: int = 2
    #: Seed for backbone generation.
    seed: int = 31

    def __post_init__(self) -> None:
        if self.num_fecs < 1:
            raise WorkloadError("the scale profile needs at least one traffic class")

    def backbone_params(self) -> BackboneParams:
        return BackboneParams(
            regions=self.regions,
            routers_per_group=self.routers_per_group,
            parallel_links=self.parallel_links,
            prefixes_per_region=self.prefixes_per_region,
            seed=self.seed,
        )


def scale_backbone(profile: ScaleProfile | None = None) -> Backbone:
    """The backbone underlying the scale workload."""
    profile = profile or ScaleProfile()
    return generate_backbone(profile.backbone_params())


def scale_fec_list(backbone: Backbone, *, num_fecs: int) -> list[FlowEquivalenceClass]:
    """The scale workload's traffic classes, without simulating them.

    Classes are distributed round-robin over every (source region, ingress
    router, destination region) combination, all aimed at the destination
    region's first customer prefix.  Contingency sweeps consume the raw
    class list (they re-simulate it once per failure); snapshot builders
    pass it to :meth:`Simulator.snapshot`.
    """
    regions = backbone.regions()
    combos: list[tuple[str, str, str]] = []
    for src_region in regions:
        ingresses = backbone.ingress_routers(src_region)
        if not ingresses:
            raise WorkloadError(f"region {src_region} has no ingress routers")
        for dst_region in regions:
            if src_region == dst_region:
                continue
            for ingress in ingresses:
                combos.append((src_region, dst_region, ingress))

    fecs: list[FlowEquivalenceClass] = []
    for index in range(num_fecs):
        src_region, dst_region, ingress = combos[index % len(combos)]
        fecs.append(
            FlowEquivalenceClass(
                fec_id=f"fec-{index:07d}",
                dst_prefix=str(backbone.region_prefixes[dst_region][0]),
                src_prefix=f"172.{16 + index % 16}.{(index // 16) % 256}.0/24",
                ingress=ingress,
                metadata={"src_region": src_region, "dst_region": dst_region},
            )
        )
    return fecs


def generate_scale_snapshot(
    backbone: Backbone,
    *,
    num_fecs: int,
    name: str = "pre",
) -> Snapshot:
    """A ``num_fecs``-class snapshot with realistic graph duplication.

    :meth:`Simulator.snapshot` memoizes traces by (ingress, destination),
    so each :func:`scale_fec_list` combination is simulated **once** and
    every class of the combination shares that one interned graph.
    Distinct graphs therefore scale with the topology, not with
    ``num_fecs`` — the regime the paper's 10^6-class network exhibits.
    """
    fecs = scale_fec_list(backbone, num_fecs=num_fecs)
    return backbone.simulator().snapshot(fecs, name=name, granularity=Granularity.ROUTER)


def generate_scale_change(profile: ScaleProfile | None = None) -> ChangeScenario:
    """A compliant backbone-scale change: one region's traffic shifted.

    Most classes are untouched; the classes whose paths traverse the border
    routers of the last region move onto the border routers of the first —
    the shape of a real maintenance drain.  The spec is the shift branch
    followed by ``nochange``, so verifying the scenario touches every class
    while the distinct (pre graph, post graph) pairs stay topology-sized.
    """
    profile = profile or ScaleProfile()
    backbone = scale_backbone(profile)
    pre = generate_scale_snapshot(backbone, num_fecs=profile.num_fecs, name="scale-pre")
    regions = backbone.regions()
    return traffic_shift(
        pre,
        backbone.routers_in(regions[-1], "border"),
        backbone.routers_in(regions[0], "border"),
        change_id="scale-shift",
    )
