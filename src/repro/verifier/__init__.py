"""The Rela relational verification engine (paper Section 6)."""

from repro.verifier.contingency import (
    Contingency,
    ContingencyResult,
    ContingencySweep,
    SweepReport,
    baseline_contingency,
    k_link_failures,
    maintenance_link_sets,
    single_link_failures,
)
from repro.verifier.counterexample import (
    BranchViolation,
    Counterexample,
    render_path,
    render_path_set,
    rewrite_hash,
)
from repro.verifier.engine import (
    CompiledBranch,
    CompiledSpec,
    VerificationOptions,
    compile_spec,
    verify_change,
)
from repro.verifier.report import StreamReport, VerificationReport
from repro.verifier.runtime import (
    CheckFailure,
    ExecutionResult,
    ResilientPool,
    execute_checks,
)
from repro.verifier.session import VerificationSession, verify_stream
from repro.verifier.state_automata import StateAutomatonBuilder, build_alphabet

__all__ = [
    "CheckFailure",
    "ExecutionResult",
    "ResilientPool",
    "execute_checks",
    "verify_change",
    "VerificationSession",
    "verify_stream",
    "Contingency",
    "ContingencyResult",
    "ContingencySweep",
    "SweepReport",
    "baseline_contingency",
    "single_link_failures",
    "k_link_failures",
    "maintenance_link_sets",
    "VerificationOptions",
    "VerificationReport",
    "StreamReport",
    "CompiledSpec",
    "CompiledBranch",
    "compile_spec",
    "Counterexample",
    "BranchViolation",
    "render_path",
    "render_path_set",
    "rewrite_hash",
    "StateAutomatonBuilder",
    "build_alphabet",
]
