"""Counterexample records and rendering (paper Section 6.3, Table 1).

When a change violates its Rela spec, the verifier reports, per offending
flow equivalence class:

* the FEC descriptor;
* its pre-change and post-change forwarding paths;
* one *reason* per violated sub-spec: the name of the sub-spec, the path set
  it expected and the path set observed (with the ``#`` placeholder that the
  ``any`` translation introduces rewritten back into the user's own path
  expression, so reasons read like the paper's Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

Path = tuple[str, ...]


def render_path(path: Path) -> str:
    """Human-readable rendering of a path ( ``x1-A1-A2-D1`` )."""
    return "-".join(path) if path else "ε"


def render_path_set(paths: list[Path] | set[Path]) -> str:
    """Render a set of paths as ``{p1, p2, ...}``."""
    rendered = sorted(render_path(path) for path in paths)
    return "{" + ", ".join(rendered) + "}"


def rewrite_hash(path: Path, expansion: str | None) -> Path:
    """Undo the ``#`` rewriting introduced by the ``any`` modifier.

    ``expansion`` is the textual form of the ``any`` target for the violated
    sub-spec; each ``#`` hop is replaced by that text so reasons are phrased
    in terms the spec author wrote.
    """
    if expansion is None:
        return path
    return tuple(expansion if hop == "#" else hop for hop in path)


@dataclass(slots=True)
class BranchViolation:
    """One violated sub-spec for one flow equivalence class."""

    #: Name of the violated sub-spec (e.g. ``"e2e"`` or ``"nochange"``).
    branch: str
    #: Paths the spec expected in the post-change network but that are absent.
    expected: list[Path] = field(default_factory=list)
    #: Paths observed in the post-change network that the spec does not allow.
    observed: list[Path] = field(default_factory=list)

    def reason(self) -> str:
        """The Table 1 style "cause of violation" string."""
        return f"{self.branch}: {render_path_set(self.expected)} ≠ {render_path_set(self.observed)}"


@dataclass(slots=True)
class Counterexample:
    """One flow equivalence class that violates the change specification."""

    fec_id: str
    fec_description: str
    pre_paths: list[Path]
    post_paths: list[Path]
    violations: list[BranchViolation] = field(default_factory=list)

    @property
    def branches(self) -> list[str]:
        """Names of all violated sub-specs."""
        return [violation.branch for violation in self.violations]

    def reason(self) -> str:
        """All per-branch reasons joined for display."""
        return "; ".join(violation.reason() for violation in self.violations)

    def as_row(self) -> tuple[str, str, str, str]:
        """A row in the Table 1 layout: FEC, pre paths, post paths, reason."""
        return (
            self.fec_description,
            render_path_set(self.pre_paths),
            render_path_set(self.post_paths),
            self.reason(),
        )

    def __str__(self) -> str:
        fec, pre, post, reason = self.as_row()
        return f"{fec}  pre={pre}  post={post}  cause: {reason}"
