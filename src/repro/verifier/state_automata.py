"""Construction of ``PreState`` / ``PostState`` automata from forwarding graphs.

This implements the snapshot half of Section 6.1: forwarding DAGs are turned
into FSAs (vertices → states, edges → transitions, sources fed from a fresh
initial state, sinks accepting), optionally after coarsening the graph to the
granularity requested by the specification (interface → router → group).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.alphabet import Alphabet
from repro.automata.fsa import FSA
from repro.errors import VerificationError
from repro.rela.locations import Granularity, LocationDB
from repro.snapshots.forwarding_graph import ForwardingGraph

_ORDER = {Granularity.INTERFACE: 0, Granularity.ROUTER: 1, Granularity.GROUP: 2}


@dataclass(slots=True)
class StateAutomatonBuilder:
    """Builds snapshot automata at a requested analysis granularity.

    Attributes
    ----------
    alphabet:
        Shared alphabet for the verification run.  Every location produced by
        granularity conversion is interned into it.
    granularity:
        The granularity at which the specification reasons about paths.
    db:
        Location database used to coarsen node names when the forwarding
        data is finer-grained than the specification.  It may be ``None``
        when no conversion is needed.
    """

    alphabet: Alphabet
    granularity: Granularity = Granularity.ROUTER
    db: LocationDB | None = None

    def convert(self, graph: ForwardingGraph) -> ForwardingGraph:
        """Coarsen ``graph`` to the builder's granularity if necessary."""
        if graph.granularity == self.granularity:
            return graph
        if _ORDER[self.granularity] < _ORDER[graph.granularity]:
            raise VerificationError(
                f"cannot refine {graph.granularity.value}-level forwarding data to "
                f"{self.granularity.value} granularity"
            )
        if self.db is None:
            raise VerificationError(
                "granularity conversion requires a LocationDB with the coarsening map"
            )
        mapping = self.db.coarsening_map(graph.granularity, self.granularity)
        return graph.coarsen(mapping, self.granularity)

    def build(self, graph: ForwardingGraph) -> FSA:
        """Convert a forwarding graph into the snapshot FSA."""
        return self.convert(graph).to_fsa(self.alphabet)


def build_alphabet(
    *snapshots,
    db: LocationDB | None = None,
    granularity: Granularity = Granularity.ROUTER,
    extra_symbols: set[str] | None = None,
) -> Alphabet:
    """Create the shared alphabet for a verification run.

    The alphabet must contain every location that either snapshot or the
    specification can mention *before* any complement is compiled, so we
    gather: all database names at the analysis granularity, all node names of
    both snapshots (coarsened when needed), and any extra symbols mentioned
    only by the specification.
    """
    alphabet = Alphabet()
    if db is not None:
        for name in sorted(db.names_at(granularity)):
            alphabet.intern(name)
    for snapshot in snapshots:
        if snapshot is None:
            continue
        names = snapshot.locations()
        if db is not None and snapshot.granularity != granularity:
            mapping = db.coarsening_map(snapshot.granularity, granularity)
            names = {mapping.get(name, name) for name in names}
        for name in sorted(names):
            alphabet.intern(name)
    for name in sorted(extra_symbols or ()):
        alphabet.intern(name)
    return alphabet
