"""The Rela verification engine (paper Section 6).

The engine ties the whole pipeline together, mirroring the paper's
implementation strategy:

1. the Rela spec (or prefix-guarded spec policy) is compiled **once** into
   pre-change and post-change relation transducers (plus one transducer pair
   per ``else`` branch, used for counterexample attribution);
2. each flow equivalence class is checked **independently**: its forwarding
   graphs become ``PreState``/``PostState`` automata at the requested
   granularity, the relations are applied via the image operation, and the
   resulting path sets are compared;
3. violations are reported per FEC with pre/post paths and the violated
   sub-spec (Section 6.3); classes can be checked in parallel worker
   processes, as the paper does for its 10^6-class backbone.

Three engine-level optimizations keep backbone-scale runs cheap:

* **Dedup-first grouping**: a verdict depends only on the compiled spec and
  the pre/post forwarding graphs, and snapshots intern their graphs (see
  :mod:`repro.snapshots.graphstore`), so FECs are grouped by
  ``(spec_key, pre ref, post ref)`` with integer comparisons — no per-FEC
  re-hashing — and each distinct graph pair is checked once.  The thousands
  of identical or unchanged graphs in a backbone change share one check,
  generalizing the preserve-only fast path to every spec; memoized
  counterexamples are re-attributed to each member FEC.
* **Streaming the all-pass common case**: per-FEC descriptions
  (``str(fec)``) and counterexample relabeling are built lazily, only for
  violating FECs, so a change over 10^5 classes that holds allocates
  O(#unique graph pairs), not O(#FECs).
* **Initializer-based workers with an id-indexed graph table**: the compiled
  specs, builder, options and the table of *distinct* graphs are shipped to
  each worker process once via the ``ProcessPoolExecutor`` initializer;
  work batches carry only ``(fec_id, spec_key, pre id, post id)`` tuples —
  each graph crosses the process boundary exactly once, however many FECs
  share it.  Results are streamed back with ``as_completed`` (no
  head-of-line blocking); the report is sorted at the end so the output is
  order-independent.  Since the resilience restructuring the execution
  itself — serial and pooled, with per-check deadlines/retries, crash
  recovery and graceful degradation — lives in
  :mod:`repro.verifier.runtime`; this module contributes the check function
  and the work-list layout.

Since the session restructuring, the engine's *lifecycle* lives in
:mod:`repro.verifier.session`: a :class:`~repro.verifier.session.VerificationSession`
owns the cross-epoch graph store, the compiled-spec contexts and the
persistent verdict cache, and :func:`verify_change` is a thin session of
length 1 (one cold ``advance``).  This module keeps the per-epoch
machinery the session drives: spec compilation, the single-FEC check, and
the serial/worker execution of a deduplicated work list.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.automata.alphabet import Alphabet
from repro.automata.equivalence import compare
from repro.automata.fsa import FSA
from repro.automata.fst import FST
from repro.automata.lazy import LazyFST, LazyUnion
from repro.errors import VerificationError
from repro.rela.compile import branch_relations, hash_expansions, post_relation, pre_relation, zone
from repro.rela.locations import Granularity, LocationDB
from repro.rela.modifiers import Preserve
from repro.rela.pspec import SpecPolicy
from repro.rela.spec import AtomicSpec, ElseSpec, RelaSpec, SeqSpec, flatten_else
from repro.rir import RIRContext, compile_rel, compile_rel_lazy
from repro.rir import ast as rir
from repro.snapshots.forwarding_graph import ForwardingGraph
from repro.snapshots.snapshot import Snapshot
from repro.verifier.counterexample import BranchViolation, Counterexample, rewrite_hash
from repro.verifier.report import VerificationReport
from repro.verifier.runtime import ExecutionResult, execute_checks
from repro.verifier.state_automata import StateAutomatonBuilder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.testing.faults import FaultPlan


@dataclass(slots=True)
class VerificationOptions:
    """Tunable knobs of a verification run."""

    #: Granularity at which paths are compared (paper Figure 7's sweep axis).
    granularity: Granularity = Granularity.ROUTER
    #: Maximum number of witness paths per violated assertion.
    max_witnesses: int = 10
    #: Bound on enumerated pre/post paths attached to counterexamples.
    max_paths: int = 50
    #: Bound on witness path length during extraction.
    max_witness_length: int = 64
    #: Worker processes; 1 means run serially in-process.
    workers: int = 1
    #: Attach full counterexample detail (set False for timing-only runs).
    collect_counterexamples: bool = True
    #: Skip automaton construction for preserve-only specs when the pre and
    #: post forwarding graphs are structurally identical (sound because the
    #: pre- and post-relations of preserve-only specs coincide), and reuse
    #: the pre-state FSA as the post-state FSA for identical graphs under
    #: any spec.  Set False to force fully independent per-side work (used
    #: by benchmarks that measure the unshortcut automata path).
    fast_path_identical_graphs: bool = True
    #: Check each distinct (spec, pre graph, post graph) combination once
    #: and share the verdict across FECs with identical fingerprints.  Set
    #: False to force one independent check per FEC.
    memoize_fec_checks: bool = True
    #: Compile spec relations as delayed-operation DAGs (lazy composition /
    #: union / complement-zone identities) that are only forced at the image
    #: decision boundary.  Set False to materialize every relation FST
    #: eagerly, as the seed implementation did — kept as the reference
    #: oracle; deep ``else`` chains (30+ atomic branches) are intractable on
    #: the eager path.
    lazy_spec_compilation: bool = True
    #: Wall-clock budget (seconds) for one FEC check; ``None`` disables the
    #: per-check deadline.  Enforced with ``SIGALRM`` where available, on
    #: the serial path and inside worker processes alike; a check that keeps
    #: exceeding its budget is retried, then recorded as an *unknown*
    #: :class:`~repro.verifier.runtime.CheckFailure`.
    check_timeout: float | None = None
    #: Retry budget per check for transient failures (exceptions, timeouts);
    #: also bounds how many worker deaths a single check may cause before it
    #: is declared poisonous.  0 disables retries.
    max_retries: int = 2
    #: Base of the exponential retry backoff in seconds (attempt *n* sleeps
    #: ``retry_backoff * 2**(n-1)``, capped at 2s).  0 retries immediately.
    retry_backoff: float = 0.05
    #: Degrade gracefully: record failed checks as ``unknown`` outcomes and
    #: fall back to serial execution after repeated pool loss.  Set False
    #: (CLI ``--no-degrade``) to raise
    #: :class:`~repro.errors.DegradedExecutionError` at the first check the
    #: runtime cannot complete.
    allow_degraded: bool = True
    #: Worker-pool rebuilds tolerated after ``BrokenProcessPool`` before the
    #: remaining work falls back to serial in-process execution.
    max_pool_rebuilds: int = 8
    #: Deterministic fault-injection schedule
    #: (:class:`repro.testing.faults.FaultPlan`) applied at the check seam,
    #: worker-side and serial alike.  Test/benchmark harness only; ``None``
    #: (the default) injects nothing.
    fault_plan: FaultPlan | None = None


@dataclass(slots=True)
class CompiledBranch:
    """One ``else`` branch, compiled on demand for counterexample attribution.

    Branch transducers are only needed once the *overall* equation of a flow
    equivalence class fails, so the all-pass common case never pays for
    them: this holds the branch's shadowed RIR relations and compiles the
    transducers on first access (memoized thereafter, including inside
    worker processes, each of which owns its own copy).
    """

    name: str
    pre_rel: rir.Rel
    post_rel: rir.Rel
    hash_expansion: str | None
    ctx: RIRContext
    lazy: bool = True
    _pre_fst: FST | LazyFST | None = None
    _post_fst: FST | LazyFST | None = None

    @property
    def pre_fst(self) -> FST | LazyFST:
        if self._pre_fst is None:
            compiler = compile_rel_lazy if self.lazy else compile_rel
            self._pre_fst = compiler(self.pre_rel, self.ctx)
        return self._pre_fst

    @property
    def post_fst(self) -> FST | LazyFST:
        if self._post_fst is None:
            compiler = compile_rel_lazy if self.lazy else compile_rel
            self._post_fst = compiler(self.post_rel, self.ctx)
        return self._post_fst


@dataclass(slots=True)
class CompiledSpec:
    """A Rela spec compiled to relation transducers over a fixed alphabet."""

    spec: RelaSpec
    pre_fst: FST | LazyFST
    post_fst: FST | LazyFST
    branches: list[CompiledBranch] = field(default_factory=list)
    preserve_only: bool = False


def _union_rels(rels: list[FST | LazyFST]) -> FST | LazyFST:
    """The delayed union of compiled relations (a single relation unwrapped)."""
    if len(rels) == 1:
        return rels[0]
    return LazyUnion(*rels)


def _is_preserve_only(spec: RelaSpec) -> bool:
    if isinstance(spec, AtomicSpec):
        return isinstance(spec.modifier, Preserve)
    if isinstance(spec, SeqSpec):
        return all(_is_preserve_only(part) for part in spec.parts)
    if isinstance(spec, ElseSpec):
        return _is_preserve_only(spec.primary) and _is_preserve_only(spec.fallback)
    return False


def compile_spec(spec: RelaSpec, alphabet: Alphabet, *, lazy: bool = True) -> CompiledSpec:
    """Compile a Rela spec over ``alphabet`` (done once per run).

    With ``lazy=True`` (the default) the overall pre/post relations become
    delayed-operation DAGs — branch shadowing never materializes the
    product — and the per-branch attribution relations are recorded
    symbolically, to be compiled only on the first violation of that branch.
    ``lazy=False`` reproduces the fully eager seed behaviour and is kept as
    the reference oracle.
    """
    empty = FSA.empty_language(alphabet)
    ctx = RIRContext(alphabet, empty, empty)
    shadowed = branch_relations(spec)

    if lazy:
        # The nested Figure 4 translation R1 | (I(¬Z1) ∘ (R2 | ...)) is
        # algebraically the flat prioritized union of shadowed branches
        # ⋃_i I(¬(Z1|...|Z_{i-1})) ∘ R_i, because composed identity
        # restrictions intersect: I(¬Z1) ∘ I(¬Z2) = I(¬(Z1|Z2)).  The flat
        # form keeps a delayed product state at one (shadow, branch) pair
        # instead of stacking one zone automaton per enclosing else level,
        # and the n-ary LazyUnion dispatches in one hop.
        pre_fst = _union_rels([compile_rel_lazy(pre, ctx) for _, pre, _ in shadowed])
        post_fst = _union_rels([compile_rel_lazy(post, ctx) for _, _, post in shadowed])
    else:
        pre_fst = compile_rel(pre_relation(spec), ctx)
        post_fst = compile_rel(post_relation(spec), ctx)

    branches: list[CompiledBranch] = []
    for index, (branch, branch_pre, branch_post) in enumerate(shadowed):
        expansions = hash_expansions(branch)
        branches.append(
            CompiledBranch(
                name=branch.name or f"branch-{index + 1}",
                pre_rel=branch_pre,
                post_rel=branch_post,
                hash_expansion=str(expansions[0]) if expansions else None,
                ctx=ctx,
                lazy=lazy,
            )
        )
    return CompiledSpec(
        spec=spec,
        pre_fst=pre_fst,
        post_fst=post_fst,
        branches=branches,
        preserve_only=_is_preserve_only(spec),
    )


def _as_policy(spec_or_policy: RelaSpec | SpecPolicy) -> SpecPolicy:
    if isinstance(spec_or_policy, SpecPolicy):
        return spec_or_policy
    if isinstance(spec_or_policy, RelaSpec):
        return SpecPolicy(default=spec_or_policy)
    raise VerificationError(
        f"expected a RelaSpec or SpecPolicy, got {type(spec_or_policy).__name__}"
    )


def _graphs_identical(pre: ForwardingGraph, post: ForwardingGraph) -> bool:
    # Interned snapshots hand the verifier the *same* frozen object for
    # identical pre/post behaviour, so the common unchanged-FEC case is a
    # single identity test.
    if pre is post:
        return True
    return (
        pre.nodes == post.nodes
        and pre.edges == post.edges
        and pre.sources == post.sources
        and pre.sinks == post.sinks
    )


def _check_one_fec(
    compiled: CompiledSpec,
    fec_id: str,
    fec_description: str,
    pre_graph: ForwardingGraph,
    post_graph: ForwardingGraph,
    builder: StateAutomatonBuilder,
    options: VerificationOptions,
) -> Counterexample | None:
    """Check one flow equivalence class; return a counterexample on failure."""
    pre_converted = builder.convert(pre_graph)
    post_converted = builder.convert(post_graph)
    graphs_identical = options.fast_path_identical_graphs and _graphs_identical(
        pre_converted, post_converted
    )

    if compiled.preserve_only and graphs_identical:
        return None

    pre_fsa = pre_converted.to_fsa(builder.alphabet)
    post_fsa = pre_fsa if graphs_identical else post_converted.to_fsa(builder.alphabet)

    lhs = compiled.pre_fst.image(pre_fsa)
    rhs = compiled.post_fst.image(post_fsa)
    overall = compare(
        lhs,
        rhs,
        max_witnesses=options.max_witnesses,
        max_witness_length=options.max_witness_length,
    )
    if overall.equal:
        return None

    violations: list[BranchViolation] = []
    if options.collect_counterexamples:
        for branch in compiled.branches:
            branch_lhs = branch.pre_fst.image(pre_fsa)
            branch_rhs = branch.post_fst.image(post_fsa)
            branch_result = compare(
                branch_lhs,
                branch_rhs,
                max_witnesses=options.max_witnesses,
                max_witness_length=options.max_witness_length,
            )
            if branch_result.equal:
                continue
            violations.append(
                BranchViolation(
                    branch=branch.name,
                    expected=[
                        rewrite_hash(path, branch.hash_expansion)
                        for path in branch_result.missing
                    ],
                    observed=[
                        rewrite_hash(path, branch.hash_expansion)
                        for path in branch_result.unexpected
                    ],
                )
            )
        if not violations:
            # The overall equation failed but no single branch explains it
            # (possible for seq-composed specs without else); report the
            # overall diff under the spec's own name.
            violations.append(
                BranchViolation(
                    branch=compiled.spec.name or "spec",
                    expected=list(overall.missing),
                    observed=list(overall.unexpected),
                )
            )

    if not options.collect_counterexamples:
        return Counterexample(
            fec_id=fec_id, fec_description=fec_description, pre_paths=[], post_paths=[]
        )
    return Counterexample(
        fec_id=fec_id,
        fec_description=fec_description,
        pre_paths=sorted(
            pre_converted.path_set(
                max_paths=options.max_paths, max_length=options.max_witness_length
            )
        ),
        post_paths=sorted(
            post_converted.path_set(
                max_paths=options.max_paths, max_length=options.max_witness_length
            )
        ),
        violations=violations,
    )


def _relabel(
    counterexample: Counterexample, fec_id: str, fec_description: str
) -> Counterexample:
    """Re-attribute a memoized per-FEC result to another identical FEC."""
    if counterexample.fec_id == fec_id and counterexample.fec_description == fec_description:
        return counterexample
    return Counterexample(
        fec_id=fec_id,
        fec_description=fec_description,
        pre_paths=list(counterexample.pre_paths),
        post_paths=list(counterexample.post_paths),
        violations=list(counterexample.violations),
    )


def _policy_specs(policy: SpecPolicy) -> dict[str, RelaSpec]:
    """The specs a policy can apply, keyed the way work items reference them.

    The ``"default"`` / ``"guard-N"`` keys are the stable per-run naming the
    dedup grouping, the worker batches and the session's verdict cache all
    share.
    """
    specs: dict[str, RelaSpec] = {"default": policy.default}
    for index, guarded in enumerate(policy.guarded):
        specs[f"guard-{index}"] = guarded.spec
    return specs


def _spec_symbols(specs: Iterable[RelaSpec]) -> set[str]:
    """Every location symbol any spec (or any of its branches) can mention.

    These must be interned into the alphabet before any complement is
    compiled, so they are gathered up front and passed to
    :func:`~repro.verifier.state_automata.build_alphabet` as extra symbols.
    """
    symbols: set[str] = set()
    for spec in specs:
        symbols |= zone(spec).symbols()
        for branch in flatten_else(spec):
            symbols |= zone(branch).symbols()
    return symbols


def _execute_unique_checks(
    unique_work: list[tuple[str, str, int, int]],
    graph_table: Sequence[ForwardingGraph],
    compiled_specs: dict[str, CompiledSpec],
    builder: StateAutomatonBuilder,
    options: VerificationOptions,
) -> ExecutionResult:
    """Run the deduplicated work list through the fault-tolerant runtime.

    ``unique_work`` holds one ``(fec_id, spec_key, pre id, post id)`` item
    per distinct (spec, graph pair) combination, with ids indexing
    ``graph_table``.  Execution — serial or worker-pool, either way under
    the per-check deadline/retry guard and the crash-recovery loop — lives
    in :mod:`repro.verifier.runtime`; the returned
    :class:`~repro.verifier.runtime.ExecutionResult` carries per-FEC
    outcomes (pass, counterexample, or *unknown*
    :class:`~repro.verifier.runtime.CheckFailure`) plus degradation
    accounting for the report (callers restore determinism when folding
    the outcomes in).
    """
    return execute_checks(
        unique_work,
        graph_table,
        compiled_specs,
        builder,
        options,
        check_fn=_check_one_fec,
    )


def verify_change(
    pre: Snapshot,
    post: Snapshot,
    spec: RelaSpec | SpecPolicy,
    *,
    db: LocationDB | None = None,
    options: VerificationOptions | None = None,
) -> VerificationReport:
    """Verify a change (pre/post snapshot pair) against a Rela specification.

    Parameters
    ----------
    pre, post:
        The pre-change and post-change snapshots.
    spec:
        A :class:`~repro.rela.spec.RelaSpec` applied to every flow
        equivalence class, or a :class:`~repro.rela.pspec.SpecPolicy` that
        picks a spec per class based on prefix predicates.
    db:
        Location database; required when the snapshots are finer-grained than
        the requested analysis granularity.
    options:
        Engine options (granularity, witnesses, parallelism).

    Returns
    -------
    VerificationReport
        Overall verdict, counterexamples and per-sub-spec violation counts.

    Notes
    -----
    One-shot verification is a :class:`~repro.verifier.session.VerificationSession`
    of length 1: the session starts at ``pre`` with a cold cache and
    advances once to ``post``.  Operators validating a *sequence* of
    changes should hold a session open instead — recurring graph pairs and
    unchanged classes then hit the cross-epoch verdict cache.
    """
    from repro.verifier.session import VerificationSession

    session = VerificationSession(pre, spec, db=db, options=options)
    return session.advance(post)
