"""Aggregated verification reports.

A report collects the per-FEC results of one verification run: the overall
verdict, all counterexamples (Section 6.3), how many flow equivalence classes
violate each sub-spec (the numbers quoted in the Section 8.1 case study, such
as "17 counterexamples for nochange and 15 for e2e"), and timing statistics
for the performance evaluation (Figures 6 and 7).

Change streams add a second aggregation level: every
:meth:`~repro.verifier.session.VerificationSession.advance` call produces one
per-epoch :class:`VerificationReport` (augmented with the session's
cache-hit statistics), and the session folds them into a cumulative
:class:`StreamReport` so a whole maintenance window can be summarised —
epochs verified, violations, distinct checks actually executed versus served
from the cross-epoch verdict cache — in one object.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.rela.locations import Granularity
from repro.verifier.counterexample import Counterexample
from repro.verifier.runtime import CheckFailure


@dataclass(slots=True)
class VerificationReport:
    """The outcome of verifying one change (one snapshot pair) against a spec.

    Verdicts are three-valued.  :attr:`holds` stays the conservative boolean
    it always was — True only when every class was *proven* to satisfy its
    spec — while :attr:`verdict` distinguishes the two ways it can be False:
    ``"violated"`` (a counterexample exists) versus ``"unknown"`` (no
    violation found, but the resilience runtime could not complete every
    check; the unprovable classes are listed in :attr:`failed_checks`).
    """

    #: True when every flow equivalence class was proven to satisfy its
    #: governing spec (violations *and* unknown-verdict classes clear it).
    holds: bool = True
    #: Number of flow equivalence classes examined.
    total_fecs: int = 0
    #: Number of classes that violate the spec.
    violating_fecs: int = 0
    #: Full counterexample list (may be truncated by engine options).
    counterexamples: list[Counterexample] = field(default_factory=list)
    #: Violations per named sub-spec, e.g. ``{"e2e": 15, "nochange": 24}``.
    branch_violation_counts: Counter = field(default_factory=Counter)
    #: Wall-clock seconds spent, including automata construction.
    elapsed_seconds: float = 0.0
    #: Seconds spent before any check ran: alphabet construction, spec
    #: compilation and dedup grouping of FECs by interned graph refs.
    setup_seconds: float = 0.0
    #: Seconds spent checking the distinct (spec, pre graph, post graph)
    #: combinations (including worker-pool startup on parallel runs).
    check_seconds: float = 0.0
    #: Number of distinct (spec, pre graph, post graph) combinations in this
    #: run; the remaining ``total_fecs - unique_checks`` classes shared one
    #: of those verdicts through interned-graph dedup.
    unique_checks: int = 0
    #: Of :attr:`unique_checks`, how many verdicts were served from a
    #: verification session's cross-epoch cache instead of being executed.
    #: Always 0 for one-shot ``verify_change`` runs (a session of length 1
    #: starts with a cold cache).
    cached_checks: int = 0
    #: Analysis granularity used for this run.
    granularity: Granularity = Granularity.ROUTER
    #: Number of worker processes used (1 = serial).
    workers: int = 1
    #: Classes whose checks the resilience runtime could not complete —
    #: honest *unknown* verdicts, one :class:`CheckFailure` each.
    failed_checks: list[CheckFailure] = field(default_factory=list)
    #: Number of classes with an unknown verdict (``len(failed_checks)``
    #: after folding, kept as a counter for symmetry with
    #: :attr:`violating_fecs`).
    unknown_fecs: int = 0
    #: True when execution degraded: some check failed, or the worker pool
    #: was abandoned for the serial fallback.
    degraded: bool = False
    #: Worker pools rebuilt after ``BrokenProcessPool`` during this run.
    pool_rebuilds: int = 0
    #: In-process retry attempts consumed across all checks.
    retried_checks: int = 0
    #: True when repeated pool loss forced serial in-process execution.
    serial_fallback: bool = False

    @property
    def executed_checks(self) -> int:
        """Distinct checks that actually ran in this epoch (non-cached)."""
        return self.unique_checks - self.cached_checks

    @property
    def verdict(self) -> str:
        """Three-valued verdict: ``"holds"`` / ``"violated"`` / ``"unknown"``.

        ``"violated"`` wins over ``"unknown"`` when both apply: a found
        counterexample is decisive regardless of what else went wrong.
        """
        if self.holds:
            return "holds"
        if self.violating_fecs > 0:
            return "violated"
        return "unknown"

    @property
    def violating_branches(self) -> int:
        """Distinct sub-specs with at least one violating flow class."""
        return len(self.branch_violation_counts)

    @property
    def violation_fraction(self) -> float:
        """Fraction of examined flow classes with a proven violation."""
        if self.total_fecs == 0:
            return 0.0
        return self.violating_fecs / self.total_fecs

    @property
    def unknown_fraction(self) -> float:
        """Fraction of examined flow classes with an unknown verdict."""
        if self.total_fecs == 0:
            return 0.0
        return self.unknown_fecs / self.total_fecs

    @property
    def unknown_fec_ids(self) -> list[str]:
        """The flow classes with unknown verdicts, by id (sorted, unique).

        The actionable half of :attr:`unknown_fecs`: operators triaging a
        degraded run need *which* classes went unproven, not just how many.
        """
        return sorted({failure.fec_id for failure in self.failed_checks})

    def record(self, outcome: Counterexample | CheckFailure | None) -> None:
        """Fold one per-FEC result into the report."""
        self.total_fecs += 1
        if outcome is None:
            return
        self.holds = False
        if isinstance(outcome, CheckFailure):
            self.unknown_fecs += 1
            self.failed_checks.append(outcome)
            self.degraded = True
            return
        self.violating_fecs += 1
        self.counterexamples.append(outcome)
        for branch in outcome.branches:
            self.branch_violation_counts[branch] += 1

    def finalize(self) -> None:
        """Make the report independent of result arrival order.

        Parallel runs stream per-FEC results with ``as_completed``, so
        :meth:`record` may be called in any order; sorting counterexamples
        (and failed checks) by FEC identifier gives every run (serial,
        parallel, memoized, degraded) the same deterministic report.
        """
        self.counterexamples.sort(key=lambda counterexample: counterexample.fec_id)
        self.failed_checks.sort(key=lambda failure: failure.fec_id)

    def violations_for(self, branch: str) -> int:
        """Number of flow equivalence classes violating the named sub-spec."""
        return self.branch_violation_counts.get(branch, 0)

    def summary(self) -> str:
        """One-line result summary."""
        degraded_note = ""
        if self.unknown_fecs:
            degraded_note = f"; {self.unknown_fecs} classes unknown (checks failed)"
        elif self.degraded:
            degraded_note = "; degraded execution (serial fallback)"
        if self.holds:
            return (
                f"PASS: all {self.total_fecs} flow equivalence classes satisfy the "
                f"specification{degraded_note} "
                f"({self.elapsed_seconds:.2f}s, {self.granularity.value}-level)"
            )
        if self.violating_fecs == 0:
            return (
                f"UNKNOWN: {self.unknown_fecs} of {self.total_fecs} flow equivalence "
                f"classes could not be checked (no violations found) "
                f"({self.elapsed_seconds:.2f}s, {self.granularity.value}-level)"
            )
        per_branch = ", ".join(
            f"{branch}: {count}" for branch, count in sorted(self.branch_violation_counts.items())
        )
        return (
            f"FAIL: {self.violating_fecs} of {self.total_fecs} flow equivalence classes "
            f"violate the specification ({per_branch}){degraded_note} "
            f"({self.elapsed_seconds:.2f}s, {self.granularity.value}-level)"
        )

    def table(self, *, max_rows: int = 20) -> str:
        """Render counterexamples in the layout of the paper's Table 1."""
        header = ("FEC", "Pre-change paths", "Post-change paths", "Cause of violation")
        rows = [header]
        for counterexample in self.counterexamples[:max_rows]:
            rows.append(counterexample.as_row())
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        lines = []
        for index, row in enumerate(rows):
            lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
            if index == 0:
                lines.append("  ".join("-" * width for width in widths))
        omitted = len(self.counterexamples) - max_rows
        if omitted > 0:
            lines.append(f"... and {omitted} more counterexamples")
        return "\n".join(lines)


@dataclass(slots=True)
class StreamReport:
    """Cumulative outcome of a change stream verified through one session.

    One entry per :meth:`~repro.verifier.session.VerificationSession.advance`
    call, in arrival order, plus stream-level aggregates.  The per-epoch
    reports keep their full detail (counterexamples, branch counts, cache
    statistics); the stream report answers the maintenance-window questions:
    did every epoch hold, how much work did the cross-epoch cache absorb,
    and how fast did epochs verify end to end.

    Aggregates live in running counters, so a daemon-style session over an
    unbounded stream can cap the retained per-epoch detail
    (``max_retained_reports``, the session's ``report_history`` knob)
    without losing the stream-level totals.
    """

    #: The most recent per-epoch reports, in the order the session advanced
    #: (all of them unless ``max_retained_reports`` trims the history).
    epoch_reports: list[VerificationReport] = field(default_factory=list)
    #: Wall-clock seconds across all recorded epochs.
    elapsed_seconds: float = 0.0
    #: Retain at most this many recent per-epoch reports (None = all).
    max_retained_reports: int | None = None
    _epochs: int = 0
    _violating_epochs: int = 0
    _degraded_epochs: int = 0
    _unknown_epochs: int = 0
    _unknown_fecs: int = 0
    _total_fecs: int = 0
    _unique_checks: int = 0
    _cached_checks: int = 0

    def record(self, report: VerificationReport) -> None:
        """Fold one epoch's report into the stream totals."""
        self.epoch_reports.append(report)
        if self.max_retained_reports is not None:
            overflow = len(self.epoch_reports) - max(0, self.max_retained_reports)
            if overflow > 0:
                del self.epoch_reports[:overflow]
        self.elapsed_seconds += report.elapsed_seconds
        self._epochs += 1
        if report.violating_fecs > 0:
            self._violating_epochs += 1
        if report.degraded:
            self._degraded_epochs += 1
        if report.verdict == "unknown":
            self._unknown_epochs += 1
        self._unknown_fecs += report.unknown_fecs
        self._total_fecs += report.total_fecs
        self._unique_checks += report.unique_checks
        self._cached_checks += report.cached_checks

    @property
    def epochs(self) -> int:
        """Number of epochs verified so far."""
        return self._epochs

    @property
    def holds(self) -> bool:
        """True when every epoch *proved* its specification (no violations
        and no degraded epochs with unknown verdicts)."""
        return self._violating_epochs == 0 and self._degraded_epochs == 0

    @property
    def verdict(self) -> str:
        """Three-valued stream verdict: ``"holds"``/``"violated"``/``"unknown"``."""
        if self._violating_epochs > 0:
            return "violated"
        if self._degraded_epochs > 0:
            return "unknown"
        return "holds"

    @property
    def violating_epochs(self) -> int:
        """Number of epochs with at least one violating flow class."""
        return self._violating_epochs

    @property
    def degraded(self) -> bool:
        """True when any epoch ran degraded (failed checks or fallback)."""
        return self._degraded_epochs > 0

    @property
    def degraded_epochs(self) -> int:
        """Number of epochs that ran degraded."""
        return self._degraded_epochs

    @property
    def unknown_epochs(self) -> int:
        """Epochs whose verdict ended ``"unknown"`` (degraded, no violation)."""
        return self._unknown_epochs

    @property
    def violation_rate(self) -> float:
        """Fraction of epochs so far with a proven violation — the rolling
        outcome statistic the risk layer's *history* signal consumes."""
        if self._epochs == 0:
            return 0.0
        return self._violating_epochs / self._epochs

    @property
    def degraded_rate(self) -> float:
        """Fraction of epochs so far that ran degraded."""
        if self._epochs == 0:
            return 0.0
        return self._degraded_epochs / self._epochs

    @property
    def unknown_fecs(self) -> int:
        """Unknown-verdict flow-class results across all epochs."""
        return self._unknown_fecs

    @property
    def total_fecs(self) -> int:
        """Flow-equivalence-class checks across all epochs (with repeats)."""
        return self._total_fecs

    @property
    def unique_checks(self) -> int:
        """Distinct (spec, pre graph, post graph) combinations, summed."""
        return self._unique_checks

    @property
    def cached_checks(self) -> int:
        """Distinct combinations served from the cross-epoch verdict cache."""
        return self._cached_checks

    @property
    def executed_checks(self) -> int:
        """Distinct combinations that actually ran an automata check."""
        return self.unique_checks - self.cached_checks

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of distinct combinations served from the cache."""
        if self.unique_checks == 0:
            return 0.0
        return self.cached_checks / self.unique_checks

    @property
    def epochs_per_second(self) -> float:
        """End-to-end verification throughput over the recorded epochs."""
        if self.elapsed_seconds == 0.0:
            return 0.0
        return self.epochs / self.elapsed_seconds

    def summary(self) -> str:
        """One-line cumulative summary of the stream so far."""
        if self.holds:
            verdict = "PASS"
        elif self._violating_epochs > 0:
            verdict = f"FAIL ({self.violating_epochs} epochs)"
        else:
            verdict = f"UNKNOWN ({self.degraded_epochs} degraded epochs)"
        if self._violating_epochs > 0 and self._degraded_epochs > 0:
            verdict += f" [{self.degraded_epochs} degraded]"
        return (
            f"{verdict}: {self.epochs} epochs, {self.total_fecs} FEC checks, "
            f"{self.executed_checks} executed / {self.cached_checks} cached of "
            f"{self.unique_checks} unique graph-pair checks "
            f"({self.cache_hit_rate:.0%} cache hits, {self.elapsed_seconds:.2f}s, "
            f"{self.epochs_per_second:.1f} epochs/s)"
        )
