"""Aggregated verification reports.

A report collects the per-FEC results of one verification run: the overall
verdict, all counterexamples (Section 6.3), how many flow equivalence classes
violate each sub-spec (the numbers quoted in the Section 8.1 case study, such
as "17 counterexamples for nochange and 15 for e2e"), and timing statistics
for the performance evaluation (Figures 6 and 7).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.rela.locations import Granularity
from repro.verifier.counterexample import Counterexample


@dataclass(slots=True)
class VerificationReport:
    """The outcome of verifying one change (one snapshot pair) against a spec."""

    #: True when every flow equivalence class satisfies its governing spec.
    holds: bool = True
    #: Number of flow equivalence classes examined.
    total_fecs: int = 0
    #: Number of classes that violate the spec.
    violating_fecs: int = 0
    #: Full counterexample list (may be truncated by engine options).
    counterexamples: list[Counterexample] = field(default_factory=list)
    #: Violations per named sub-spec, e.g. ``{"e2e": 15, "nochange": 24}``.
    branch_violation_counts: Counter = field(default_factory=Counter)
    #: Wall-clock seconds spent, including automata construction.
    elapsed_seconds: float = 0.0
    #: Seconds spent before any check ran: alphabet construction, spec
    #: compilation and dedup grouping of FECs by interned graph refs.
    setup_seconds: float = 0.0
    #: Seconds spent checking the distinct (spec, pre graph, post graph)
    #: combinations (including worker-pool startup on parallel runs).
    check_seconds: float = 0.0
    #: Number of distinct (spec, pre graph, post graph) checks executed;
    #: the remaining ``total_fecs - unique_checks`` classes shared one of
    #: those verdicts through interned-graph dedup.
    unique_checks: int = 0
    #: Analysis granularity used for this run.
    granularity: Granularity = Granularity.ROUTER
    #: Number of worker processes used (1 = serial).
    workers: int = 1

    def record(self, counterexample: Counterexample | None) -> None:
        """Fold one per-FEC result into the report."""
        self.total_fecs += 1
        if counterexample is None:
            return
        self.holds = False
        self.violating_fecs += 1
        self.counterexamples.append(counterexample)
        for branch in counterexample.branches:
            self.branch_violation_counts[branch] += 1

    def finalize(self) -> None:
        """Make the report independent of result arrival order.

        Parallel runs stream per-FEC results with ``as_completed``, so
        :meth:`record` may be called in any order; sorting counterexamples by
        FEC identifier gives every run (serial, parallel, memoized) the same
        deterministic report.
        """
        self.counterexamples.sort(key=lambda counterexample: counterexample.fec_id)

    def violations_for(self, branch: str) -> int:
        """Number of flow equivalence classes violating the named sub-spec."""
        return self.branch_violation_counts.get(branch, 0)

    def summary(self) -> str:
        """One-line result summary."""
        if self.holds:
            return (
                f"PASS: all {self.total_fecs} flow equivalence classes satisfy the "
                f"specification ({self.elapsed_seconds:.2f}s, {self.granularity.value}-level)"
            )
        per_branch = ", ".join(
            f"{branch}: {count}" for branch, count in sorted(self.branch_violation_counts.items())
        )
        return (
            f"FAIL: {self.violating_fecs} of {self.total_fecs} flow equivalence classes "
            f"violate the specification ({per_branch}) "
            f"({self.elapsed_seconds:.2f}s, {self.granularity.value}-level)"
        )

    def table(self, *, max_rows: int = 20) -> str:
        """Render counterexamples in the layout of the paper's Table 1."""
        header = ("FEC", "Pre-change paths", "Post-change paths", "Cause of violation")
        rows = [header]
        for counterexample in self.counterexamples[:max_rows]:
            rows.append(counterexample.as_row())
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        lines = []
        for index, row in enumerate(rows):
            lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
            if index == 0:
                lines.append("  ".join("-" * width for width in widths))
        omitted = len(self.counterexamples) - max_rows
        if omitted > 0:
            lines.append(f"... and {omitted} more counterexamples")
        return "\n".join(lines)
