"""What-if contingency sweeps: k-failure verification under change.

The paper verifies that a proposed change preserves relational properties
between two snapshots of the *healthy* network.  Operators ask a second
question in the same breath: does the change stay safe when the network is
degraded — "does the drain still hold under any single link failure?"
Answering it naively multiplies the whole verification pipeline by the
number of contingencies: every failed link means a fresh routing
computation, a fresh snapshot pair and a fresh sweep over every flow
equivalence class.

This module turns that blowup into a dedup problem, which the interned
:class:`~repro.snapshots.graphstore.GraphStore` and the
:class:`~repro.verifier.session.VerificationSession` verdict cache already
know how to solve:

1. **Failure models** enumerate contingencies — all single-link failures
   (:func:`single_link_failures`), all k-link combinations over a candidate
   set (:func:`k_link_failures`), or explicit planned-maintenance link sets
   (:func:`maintenance_link_sets`).  The unit of failure is a whole link
   *bundle* (an unordered router pair): failing one parallel member never
   changes router-level forwarding.
2. **Derivation** builds each contingency's pre-change snapshot via the
   simulator's failure-aware entry points
   (:meth:`~repro.network.simulator.Simulator.under_failure` +
   :meth:`~repro.network.simulator.Simulator.derive_snapshot`): BGP/IGP/FIB
   state is recomputed once per contingency, but only the traffic classes
   whose baseline traces the failure can actually touch are re-traced —
   everything else reuses the baseline graph objects.  The change under
   test is then applied to the degraded snapshot, exactly as it would land
   on the degraded network.
3. **Shared interning**: every derived snapshot interns into one
   cross-contingency :class:`~repro.snapshots.graphstore.GraphStore`, so a
   forwarding behaviour exhibited under many contingencies resolves to one
   ref sweep-wide.
4. **One session**: a single :class:`~repro.verifier.session.VerificationSession`
   (rebased per contingency) drives the whole sweep, so each distinct
   ``(context, spec key, pre ref, post ref)`` verdict is computed once and
   served from cache for every other contingency exhibiting it.  Most
   failures do not touch most classes' graphs, so the sweep executes a
   small multiple of one contingency's unique checks instead of
   ``contingencies × unique-pairs-per-contingency`` — the
   :attr:`SweepReport.dedup_ratio` headline, gated in CI.

Per-contingency reports are byte-identical to naive one-shot
``verify_change`` runs over independently simulated snapshots (pinned by
``tests/verifier/test_contingency_sweep.py``).
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from itertools import combinations
from pathlib import Path

from repro.errors import StateVersionError, VerificationError
from repro.network.bgp import NetworkConfig
from repro.persist.checkpoint import Checkpoint
from repro.persist.digest import options_digest, stable_digest
from repro.network.simulator import Simulator, group_fec_combos
from repro.network.topology import Topology
from repro.rela.locations import Granularity, LocationDB
from repro.rela.pspec import SpecPolicy
from repro.rela.spec import RelaSpec
from repro.snapshots.fec import FlowEquivalenceClass
from repro.snapshots.graphstore import GraphStore
from repro.snapshots.snapshot import Snapshot
from repro.verifier.engine import VerificationOptions
from repro.verifier.report import VerificationReport
from repro.verifier.session import VerificationSession

#: An unordered router pair naming one link bundle.
LinkPair = tuple[str, str]

#: The change under test, as a transform of a (possibly degraded) pre-change
#: snapshot.  May return just the post snapshot, or ``(post, expect_holds)``
#: when the workload knows whether the change complies *on that snapshot*
#: (buggy variants are only spec-visible under contingencies that leave
#: detectable traffic behind).
ChangeFn = Callable[[Snapshot], "Snapshot | tuple[Snapshot, bool]"]


def _canonical_pair(pair: Iterable[str]) -> LinkPair:
    a, b = sorted(pair)
    return (a, b)


@dataclass(frozen=True, slots=True)
class Contingency:
    """One network condition to verify the change under."""

    contingency_id: str
    #: Failed link bundles, as canonical sorted pairs; empty = the healthy
    #: network (the baseline contingency).
    failed_links: tuple[LinkPair, ...] = ()
    description: str = ""

    @property
    def is_baseline(self) -> bool:
        return not self.failed_links

    def __str__(self) -> str:
        if self.is_baseline:
            return self.contingency_id
        failed = ", ".join(f"{a}~{b}" for a, b in self.failed_links)
        return f"{self.contingency_id} [{failed}]"


def baseline_contingency() -> Contingency:
    """The no-failure contingency (the healthy network)."""
    return Contingency(contingency_id="baseline", description="no failure")


def single_link_failures(
    topology: Topology, *, candidates: Iterable[LinkPair] | None = None
) -> list[Contingency]:
    """Every single-link-bundle failure (over ``candidates`` if given)."""
    pairs = _candidate_pairs(topology, candidates)
    return [
        Contingency(
            contingency_id=f"single-{a}~{b}",
            failed_links=((a, b),),
            description=f"link {a}~{b} down",
        )
        for a, b in pairs
    ]


def k_link_failures(
    topology: Topology,
    k: int,
    *,
    candidates: Iterable[LinkPair] | None = None,
    limit: int | None = None,
) -> list[Contingency]:
    """Every ``k``-combination of link-bundle failures over a candidate set.

    Combinations are enumerated in deterministic sorted order; ``limit``
    truncates the (combinatorially explosive) enumeration to its first N
    entries.  ``k=1`` degenerates to :func:`single_link_failures`.
    """
    if k < 1:
        raise VerificationError("k-link failure models need k >= 1")
    pairs = _candidate_pairs(topology, candidates)
    if k > len(pairs):
        raise VerificationError(
            f"cannot fail {k} links over a candidate set of {len(pairs)}"
        )
    contingencies: list[Contingency] = []
    for combo in combinations(pairs, k):
        if limit is not None and len(contingencies) >= limit:
            break
        tag = "+".join(f"{a}~{b}" for a, b in combo)
        contingencies.append(
            Contingency(
                contingency_id=f"k{k}-{tag}",
                failed_links=combo,
                description=f"links {tag} down",
            )
        )
    return contingencies


def maintenance_link_sets(
    link_sets: Iterable[Iterable[LinkPair]], *, prefix: str = "maint"
) -> list[Contingency]:
    """Explicit planned-maintenance contingencies, one per drained link set."""
    contingencies: list[Contingency] = []
    for index, link_set in enumerate(link_sets):
        failed = tuple(sorted(_canonical_pair(pair) for pair in link_set))
        if not failed:
            raise VerificationError("a maintenance link set cannot be empty")
        tag = "+".join(f"{a}~{b}" for a, b in failed)
        contingencies.append(
            Contingency(
                contingency_id=f"{prefix}-{index}",
                failed_links=failed,
                description=f"maintenance set {index}: {tag} drained",
            )
        )
    return contingencies


def _candidate_pairs(
    topology: Topology, candidates: Iterable[LinkPair] | None
) -> list[LinkPair]:
    if candidates is None:
        return topology.link_bundles()
    pairs = sorted({_canonical_pair(pair) for pair in candidates})
    bundles = set(topology.link_bundles())
    unknown = [pair for pair in pairs if pair not in bundles]
    if unknown:
        raise VerificationError(f"candidate links not in the topology: {unknown}")
    return pairs


# ----------------------------------------------------------------------
# Sweep results
# ----------------------------------------------------------------------
@dataclass(slots=True)
class ContingencyResult:
    """The verification outcome of the change under one contingency."""

    contingency: Contingency
    report: VerificationReport
    #: The workload's compliance expectation on this contingency's snapshot
    #: (None when the change transform does not state one).
    expected_holds: bool | None = None
    #: Seconds spent deriving this contingency's snapshots (routing
    #: recompute, affected-trace re-tracing, change application).
    derive_seconds: float = 0.0

    @property
    def holds(self) -> bool:
        return self.report.holds

    @property
    def verdict(self) -> str:
        """Three-valued per-contingency verdict (see the epoch report)."""
        return self.report.verdict


@dataclass(slots=True)
class SweepReport:
    """Aggregate outcome of a contingency sweep.

    Beyond the per-contingency verdicts, the report quantifies how much of
    the naive ``contingencies × unique-pairs-per-contingency`` work the
    cross-contingency dedup absorbed: :attr:`naive_checks` is what
    independent one-shot runs would each have executed,
    :attr:`executed_checks` is what the shared session actually ran, and
    :attr:`dedup_ratio` is their quotient (CI gates it as a hard floor).
    """

    results: list[ContingencyResult] = field(default_factory=list)
    #: Wall-clock seconds for the whole sweep, including baseline snapshot
    #: simulation and per-contingency derivation.
    elapsed_seconds: float = 0.0
    #: Distinct graphs in the shared cross-contingency store at sweep end.
    distinct_graphs: int = 0
    #: Seconds spent journaling checkpoint records — opening the journal,
    #: pickling unit records, flushing, and the closing fsync.  Zero when
    #: the sweep runs without a checkpoint.  This is the durability layer's
    #: *direct* cost, measured inside the run: a two-arm wall-clock
    #: comparison cannot resolve it against scheduler jitter.
    checkpoint_seconds: float = 0.0

    def record(self, result: ContingencyResult) -> None:
        self.results.append(result)

    @property
    def contingencies(self) -> int:
        return len(self.results)

    @property
    def holds(self) -> bool:
        """True when the change held under every contingency."""
        return all(result.holds for result in self.results)

    @property
    def verdict(self) -> str:
        """Three-valued sweep verdict: ``"holds"``/``"violated"``/``"unknown"``."""
        if self.violating_contingencies > 0:
            return "violated"
        if self.unknown_contingencies > 0:
            return "unknown"
        return "holds"

    @property
    def violating_contingencies(self) -> int:
        """Contingencies with at least one *proven* violating flow class."""
        return sum(1 for result in self.results if result.verdict == "violated")

    @property
    def unknown_contingencies(self) -> int:
        """Contingencies the runtime could not fully prove (no violation
        found, but some checks degraded to unknown verdicts)."""
        return sum(1 for result in self.results if result.verdict == "unknown")

    @property
    def degraded(self) -> bool:
        """True when any contingency ran degraded (failed checks/fallback)."""
        return any(result.report.degraded for result in self.results)

    @property
    def failed_checks(self) -> int:
        """Unknown-verdict flow-class results across the whole sweep."""
        return sum(result.report.unknown_fecs for result in self.results)

    def unproven(self) -> list[ContingencyResult]:
        """The contingencies the sweep completed but could not prove —
        the "119 verified, these 2 unknown" list operators act on."""
        return [result for result in self.results if result.verdict == "unknown"]

    @property
    def unknown_fec_ids(self) -> list[str]:
        """Flow classes with an unknown verdict under *any* contingency
        (sorted, unique) — the triage list for a degraded sweep."""
        unknown: set[str] = set()
        for result in self.results:
            unknown.update(result.report.unknown_fec_ids)
        return sorted(unknown)

    @property
    def baseline_result(self) -> ContingencyResult | None:
        """The healthy-network contingency's result, when the sweep ran one."""
        for result in self.results:
            if result.contingency.is_baseline:
                return result
        return None

    @property
    def failure_results(self) -> list[ContingencyResult]:
        """Results of the actual failure contingencies (baseline excluded)."""
        return [result for result in self.results if not result.contingency.is_baseline]

    @property
    def flipped_contingencies(self) -> int:
        """Failure contingencies with a proven-violated verdict — for a
        change that holds on the healthy baseline, the contingencies that
        *flip* its verdict (the risk layer's fragility numerator)."""
        return sum(1 for result in self.failure_results if result.verdict == "violated")

    @property
    def flip_fraction(self) -> float:
        """Fraction of failure contingencies with a violated verdict."""
        failures = self.failure_results
        if not failures:
            return 0.0
        return self.flipped_contingencies / len(failures)

    @property
    def expectation_mismatches(self) -> list[ContingencyResult]:
        """Results whose verdict contradicts the workload's expectation."""
        return [
            result
            for result in self.results
            if result.expected_holds is not None and result.holds != result.expected_holds
        ]

    @property
    def total_fecs(self) -> int:
        """Flow-class checks across all contingencies (with repeats)."""
        return sum(result.report.total_fecs for result in self.results)

    @property
    def naive_checks(self) -> int:
        """Distinct checks summed per contingency — the no-dedup cost."""
        return sum(result.report.unique_checks for result in self.results)

    @property
    def executed_checks(self) -> int:
        """Distinct checks the shared session actually executed."""
        return sum(result.report.executed_checks for result in self.results)

    @property
    def cached_checks(self) -> int:
        return sum(result.report.cached_checks for result in self.results)

    @property
    def dedup_ratio(self) -> float:
        """How many times cheaper the sweep was than independent runs."""
        if self.executed_checks == 0:
            return float("inf") if self.naive_checks else 1.0
        return self.naive_checks / self.executed_checks

    @property
    def derive_seconds(self) -> float:
        return sum(result.derive_seconds for result in self.results)

    @property
    def check_seconds(self) -> float:
        return sum(result.report.elapsed_seconds for result in self.results)

    def most_violating(self, count: int = 5) -> list[ContingencyResult]:
        """The contingencies with the most violating flow classes, worst first."""
        violating = [result for result in self.results if not result.holds]
        violating.sort(
            key=lambda result: (-result.report.violating_fecs, result.contingency.contingency_id)
        )
        return violating[:count]

    def summary(self) -> str:
        """One-line sweep summary with the dedup headline."""
        if self.holds:
            verdict = "PASS"
        elif self.violating_contingencies > 0:
            verdict = f"FAIL ({self.violating_contingencies} contingencies)"
        else:
            verdict = f"UNKNOWN ({self.unknown_contingencies} contingencies unproven)"
        if self.violating_contingencies > 0 and self.unknown_contingencies > 0:
            verdict += f" [{self.unknown_contingencies} unproven]"
        ratio = self.dedup_ratio
        ratio_text = "inf" if ratio == float("inf") else f"{ratio:.1f}x"
        return (
            f"{verdict}: {self.contingencies} contingencies, {self.total_fecs} FEC checks, "
            f"{self.executed_checks} executed / {self.cached_checks} cached of "
            f"{self.naive_checks} per-contingency unique checks "
            f"(dedup {ratio_text}, {self.distinct_graphs} distinct graphs, "
            f"{self.elapsed_seconds:.2f}s)"
        )


# ----------------------------------------------------------------------
# The sweep driver
# ----------------------------------------------------------------------
class ContingencySweep:
    """Verify one change under a family of failure contingencies.

    Parameters
    ----------
    topology, config:
        The network under study (the simulator substrate).
    fecs:
        The traffic classes every contingency snapshot covers.
    change:
        The change under test, as a snapshot transform (see :data:`ChangeFn`).
        It is applied to each contingency's *degraded* pre-change snapshot,
        exactly as the change automation would act on the degraded network.
    spec:
        The Rela spec (or prefix-guarded policy) the change must satisfy
        under every contingency.  One instance, shared sweep-wide, so the
        session can share compiled forms and cached verdicts.
    contingencies:
        Failure model output (see :func:`single_link_failures` and friends).
        The healthy-network baseline is prepended unless already present or
        ``include_baseline=False``.
    db, options, granularity:
        As for :func:`~repro.verifier.engine.verify_change`.  Passing the
        topology's location database keeps the alphabet signature stable
        across contingencies, which maximizes compiled-spec and verdict
        reuse (it is a performance knob only — reports are identical either
        way).
    """

    def __init__(
        self,
        topology: Topology,
        config: NetworkConfig,
        fecs: list[FlowEquivalenceClass],
        change: ChangeFn,
        spec: RelaSpec | SpecPolicy,
        contingencies: Iterable[Contingency],
        *,
        db: LocationDB | None = None,
        options: VerificationOptions | None = None,
        granularity: Granularity = Granularity.ROUTER,
        include_baseline: bool = True,
    ) -> None:
        self.topology = topology
        self.config = config
        self.fecs = fecs
        self.change = change
        self.spec = spec
        self.db = db
        self.options = options
        self.granularity = granularity
        self.contingencies = list(contingencies)
        #: Execution hook handed to the sweep-wide session (see
        #: :attr:`repro.verifier.session.VerificationSession.runner`); the
        #: verification service points it at a shared worker pool.  ``None``
        #: keeps the default per-call resilient pool.
        self.runner: Callable[..., object] | None = None
        if include_baseline and not any(c.is_baseline for c in self.contingencies):
            self.contingencies.insert(0, baseline_contingency())
        if not self.contingencies:
            raise VerificationError("a contingency sweep needs at least one contingency")

    def signature(self) -> str:
        """The sweep's run signature: what a checkpoint is bound to.

        Covers everything that determines per-contingency verdicts — the
        traffic classes, the contingency list, the change transform (by
        name), the spec (by content digest), the granularity and the
        verdict-relevant engine options.  Two sweeps with the same
        signature verify the same workload; resuming a checkpoint under a
        different signature is refused
        (:class:`~repro.errors.StateVersionError`).
        """
        return stable_digest(
            (
                "sweep/v1",
                [fec.fec_id for fec in self.fecs],
                [
                    (c.contingency_id, c.failed_links)
                    for c in self.contingencies
                ],
                self.change,
                stable_digest(self.spec),
                self.granularity.value,
                options_digest(self.options),
            )
        )

    def run(
        self,
        *,
        checkpoint: str | Path | None = None,
        resume: bool = False,
    ) -> SweepReport:
        """Run the sweep and return the aggregate report.

        With ``checkpoint`` set, every completed contingency is journaled
        to that path as it lands (its result, the session's verdict-cache
        deltas and the graphs it added to the shared store); with
        ``resume=True`` the journal's clean prefix of contingencies is
        replayed instead of re-verified, and the final report is
        byte-identical to an uninterrupted run's.  Degraded contingencies
        (any unknown verdict) are journaled as markers only and retried
        fresh on resume.  A ``KeyboardInterrupt`` flushes a final
        interrupt marker before propagating.
        """
        if resume and checkpoint is None:
            raise VerificationError("resume=True requires a checkpoint path")
        ckpt: Checkpoint | None = None
        journal_seconds = 0.0
        if checkpoint is not None:
            journal_started = time.perf_counter()
            ckpt = Checkpoint.open(
                checkpoint, kind="sweep", signature=self.signature(), resume=resume
            )
            journal_seconds = time.perf_counter() - journal_started
        try:
            sweep = self._run(ckpt)
        finally:
            if ckpt is not None:
                journal_started = time.perf_counter()
                ckpt.close()
                journal_seconds += time.perf_counter() - journal_started
        sweep.checkpoint_seconds += journal_seconds
        return sweep

    def _run(self, ckpt: Checkpoint | None) -> SweepReport:
        started = time.perf_counter()
        store = GraphStore()
        base_sim = Simulator(self.topology, self.config)

        derive_started = time.perf_counter()
        base_pre = base_sim.snapshot(
            self.fecs, name="sweep-pre", granularity=self.granularity, store=store
        )
        combos = group_fec_combos(self.fecs)
        base_derive_seconds = time.perf_counter() - derive_started

        session = VerificationSession(
            base_pre, self.spec, db=self.db, options=self.options
        )
        session.runner = self.runner
        sweep = SweepReport()

        completed = ckpt.completed_units if ckpt is not None else []
        if len(completed) > len(self.contingencies):
            raise StateVersionError(
                f"checkpoint records {len(completed)} completed contingencies but "
                f"the sweep only has {len(self.contingencies)}: it belongs to a "
                "different run, refusing to resume"
            )
        if ckpt is not None:
            session.enable_delta_log()
        for index, unit in enumerate(completed):
            contingency = self.contingencies[index]
            if unit.get("id") != contingency.contingency_id:
                raise StateVersionError(
                    f"checkpoint unit {index} is contingency {unit.get('id')!r}, "
                    f"expected {contingency.contingency_id!r}: the contingency "
                    "list changed, refusing to resume"
                )
            # Re-intern the graphs this contingency's derivation added, in
            # their original order — the shared store never evicts, so ref
            # assignment (and the final distinct-graph count) replays
            # exactly.
            for graph in unit.get("store_graphs", ()):
                store.intern(graph)
            session.preload_deltas(unit.get("deltas", ()))
            sweep.record(unit["result"])

        try:
            for index in range(len(completed), len(self.contingencies)):
                contingency = self.contingencies[index]
                watermark = len(store)
                derive_started = time.perf_counter()
                if contingency.is_baseline:
                    pre = base_pre
                else:
                    failed_sim = base_sim.under_failure(contingency.failed_links)
                    pre = failed_sim.derive_snapshot(
                        base_sim,
                        base_pre,
                        name=f"sweep-pre@{contingency.contingency_id}",
                        combos=combos,
                    )
                post, expected = self._apply_change(pre, contingency)
                derive_seconds = time.perf_counter() - derive_started
                if contingency.is_baseline:
                    derive_seconds += base_derive_seconds

                session.rebase(pre)
                report = session.advance(post, self.spec)
                result = ContingencyResult(
                    contingency=contingency,
                    report=report,
                    expected_holds=expected,
                    derive_seconds=derive_seconds,
                )
                sweep.record(result)
                if ckpt is not None:
                    journal_started = time.perf_counter()
                    deltas = session.drain_deltas()
                    if report.degraded:
                        # Result-free marker: any contingency with unknown
                        # verdicts is retried fresh on resume.
                        ckpt.record_unit(
                            index, contingency.contingency_id, degraded=True
                        )
                    else:
                        ckpt.record_unit(
                            index,
                            contingency.contingency_id,
                            result=result,
                            deltas=deltas,
                            store_graphs=[
                                graph
                                for ref, graph in store.items()
                                if ref >= watermark
                            ],
                        )
                    sweep.checkpoint_seconds += time.perf_counter() - journal_started
        except KeyboardInterrupt:
            if ckpt is not None:
                ckpt.interrupt()
            raise
        sweep.distinct_graphs = len(store)
        sweep.elapsed_seconds = time.perf_counter() - started
        return sweep

    def _apply_change(
        self, pre: Snapshot, contingency: Contingency
    ) -> tuple[Snapshot, bool | None]:
        outcome = self.change(pre)
        if isinstance(outcome, Snapshot):
            return outcome, None
        post, expected = outcome
        if not isinstance(post, Snapshot):
            raise VerificationError(
                f"change transform returned {type(post).__name__}, expected a Snapshot "
                f"(contingency {contingency.contingency_id})"
            )
        return post, bool(expected)
