"""What-if contingency sweeps: k-failure verification under change.

The paper verifies that a proposed change preserves relational properties
between two snapshots of the *healthy* network.  Operators ask a second
question in the same breath: does the change stay safe when the network is
degraded — "does the drain still hold under any single link failure?"
Answering it naively multiplies the whole verification pipeline by the
number of contingencies: every failed link means a fresh routing
computation, a fresh snapshot pair and a fresh sweep over every flow
equivalence class.

This module turns that blowup into a dedup problem, which the interned
:class:`~repro.snapshots.graphstore.GraphStore` and the
:class:`~repro.verifier.session.VerificationSession` verdict cache already
know how to solve:

1. **Failure models** enumerate contingencies — all single-link failures
   (:func:`single_link_failures`), all k-link combinations over a candidate
   set (:func:`k_link_failures`), or explicit planned-maintenance link sets
   (:func:`maintenance_link_sets`).  The unit of failure is a whole link
   *bundle* (an unordered router pair): failing one parallel member never
   changes router-level forwarding.
2. **Derivation** builds each contingency's pre-change snapshot via the
   simulator's failure-aware entry points
   (:meth:`~repro.network.simulator.Simulator.under_failure` +
   :meth:`~repro.network.simulator.Simulator.derive_snapshot`): BGP/IGP/FIB
   state is recomputed once per contingency, but only the traffic classes
   whose baseline traces the failure can actually touch are re-traced —
   everything else reuses the baseline graph objects.  The change under
   test is then applied to the degraded snapshot, exactly as it would land
   on the degraded network.
3. **Shared interning**: every derived snapshot interns into one
   cross-contingency :class:`~repro.snapshots.graphstore.GraphStore`, so a
   forwarding behaviour exhibited under many contingencies resolves to one
   ref sweep-wide.
4. **One session**: a single :class:`~repro.verifier.session.VerificationSession`
   (rebased per contingency) drives the whole sweep, so each distinct
   ``(context, spec key, pre ref, post ref)`` verdict is computed once and
   served from cache for every other contingency exhibiting it.  Most
   failures do not touch most classes' graphs, so the sweep executes a
   small multiple of one contingency's unique checks instead of
   ``contingencies × unique-pairs-per-contingency`` — the
   :attr:`SweepReport.dedup_ratio` headline, gated in CI.

Scaling past single failures (the combinatorial k=2/k=3 spaces) adds three
coordinated mechanisms on top:

5. **Incremental lattice derivation**: a k-failure contingency's snapshot
   is derived from its (k−1)-failure *parent* in the failure lattice
   (:class:`_DerivationLattice`), not from the healthy baseline — the
   changed-FIB-decision criterion runs against the parent's FIBs and
   traces via the simulator's :meth:`~repro.network.simulator.Simulator.changed_routers`
   delta index, so the per-contingency cost scales with the *marginal*
   effect of the last failed link instead of the cumulative effect of all
   k.  Parents are derived on demand (recursively down to the baseline)
   and cached, so every contingency's parent exists before the contingency
   itself is derived regardless of sweep order.  Derivation is
   byte-identical to the from-baseline scan (``incremental=False``); the
   bench gate ``bench_k2_sweep.py`` pins both the equality and the
   speedup.
6. **Sharded speculative execution** (``run(shards=N)``): the remaining
   contingency set is partitioned across forked worker processes, each
   running its own rebased session over its slice and shipping back its
   verdict-cache deltas.  The parent then runs the normal serial loop with
   the merged verdicts served through a replay runner — every ``(context,
   spec key, pre ref, post ref)`` still computes once sweep-wide, and
   the :class:`SweepReport` (dedup accounting included) is byte-for-byte
   what the serial path produces, because the serial loop *is* what
   produces it.  A shard that dies just means its outcomes are re-executed
   in-process; unknown verdicts (:class:`~repro.verifier.runtime.CheckFailure`)
   never ride the merge and are always re-executed.
7. **Prioritized first-worst search** (``run(first_worst=True)``): the
   k≥2 contingencies are reordered by a fragility score seeded from the
   single-failure lattice nodes — the fraction of traffic combinations
   each candidate link's failure flips, combined per contingency with the
   risk layer's noisy-OR — so the most-violating contingency tends to
   surface early.  The ordering is a *search order*, not a semantics
   change: run to completion, the report equals the exhaustive sweep's
   (``most_violating`` is order-independent), and the ``on_contingency``
   callback lets operators watch verdicts land (or stop the sweep early).

Per-contingency reports are byte-identical to naive one-shot
``verify_change`` runs over independently simulated snapshots (pinned by
``tests/verifier/test_contingency_sweep.py``).
"""

from __future__ import annotations

import multiprocessing
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from itertools import combinations
from pathlib import Path

from repro.errors import StateVersionError, VerificationError
from repro.network.bgp import NetworkConfig
from repro.persist.checkpoint import Checkpoint
from repro.persist.digest import options_digest, stable_digest
from repro.network.simulator import Simulator, group_fec_combos
from repro.network.topology import Topology
from repro.rela.locations import Granularity, LocationDB
from repro.rela.pspec import SpecPolicy
from repro.rela.spec import RelaSpec
from repro.snapshots.fec import FlowEquivalenceClass
from repro.snapshots.graphstore import GraphStore
from repro.snapshots.snapshot import Snapshot
from repro.verifier.engine import VerificationOptions, _execute_unique_checks
from repro.verifier.report import VerificationReport
from repro.verifier.runtime import ExecutionResult
from repro.verifier.session import VerificationSession

#: Sentinel distinguishing "merged None verdict" from "not merged".
_MISS = object()

#: An unordered router pair naming one link bundle.
LinkPair = tuple[str, str]

#: The change under test, as a transform of a (possibly degraded) pre-change
#: snapshot.  May return just the post snapshot, or ``(post, expect_holds)``
#: when the workload knows whether the change complies *on that snapshot*
#: (buggy variants are only spec-visible under contingencies that leave
#: detectable traffic behind).
ChangeFn = Callable[[Snapshot], "Snapshot | tuple[Snapshot, bool]"]


def _canonical_pair(pair: Iterable[str]) -> LinkPair:
    a, b = sorted(pair)
    return (a, b)


@dataclass(frozen=True, slots=True)
class Contingency:
    """One network condition to verify the change under."""

    contingency_id: str
    #: Failed link bundles, as canonical sorted pairs; empty = the healthy
    #: network (the baseline contingency).
    failed_links: tuple[LinkPair, ...] = ()
    description: str = ""

    @property
    def is_baseline(self) -> bool:
        return not self.failed_links

    def __str__(self) -> str:
        if self.is_baseline:
            return self.contingency_id
        failed = ", ".join(f"{a}~{b}" for a, b in self.failed_links)
        return f"{self.contingency_id} [{failed}]"


def baseline_contingency() -> Contingency:
    """The no-failure contingency (the healthy network)."""
    return Contingency(contingency_id="baseline", description="no failure")


def single_link_failures(
    topology: Topology, *, candidates: Iterable[LinkPair] | None = None
) -> list[Contingency]:
    """Every single-link-bundle failure (over ``candidates`` if given)."""
    pairs = _candidate_pairs(topology, candidates)
    return [
        Contingency(
            contingency_id=f"single-{a}~{b}",
            failed_links=((a, b),),
            description=f"link {a}~{b} down",
        )
        for a, b in pairs
    ]


def k_link_failures(
    topology: Topology,
    k: int,
    *,
    candidates: Iterable[LinkPair] | None = None,
    limit: int | None = None,
) -> list[Contingency]:
    """Every ``k``-combination of link-bundle failures over a candidate set.

    Combinations are enumerated in deterministic sorted order over the
    canonicalized, bundle-deduplicated candidate set — candidates naming
    the same bundle twice (or in both orientations) yield one entry, on
    every platform.  ``limit`` truncates the (combinatorially explosive)
    enumeration, applied *after* bundle-equivalence dedup so ``limit=N``
    always means N distinct contingencies.  ``k=1`` degenerates to
    :func:`single_link_failures`.
    """
    if k < 1:
        raise VerificationError("k-link failure models need k >= 1")
    pairs = _candidate_pairs(topology, candidates)
    if k > len(pairs):
        raise VerificationError(
            f"cannot fail {k} links over a candidate set of {len(pairs)}"
        )
    contingencies: list[Contingency] = []
    seen: set[frozenset[LinkPair]] = set()
    for combo in combinations(pairs, k):
        key = frozenset(combo)
        if key in seen:
            continue
        seen.add(key)
        tag = "+".join(f"{a}~{b}" for a, b in combo)
        contingencies.append(
            Contingency(
                contingency_id=f"k{k}-{tag}",
                failed_links=combo,
                description=f"links {tag} down",
            )
        )
        if limit is not None and len(contingencies) >= limit:
            break
    return contingencies


def maintenance_link_sets(
    link_sets: Iterable[Iterable[LinkPair]], *, prefix: str = "maint"
) -> list[Contingency]:
    """Explicit planned-maintenance contingencies, one per drained link set."""
    contingencies: list[Contingency] = []
    for index, link_set in enumerate(link_sets):
        failed = tuple(sorted(_canonical_pair(pair) for pair in link_set))
        if not failed:
            raise VerificationError("a maintenance link set cannot be empty")
        tag = "+".join(f"{a}~{b}" for a, b in failed)
        contingencies.append(
            Contingency(
                contingency_id=f"{prefix}-{index}",
                failed_links=failed,
                description=f"maintenance set {index}: {tag} drained",
            )
        )
    return contingencies


def _candidate_pairs(
    topology: Topology, candidates: Iterable[LinkPair] | None
) -> list[LinkPair]:
    if candidates is None:
        # Canonicalize the topology's own bundle list too: enumeration order
        # (and therefore contingency ids and any ``limit`` truncation) must
        # not depend on topology insertion order or platform dict/set order.
        return sorted({_canonical_pair(pair) for pair in topology.link_bundles()})
    pairs = sorted({_canonical_pair(pair) for pair in candidates})
    bundles = set(topology.link_bundles())
    unknown = [pair for pair in pairs if pair not in bundles]
    if unknown:
        raise VerificationError(f"candidate links not in the topology: {unknown}")
    return pairs


# ----------------------------------------------------------------------
# Sweep results
# ----------------------------------------------------------------------
@dataclass(slots=True)
class ContingencyResult:
    """The verification outcome of the change under one contingency."""

    contingency: Contingency
    report: VerificationReport
    #: The workload's compliance expectation on this contingency's snapshot
    #: (None when the change transform does not state one).
    expected_holds: bool | None = None
    #: Seconds spent on snapshot *derivation* proper — the change-criterion
    #: screen, affected-trace re-tracing and change application.  This is
    #: the cost the incremental lattice attacks, gated separately from
    #: routing in ``check_perf_regression.py --sweep-k2``.
    derive_seconds: float = 0.0
    #: Seconds recomputing routing state (BGP fixed point, IGP costs, FIB
    #: build) for this contingency's degraded topology.  Zero when the
    #: snapshot came straight from a cached lattice node.
    route_seconds: float = 0.0

    @property
    def holds(self) -> bool:
        return self.report.holds

    @property
    def verdict(self) -> str:
        """Three-valued per-contingency verdict (see the epoch report)."""
        return self.report.verdict


@dataclass(slots=True)
class SweepReport:
    """Aggregate outcome of a contingency sweep.

    Beyond the per-contingency verdicts, the report quantifies how much of
    the naive ``contingencies × unique-pairs-per-contingency`` work the
    cross-contingency dedup absorbed: :attr:`naive_checks` is what
    independent one-shot runs would each have executed,
    :attr:`executed_checks` is what the shared session actually ran, and
    :attr:`dedup_ratio` is their quotient (CI gates it as a hard floor).
    """

    results: list[ContingencyResult] = field(default_factory=list)
    #: Wall-clock seconds for the whole sweep, including baseline snapshot
    #: simulation and per-contingency derivation.
    elapsed_seconds: float = 0.0
    #: Distinct graphs in the shared cross-contingency store at sweep end.
    distinct_graphs: int = 0
    #: Seconds spent journaling checkpoint records — opening the journal,
    #: pickling unit records, flushing, and the closing fsync.  Zero when
    #: the sweep runs without a checkpoint.  This is the durability layer's
    #: *direct* cost, measured inside the run: a two-arm wall-clock
    #: comparison cannot resolve it against scheduler jitter.
    checkpoint_seconds: float = 0.0
    #: Worker processes the check phase was sharded across (1 = serial).
    #: Runtime provenance only — the report content is shard-invariant.
    shards: int = 1
    #: True when the sweep ran in first-worst (fragility-ordered) mode.
    prioritized: bool = False

    def record(self, result: ContingencyResult) -> None:
        self.results.append(result)

    @property
    def contingencies(self) -> int:
        return len(self.results)

    @property
    def holds(self) -> bool:
        """True when the change held under every contingency."""
        return all(result.holds for result in self.results)

    @property
    def verdict(self) -> str:
        """Three-valued sweep verdict: ``"holds"``/``"violated"``/``"unknown"``."""
        if self.violating_contingencies > 0:
            return "violated"
        if self.unknown_contingencies > 0:
            return "unknown"
        return "holds"

    @property
    def violating_contingencies(self) -> int:
        """Contingencies with at least one *proven* violating flow class."""
        return sum(1 for result in self.results if result.verdict == "violated")

    @property
    def unknown_contingencies(self) -> int:
        """Contingencies the runtime could not fully prove (no violation
        found, but some checks degraded to unknown verdicts)."""
        return sum(1 for result in self.results if result.verdict == "unknown")

    @property
    def degraded(self) -> bool:
        """True when any contingency ran degraded (failed checks/fallback)."""
        return any(result.report.degraded for result in self.results)

    @property
    def failed_checks(self) -> int:
        """Unknown-verdict flow-class results across the whole sweep."""
        return sum(result.report.unknown_fecs for result in self.results)

    def unproven(self) -> list[ContingencyResult]:
        """The contingencies the sweep completed but could not prove —
        the "119 verified, these 2 unknown" list operators act on."""
        return [result for result in self.results if result.verdict == "unknown"]

    @property
    def unknown_fec_ids(self) -> list[str]:
        """Flow classes with an unknown verdict under *any* contingency
        (sorted, unique) — the triage list for a degraded sweep."""
        unknown: set[str] = set()
        for result in self.results:
            unknown.update(result.report.unknown_fec_ids)
        return sorted(unknown)

    @property
    def baseline_result(self) -> ContingencyResult | None:
        """The healthy-network contingency's result, when the sweep ran one."""
        for result in self.results:
            if result.contingency.is_baseline:
                return result
        return None

    @property
    def failure_results(self) -> list[ContingencyResult]:
        """Results of the actual failure contingencies (baseline excluded)."""
        return [result for result in self.results if not result.contingency.is_baseline]

    @property
    def flipped_contingencies(self) -> int:
        """Failure contingencies with a proven-violated verdict — for a
        change that holds on the healthy baseline, the contingencies that
        *flip* its verdict (the risk layer's fragility numerator)."""
        return sum(1 for result in self.failure_results if result.verdict == "violated")

    @property
    def flip_fraction(self) -> float:
        """Fraction of failure contingencies with a violated verdict."""
        failures = self.failure_results
        if not failures:
            return 0.0
        return self.flipped_contingencies / len(failures)

    @property
    def expectation_mismatches(self) -> list[ContingencyResult]:
        """Results whose verdict contradicts the workload's expectation."""
        return [
            result
            for result in self.results
            if result.expected_holds is not None and result.holds != result.expected_holds
        ]

    @property
    def total_fecs(self) -> int:
        """Flow-class checks across all contingencies (with repeats)."""
        return sum(result.report.total_fecs for result in self.results)

    @property
    def naive_checks(self) -> int:
        """Distinct checks summed per contingency — the no-dedup cost."""
        return sum(result.report.unique_checks for result in self.results)

    @property
    def executed_checks(self) -> int:
        """Distinct checks the shared session actually executed."""
        return sum(result.report.executed_checks for result in self.results)

    @property
    def cached_checks(self) -> int:
        return sum(result.report.cached_checks for result in self.results)

    @property
    def dedup_ratio(self) -> float:
        """How many times cheaper the sweep was than independent runs."""
        if self.executed_checks == 0:
            return float("inf") if self.naive_checks else 1.0
        return self.naive_checks / self.executed_checks

    @property
    def derive_seconds(self) -> float:
        """Total snapshot-derivation seconds (criterion + re-trace + change)."""
        return sum(result.derive_seconds for result in self.results)

    @property
    def route_seconds(self) -> float:
        """Total routing-recompute seconds (BGP/IGP/FIB) across contingencies.

        ``getattr`` default keeps replay of pre-split checkpoint journals
        readable (their results predate the route/derive attribution).
        """
        return sum(getattr(result, "route_seconds", 0.0) for result in self.results)

    @property
    def check_seconds(self) -> float:
        return sum(result.report.elapsed_seconds for result in self.results)

    def first_worst_after(self) -> int | None:
        """Units completed when the sweep's most-violating contingency landed.

        1-based position of :meth:`most_violating`'s top entry in execution
        order (``None`` when nothing violated) — the first-worst search's
        figure of merit: under fragility ordering this should be a small
        number even when the exhaustive sweep is long.
        """
        worst = self.most_violating(1)
        if not worst:
            return None
        target = worst[0].contingency.contingency_id
        for index, result in enumerate(self.results):
            if result.contingency.contingency_id == target:
                return index + 1
        return None

    def most_violating(self, count: int = 5) -> list[ContingencyResult]:
        """The contingencies with the most violating flow classes, worst first."""
        violating = [result for result in self.results if not result.holds]
        violating.sort(
            key=lambda result: (-result.report.violating_fecs, result.contingency.contingency_id)
        )
        return violating[:count]

    def summary(self) -> str:
        """One-line sweep summary with the dedup headline."""
        if self.holds:
            verdict = "PASS"
        elif self.violating_contingencies > 0:
            verdict = f"FAIL ({self.violating_contingencies} contingencies)"
        else:
            verdict = f"UNKNOWN ({self.unknown_contingencies} contingencies unproven)"
        if self.violating_contingencies > 0 and self.unknown_contingencies > 0:
            verdict += f" [{self.unknown_contingencies} unproven]"
        ratio = self.dedup_ratio
        ratio_text = "inf" if ratio == float("inf") else f"{ratio:.1f}x"
        return (
            f"{verdict}: {self.contingencies} contingencies, {self.total_fecs} FEC checks, "
            f"{self.executed_checks} executed / {self.cached_checks} cached of "
            f"{self.naive_checks} per-contingency unique checks "
            f"(dedup {ratio_text}, {self.distinct_graphs} distinct graphs, "
            f"{self.elapsed_seconds:.2f}s)"
        )


# ----------------------------------------------------------------------
# Incremental derivation: the failure lattice
# ----------------------------------------------------------------------
class _DerivationLattice:
    """On-demand cache of ``(simulator, snapshot)`` nodes along the failure lattice.

    Node ``(l1, …, lk)`` is the degraded network with those bundles failed;
    its snapshot is derived from node ``(l1, …, l(k-1))`` through the
    simulator's ``parent=`` seam, recursively down to the baseline at
    ``()``.  On-demand recursion means a contingency's parent chain always
    exists before the contingency derives, whatever order the sweep visits
    units in — the lattice ordering contract without an explicit sort.

    Nodes the lattice derives itself are always retained (they sit on some
    contingency's parent chain by construction).  Sweep units *offer* their
    own derivations back, retained only when the ``needed`` prefix set says
    a later contingency will use them as a parent — so memory scales with
    the interior of the lattice, not with the (much larger) leaf frontier.
    Nothing is ever evicted below that bound: a sweep's interior is small
    (the k−1 spaces), and dropping a node would force a re-derivation whose
    graphs are already interned anyway.

    ``route_seconds``/``derive_seconds`` accumulate the routing and
    derivation cost of internally-derived nodes, so the sweep can attribute
    lattice work to the contingency that triggered it.
    """

    def __init__(
        self,
        base_sim: Simulator,
        base_pre: Snapshot,
        combos: dict[tuple[str, str], list[str]],
        *,
        needed: set[tuple[LinkPair, ...]],
    ) -> None:
        self._base_sim = base_sim
        self._base_pre = base_pre
        self._combos = combos
        self._needed = needed
        self._nodes: dict[tuple[LinkPair, ...], tuple[Simulator, Snapshot]] = {
            (): (base_sim, base_pre)
        }
        #: One representative FEC per (ingress, destination) combination —
        #: all FECs of a combo share one graph, so one probe per combo
        #: suffices for the fragility fractions.
        self._representatives = [fec_ids[0] for fec_ids in combos.values()]
        self._fractions: dict[LinkPair, float] = {}
        self.route_seconds = 0.0
        self.derive_seconds = 0.0

    def cached(self, links: tuple[LinkPair, ...]) -> tuple[Simulator, Snapshot] | None:
        """The retained node for exactly ``links``, if any."""
        return self._nodes.get(links)

    def parent(self, links: tuple[LinkPair, ...]) -> tuple[Simulator, Snapshot]:
        """The (k−1)-failure reference pair for a contingency failing ``links``."""
        return self.node(links[:-1])

    def siblings(self, links: tuple[LinkPair, ...]) -> list[tuple[Simulator, Snapshot]]:
        """Secondary references for deriving ``links``: the last link's solo node.

        A k≥2 node's parent covers the first k−1 links; the last link's
        single-failure node covers the marginal slice, so between the two
        references only combinations affected by the last link *jointly
        with* an earlier one pay a re-trace.  The solo node is shared by
        every contingency ending in that link (and is usually a k=1 sweep
        unit anyway), so deriving it amortizes to nothing.
        """
        if len(links) < 2:
            return []
        return [self.node((links[-1],))]

    def node(self, links: tuple[LinkPair, ...]) -> tuple[Simulator, Snapshot]:
        """The lattice node for ``links``, deriving the parent chain on demand."""
        hit = self._nodes.get(links)
        if hit is not None:
            return hit
        reference = self.node(links[:-1])
        siblings = self.siblings(links)
        started = time.perf_counter()
        sim = self._base_sim.under_failure(links)
        sim.fib()
        self.route_seconds += time.perf_counter() - started
        started = time.perf_counter()
        tag = "+".join(f"{a}~{b}" for a, b in links)
        snapshot = sim.derive_snapshot(
            self._base_sim,
            self._base_pre,
            name=f"sweep-ref@{tag}",
            combos=self._combos,
            parent=reference,
            siblings=siblings,
        )
        self.derive_seconds += time.perf_counter() - started
        self._nodes[links] = (sim, snapshot)
        return sim, snapshot

    def offer(
        self, links: tuple[LinkPair, ...], sim: Simulator, snapshot: Snapshot
    ) -> None:
        """Retain a sweep unit's derivation when it parents a later contingency."""
        if links in self._needed:
            self._nodes.setdefault(links, (sim, snapshot))

    def changed_fraction(self, link: LinkPair) -> float:
        """Fraction of traffic combinations this single bundle failure flips.

        The first-worst fragility seed: probed per distinct candidate link
        from the k=1 lattice node's graph refs against the baseline's (one
        ref comparison per combo — derivation already interned both).
        """
        fraction = self._fractions.get(link)
        if fraction is None:
            if not self._representatives:
                fraction = 0.0
            else:
                _, snapshot = self.node((link,))
                base = self._base_pre
                changed = sum(
                    1
                    for fec_id in self._representatives
                    if snapshot.graph_ref(fec_id) != base.graph_ref(fec_id)
                )
                fraction = changed / len(self._representatives)
            self._fractions[link] = fraction
        return fraction


@dataclass(slots=True)
class _SweepState:
    """Baseline state shared by every unit of one sweep run."""

    store: GraphStore
    base_sim: Simulator
    base_pre: Snapshot
    combos: dict[tuple[str, str], list[str]]
    lattice: _DerivationLattice
    base_route_seconds: float
    base_derive_seconds: float


class _ReplayRunner:
    """Serve check outcomes merged from shard workers; execute only misses.

    Installed as the sweep session's execution hook during a sharded run's
    serial phase.  Outcomes are keyed by ``(alphabet signature, spec key,
    pre fingerprint, post fingerprint)`` — the content form of the session's
    verdict-cache key, which is exactly what shard delta logs journal.  A
    work item the shards never computed (a dead shard, a memoize-off run, a
    ``CheckFailure`` the delta log rightly refused to persist) falls through
    to the normal executor, so the merge is a pure accelerator: the serial
    loop's reports cannot depend on it.
    """

    def __init__(
        self,
        verdicts: dict[tuple[tuple[str, ...], str, str, str], object],
        fallback: Callable[..., ExecutionResult] | None,
    ) -> None:
        self._verdicts = verdicts
        self._fallback = fallback
        self.served = 0
        self.executed = 0

    def __call__(self, work, table, compiled_specs, builder, options) -> ExecutionResult:
        signature = tuple(builder.alphabet.names())
        fingerprints = [graph.fingerprint() for graph in table]
        outcomes: dict[str, object] = {}
        missing = []
        for item in work:
            fec_id, spec_key, pre_idx, post_idx = item
            hit = self._verdicts.get(
                (signature, spec_key, fingerprints[pre_idx], fingerprints[post_idx]),
                _MISS,
            )
            if hit is _MISS:
                missing.append(item)
            else:
                outcomes[fec_id] = hit
        self.served += len(work) - len(missing)
        self.executed += len(missing)
        if not missing:
            return ExecutionResult(outcomes=outcomes)
        execute = self._fallback if self._fallback is not None else _execute_unique_checks
        fresh = execute(missing, table, compiled_specs, builder, options)
        merged = dict(fresh.outcomes)
        merged.update(outcomes)
        return ExecutionResult(
            outcomes=merged,
            degraded=fresh.degraded,
            failed_checks=fresh.failed_checks,
            pool_rebuilds=fresh.pool_rebuilds,
            retried_checks=fresh.retried_checks,
            serial_fallback=fresh.serial_fallback,
        )


# ----------------------------------------------------------------------
# The sweep driver
# ----------------------------------------------------------------------
class ContingencySweep:
    """Verify one change under a family of failure contingencies.

    Parameters
    ----------
    topology, config:
        The network under study (the simulator substrate).
    fecs:
        The traffic classes every contingency snapshot covers.
    change:
        The change under test, as a snapshot transform (see :data:`ChangeFn`).
        It is applied to each contingency's *degraded* pre-change snapshot,
        exactly as the change automation would act on the degraded network.
    spec:
        The Rela spec (or prefix-guarded policy) the change must satisfy
        under every contingency.  One instance, shared sweep-wide, so the
        session can share compiled forms and cached verdicts.
    contingencies:
        Failure model output (see :func:`single_link_failures` and friends).
        The healthy-network baseline is prepended unless already present or
        ``include_baseline=False``.
    db, options, granularity:
        As for :func:`~repro.verifier.engine.verify_change`.  Passing the
        topology's location database keeps the alphabet signature stable
        across contingencies, which maximizes compiled-spec and verdict
        reuse (it is a performance knob only — reports are identical either
        way).
    incremental:
        Derive each k-failure snapshot from its (k−1)-failure lattice
        parent (the default) instead of re-screening against the healthy
        baseline.  A performance knob only — derivation is byte-identical
        either way and the flag is excluded from :meth:`signature` — except
        that sweeps whose parents are *not* themselves contingencies may
        intern a few extra reference graphs (``distinct_graphs`` counts
        them; per-contingency reports are unaffected).
    """

    def __init__(
        self,
        topology: Topology,
        config: NetworkConfig,
        fecs: list[FlowEquivalenceClass],
        change: ChangeFn,
        spec: RelaSpec | SpecPolicy,
        contingencies: Iterable[Contingency],
        *,
        db: LocationDB | None = None,
        options: VerificationOptions | None = None,
        granularity: Granularity = Granularity.ROUTER,
        include_baseline: bool = True,
        incremental: bool = True,
    ) -> None:
        self.topology = topology
        self.config = config
        self.fecs = fecs
        self.change = change
        self.spec = spec
        self.db = db
        self.options = options
        self.granularity = granularity
        self.incremental = incremental
        self.contingencies = list(contingencies)
        #: Execution hook handed to the sweep-wide session (see
        #: :attr:`repro.verifier.session.VerificationSession.runner`); the
        #: verification service points it at a shared worker pool.  ``None``
        #: keeps the default per-call resilient pool.
        self.runner: Callable[..., object] | None = None
        if include_baseline and not any(c.is_baseline for c in self.contingencies):
            self.contingencies.insert(0, baseline_contingency())
        if not self.contingencies:
            raise VerificationError("a contingency sweep needs at least one contingency")

    def signature(self) -> str:
        """The sweep's run signature: what a checkpoint is bound to.

        Covers everything that determines per-contingency verdicts — the
        traffic classes, the contingency list, the change transform (by
        name), the spec (by content digest), the granularity and the
        verdict-relevant engine options.  Two sweeps with the same
        signature verify the same workload; resuming a checkpoint under a
        different signature is refused
        (:class:`~repro.errors.StateVersionError`).
        """
        return stable_digest(
            (
                "sweep/v1",
                [fec.fec_id for fec in self.fecs],
                [
                    (c.contingency_id, c.failed_links)
                    for c in self.contingencies
                ],
                self.change,
                stable_digest(self.spec),
                self.granularity.value,
                options_digest(self.options),
            )
        )

    def run(
        self,
        *,
        checkpoint: str | Path | None = None,
        resume: bool = False,
        shards: int = 1,
        first_worst: bool = False,
        on_contingency: Callable[[int, ContingencyResult, bool], object] | None = None,
    ) -> SweepReport:
        """Run the sweep and return the aggregate report.

        With ``checkpoint`` set, every completed contingency is journaled
        to that path as it lands (its result, the session's verdict-cache
        deltas and the graphs it added to the shared store); with
        ``resume=True`` the journal's clean prefix of contingencies is
        replayed instead of re-verified, and the final report is
        byte-identical to an uninterrupted run's.  Degraded contingencies
        (any unknown verdict) are journaled as markers only and retried
        fresh on resume.  A ``KeyboardInterrupt`` flushes a final
        interrupt marker before propagating.

        ``shards=N`` forks N worker processes that speculatively execute
        the remaining contingencies' checks in parallel; the serial loop
        then serves their merged verdicts instead of recomputing them.
        Report content is byte-for-byte the serial path's (only the
        :attr:`SweepReport.shards` provenance field and timings differ).
        Sharding needs the ``fork`` start method and check memoization; it
        degrades silently to serial execution without them.  A custom
        :attr:`runner` is *not* propagated into shards (service worker
        pools do not survive a fork) — shards use the default executor and
        the runner still serves the serial phase's misses.

        ``first_worst=True`` reorders the k≥2 contingencies most-fragile
        first (see the module docstring) before the run signature is
        computed — a first-worst run is its own checkpointable unit order,
        and resuming one requires passing ``first_worst=True`` again.

        ``on_contingency(index, result, resumed)`` is invoked for every
        unit, replayed or live, in execution order.  Returning ``True``
        from a live unit stops the sweep early: the report covers the
        completed prefix (checkpointed as usual, so a later ``resume``
        picks up from the stop).
        """
        if resume and checkpoint is None:
            raise VerificationError("resume=True requires a checkpoint path")
        if shards < 1:
            raise VerificationError("a sweep needs at least one shard")
        started = time.perf_counter()
        state = self._prepare()
        if first_worst:
            self._prioritize(state)
        ckpt: Checkpoint | None = None
        journal_seconds = 0.0
        if checkpoint is not None:
            journal_started = time.perf_counter()
            ckpt = Checkpoint.open(
                checkpoint, kind="sweep", signature=self.signature(), resume=resume
            )
            journal_seconds = time.perf_counter() - journal_started
        try:
            sweep = self._run(ckpt, state, shards=shards, on_contingency=on_contingency)
        finally:
            if ckpt is not None:
                journal_started = time.perf_counter()
                ckpt.close()
                journal_seconds += time.perf_counter() - journal_started
        sweep.checkpoint_seconds += journal_seconds
        sweep.shards = shards
        sweep.prioritized = first_worst
        sweep.elapsed_seconds = time.perf_counter() - started
        return sweep

    def _prepare(self) -> _SweepState:
        """Baseline routing, snapshot and lattice shared by the whole run."""
        store = GraphStore()
        base_sim = Simulator(self.topology, self.config)
        route_started = time.perf_counter()
        base_sim.fib()
        base_route_seconds = time.perf_counter() - route_started
        derive_started = time.perf_counter()
        base_pre = base_sim.snapshot(
            self.fecs, name="sweep-pre", granularity=self.granularity, store=store
        )
        combos = group_fec_combos(self.fecs)
        base_derive_seconds = time.perf_counter() - derive_started
        needed = {
            contingency.failed_links[:-1]
            for contingency in self.contingencies
            if contingency.failed_links
        }
        # Sibling references: every k≥2 contingency also screens against
        # its last link's single-failure node.
        needed.update(
            (contingency.failed_links[-1],)
            for contingency in self.contingencies
            if len(contingency.failed_links) >= 2
        )
        needed.discard(())
        return _SweepState(
            store=store,
            base_sim=base_sim,
            base_pre=base_pre,
            combos=combos,
            lattice=_DerivationLattice(base_sim, base_pre, combos, needed=needed),
            base_route_seconds=base_route_seconds,
            base_derive_seconds=base_derive_seconds,
        )

    def _prioritize(self, state: _SweepState) -> None:
        """Reorder the k≥2 tail most-fragile first (the first-worst order).

        The baseline and all single-failure contingencies keep their input
        order at the head — they are cheap, they seed the fragility
        fractions, and keeping them first preserves the lattice-parents-
        first property under the reorder.  The k≥2 tail sorts by descending
        noisy-OR of its links' single-failure flip fractions, contingency id
        as the deterministic tie-break.
        """
        from repro.analytics.risk import _noisy_or  # lazy: risk imports this module

        head = [c for c in self.contingencies if len(c.failed_links) <= 1]
        tail = [c for c in self.contingencies if len(c.failed_links) > 1]
        if not tail:
            return
        lattice = state.lattice

        def fragility(contingency: Contingency) -> float:
            return _noisy_or(
                lattice.changed_fraction(link) for link in contingency.failed_links
            )

        tail.sort(key=lambda c: (-fragility(c), c.contingency_id))
        self.contingencies = head + tail

    def _derive(
        self, contingency: Contingency, state: _SweepState
    ) -> tuple[Snapshot, float, float]:
        """This contingency's pre snapshot with (route, derive) attribution."""
        if contingency.is_baseline:
            return state.base_pre, state.base_route_seconds, state.base_derive_seconds
        links = contingency.failed_links
        lattice = state.lattice
        if self.incremental:
            cached = lattice.cached(links)
            if cached is not None:
                # Already derived — by prioritization's fragility probe or a
                # duplicate failure set.  Its cost was paid where it happened.
                return cached[1], 0.0, 0.0
            route_base = lattice.route_seconds
            derive_base = lattice.derive_seconds
            parent = lattice.parent(links)
            siblings = lattice.siblings(links)
            route_started = time.perf_counter()
            failed_sim = state.base_sim.under_failure(links)
            failed_sim.fib()
            route_seconds = time.perf_counter() - route_started
            derive_started = time.perf_counter()
            pre = failed_sim.derive_snapshot(
                state.base_sim,
                state.base_pre,
                name=f"sweep-pre@{contingency.contingency_id}",
                combos=state.combos,
                parent=parent,
                siblings=siblings,
            )
            derive_seconds = time.perf_counter() - derive_started
            lattice.offer(links, failed_sim, pre)
            # Parent-chain work the lattice did on this unit's behalf is
            # this unit's cost.
            route_seconds += lattice.route_seconds - route_base
            derive_seconds += lattice.derive_seconds - derive_base
            return pre, route_seconds, derive_seconds
        route_started = time.perf_counter()
        failed_sim = state.base_sim.under_failure(links)
        failed_sim.fib()
        route_seconds = time.perf_counter() - route_started
        derive_started = time.perf_counter()
        pre = failed_sim.derive_snapshot(
            state.base_sim,
            state.base_pre,
            name=f"sweep-pre@{contingency.contingency_id}",
            combos=state.combos,
        )
        return pre, route_seconds, time.perf_counter() - derive_started

    def _run(
        self,
        ckpt: Checkpoint | None,
        state: _SweepState,
        *,
        shards: int = 1,
        on_contingency: Callable[[int, ContingencyResult, bool], object] | None = None,
    ) -> SweepReport:
        store, base_pre = state.store, state.base_pre

        session = VerificationSession(
            base_pre, self.spec, db=self.db, options=self.options
        )
        session.runner = self.runner
        sweep = SweepReport()

        completed = ckpt.completed_units if ckpt is not None else []
        if len(completed) > len(self.contingencies):
            raise StateVersionError(
                f"checkpoint records {len(completed)} completed contingencies but "
                f"the sweep only has {len(self.contingencies)}: it belongs to a "
                "different run, refusing to resume"
            )
        if ckpt is not None:
            session.enable_delta_log()
        for index, unit in enumerate(completed):
            contingency = self.contingencies[index]
            if unit.get("id") != contingency.contingency_id:
                raise StateVersionError(
                    f"checkpoint unit {index} is contingency {unit.get('id')!r}, "
                    f"expected {contingency.contingency_id!r}: the contingency "
                    "list changed, refusing to resume"
                )
            # Re-intern the graphs this contingency's derivation added, in
            # their original order — the shared store never evicts, so ref
            # assignment (and the final distinct-graph count) replays
            # exactly.
            for graph in unit.get("store_graphs", ()):
                store.intern(graph)
            session.preload_deltas(unit.get("deltas", ()))
            sweep.record(unit["result"])
            if on_contingency is not None:
                on_contingency(index, unit["result"], True)

        if shards > 1 and len(completed) < len(self.contingencies):
            merged = self._speculate(len(completed), shards)
            if merged:
                session.runner = _ReplayRunner(merged, self.runner)

        try:
            for index in range(len(completed), len(self.contingencies)):
                contingency = self.contingencies[index]
                watermark = len(store)
                pre, route_seconds, derive_seconds = self._derive(contingency, state)
                apply_started = time.perf_counter()
                post, expected = self._apply_change(pre, contingency)
                derive_seconds += time.perf_counter() - apply_started

                session.rebase(pre)
                report = session.advance(post, self.spec)
                result = ContingencyResult(
                    contingency=contingency,
                    report=report,
                    expected_holds=expected,
                    derive_seconds=derive_seconds,
                    route_seconds=route_seconds,
                )
                sweep.record(result)
                if ckpt is not None:
                    journal_started = time.perf_counter()
                    deltas = session.drain_deltas()
                    if report.degraded:
                        # Result-free marker: any contingency with unknown
                        # verdicts is retried fresh on resume.
                        ckpt.record_unit(
                            index, contingency.contingency_id, degraded=True
                        )
                    else:
                        ckpt.record_unit(
                            index,
                            contingency.contingency_id,
                            result=result,
                            deltas=deltas,
                            store_graphs=[
                                graph
                                for ref, graph in store.items()
                                if ref >= watermark
                            ],
                        )
                    sweep.checkpoint_seconds += time.perf_counter() - journal_started
                if on_contingency is not None:
                    if on_contingency(index, result, False) is True:
                        break
        except KeyboardInterrupt:
            if ckpt is not None:
                ckpt.interrupt()
            raise
        sweep.distinct_graphs = len(store)
        return sweep

    # ------------------------------------------------------------------
    # Sharded speculative execution
    # ------------------------------------------------------------------
    def _speculate(
        self, start: int, shards: int
    ) -> dict[tuple[tuple[str, ...], str, str, str], object]:
        """Phase 1 of a sharded run: fork workers, merge their verdict deltas.

        Contingencies ``start..`` are partitioned round-robin across forked
        processes.  Each worker runs its slice through its own rebased
        session (delta log on) and ships the drained events back over a
        pipe; the parent folds every ``add`` event into one content-keyed
        verdict map.  First writer wins on key collisions — outcomes are
        deterministic functions of the key, so collisions agree anyway.
        Returns an empty map (serial execution) when forking or memoization
        is unavailable, and silently drops the slice of any shard that died
        — its outcomes are simply computed in-process by phase 2.
        """
        if self.options is not None and not self.options.memoize_fec_checks:
            return {}  # no memoization → no delta log → nothing to merge
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            return {}
        indices = list(range(start, len(self.contingencies)))
        partitions = [indices[offset::shards] for offset in range(shards)]
        workers: list[tuple[multiprocessing.Process, object]] = []
        for partition in partitions:
            if not partition:
                continue
            receiver, sender = ctx.Pipe(duplex=False)
            process = ctx.Process(
                target=self._shard_main, args=(partition, sender), daemon=True
            )
            process.start()
            sender.close()
            workers.append((process, receiver))
        merged: dict[tuple[tuple[str, ...], str, str, str], object] = {}
        for process, receiver in workers:
            try:
                events = receiver.recv()
            except (EOFError, OSError):
                events = []
            finally:
                receiver.close()
            process.join()
            for event in events:
                if event[0] != "add":
                    continue
                _, _token, signature, spec_key, pre_graph, post_graph, outcome = event
                merged.setdefault(
                    (
                        tuple(signature),
                        spec_key,
                        pre_graph.fingerprint(),
                        post_graph.fingerprint(),
                    ),
                    outcome,
                )
        return merged

    def _shard_main(self, indices: list[int], conn) -> None:
        """Forked worker entry point: run a slice, send the delta events."""
        try:
            conn.send(self._shard_events(indices))
        except Exception:
            # A failed shard degrades to serial re-execution of its slice;
            # best-effort empty payload keeps the parent's recv() clean.
            try:
                conn.send([])
            except Exception:
                pass
        finally:
            conn.close()

    def _shard_events(self, indices: list[int]) -> list[tuple]:
        """Verify one contingency slice; return the session's delta events."""
        from dataclasses import replace as dataclass_replace

        state = self._prepare()
        options = self.options
        if options is not None and options.workers > 1:
            # The shard is the parallelism; nested per-shard pools would
            # oversubscribe the host.
            options = dataclass_replace(options, workers=1)
        session = VerificationSession(
            state.base_pre, self.spec, db=self.db, options=options
        )
        session.enable_delta_log()
        events: list[tuple] = []
        for index in indices:
            contingency = self.contingencies[index]
            pre, _route, _derive = self._derive(contingency, state)
            post, _expected = self._apply_change(pre, contingency)
            session.rebase(pre)
            session.advance(post, self.spec)
            events.extend(session.drain_deltas())
        return events

    def _apply_change(
        self, pre: Snapshot, contingency: Contingency
    ) -> tuple[Snapshot, bool | None]:
        outcome = self.change(pre)
        if isinstance(outcome, Snapshot):
            return outcome, None
        post, expected = outcome
        if not isinstance(post, Snapshot):
            raise VerificationError(
                f"change transform returned {type(post).__name__}, expected a Snapshot "
                f"(contingency {contingency.contingency_id})"
            )
        return post, bool(expected)
