"""Fault-tolerant execution runtime for the verification engine.

The engine's parallel path used to call ``future.result()`` bare: one
worker death (OOM kill), one pathological check that hangs, or one
poisonous payload aborted a whole verification, stream epoch or
100+-contingency sweep with a raw traceback.  A verification *service*
must degrade instead of die — and, just as importantly, must report
partial failure honestly rather than conflate it with "holds".  This
module is that layer; the engine, session and sweep stack all execute
their deduplicated work lists through it.

Three mechanisms, composed:

1. **A resilient pool.**  :func:`execute_checks` wraps
   ``ProcessPoolExecutor`` so that ``BrokenProcessPool`` is a recoverable
   event: completed results are kept, the pool is rebuilt (workers are
   re-initialized from the same graph table), and only the unfinished
   batches are re-submitted.  Because a crash kills a whole batch without
   naming the guilty check, crashed batches are **bisected** across
   rebuilds until the poison check is isolated in a batch of one; that
   singleton is then retried in a dedicated single-worker pool (precise
   attribution: if *that* pool breaks, the check is the killer) up to the
   retry budget before being given up on.

2. **Per-check timeouts and retries.**  Every check — serial or
   worker-side — runs under a wall-clock deadline
   (``VerificationOptions.check_timeout``, enforced with
   ``signal.setitimer``/``SIGALRM`` where available) and a bounded retry
   loop with exponential backoff (``max_retries``, ``retry_backoff``) for
   transient failures.  Worker processes run batches on their main
   thread, so the SIGALRM guard works in workers exactly as it does
   serially; off the main thread (or without ``SIGALRM``) the same
   budget is enforced cooperatively — :mod:`repro.automata.guard` arms a
   thread-local monotonic deadline that the lazy product walks poll at
   step boundaries.

3. **Graceful degradation.**  A check that exhausts its retries or
   deadline becomes a first-class :class:`CheckFailure` outcome — an
   honest *unknown* verdict — instead of an exception; after repeated
   pool failures (``max_pool_rebuilds``) the remaining work falls back to
   serial in-process execution.  Reports grow a ``degraded`` flag and
   ``failed_checks`` accounting, so a sweep over 119 contingencies
   completes and names the two it could not prove.  Operators who prefer
   abortion over degradation set ``allow_degraded=False`` (CLI
   ``--no-degrade``), which turns the first would-be-unknown into a
   :class:`~repro.errors.DegradedExecutionError`.

Fault injection (:mod:`repro.testing.faults`) plugs in at the same seam
every real failure passes through: ``options.fault_plan`` ships to
workers with the rest of the options and is applied inside the deadline
guard, immediately before the check body.  The differential suite
(``tests/verifier/test_fault_tolerance.py``) uses it to assert the
resilience contract: any fault schedule yields either the byte-identical
clean report or a report whose only difference is honestly-flagged
``unknown`` entries.
"""

from __future__ import annotations

import signal
import threading
import time
from collections.abc import Callable, Generator, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.automata import guard
from repro.errors import (
    CheckTimeoutError,
    DegradedExecutionError,
    VerificationError,
    WorkerCrashError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.snapshots.forwarding_graph import ForwardingGraph
    from repro.verifier.counterexample import Counterexample
    from repro.verifier.engine import CompiledSpec, VerificationOptions
    from repro.verifier.state_automata import StateAutomatonBuilder

#: One deduplicated work item: ``(fec_id, spec_key, pre table id, post table id)``.
WorkItem = tuple[str, str, int, int]

#: The per-check callable the runtime executes (the engine's ``_check_one_fec``).
CheckFn = Callable[..., "Counterexample | None"]


@dataclass(frozen=True, slots=True)
class CheckFailure:
    """A check the runtime could not complete: an honest *unknown* verdict.

    Recorded in place of a pass/counterexample when a check exhausted its
    retry budget (``reason="error"``), its wall-clock deadline
    (``"timeout"``), or repeatedly killed its worker (``"crash"``).
    Unlike a :class:`~repro.verifier.counterexample.Counterexample` this
    is *not* evidence of violation — it marks the verdict unknown, and
    reports carrying one are flagged ``degraded``.
    """

    fec_id: str
    fec_description: str
    #: ``"timeout"`` | ``"crash"`` | ``"error"``.
    reason: str
    detail: str = ""
    #: Total attempts consumed (in-process retries + pool-crash re-runs).
    attempts: int = 1

    def as_row(self) -> tuple[str, str, str, str]:
        """Render in the counterexample-table layout (cause column only)."""
        return (
            self.fec_description,
            "?",
            "?",
            f"unknown: {self.reason} after {self.attempts} attempts ({self.detail})",
        )


#: What one check resolves to: pass, violation, or unknown.
Outcome = "Counterexample | CheckFailure | None"


@dataclass(slots=True)
class ExecutionResult:
    """What :func:`execute_checks` hands back to the engine/session layer."""

    #: Per-representative-FEC outcomes (pass / counterexample / failure).
    outcomes: dict[str, Any] = field(default_factory=dict)
    #: True when any check failed or execution fell back to serial.
    degraded: bool = False
    #: Number of :class:`CheckFailure` outcomes recorded.
    failed_checks: int = 0
    #: Worker pools rebuilt after ``BrokenProcessPool`` (0 = no crashes).
    pool_rebuilds: int = 0
    #: In-process retry attempts consumed across all checks.
    retried_checks: int = 0
    #: True when repeated pool failures forced the serial in-process fallback.
    serial_fallback: bool = False


# ----------------------------------------------------------------------
# The per-check guard: deadline + bounded retry with backoff
# ----------------------------------------------------------------------
@contextmanager
def _deadline(seconds: float | None) -> Generator[None, None, None]:
    """Interrupt the enclosed block with :class:`CheckTimeoutError`.

    Uses ``SIGALRM``/``setitimer`` where possible — worker processes execute
    batches on their main thread, so the preemptive guard is fully effective
    there.  On platforms without ``SIGALRM`` (Windows) and off the main
    thread (embedded service runners, shard-local sessions, any threaded
    caller), the guard used to be a silent no-op; it now falls back to a
    cooperative monotonic-clock deadline polled by the product-walk loops in
    :mod:`repro.automata.lazy`, so a hanging check is still cut off
    in-thread — at step-boundary granularity rather than preemptively.
    """
    if not seconds or seconds <= 0:
        yield
        return
    if (
        not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        guard.arm_deadline(seconds)
        try:
            yield
        finally:
            guard.disarm_deadline()
        return

    def _on_alarm(signum: int, frame: Any) -> None:
        raise CheckTimeoutError(f"check exceeded its {seconds:.3g}s wall-clock budget")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


#: Ceiling on one backoff sleep, so a misconfigured base cannot stall a run.
_MAX_BACKOFF_SECONDS = 2.0


def _run_one(
    check_fn: CheckFn,
    item: WorkItem,
    compiled_specs: dict[str, CompiledSpec],
    builder: StateAutomatonBuilder,
    options: VerificationOptions,
    graph_table: Sequence[ForwardingGraph],
    prior_attempts: dict[str, int],
    *,
    in_worker: bool,
) -> tuple[Any, int]:
    """One guarded check: deadline + retry/backoff; never raises for a
    check-level failure (returns a :class:`CheckFailure` instead).

    ``prior_attempts`` carries the check's pool-crash exposure from the
    parent process, so the attempt numbering the fault plan (and the
    failure record) sees is global across worker generations, not local
    to this process.  Returns ``(outcome, retries_used)``.
    """
    fec_id, spec_key, pre_id, post_id = item
    fault_plan = options.fault_plan
    base = prior_attempts.get(fec_id, 0)
    max_attempts = 1 + max(0, options.max_retries)
    reason, detail = "error", "check never ran"
    for attempt in range(1, max_attempts + 1):
        if attempt > 1 and options.retry_backoff > 0:
            time.sleep(
                min(options.retry_backoff * (2 ** (attempt - 2)), _MAX_BACKOFF_SECONDS)
            )
        try:
            with _deadline(options.check_timeout):
                if fault_plan is not None:
                    fault_plan.apply(fec_id, base + attempt, in_worker=in_worker)
                outcome = check_fn(
                    compiled_specs[spec_key],
                    fec_id,
                    fec_id,
                    graph_table[pre_id],
                    graph_table[post_id],
                    builder,
                    options,
                )
            return outcome, attempt - 1
        except CheckTimeoutError as error:
            reason, detail = "timeout", str(error)
        except WorkerCrashError as error:
            # Only reachable in-process (a worker-side crash kills the
            # worker outright); treated like any other retryable failure.
            reason, detail = "crash", str(error)
        except Exception as error:  # noqa: BLE001 - absorbing arbitrary check failures is the job
            reason, detail = "error", f"{type(error).__name__}: {error}"
    failure = CheckFailure(
        fec_id=fec_id,
        fec_description=fec_id,
        reason=reason,
        detail=detail,
        attempts=base + max_attempts,
    )
    return failure, max_attempts - 1


# ----------------------------------------------------------------------
# Worker-side machinery
# ----------------------------------------------------------------------
# Per-worker verification context, installed once by the pool initializer
# so the compiled specs / builder / options / distinct-graph table are
# pickled once per worker process instead of once per submitted batch.
_WORKER_CONTEXT: (
    tuple[
        CheckFn,
        dict[str, "CompiledSpec"],
        "StateAutomatonBuilder",
        "VerificationOptions",
        list["ForwardingGraph"],
        dict[str, int],
    ]
    | None
) = None


def _init_worker(
    check_fn: CheckFn,
    compiled_specs: dict[str, CompiledSpec],
    builder: StateAutomatonBuilder,
    options: VerificationOptions,
    graph_table: list[ForwardingGraph],
    prior_attempts: dict[str, int],
) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = (
        check_fn,
        compiled_specs,
        builder,
        options,
        graph_table,
        prior_attempts,
    )


def run_batch(
    check_fn: CheckFn,
    compiled_specs: dict[str, CompiledSpec],
    builder: StateAutomatonBuilder,
    options: VerificationOptions,
    graph_table: Sequence[ForwardingGraph],
    prior_attempts: dict[str, int],
    batch: Sequence[WorkItem],
    *,
    in_worker: bool = True,
) -> list[tuple[str, Any, int]]:
    """Run a batch of guarded checks against one verification context.

    The shared worker-side body of both pool designs: the per-call
    :class:`ResilientPool` (context installed by the pool initializer) and
    the service's long-lived shared pool (context cached per worker, keyed
    by token — see :mod:`repro.serve.pool`).  Each item is independently
    guarded, so one failing check degrades to a :class:`CheckFailure` entry
    without poisoning its batch siblings; the only batch-lethal event left
    is a hard worker death, observed by the parent as ``BrokenProcessPool``.
    """
    results: list[tuple[str, Any, int]] = []
    for item in batch:
        outcome, retries = _run_one(
            check_fn,
            item,
            compiled_specs,
            builder,
            options,
            graph_table,
            prior_attempts,
            in_worker=in_worker,
        )
        results.append((item[0], outcome, retries))
    return results


def _check_batch(batch: list[WorkItem]) -> list[tuple[str, Any, int]]:
    """Initializer-pool worker entry point: run a batch of guarded checks."""
    if _WORKER_CONTEXT is None:
        raise VerificationError("worker process was not initialized")
    check_fn, compiled_specs, builder, options, graph_table, prior = _WORKER_CONTEXT
    return run_batch(
        check_fn, compiled_specs, builder, options, graph_table, prior, batch
    )


# ----------------------------------------------------------------------
# Parent-side orchestration
# ----------------------------------------------------------------------
def _record(
    result: ExecutionResult,
    options: VerificationOptions,
    fec_id: str,
    outcome: Any,
    retries: int,
) -> None:
    """Fold one outcome into the result, enforcing the degradation policy."""
    result.retried_checks += retries
    if isinstance(outcome, CheckFailure):
        if not options.allow_degraded:
            raise DegradedExecutionError(
                f"check {fec_id} could not be completed "
                f"({outcome.reason}: {outcome.detail}; {outcome.attempts} attempts) "
                "and degraded execution is disabled"
            )
        result.degraded = True
        result.failed_checks += 1
    result.outcomes[fec_id] = outcome


def _run_serial(
    items: Sequence[WorkItem],
    result: ExecutionResult,
    options: VerificationOptions,
    check_fn: CheckFn,
    compiled_specs: dict[str, CompiledSpec],
    builder: StateAutomatonBuilder,
    graph_table: Sequence[ForwardingGraph],
    prior_attempts: dict[str, int],
) -> None:
    for item in items:
        outcome, retries = _run_one(
            check_fn,
            item,
            compiled_specs,
            builder,
            options,
            graph_table,
            prior_attempts,
            in_worker=False,
        )
        _record(result, options, item[0], outcome, retries)


class ResilientPool:
    """Run deduplicated work batches through a crash-surviving process pool.

    The pool is a *strategy*, not a long-lived object: one instance drives
    one work list to completion.  Its loop has three modes:

    * **gang mode** — all pending batches share one pool; results stream
      back with ``as_completed``.  On ``BrokenProcessPool`` the completed
      results are kept, every unfinished batch is bisected (a crash kills
      a whole batch without naming the guilty check), and a fresh pool is
      built whose workers learn each check's crash exposure so far.
    * **isolation mode** — once every unfinished batch is a singleton
      *after at least one crash*, each suspect runs alone in a dedicated
      single-worker pool: if that pool breaks, the check is the proven
      killer and is retried up to ``max_retries`` times before being
      recorded as a :class:`CheckFailure`.
    * **serial fallback** — after ``max_pool_rebuilds`` gang-mode
      rebuilds, the remaining work runs in-process (flagged
      ``serial_fallback``/``degraded``), so repeated pool loss degrades
      throughput instead of aborting the run.

    All exit paths shut the executor down with ``cancel_futures=True`` —
    a worker exception can no longer abandon in-flight futures during
    context-manager teardown.
    """

    def __init__(
        self,
        options: VerificationOptions,
        check_fn: CheckFn,
        compiled_specs: dict[str, CompiledSpec],
        builder: StateAutomatonBuilder,
        graph_table: Sequence[ForwardingGraph],
    ) -> None:
        self.options = options
        self.check_fn = check_fn
        self.compiled_specs = compiled_specs
        self.builder = builder
        self.graph_table = list(graph_table)
        #: Pool breakages each check was in flight for (parent-tracked, so
        #: the count survives worker generations and reaches fresh workers
        #: through the initializer).
        self.crash_exposure: dict[str, int] = {}

    def _initargs(self) -> tuple:
        return (
            self.check_fn,
            self.compiled_specs,
            self.builder,
            self.options,
            self.graph_table,
            dict(self.crash_exposure),
        )

    def run(self, work: Sequence[WorkItem], result: ExecutionResult) -> None:
        options = self.options
        chunk_size = max(1, len(work) // (options.workers * 4))
        batches = [
            list(work[i : i + chunk_size]) for i in range(0, len(work), chunk_size)
        ]
        while batches:
            if result.pool_rebuilds > max(0, options.max_pool_rebuilds):
                self._serial_fallback(batches, result)
                return
            if result.pool_rebuilds > 0 and all(len(batch) == 1 for batch in batches):
                self._run_isolated([batch[0] for batch in batches], result)
                return
            broken = self._gang_round(batches, result)
            if not broken:
                return
            result.pool_rebuilds += 1
            batches = self._bisect_unfinished(batches, result)

    def _gang_round(
        self, batches: list[list[WorkItem]], result: ExecutionResult
    ) -> bool:
        """One shared-pool round; returns True when the pool broke."""
        executor = ProcessPoolExecutor(
            max_workers=self.options.workers,
            initializer=_init_worker,
            initargs=self._initargs(),
        )
        try:
            try:
                futures = {
                    executor.submit(_check_batch, batch): batch for batch in batches
                }
            except BrokenProcessPool:
                return True
            for future in as_completed(futures):
                try:
                    triples = future.result()
                except BrokenProcessPool:
                    return True
                except Exception as error:  # noqa: BLE001 - batch-level failure, pool intact
                    # The batch failed without killing the pool (e.g. an
                    # unpicklable result): degrade its unfinished items,
                    # keep draining the other futures.
                    for item in futures[future]:
                        if item[0] in result.outcomes:
                            continue
                        failure = CheckFailure(
                            fec_id=item[0],
                            fec_description=item[0],
                            reason="error",
                            detail=f"batch execution failed: "
                            f"{type(error).__name__}: {error}",
                        )
                        _record(result, self.options, item[0], failure, 0)
                    continue
                for fec_id, outcome, retries in triples:
                    _record(result, self.options, fec_id, outcome, retries)
            return False
        finally:
            # The lifecycle guarantee: pending futures are cancelled on
            # every exit path (clean drain, broken pool, degradation
            # policy abort), never abandoned to interpreter teardown.
            executor.shutdown(cancel_futures=True)

    def _bisect_unfinished(
        self, batches: list[list[WorkItem]], result: ExecutionResult
    ) -> list[list[WorkItem]]:
        """Halve every batch the crash left unfinished, tracking exposure."""
        next_batches: list[list[WorkItem]] = []
        for batch in batches:
            remaining = [item for item in batch if item[0] not in result.outcomes]
            if not remaining:
                continue
            for item in remaining:
                self.crash_exposure[item[0]] = self.crash_exposure.get(item[0], 0) + 1
            if len(remaining) == 1:
                next_batches.append(remaining)
            else:
                mid = (len(remaining) + 1) // 2
                next_batches.append(remaining[:mid])
                next_batches.append(remaining[mid:])
        return next_batches

    def _run_isolated(
        self, items: Sequence[WorkItem], result: ExecutionResult
    ) -> None:
        """Run crash suspects one at a time, each in its own pool.

        With exactly one check in flight, a broken pool *is* attribution:
        the check killed its worker.  Retried up to ``max_retries`` total
        crashes (counting gang-mode exposure), then recorded as unknown.
        """
        retry_budget = max(0, self.options.max_retries)
        for item in items:
            fec_id = item[0]
            while fec_id not in result.outcomes:
                executor = ProcessPoolExecutor(
                    max_workers=1, initializer=_init_worker, initargs=self._initargs()
                )
                try:
                    triples = executor.submit(_check_batch, [item]).result()
                except BrokenProcessPool:
                    result.pool_rebuilds += 1
                    crashes = self.crash_exposure.get(fec_id, 0) + 1
                    self.crash_exposure[fec_id] = crashes
                    if crashes > retry_budget:
                        failure = CheckFailure(
                            fec_id=fec_id,
                            fec_description=fec_id,
                            reason="crash",
                            detail=f"worker process died {crashes} times "
                            "running this check",
                            attempts=crashes,
                        )
                        _record(result, self.options, fec_id, failure, 0)
                    continue
                finally:
                    executor.shutdown(cancel_futures=True)
                for fec, outcome, retries in triples:
                    _record(result, self.options, fec, outcome, retries)

    def _serial_fallback(
        self, batches: list[list[WorkItem]], result: ExecutionResult
    ) -> None:
        """Give up on worker pools for this run; finish in-process."""
        remaining = [
            item
            for batch in batches
            for item in batch
            if item[0] not in result.outcomes
        ]
        if not self.options.allow_degraded:
            raise DegradedExecutionError(
                f"worker pool failed {result.pool_rebuilds} times; "
                f"{len(remaining)} checks remain and degraded serial fallback "
                "is disabled"
            )
        result.serial_fallback = True
        result.degraded = True
        _run_serial(
            remaining,
            result,
            self.options,
            self.check_fn,
            self.compiled_specs,
            self.builder,
            self.graph_table,
            self.crash_exposure,
        )


def execute_checks(
    unique_work: Sequence[WorkItem],
    graph_table: Sequence[ForwardingGraph],
    compiled_specs: dict[str, CompiledSpec],
    builder: StateAutomatonBuilder,
    options: VerificationOptions,
    check_fn: CheckFn | None = None,
) -> ExecutionResult:
    """Run the deduplicated work list with fault tolerance.

    The drop-in successor of the engine's bare executor loop: serial runs
    index the graph table in-process under the same deadline/retry guard
    the workers use; parallel runs go through :class:`ResilientPool`.
    Every work item is guaranteed an entry in ``outcomes`` — a pass, a
    counterexample, or a :class:`CheckFailure` — unless degradation is
    disabled, in which case the first failure raises
    :class:`~repro.errors.DegradedExecutionError`.
    """
    if check_fn is None:
        from repro.verifier.engine import _check_one_fec

        check_fn = _check_one_fec
    result = ExecutionResult()
    if not unique_work:
        return result
    if options.workers <= 1 or len(unique_work) <= 1:
        _run_serial(
            unique_work,
            result,
            options,
            check_fn,
            compiled_specs,
            builder,
            graph_table,
            {},
        )
        return result
    ResilientPool(options, check_fn, compiled_specs, builder, graph_table).run(
        unique_work, result
    )
    return result
