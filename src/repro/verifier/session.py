"""Incremental change-stream verification sessions.

The paper's operators validate *sequences* of changes — a maintenance
window is a rolling series of drains and restores, a migration lands in
waves — but one-shot :func:`~repro.verifier.engine.verify_change` treats
every change as cold: the interned graph store, the compiled specs and the
``(spec, pre graph, post graph)`` verdicts all die with the call, so a
30-epoch stream pays 30× for graphs and checks that barely move between
epochs.

A :class:`VerificationSession` makes the engine's lifecycle per-*session*
instead of per-call:

* **Cross-epoch graph store** — one ref-counted
  :class:`~repro.snapshots.graphstore.GraphStore` interns every distinct
  forwarding graph the stream ever exhibits; a drain→restore cycle that
  returns the network to a previous state resolves to the *same* session
  refs it had before.  Graphs pinned by the current epoch are ref-counted,
  so long streams can bound memory with :meth:`VerificationSession.compact`
  (or an automatic ``graph_budget``).
* **Persistent verdict cache** — verdicts (including full counterexamples)
  are cached by ``(compiled-spec context, spec key, pre ref, post ref)``
  and survive across :meth:`VerificationSession.advance` calls.  An epoch
  re-verifies only combinations the session has never seen; unchanged
  classes and recurring graph pairs are cache hits.
* **Compiled-spec contexts** — specs are compiled once per (spec instance,
  alphabet signature) and reused while the stream's location universe is
  stable; each epoch's alphabet is computed exactly as a one-shot run
  would, so reports stay byte-identical to independent ``verify_change``
  calls (the session-equivalence invariant, pinned by
  ``tests/verifier/test_session.py``).

``advance(new_snapshot)`` verifies the change from the session's current
snapshot to ``new_snapshot``, returns the per-epoch
:class:`~repro.verifier.report.VerificationReport` (with
``cached_checks`` cache statistics), folds it into the cumulative
:class:`~repro.verifier.report.StreamReport`, and makes ``new_snapshot``
current.  One-shot ``verify_change`` is literally a session of length 1.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, replace
from pathlib import Path

from repro.automata.alphabet import Alphabet
from repro.errors import StateVersionError, VerificationError
from repro.persist.checkpoint import Checkpoint
from repro.persist.digest import stable_digest
from repro.rela.locations import Granularity, LocationDB
from repro.rela.pspec import PSpec, SpecPolicy
from repro.rela.spec import RelaSpec
from repro.snapshots.forwarding_graph import ForwardingGraph
from repro.snapshots.graphstore import GraphStore
from repro.snapshots.snapshot import Snapshot
from repro.verifier.counterexample import Counterexample
from repro.verifier.engine import (
    CompiledSpec,
    VerificationOptions,
    _as_policy,
    _execute_unique_checks,
    _policy_specs,
    _relabel,
    _spec_symbols,
    compile_spec,
)
from repro.verifier.report import StreamReport, VerificationReport
from repro.verifier.runtime import CheckFailure, ExecutionResult
from repro.verifier.state_automata import StateAutomatonBuilder, build_alphabet

#: Epoch-local identity of one check: ``(spec key, pre ref, post ref)`` when
#: dedup is on, ``(spec key, fec id)`` when every FEC is checked alone.
MemoKey = tuple[str, int, int] | tuple[str, str]

#: Sentinel distinguishing "cached None verdict" from "not cached".
_MISS = object()


@dataclass(slots=True, eq=False)
class _CompiledContext:
    """Specs compiled over one alphabet, reusable while the universe is stable.

    The ``token`` is the context's component of every persistent verdict-cache
    key: two epochs share cached verdicts only when they resolved to the same
    context, i.e. the same spec instance compiled over the same alphabet
    signature.
    """

    token: int
    alphabet: Alphabet
    #: The alphabet's symbol list at compile time.  A context is only reused
    #: when a fresh epoch derives exactly this signature *and* the alphabet
    #: has not grown since (growth would make later complements over it
    #: diverge from what a cold run would compute).
    signature: tuple[str, ...]
    builder: StateAutomatonBuilder
    compiled_specs: dict[str, CompiledSpec]
    guarded_specs: list[tuple[int, PSpec]]
    #: Epoch number this context last served; drives LRU eviction under a
    #: ``context_budget``.
    last_used_epoch: int = 0


class VerificationSession:
    """A long-lived verification session over a stream of network changes.

    Parameters
    ----------
    initial:
        The snapshot the stream starts from (the network's state before the
        first change).
    spec:
        Default specification applied by :meth:`advance` when no per-epoch
        spec is given.  Each epoch may also pass its own spec — recurring
        *instances* (e.g. the drain spec reused every maintenance night)
        share compiled forms and cached verdicts; structurally equal but
        distinct instances are conservatively treated as different specs.
    db:
        Location database, as for :func:`~repro.verifier.engine.verify_change`.
    options:
        Engine options, fixed for the whole session (verdicts cached under
        one set of options would not be valid under another).
    graph_budget:
        When set, :meth:`advance` automatically calls :meth:`compact` once
        the session store holds more than this many distinct graphs.  The
        default (``None``) never evicts: every state the stream ever
        visited stays cache-warm.
    context_budget:
        When set, :meth:`advance` keeps at most this many compiled-spec
        contexts, evicting the least-recently-used ones (together with
        their cached verdicts and spec registrations) past the budget.
        Streams that mint a fresh spec per epoch — a migration policy per
        wave — would otherwise retain one compiled context per epoch
        forever; recurring spec instances are unaffected as long as they
        re-land within the budget.
    report_history:
        When set, the cumulative :attr:`stream` report retains only the
        most recent N per-epoch reports (its running totals are unaffected)
        — the third memory axis for unbounded daemon-style streams.
    """

    def __init__(
        self,
        initial: Snapshot,
        spec: RelaSpec | SpecPolicy | None = None,
        *,
        db: LocationDB | None = None,
        options: VerificationOptions | None = None,
        graph_budget: int | None = None,
        context_budget: int | None = None,
        report_history: int | None = None,
    ) -> None:
        self.options = options or VerificationOptions()
        self.db = db
        self.graph_budget = graph_budget
        self.context_budget = context_budget
        #: Cumulative report over every ``advance`` call.
        self.stream = StreamReport(max_retained_reports=report_history)
        #: Execution hook for the deduplicated work list.  ``None`` (the
        #: default) runs :func:`~repro.verifier.engine._execute_unique_checks`
        #: — a per-call :class:`~repro.verifier.runtime.ResilientPool`.  The
        #: verification service installs a shared
        #: :meth:`repro.serve.pool.PoolManager.runner` here so many sessions
        #: reuse one long-lived worker pool across requests.  The hook must
        #: be report-transparent (same outcomes a per-call pool produces);
        #: it is runtime plumbing, never persisted by save/load.
        self.runner: Callable[..., "ExecutionResult"] | None = None

        self._current = initial
        self._default_spec = spec
        self._store = GraphStore()
        # Per-source-store ref translation caches: id(source store) -> its
        # (strong reference, src ref -> session ref) entry.  Strong refs keep
        # the id() keys from being recycled; streams share one store via
        # copy-on-write snapshots, so this stays tiny.
        self._local: dict[int, tuple[GraphStore, dict[int, int]]] = {}
        self._empty_refs: dict[Granularity, int] = {}
        # Spec-instance registry: id(spec) -> (instance, spec token, policy
        # wrapper).  The strong reference to the instance keeps its id() from
        # being recycled, so tokens stay unambiguous while registered.
        self._registry: dict[int, tuple[RelaSpec | SpecPolicy, int, SpecPolicy]] = {}
        self._next_spec_token = 0
        self._contexts: dict[tuple[int, tuple[str, ...]], _CompiledContext] = {}
        self._next_context_token = 0
        # The persistent verdict cache: (context token, spec key, pre ref,
        # post ref) -> counterexample or None.  Entries survive epochs and
        # are only dropped by compact() when their graphs are evicted.
        self._verdicts: dict[tuple[int, str, int, int], Counterexample | None] = {}
        # Session refs pinned on behalf of the current snapshot.
        self._current_refs: set[int] = set()
        # --- Durability hooks (repro.persist) ---
        # When enabled, every cache-visible state change is appended here in
        # persistent form: ("spec", token, digest), ("add", spec token,
        # signature, spec key, pre graph, post graph, outcome),
        # ("drop_context", spec token, signature), ("drop_graphs", fps).
        # Checkpoints drain it per unit; replaying the events into a fresh
        # session reconstructs the verdict cache exactly.
        self._delta_log: list[tuple] | None = None
        # Journaled verdicts awaiting adoption, keyed by (spec token,
        # alphabet signature); each bucket maps (spec key, pre fingerprint,
        # post fingerprint) -> (pre graph, post graph, outcome).  A bucket
        # is adopted — graphs interned, verdicts installed — only when a
        # live epoch compiles a context with the *exact* same spec token and
        # alphabet signature (and a matching spec digest), so a stale store
        # can never change a report.
        self._pending_verdicts: dict[
            tuple[int, tuple[str, ...]],
            dict[tuple[str, str, str], tuple[ForwardingGraph, ForwardingGraph, object]],
        ] = {}
        #: Expected spec digests by token, from the journal being replayed.
        self._pending_spec_digests: dict[int, str] = {}
        #: Digests of the specs this session actually registered.
        self._spec_digests: dict[int, str] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def current(self) -> Snapshot:
        """The snapshot the next :meth:`advance` will verify against."""
        return self._current

    @property
    def store(self) -> GraphStore:
        """The session's cross-epoch interning store."""
        return self._store

    @property
    def cached_verdicts(self) -> int:
        """Number of (spec, graph pair) verdicts currently cached."""
        return len(self._verdicts)

    @property
    def compiled_contexts(self) -> int:
        """Number of compiled-spec contexts currently retained."""
        return len(self._contexts)

    @property
    def epochs(self) -> int:
        """Number of changes verified so far."""
        return self.stream.epochs

    def outcome_history(self) -> dict[str, int]:
        """Rolling outcome counters across every epoch this session verified.

        The history hook the risk layer consumes
        (:meth:`repro.analytics.risk.ChangeHistory.from_counters`): a change
        class that violated or degraded in earlier epochs of the same
        session scores hotter than a first-time-clean one.  Counters come
        from the cumulative :class:`~repro.verifier.report.StreamReport`, so
        they survive ``report_history`` trimming.
        """
        return {
            "epochs": self.stream.epochs,
            "violating_epochs": self.stream.violating_epochs,
            "degraded_epochs": self.stream.degraded_epochs,
            "unknown_epochs": self.stream.unknown_epochs,
        }

    # ------------------------------------------------------------------
    # The epoch step
    # ------------------------------------------------------------------
    def advance(
        self,
        new_snapshot: Snapshot,
        spec: RelaSpec | SpecPolicy | None = None,
    ) -> VerificationReport:
        """Verify the change from the current snapshot to ``new_snapshot``.

        Only (spec, pre graph, post graph) combinations the session has not
        seen are checked; everything else — unchanged classes after the
        first epoch, recurring pairs from drain→restore cycles — is served
        from the verdict cache.  The report is byte-identical (verdicts,
        per-branch counts, witness sets) to what an independent
        ``verify_change(current, new_snapshot, spec)`` would produce; its
        ``cached_checks`` field says how much of it the cache absorbed.

        On return ``new_snapshot`` is the session's current snapshot.
        """
        options = self.options
        pre, post = self._current, new_snapshot
        started = time.perf_counter()

        chosen = spec if spec is not None else self._default_spec
        if chosen is None:
            raise ValueError("advance() needs a spec (none given and no session default)")
        spec_token, policy = self._register(chosen)
        context = self._context_for(spec_token, policy, pre, post)

        # Dedup-first grouping, as in the one-shot engine, but interning into
        # the *session* store: a graph pair the stream exhibited before maps
        # to the refs it had then, which is what makes the verdict cache hit
        # across epochs.  FECs appearing in either snapshot are checked; a
        # FEC missing from one side contributes an empty path set.
        fec_ids = list(dict.fromkeys(pre.fec_ids() + post.fec_ids()))
        pre_cache = self._localizer(pre.store)
        post_cache = self._localizer(post.store)
        memoize = options.memoize_fec_checks
        cache_token = context.token
        guarded_specs = context.guarded_specs

        membership: list[tuple[str, MemoKey]] = []
        outcomes: dict[MemoKey, Counterexample | CheckFailure | None] = {}
        to_check: list[tuple[str, str, int, int]] = []
        key_of_representative: dict[str, MemoKey] = {}
        seen_keys: set[MemoKey] = set()
        cached_hits = 0
        for fec_id in fec_ids:
            spec_key = "default"
            if guarded_specs:
                fec = pre.fec(fec_id) if fec_id in pre else post.fec(fec_id)
                for index, guarded in guarded_specs:
                    if guarded.applies_to(fec):
                        spec_key = f"guard-{index}"
                        break
            pre_ref = self._session_ref(pre.graph_ref(fec_id), pre, pre_cache)
            post_ref = self._session_ref(post.graph_ref(fec_id), post, post_cache)
            if memoize:
                memo_key: MemoKey = (spec_key, pre_ref, post_ref)
            else:
                memo_key = (spec_key, fec_id)  # unique per FEC: no sharing
            membership.append((fec_id, memo_key))
            if memo_key in seen_keys:
                continue
            seen_keys.add(memo_key)
            if memoize:
                cached = self._verdicts.get((cache_token, spec_key, pre_ref, post_ref), _MISS)
                if cached is not _MISS:
                    outcomes[memo_key] = cached
                    cached_hits += 1
                    continue
            to_check.append((fec_id, spec_key, pre_ref, post_ref))
            key_of_representative[fec_id] = memo_key

        report = VerificationReport(
            granularity=options.granularity, workers=max(1, options.workers)
        )
        report.setup_seconds = time.perf_counter() - started
        report.unique_checks = len(seen_keys)
        report.cached_checks = cached_hits
        check_started = time.perf_counter()

        if to_check:
            # Compact the work list's session refs into a dense table: the
            # serial path indexes it in-process, the worker path ships it to
            # each worker exactly once via the pool initializer.
            table: list[ForwardingGraph] = []
            table_ids: dict[int, int] = {}

            def table_id(ref: int) -> int:
                local = table_ids.get(ref)
                if local is None:
                    local = len(table)
                    table.append(self._store.graph(ref))
                    table_ids[ref] = local
                return local

            work = [
                (fec_id, spec_key, table_id(pre_ref), table_id(post_ref))
                for fec_id, spec_key, pre_ref, post_ref in to_check
            ]
            execute = self.runner if self.runner is not None else _execute_unique_checks
            fresh = execute(
                work, table, context.compiled_specs, context.builder, options
            )
            for fec_id, spec_key, pre_ref, post_ref in to_check:
                outcome = fresh.outcomes[fec_id]
                outcomes[key_of_representative[fec_id]] = outcome
                # A CheckFailure is an *unknown* verdict, not a verdict: it
                # must never enter the persistent cache (the next epoch —or a
                # retry of this one— should re-execute the check, not be
                # served a stale failure).
                if memoize and not isinstance(outcome, CheckFailure):
                    self._verdicts[(cache_token, spec_key, pre_ref, post_ref)] = outcome
                    if self._delta_log is not None:
                        self._delta_log.append(
                            (
                                "add",
                                spec_token,
                                context.signature,
                                spec_key,
                                self._store.graph(pre_ref),
                                self._store.graph(post_ref),
                                outcome,
                            )
                        )
            report.degraded = fresh.degraded
            report.pool_rebuilds = fresh.pool_rebuilds
            report.retried_checks = fresh.retried_checks
            report.serial_fallback = fresh.serial_fallback

        report.check_seconds = time.perf_counter() - check_started

        # Fold per-FEC results into the report.  Descriptions and relabeled
        # counterexamples are built only for violating/unknown FECs, so the
        # all-pass case stays allocation-free here.
        for fec_id, memo_key in membership:
            outcome = outcomes[memo_key]
            if outcome is None:
                report.record(None)
                continue
            fec = pre.fec(fec_id) if fec_id in pre else post.fec(fec_id)
            if isinstance(outcome, CheckFailure):
                report.record(
                    replace(outcome, fec_id=fec_id, fec_description=str(fec))
                )
            else:
                report.record(_relabel(outcome, fec_id, str(fec)))

        if not options.collect_counterexamples:
            # Timing-only runs keep the verdict and counts but drop the detail.
            report.counterexamples = []

        report.finalize()
        report.elapsed_seconds = time.perf_counter() - started

        self._rotate(post, post_cache)
        self.stream.record(report)
        return report

    def rebase(self, snapshot: Snapshot) -> None:
        """Make ``snapshot`` current without verifying a change.

        Contingency sweeps verify *unordered pairs* through one session —
        each contingency's (pre, post) is a fresh branch off the baseline,
        not a continuation of the previous contingency's post state.
        ``rebase`` repositions the session (re-pinning graph refs, honouring
        the memory budgets) so the next :meth:`advance` verifies from
        ``snapshot``; the verdict cache and compiled contexts carry over,
        which is the whole point.
        """
        self._rotate(snapshot, self._localizer(snapshot.store))

    # ------------------------------------------------------------------
    # Durability (crash-resume + persistent state; see repro.persist)
    # ------------------------------------------------------------------
    def enable_delta_log(self) -> None:
        """Start recording cache-state deltas for checkpointing.

        While enabled, :meth:`drain_deltas` returns (and clears) the
        persistent-form events since the last drain; a checkpoint journals
        them with each completed unit, and :meth:`preload_deltas` replays
        them into a fresh session on resume.
        """
        if self._delta_log is None:
            self._delta_log = []

    def drain_deltas(self) -> list[tuple]:
        """The cache-state deltas since the last drain (clears the log)."""
        deltas = self._delta_log or []
        self._delta_log = [] if self._delta_log is not None else None
        return deltas

    def preload_deltas(self, deltas: Iterable[tuple]) -> None:
        """Replay journaled cache-state deltas into this session.

        Events fold into *pending* verdict buckets keyed by (spec token,
        alphabet signature); nothing touches the live cache until an epoch
        actually compiles a context with the same key and a matching spec
        digest (see :meth:`_context_for`), at which point the bucket's
        graphs are interned and its verdicts adopted.  Folding preserves
        journal order, so context invalidations and graph evictions from
        the original run drop exactly the entries they dropped then.
        """
        for event in deltas:
            kind = event[0]
            if kind == "spec":
                _, token, digest = event
                self._pending_spec_digests[token] = digest
                self._assert_spec_unchanged(token)
            elif kind == "add":
                _, spec_token, signature, spec_key, pre_graph, post_graph, outcome = event
                bucket = self._pending_verdicts.setdefault(
                    (spec_token, tuple(signature)), {}
                )
                bucket[(spec_key, pre_graph.fingerprint(), post_graph.fingerprint())] = (
                    pre_graph,
                    post_graph,
                    outcome,
                )
            elif kind == "drop_context":
                self._pending_verdicts.pop((event[1], tuple(event[2])), None)
            elif kind == "drop_graphs":
                dropped = set(event[1])
                for bucket in self._pending_verdicts.values():
                    stale = [
                        key
                        for key in bucket
                        if key[1] in dropped or key[2] in dropped
                    ]
                    for key in stale:
                        del bucket[key]
            else:
                raise StateVersionError(f"unknown journal delta event {kind!r}")

    def restore_epoch(
        self,
        new_snapshot: Snapshot,
        spec: RelaSpec | SpecPolicy | None,
        report: VerificationReport,
        deltas: Iterable[tuple] = (),
    ) -> None:
        """Replay one journaled epoch without re-verifying it (crash-resume).

        Equivalent, for every observable the session carries forward, to
        the :meth:`advance` call that originally produced ``report``: the
        spec registers under the same token (journal replay is strictly in
        epoch order, so token assignment matches the original run), the
        epoch's cache deltas preload, the session repositions on
        ``new_snapshot`` and the stored report folds into the cumulative
        :attr:`stream` totals.
        """
        chosen = spec if spec is not None else self._default_spec
        if chosen is None:
            raise ValueError("restore_epoch() needs a spec (none given and no session default)")
        if deltas:
            self.preload_deltas(deltas)
        self._register(chosen)
        self.rebase(new_snapshot)
        self.stream.record(report)

    def _assert_spec_unchanged(self, spec_token: int) -> None:
        """Refuse journaled verdicts when the live spec's digest drifted."""
        expected = self._pending_spec_digests.get(spec_token)
        if expected is None:
            return
        digest = self._spec_digests.get(spec_token)
        if digest is None:
            for instance, token, _ in self._registry.values():
                if token == spec_token:
                    digest = stable_digest(instance)
                    self._spec_digests[spec_token] = digest
                    break
        if digest is not None and digest != expected:
            raise StateVersionError(
                f"journaled verdicts for spec token {spec_token} were produced "
                "by a different spec (digest mismatch): adopting them could "
                "change the report, refusing"
            )

    def save(self, path: str | Path) -> None:
        """Persist this session's durable state to a journal at ``path``.

        Saves the interned graph store, registered specs, compiled-context
        keys with their cached verdicts, the cumulative stream counters and
        the current snapshot — everything a later invocation needs to pick
        the stream up warm.  Compiled automata are never persisted (they
        are derived state, recompiled on demand); neither is any
        ``CheckFailure`` (unknown verdicts are always retried fresh).
        """
        from repro.persist.statestore import StateStore

        StateStore(path).save_session(self)

    @classmethod
    def load(
        cls,
        path: str | Path,
        *,
        options: VerificationOptions | None = None,
        db: LocationDB | None = None,
    ) -> VerificationSession:
        """Rebuild a session saved with :meth:`save`.

        ``options`` may override the saved engine options only when every
        verdict-relevant field matches (:class:`~repro.errors.StateVersionError`
        otherwise — cached verdicts computed under one semantics must not
        be served under another); workers and resilience knobs may differ
        freely.  Cached verdicts re-enter service only through the pending
        adoption path, i.e. after the alphabet-signature and spec-digest
        validation every journaled verdict goes through.
        """
        from repro.persist.statestore import StateStore

        return StateStore(path).load_session(options=options, db=db)

    # ------------------------------------------------------------------
    # Memory management
    # ------------------------------------------------------------------
    def compact(self) -> int:
        """Evict graphs not pinned by the current snapshot; drop their verdicts.

        Returns the number of graphs evicted.  Eviction trades cache warmth
        for memory: a later epoch revisiting an evicted state re-interns the
        graphs (possibly recycling refs) and re-verifies its combinations.
        Source-store translation caches other than the current snapshot's
        are released as well, so a stream that churned through many stores
        does not pin them all.
        """
        fingerprints: dict[int, str] = {}
        if self._delta_log is not None:
            fingerprints = {ref: graph.fingerprint() for ref, graph in self._store.items()}
        evicted = self._store.evict_unreferenced()
        if not evicted:
            return 0
        gone = set(evicted)
        if self._delta_log is not None:
            self._delta_log.append(
                ("drop_graphs", tuple(fingerprints[ref] for ref in evicted))
            )
        self._verdicts = {
            key: verdict
            for key, verdict in self._verdicts.items()
            if key[2] not in gone and key[3] not in gone
        }
        current_store = self._current.store
        self._local = {
            store_id: entry
            for store_id, entry in self._local.items()
            if entry[0] is current_store
        }
        for _, cache in self._local.values():
            stale = [src_ref for src_ref, ref in cache.items() if ref in gone]
            for src_ref in stale:
                del cache[src_ref]
        self._empty_refs = {
            granularity: ref
            for granularity, ref in self._empty_refs.items()
            if ref not in gone
        }
        return len(evicted)

    def _evict_stale_contexts(self) -> None:
        """Drop least-recently-used compiled contexts past ``context_budget``.

        An evicted context takes its verdict-cache entries with it (they are
        keyed by its token and can never be served again), and spec
        instances left without any live context are unregistered — with one
        exception: the session's default spec stays registered, so its
        token is stable for the session's whole life.
        """
        budget = self.context_budget
        if budget is None or len(self._contexts) <= budget:
            return
        by_age = sorted(self._contexts.items(), key=lambda item: item[1].last_used_epoch)
        dead_tokens: set[int] = set()
        for key, context in by_age[: len(self._contexts) - budget]:
            dead_tokens.add(context.token)
            del self._contexts[key]
            if self._delta_log is not None:
                self._delta_log.append(("drop_context", key[0], key[1]))
        self._verdicts = {
            key: verdict
            for key, verdict in self._verdicts.items()
            if key[0] not in dead_tokens
        }
        live_spec_tokens = {spec_token for spec_token, _ in self._contexts}
        self._registry = {
            instance_id: entry
            for instance_id, entry in self._registry.items()
            if entry[1] in live_spec_tokens or entry[0] is self._default_spec
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _register(self, spec: RelaSpec | SpecPolicy) -> tuple[int, SpecPolicy]:
        """The (token, policy wrapper) of a spec instance, registered once.

        Registered instances are strongly referenced, so an ``id()`` key can
        never be recycled while its entry lives; a context-budget eviction
        may unregister an instance, after which re-seeing it (or a new
        instance at the same address) simply registers afresh under a new
        token — old tokens are never reissued.
        """
        key = id(spec)
        entry = self._registry.get(key)
        if entry is None:
            token = self._next_spec_token
            digest: str | None = None
            if self._pending_spec_digests:
                # Journaled verdicts are keyed by the *original* run's spec
                # tokens; a fresh process registers fresh instances, so the
                # binding is by content digest: a new registration whose
                # digest matches an unclaimed journaled token takes over
                # that token (and thereby its pending verdict buckets).
                digest = stable_digest(spec)
                claimed = {existing[1] for existing in self._registry.values()}
                for pending_token in sorted(self._pending_spec_digests):
                    if pending_token in claimed:
                        continue
                    if self._pending_spec_digests[pending_token] == digest:
                        token = pending_token
                        break
            entry = (spec, token, _as_policy(spec))
            self._next_spec_token = max(self._next_spec_token, token + 1)
            self._registry[key] = entry
            if self._delta_log is not None or self._pending_spec_digests:
                if digest is None:
                    digest = stable_digest(spec)
                self._spec_digests[token] = digest
                expected = self._pending_spec_digests.get(token)
                if expected is not None and expected != digest:
                    raise StateVersionError(
                        f"spec registered under token {token} does not match the "
                        "journaled run's spec (digest mismatch): resuming would "
                        "change the report, refusing"
                    )
                if self._delta_log is not None:
                    self._delta_log.append(("spec", token, digest))
        return entry[1], entry[2]

    def _context_for(
        self,
        spec_token: int,
        policy: SpecPolicy,
        pre: Snapshot,
        post: Snapshot,
    ) -> _CompiledContext:
        """The compiled form of ``policy`` over this epoch's exact alphabet.

        The alphabet is derived precisely as a one-shot run would derive it
        (database names, both snapshots' locations, the specs' symbols); a
        cached context is reused only when the derivation lands on the same
        symbol signature and the cached alphabet has not grown since it was
        compiled.  That makes reuse an *optimization with an equivalence
        proof obligation* rather than a semantic change — forced alphabet
        rebuilds only cost speed, never fidelity.
        """
        specs_to_compile = _policy_specs(policy)
        alphabet = build_alphabet(
            pre,
            post,
            db=self.db,
            granularity=self.options.granularity,
            extra_symbols=_spec_symbols(specs_to_compile.values()),
        )
        signature = tuple(alphabet.names())
        key = (spec_token, signature)
        context = self._contexts.get(key)
        if context is not None and len(context.alphabet) != len(context.signature):
            # The cached context's alphabet grew since compile time (some
            # check interned a symbol): its compiled complements are no
            # longer what a cold run would produce.  Rebuild, and drop the
            # dead token's verdicts — they can never be served again.
            dead = context.token
            self._verdicts = {
                verdict_key: verdict
                for verdict_key, verdict in self._verdicts.items()
                if verdict_key[0] != dead
            }
            if self._delta_log is not None:
                self._delta_log.append(("drop_context", spec_token, signature))
            context = None
        if context is None:
            builder = StateAutomatonBuilder(
                alphabet=alphabet, granularity=self.options.granularity, db=self.db
            )
            compiled_specs = {
                spec_key: compile_spec(value, alphabet, lazy=self.options.lazy_spec_compilation)
                for spec_key, value in specs_to_compile.items()
            }
            context = _CompiledContext(
                token=self._next_context_token,
                alphabet=alphabet,
                signature=signature,
                builder=builder,
                compiled_specs=compiled_specs,
                guarded_specs=list(enumerate(policy.guarded)),
            )
            self._next_context_token += 1
            self._contexts[key] = context
            pending = self._pending_verdicts.pop(key, None)
            if pending:
                # Adoption: this epoch landed on the exact (spec token,
                # alphabet signature) a journaled run cached verdicts for.
                # The digest check makes the binding spec-*content* deep,
                # not just token-deep.
                self._assert_spec_unchanged(spec_token)
                for (adopted_key, _, _), entry in pending.items():
                    pre_graph, post_graph, outcome = entry
                    pre_ref = self._store.intern(pre_graph)
                    post_ref = self._store.intern(post_graph)
                    self._verdicts[(context.token, adopted_key, pre_ref, post_ref)] = outcome
                    if self._delta_log is not None:
                        self._delta_log.append(
                            (
                                "add",
                                spec_token,
                                signature,
                                adopted_key,
                                pre_graph,
                                post_graph,
                                outcome,
                            )
                        )
        context.last_used_epoch = self.stream.epochs + 1
        return context

    def _localizer(self, store: GraphStore) -> dict[int, int]:
        """The persistent src-ref → session-ref cache for one source store."""
        entry = self._local.get(id(store))
        if entry is None or entry[0] is not store:
            entry = (store, {})
            self._local[id(store)] = entry
        return entry[1]

    def _session_ref(
        self, ref: int | None, snapshot: Snapshot, cache: dict[int, int]
    ) -> int:
        """Translate one snapshot-local graph ref into a session-store ref."""
        if ref is None:
            granularity = snapshot.granularity
            session_ref = self._empty_refs.get(granularity)
            if session_ref is None:
                session_ref = self._store.intern(ForwardingGraph.empty(granularity=granularity))
                self._empty_refs[granularity] = session_ref
            return session_ref
        session_ref = cache.get(ref)
        if session_ref is None:
            session_ref = self._store.intern(snapshot.store.graph(ref))
            cache[ref] = session_ref
        return session_ref

    def _rotate(self, new_snapshot: Snapshot, post_cache: dict[int, int]) -> None:
        """Make ``new_snapshot`` current: re-pin refs, maybe compact."""
        new_refs = {
            self._session_ref(ref, new_snapshot, post_cache)
            for ref in new_snapshot.distinct_graph_refs()
        }
        for ref in self._current_refs:
            self._store.release(ref)
        for ref in new_refs:
            self._store.acquire(ref)
        self._current_refs = new_refs
        self._current = new_snapshot
        if self.graph_budget is not None and len(self._store) > self.graph_budget:
            self.compact()
        self._evict_stale_contexts()


def verify_stream(
    initial: Snapshot,
    epochs: Iterable[tuple[Snapshot, RelaSpec | SpecPolicy]],
    *,
    db: LocationDB | None = None,
    options: VerificationOptions | None = None,
    graph_budget: int | None = None,
    context_budget: int | None = None,
    checkpoint: str | Path | None = None,
    resume: bool = False,
    signature: str = "stream",
    on_epoch: Callable[[int, VerificationReport, bool], None] | None = None,
) -> StreamReport:
    """Verify a whole change stream through one session (convenience driver).

    ``epochs`` yields ``(new_snapshot, spec)`` pairs in stream order; the
    cumulative :class:`~repro.verifier.report.StreamReport` (which holds
    every per-epoch report) is returned.  ``context_budget`` matters for
    streams that mint a fresh spec per epoch — see
    :class:`VerificationSession`.

    With ``checkpoint`` set, every completed epoch is journaled (its report
    plus the session cache deltas it produced) to that path as it lands;
    ``resume=True`` replays the journal's clean prefix of epochs instead of
    re-verifying them, producing a stream report byte-identical to an
    uninterrupted run's.  ``signature`` binds the journal to this workload:
    resuming against a checkpoint written under a different signature
    raises :class:`~repro.errors.StateVersionError`.  Epochs whose report
    degraded (any unknown verdict) are journaled as markers only, so a
    resumed run retries them fresh.  A ``KeyboardInterrupt`` (SIGINT, or
    the CLI's SIGTERM translation) flushes a final interrupt marker before
    propagating, so ``--resume`` picks up exactly where the operator
    stopped.  ``on_epoch(index, report, resumed)`` is invoked for every
    epoch, replayed or live.
    """
    if resume and checkpoint is None:
        raise VerificationError("resume=True requires a checkpoint path")

    session = VerificationSession(
        initial,
        db=db,
        options=options,
        graph_budget=graph_budget,
        context_budget=context_budget,
    )

    if checkpoint is None:
        for index, (new_snapshot, spec) in enumerate(epochs):
            report = session.advance(new_snapshot, spec)
            if on_epoch is not None:
                on_epoch(index, report, False)
        return session.stream

    epoch_list = list(epochs)
    ckpt = Checkpoint.open(checkpoint, kind="stream", signature=signature, resume=resume)
    try:
        if len(ckpt.completed_units) > len(epoch_list):
            raise StateVersionError(
                f"checkpoint {ckpt.path} records {len(ckpt.completed_units)} completed "
                f"epochs but the stream only has {len(epoch_list)}: it belongs to a "
                "different run, refusing to resume"
            )
        session.enable_delta_log()
        for unit in ckpt.completed_units:
            index = unit["index"]
            new_snapshot, spec = epoch_list[index]
            report = unit["result"]
            session.restore_epoch(new_snapshot, spec, report, unit.get("deltas", ()))
            if on_epoch is not None:
                on_epoch(index, report, True)
        try:
            for index in range(len(ckpt.completed_units), len(epoch_list)):
                new_snapshot, spec = epoch_list[index]
                report = session.advance(new_snapshot, spec)
                deltas = session.drain_deltas()
                if report.degraded:
                    # Result-free marker: degraded epochs are retried fresh
                    # on resume (their deltas would replay verdicts computed
                    # alongside unknown ones, so they are dropped too).
                    ckpt.record_unit(index, f"epoch-{index}", degraded=True)
                else:
                    ckpt.record_unit(
                        index, f"epoch-{index}", result=report, deltas=deltas
                    )
                if on_epoch is not None:
                    on_epoch(index, report, False)
        except KeyboardInterrupt:
            ckpt.interrupt()
            raise
    finally:
        ckpt.close()
    return session.stream
