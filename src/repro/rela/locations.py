"""Network locations, granularity levels and the location database.

Rela path expressions are regular expressions over *network locations*
(Section 4).  A location can be viewed at three granularities:

* ``INTERFACE`` — an individual router interface ("a1-r1:et-1");
* ``ROUTER`` — a device ("a1-r1");
* ``GROUP`` — a router group, i.e. a set of routers fulfilling the same
  function ("A1").

The paper pairs Rela with a database of all locations in the network and a
``where`` query facility that selects locations by attribute (for example
``where(group == "A1")``).  :class:`LocationDB` reproduces that facility: it
stores one record per interface and can answer queries and perform
granularity conversion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from collections.abc import Callable, Iterable, Iterator

from repro.automata.regex import Regex, SymSet
from repro.errors import LocationError


class Granularity(str, Enum):
    """The level at which forwarding hops are identified."""

    INTERFACE = "interface"
    ROUTER = "router"
    GROUP = "group"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Order from finest to coarsest; used to validate conversions.
_GRANULARITY_ORDER = {
    Granularity.INTERFACE: 0,
    Granularity.ROUTER: 1,
    Granularity.GROUP: 2,
}


@dataclass(frozen=True, slots=True)
class Location:
    """One interface-level location record.

    Attributes mirror the kinds of metadata the paper's database exposes:
    the owning router, the router group, the geographic region, the BGP
    autonomous system and the device tier (role).  ``extra`` carries any
    additional operator-defined attributes usable in ``where`` queries.
    """

    interface: str
    router: str
    group: str
    region: str = ""
    asn: int = 0
    tier: str = ""
    extra: dict[str, str] = field(default_factory=dict, compare=False, hash=False)

    def name_at(self, granularity: Granularity) -> str:
        """The symbol name this location contributes at ``granularity``."""
        if granularity is Granularity.INTERFACE:
            return self.interface
        if granularity is Granularity.ROUTER:
            return self.router
        return self.group

    def attribute(self, key: str) -> object:
        """Look up an attribute by name (built-in fields first, then extras)."""
        if key in ("interface", "router", "group", "region", "asn", "tier"):
            return getattr(self, key)
        if key in self.extra:
            return self.extra[key]
        raise LocationError(f"location {self.interface!r} has no attribute {key!r}")


class LocationDB:
    """The network's location database (paper Section 4).

    Records are added per interface; queries can be answered at any
    granularity.  The database also knows how to map symbol names between
    granularities, which the verifier uses when a spec is written at a
    coarser level than the forwarding data.
    """

    def __init__(self, locations: Iterable[Location] = ()):
        self._by_interface: dict[str, Location] = {}
        for location in locations:
            self.add(location)

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def add(self, location: Location) -> None:
        """Register a location record."""
        if location.interface in self._by_interface:
            raise LocationError(f"duplicate interface {location.interface!r}")
        self._by_interface[location.interface] = location

    def add_router(
        self,
        router: str,
        *,
        group: str,
        region: str = "",
        asn: int = 0,
        tier: str = "",
        interfaces: Iterable[str] = (),
        **extra: str,
    ) -> list[Location]:
        """Convenience helper to register a router and its interfaces at once.

        When ``interfaces`` is empty a single pseudo-interface named after the
        router is created so the router is still queryable at interface
        granularity.
        """
        names = list(interfaces) or [f"{router}:lo0"]
        created = []
        for name in names:
            location = Location(
                interface=name,
                router=router,
                group=group,
                region=region,
                asn=asn,
                tier=tier,
                extra=dict(extra),
            )
            self.add(location)
            created.append(location)
        return created

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._by_interface)

    def __iter__(self) -> Iterator[Location]:
        return iter(self._by_interface.values())

    def locations(self) -> list[Location]:
        """All interface-level records."""
        return list(self._by_interface.values())

    def names_at(self, granularity: Granularity) -> set[str]:
        """All symbol names that exist at the given granularity."""
        return {loc.name_at(granularity) for loc in self._by_interface.values()}

    def routers(self) -> set[str]:
        """All router names."""
        return self.names_at(Granularity.ROUTER)

    def groups(self) -> set[str]:
        """All router-group names."""
        return self.names_at(Granularity.GROUP)

    def router_of_interface(self, interface: str) -> str:
        """The router owning ``interface``."""
        try:
            return self._by_interface[interface].router
        except KeyError:
            raise LocationError(f"unknown interface {interface!r}") from None

    def group_of_router(self, router: str) -> str:
        """The group of ``router`` (routers belong to exactly one group)."""
        for location in self._by_interface.values():
            if location.router == router:
                return location.group
        raise LocationError(f"unknown router {router!r}")

    def coarsen(self, name: str, source: Granularity, target: Granularity) -> str:
        """Map a symbol name from a finer to a coarser granularity."""
        if _GRANULARITY_ORDER[target] < _GRANULARITY_ORDER[source]:
            raise LocationError(
                f"cannot refine {source.value} name {name!r} to {target.value}"
            )
        if source is target:
            return name
        for location in self._by_interface.values():
            if location.name_at(source) == name:
                return location.name_at(target)
        raise LocationError(f"unknown {source.value} name {name!r}")

    def coarsening_map(self, source: Granularity, target: Granularity) -> dict[str, str]:
        """Mapping of every ``source``-level name to its ``target``-level name."""
        if _GRANULARITY_ORDER[target] < _GRANULARITY_ORDER[source]:
            raise LocationError(f"cannot refine {source.value} to {target.value}")
        mapping: dict[str, str] = {}
        for location in self._by_interface.values():
            mapping[location.name_at(source)] = location.name_at(target)
        return mapping

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def select(
        self,
        predicate: Callable[[Location], bool],
        *,
        granularity: Granularity = Granularity.ROUTER,
    ) -> set[str]:
        """Names (at ``granularity``) of locations satisfying ``predicate``."""
        return {
            loc.name_at(granularity) for loc in self._by_interface.values() if predicate(loc)
        }

    def where(
        self,
        query: str | None = None,
        *,
        granularity: Granularity = Granularity.ROUTER,
        **attrs: object,
    ) -> Regex:
        """The paper's ``where`` query: a one-hop path set of matching locations.

        Either a query string (``'group == "A1" and region == "A"'``) or
        keyword equality constraints (``group="A1"``) may be given.  The
        result is a :class:`~repro.automata.regex.SymSet` regex usable
        directly inside zone expressions.
        """
        if query is not None:
            predicate = _parse_where(query)
        else:
            def predicate(loc: Location) -> bool:
                return all(loc.attribute(key) == value for key, value in attrs.items())

        names = self.select(predicate, granularity=granularity)
        if not names:
            raise LocationError(
                f"where query matched no locations (query={query!r}, attrs={attrs!r})"
            )
        return SymSet(frozenset(names))


def _parse_where(query: str) -> Callable[[Location], bool]:
    """Parse a ``where`` query string into a predicate on locations.

    Supported grammar (case-sensitive attribute names)::

        expr   := term ("or" term)*
        term   := factor ("and" factor)*
        factor := "not" factor | "(" expr ")" | comparison
        comparison := attr ("==" | "!=") literal | attr "in" "[" literal, ... "]"

    Literals are quoted strings or integers.
    """
    tokens = _tokenize_where(query)
    parser = _WhereParser(tokens, query)
    predicate = parser.parse_expr()
    parser.expect_end()
    return predicate


def _tokenize_where(query: str) -> list[str]:
    import re

    token_re = re.compile(
        r"\s*(==|!=|\(|\)|\[|\]|,|and\b|or\b|not\b|in\b|\"[^\"]*\"|'[^']*'|[A-Za-z_][A-Za-z_0-9]*|\d+)"
    )
    tokens: list[str] = []
    index = 0
    while index < len(query):
        match = token_re.match(query, index)
        if match is None:
            if query[index:].strip():
                raise LocationError(f"cannot tokenize where query at {query[index:]!r}")
            break
        tokens.append(match.group(1))
        index = match.end()
    return tokens


class _WhereParser:
    def __init__(self, tokens: list[str], query: str):
        self.tokens = tokens
        self.query = query
        self.pos = 0

    def _peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _advance(self) -> str:
        token = self._peek()
        if token is None:
            raise LocationError(f"unexpected end of where query {self.query!r}")
        self.pos += 1
        return token

    def expect_end(self) -> None:
        if self._peek() is not None:
            raise LocationError(f"trailing tokens in where query {self.query!r}")

    def parse_expr(self) -> Callable[[Location], bool]:
        terms = [self.parse_term()]
        while self._peek() == "or":
            self._advance()
            terms.append(self.parse_term())
        return lambda loc: any(term(loc) for term in terms)

    def parse_term(self) -> Callable[[Location], bool]:
        factors = [self.parse_factor()]
        while self._peek() == "and":
            self._advance()
            factors.append(self.parse_factor())
        return lambda loc: all(factor(loc) for factor in factors)

    def parse_factor(self) -> Callable[[Location], bool]:
        token = self._peek()
        if token == "not":
            self._advance()
            inner = self.parse_factor()
            return lambda loc: not inner(loc)
        if token == "(":
            self._advance()
            inner = self.parse_expr()
            if self._advance() != ")":
                raise LocationError(f"expected ')' in where query {self.query!r}")
            return inner
        return self.parse_comparison()

    def parse_comparison(self) -> Callable[[Location], bool]:
        attr = self._advance()
        operator = self._advance()
        if operator == "in":
            if self._advance() != "[":
                raise LocationError(f"expected '[' after 'in' in {self.query!r}")
            values = []
            while True:
                values.append(self._literal(self._advance()))
                token = self._advance()
                if token == "]":
                    break
                if token != ",":
                    raise LocationError(f"expected ',' or ']' in {self.query!r}")
            allowed = set(values)
            return lambda loc: loc.attribute(attr) in allowed
        if operator not in ("==", "!="):
            raise LocationError(f"unsupported operator {operator!r} in {self.query!r}")
        value = self._literal(self._advance())
        if operator == "==":
            return lambda loc: loc.attribute(attr) == value
        return lambda loc: loc.attribute(attr) != value

    @staticmethod
    def _literal(token: str) -> object:
        if token and token[0] in "\"'":
            return token[1:-1]
        if token.isdigit():
            return int(token)
        return token
