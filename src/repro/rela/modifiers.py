"""Rela path modifiers (paper Figure 2).

A modifier describes how the paths inside a zone are expected to differ
between the pre-change and post-change snapshots:

* :class:`Preserve` — paths in the zone must be identical in both snapshots;
* :class:`Add` — the given paths are added (conditionally on the zone being
  populated in the pre-change network), everything else in the zone stays;
* :class:`Remove` — the given paths are removed, everything else stays;
* :class:`Replace` — paths matching the first argument are replaced by all
  paths of the second argument; pre-existing target paths stay;
* :class:`Drop` — traffic in the zone is dropped after the change;
* :class:`Any` — traffic in the zone moves to *some* path of the argument
  (a non-deterministic replacement).

The actual meaning of each modifier is given by its translation to RIR
relations (Figure 4), implemented in :mod:`repro.rela.compile`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.regex import Regex
from repro.rela.pathexpr import PathLike, as_regex


class Modifier:
    """Base class for Rela path modifiers."""

    __slots__ = ()

    #: Keyword used in the textual syntax (overridden by subclasses).
    keyword = ""

    def __str__(self) -> str:
        return self.keyword


@dataclass(frozen=True, slots=True)
class Preserve(Modifier):
    """``preserve``: the zone's paths must not change."""

    keyword = "preserve"


@dataclass(frozen=True, slots=True)
class Add(Modifier):
    """``add(P)``: the paths of ``P`` appear after the change."""

    paths: Regex
    keyword = "add"

    def __str__(self) -> str:
        return f"add({self.paths})"


@dataclass(frozen=True, slots=True)
class Remove(Modifier):
    """``remove(P)``: the paths of ``P`` disappear after the change."""

    paths: Regex
    keyword = "remove"

    def __str__(self) -> str:
        return f"remove({self.paths})"


@dataclass(frozen=True, slots=True)
class Replace(Modifier):
    """``replace(P1, P2)``: paths in ``P1`` are replaced by all paths in ``P2``."""

    old: Regex
    new: Regex
    keyword = "replace"

    def __str__(self) -> str:
        return f"replace({self.old}, {self.new})"


@dataclass(frozen=True, slots=True)
class Drop(Modifier):
    """``drop``: the zone's traffic is dropped after the change."""

    keyword = "drop"


@dataclass(frozen=True, slots=True)
class Any(Modifier):
    """``any(P)``: the zone's traffic moves to some path in ``P``."""

    paths: Regex
    keyword = "any"

    def __str__(self) -> str:
        return f"any({self.paths})"


# ----------------------------------------------------------------------
# Convenience constructors accepting strings or Regex values
# ----------------------------------------------------------------------
def preserve() -> Preserve:
    """Build a ``preserve`` modifier."""
    return Preserve()


def add(paths: PathLike) -> Add:
    """Build an ``add(P)`` modifier."""
    return Add(as_regex(paths))


def remove(paths: PathLike) -> Remove:
    """Build a ``remove(P)`` modifier."""
    return Remove(as_regex(paths))


def replace(old: PathLike, new: PathLike) -> Replace:
    """Build a ``replace(P1, P2)`` modifier."""
    return Replace(as_regex(old), as_regex(new))


def drop() -> Drop:
    """Build a ``drop`` modifier."""
    return Drop()


def any_of(paths: PathLike) -> Any:
    """Build an ``any(P)`` modifier."""
    return Any(as_regex(paths))
