"""Prefix-predicated specifications (paper Section 7, "Practical Extensions").

Each flow equivalence class (FEC) carries the IP addresses of the traffic it
describes.  Sometimes a change spec should apply only to specific addresses —
for example, decommissioning ``10.0.0.0/24`` means *that* prefix must be
dropped everywhere while everything else stays put.  Rela supports this with
specs of the form ``prefix-predicate -> change-spec``; the predicate filters
which FECs a spec applies to and sits outside the core path language.

This module provides:

* the predicate language (:class:`DstPrefixWithin`, :class:`SrcPrefixWithin`,
  :class:`IngressIn` and boolean combinators);
* :class:`PSpec`, a guarded spec;
* :class:`SpecPolicy`, an ordered collection of guarded specs plus a default,
  which the verifier consults to pick the spec for each FEC (first matching
  guard wins).
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.errors import SpecSyntaxError
from repro.rela.spec import RelaSpec


def _as_network(prefix: str) -> ipaddress.IPv4Network | ipaddress.IPv6Network:
    try:
        return ipaddress.ip_network(prefix, strict=False)
    except ValueError as exc:
        raise SpecSyntaxError(f"invalid IP prefix {prefix!r}: {exc}") from exc


class PrefixPredicate:
    """Base class for predicates over flow equivalence classes."""

    __slots__ = ()

    def matches(self, fec: object) -> bool:
        """Whether this predicate selects the given FEC."""
        raise NotImplementedError

    def __and__(self, other: PrefixPredicate) -> PrefixPredicate:
        return PredAnd(self, other)

    def __or__(self, other: PrefixPredicate) -> PrefixPredicate:
        return PredOr(self, other)

    def __invert__(self) -> PrefixPredicate:
        return PredNot(self)


@dataclass(frozen=True, slots=True)
class PredTrue(PrefixPredicate):
    """Matches every FEC."""

    def matches(self, fec: object) -> bool:
        return True

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True, slots=True)
class DstPrefixWithin(PrefixPredicate):
    """The FEC's destination prefix falls within the given prefix."""

    prefix: str

    def matches(self, fec: object) -> bool:
        dst = getattr(fec, "dst_prefix", None)
        if dst is None:
            return False
        return _as_network(str(dst)).subnet_of(_as_network(self.prefix))

    def __str__(self) -> str:
        return f'dstPrefix == {self.prefix}'


@dataclass(frozen=True, slots=True)
class SrcPrefixWithin(PrefixPredicate):
    """The FEC's source prefix falls within the given prefix."""

    prefix: str

    def matches(self, fec: object) -> bool:
        src = getattr(fec, "src_prefix", None)
        if src is None:
            return False
        return _as_network(str(src)).subnet_of(_as_network(self.prefix))

    def __str__(self) -> str:
        return f'srcPrefix == {self.prefix}'


@dataclass(frozen=True, slots=True)
class IngressIn(PrefixPredicate):
    """The FEC enters the network at one of the given locations."""

    locations: frozenset[str]

    def __init__(self, locations: Iterable[str]):
        object.__setattr__(self, "locations", frozenset(locations))

    def matches(self, fec: object) -> bool:
        ingress = getattr(fec, "ingress", None)
        return ingress in self.locations

    def __str__(self) -> str:
        return f"ingress in {sorted(self.locations)}"


@dataclass(frozen=True, slots=True)
class PredAnd(PrefixPredicate):
    left: PrefixPredicate
    right: PrefixPredicate

    def matches(self, fec: object) -> bool:
        return self.left.matches(fec) and self.right.matches(fec)

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass(frozen=True, slots=True)
class PredOr(PrefixPredicate):
    left: PrefixPredicate
    right: PrefixPredicate

    def matches(self, fec: object) -> bool:
        return self.left.matches(fec) or self.right.matches(fec)

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


@dataclass(frozen=True, slots=True)
class PredNot(PrefixPredicate):
    inner: PrefixPredicate

    def matches(self, fec: object) -> bool:
        return not self.inner.matches(fec)

    def __str__(self) -> str:
        return f"not ({self.inner})"


@dataclass(frozen=True, slots=True)
class PSpec:
    """A guarded spec ``predicate -> spec``."""

    predicate: PrefixPredicate
    spec: RelaSpec
    name: str | None = None

    def applies_to(self, fec: object) -> bool:
        """Whether this guarded spec governs the given FEC."""
        return self.predicate.matches(fec)

    def __str__(self) -> str:
        body = f"({self.predicate}) -> {self.spec.name or self.spec}"
        return f"{self.name} := {body}" if self.name else body


class SpecPolicy:
    """An ordered list of guarded specs plus a default spec.

    The verifier asks the policy which spec governs each FEC; the first
    guarded spec whose predicate matches wins, otherwise the default applies.
    A bare :class:`~repro.rela.spec.RelaSpec` behaves like a policy whose
    default is that spec and which has no guards.
    """

    def __init__(
        self,
        default: RelaSpec,
        guarded: Sequence[PSpec] = (),
    ):
        self.default = default
        self.guarded = list(guarded)

    def spec_for(self, fec: object) -> RelaSpec:
        """The spec governing ``fec``."""
        for pspec in self.guarded:
            if pspec.applies_to(fec):
                return pspec.spec
        return self.default

    def atomic_count(self) -> int:
        """Total spec size across the default and all guarded specs."""
        return self.default.atomic_count() + sum(
            pspec.spec.atomic_count() for pspec in self.guarded
        )

    def __str__(self) -> str:
        parts = [str(pspec) for pspec in self.guarded]
        parts.append(f"default -> {self.default.name or self.default}")
        return "\n".join(parts)
