"""Translation from Rela specifications to the RIR (paper Figure 4).

For every Rela spec ``s`` the translation produces:

* a pre-change relation ``Rpre⟦s⟧``;
* a post-change relation ``Rpost⟦s⟧``;
* a zone path set ``Z⟦s⟧`` (used by the prioritized-union translation and by
  counterexample attribution);

and the overall RIR assertion::

    PreState ▷ Rpre⟦s⟧  =  PostState ▷ Rpost⟦s⟧

The zone and modifier arguments are snapshot-independent regular expressions,
so ``Z`` is computed at the regex level; the relations are RIR ``Rel`` trees
whose leaves lift those regexes via :class:`~repro.rir.ast.PSRegex`.
"""

from __future__ import annotations

from repro.automata.alphabet import DROP, HASH
from repro.automata.regex import Complement, Intersect, Regex, Sym, Union
from repro.errors import CompilationError
from repro.rela import spec as rela_spec
from repro.rela import modifiers as mods
from repro.rir import ast as rir


# ----------------------------------------------------------------------
# Zone extraction:  Z⟦s⟧
# ----------------------------------------------------------------------
def zone(spec: rela_spec.RelaSpec) -> Regex:
    """The zone ``Z⟦s⟧`` of a spec, per the bottom block of Figure 4."""
    if isinstance(spec, rela_spec.AtomicSpec):
        return _atomic_zone(spec.zone, spec.modifier)
    if isinstance(spec, rela_spec.SeqSpec):
        result: Regex | None = None
        for part in spec.parts:
            part_zone = zone(part)
            result = part_zone if result is None else result.concat(part_zone)
        if result is None:
            raise CompilationError("empty sequential spec has no zone")
        return result
    if isinstance(spec, rela_spec.ElseSpec):
        return Union(zone(spec.primary), zone(spec.fallback))
    raise CompilationError(f"unknown Rela spec node: {spec!r}")


def _atomic_zone(zone_expr: Regex, modifier: mods.Modifier) -> Regex:
    if isinstance(modifier, mods.Preserve):
        return zone_expr
    if isinstance(modifier, mods.Add):
        return Union(zone_expr, modifier.paths)
    if isinstance(modifier, mods.Remove):
        return zone_expr
    if isinstance(modifier, mods.Replace):
        return Union(zone_expr, modifier.new)
    if isinstance(modifier, mods.Drop):
        return Union(zone_expr, Sym(DROP))
    if isinstance(modifier, mods.Any):
        return Union(zone_expr, modifier.paths)
    raise CompilationError(f"unknown modifier: {modifier!r}")


# ----------------------------------------------------------------------
# Relations:  Rpre⟦s⟧ and Rpost⟦s⟧
# ----------------------------------------------------------------------
def _lift(regex: Regex) -> rir.PathSet:
    return rir.PSRegex(regex)


def _difference(left: Regex, right: Regex) -> Regex:
    return Intersect(left, Complement(right))


def pre_relation(spec: rela_spec.RelaSpec) -> rir.Rel:
    """``Rpre⟦s⟧`` per Figure 4."""
    return _relation(spec, pre=True)


def post_relation(spec: rela_spec.RelaSpec) -> rir.Rel:
    """``Rpost⟦s⟧`` per Figure 4."""
    return _relation(spec, pre=False)


def _relation(spec: rela_spec.RelaSpec, *, pre: bool) -> rir.Rel:
    if isinstance(spec, rela_spec.AtomicSpec):
        return _atomic_relation(spec.zone, spec.modifier, pre=pre)
    if isinstance(spec, rela_spec.SeqSpec):
        result: rir.Rel | None = None
        for part in spec.parts:
            part_rel = _relation(part, pre=pre)
            result = part_rel if result is None else rir.RConcat(result, part_rel)
        if result is None:
            raise CompilationError("empty sequential spec has no relation")
        return result
    if isinstance(spec, rela_spec.ElseSpec):
        primary_rel = _relation(spec.primary, pre=pre)
        fallback_rel = _relation(spec.fallback, pre=pre)
        outside_primary = rir.RIdentity(_lift(Complement(zone(spec.primary))))
        return rir.RUnion(primary_rel, rir.RCompose(outside_primary, fallback_rel))
    raise CompilationError(f"unknown Rela spec node: {spec!r}")


def _atomic_relation(zone_expr: Regex, modifier: mods.Modifier, *, pre: bool) -> rir.Rel:
    drop_re = Sym(DROP)
    hash_re = Sym(HASH)
    if isinstance(modifier, mods.Preserve):
        return rir.RIdentity(_lift(zone_expr))
    if isinstance(modifier, mods.Add):
        zone_or_paths = Union(zone_expr, modifier.paths)
        if pre:
            return rir.RUnion(
                rir.RIdentity(_lift(zone_or_paths)),
                rir.RCross(_lift(zone_expr), _lift(modifier.paths)),
            )
        return rir.RIdentity(_lift(zone_or_paths))
    if isinstance(modifier, mods.Remove):
        if pre:
            return rir.RIdentity(_lift(_difference(zone_expr, modifier.paths)))
        return rir.RIdentity(_lift(zone_expr))
    if isinstance(modifier, mods.Replace):
        zone_or_new = Union(zone_expr, modifier.new)
        if pre:
            return rir.RUnion(
                rir.RIdentity(_lift(_difference(zone_or_new, modifier.old))),
                rir.RCross(
                    _lift(Intersect(zone_expr, modifier.old)), _lift(modifier.new)
                ),
            )
        return rir.RIdentity(_lift(zone_or_new))
    if isinstance(modifier, mods.Drop):
        zone_or_drop = Union(zone_expr, drop_re)
        if pre:
            return rir.RCross(_lift(zone_or_drop), _lift(drop_re))
        return rir.RIdentity(_lift(zone_or_drop))
    if isinstance(modifier, mods.Any):
        zone_or_paths = Union(zone_expr, modifier.paths)
        if pre:
            return rir.RCross(_lift(zone_or_paths), _lift(hash_re))
        return rir.RUnion(
            rir.RCross(_lift(modifier.paths), _lift(hash_re)),
            rir.RIdentity(_lift(_difference(zone_expr, modifier.paths))),
        )
    raise CompilationError(f"unknown modifier: {modifier!r}")


# ----------------------------------------------------------------------
# Top-level spec translation
# ----------------------------------------------------------------------
def to_rir(spec: rela_spec.RelaSpec, *, label: str | None = None) -> rir.Spec:
    """Translate a Rela spec into the RIR equation of Section 5.3."""
    pre_side = rir.PSImage(rir.PSPreState(), pre_relation(spec))
    post_side = rir.PSImage(rir.PSPostState(), post_relation(spec))
    return rir.SpecEqual(pre_side, post_side, label=label or spec.name)


def _shadow_union(zones: list[Regex]) -> Regex | None:
    """The union of prior-branch zones, or ``None`` when there are none."""
    shadow: Regex | None = None
    for prior in zones:
        shadow = prior if shadow is None else Union(shadow, prior)
    return shadow


def _restrict_outside(rel: rir.Rel, shadow: Regex | None) -> rir.Rel:
    """Apply the Figure 4 branch-shadowing prefix ``I(¬shadow) ∘ rel``."""
    if shadow is None:
        return rel
    return rir.RCompose(rir.RIdentity(_lift(Complement(shadow))), rel)


def branch_relations(
    spec: rela_spec.RelaSpec,
) -> list[tuple[rela_spec.RelaSpec, rir.Rel, rir.Rel]]:
    """Per-branch shadowed relations ``(branch, Rpre_i, Rpost_i)``.

    Flattens the ``else`` chain in priority order and applies the cumulative
    ``I(¬(Z1 | ... | Z_{i-1})) ∘ R`` restriction to each branch, exactly as
    the Figure 4 translation does for the overall relation.  This is the RIR
    *description* only — no automata are built — so callers (the verifier's
    counterexample attribution) can defer compiling a branch transducer
    until that branch is actually violated.
    """
    result: list[tuple[rela_spec.RelaSpec, rir.Rel, rir.Rel]] = []
    prior_zones: list[Regex] = []
    for branch in rela_spec.flatten_else(spec):
        shadow = _shadow_union(prior_zones)
        result.append(
            (
                branch,
                _restrict_outside(pre_relation(branch), shadow),
                _restrict_outside(post_relation(branch), shadow),
            )
        )
        prior_zones.append(zone(branch))
    return result


def branch_rir(
    branch: rela_spec.RelaSpec,
    prior_zones: list[Regex],
    *,
    label: str | None = None,
) -> rir.Spec:
    """The RIR equation for one ``else`` branch, restricted to its effective zone.

    When checking ``s1 else s2 else ...``, the branch ``s_i`` only governs
    paths outside the zones of earlier branches.  This helper applies the
    same ``I(¬(Z1 | ... | Z_{i-1})) ∘ R`` restriction used by the Figure 4
    translation so per-branch results can be attributed to sub-specs during
    counterexample generation (Section 6.3).
    """
    shadow = _shadow_union(prior_zones)
    pre_rel = _restrict_outside(pre_relation(branch), shadow)
    post_rel = _restrict_outside(post_relation(branch), shadow)
    pre_side = rir.PSImage(rir.PSPreState(), pre_rel)
    post_side = rir.PSImage(rir.PSPostState(), post_rel)
    return rir.SpecEqual(pre_side, post_side, label=label or branch.name)


def hash_expansions(spec: rela_spec.RelaSpec) -> list[Regex]:
    """All ``any`` targets in the spec, in syntactic order.

    Counterexample rendering uses these to undo the ``#`` rewriting that the
    ``any`` translation introduces, so violations are reported in terms of
    the user's own path expressions.
    """
    result: list[Regex] = []
    if isinstance(spec, rela_spec.AtomicSpec):
        if isinstance(spec.modifier, mods.Any):
            result.append(spec.modifier.paths)
    elif isinstance(spec, rela_spec.SeqSpec):
        for part in spec.parts:
            result.extend(hash_expansions(part))
    elif isinstance(spec, rela_spec.ElseSpec):
        result.extend(hash_expansions(spec.primary))
        result.extend(hash_expansions(spec.fallback))
    return result
