"""Rela change specifications (paper Figure 2, Section 4).

A specification relates the forwarding paths of the pre-change and
post-change snapshots.  The three spec forms are:

* :class:`AtomicSpec` — ``zone : modifier``;
* :class:`SeqSpec` — concatenation ``s1 s2`` (end-to-end stitching of
  sub-path specs);
* :class:`ElseSpec` — prioritized union ``s1 else s2`` (anything not covered
  by ``s1``'s zone falls through to ``s2``).

Specs can be named (:func:`named`), reused and composed; the number of atomic
terms (:meth:`RelaSpec.atomic_count`) is the spec-size metric used by the
paper's Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.regex import AnySym, Regex, Star
from repro.rela.modifiers import Modifier, Preserve
from repro.rela.pathexpr import PathLike, as_regex


class RelaSpec:
    """Base class for Rela change specifications."""

    __slots__ = ()

    #: Optional name used in counterexample "reason" rendering.
    name: str | None = None

    def atomic_count(self) -> int:
        """Number of atomic ``zone : modifier`` terms (paper's spec size)."""
        raise NotImplementedError

    def then(self, other: RelaSpec) -> RelaSpec:
        """Concatenate with another spec (``s1 s2``)."""
        return SeqSpec((self, other))

    def else_(self, other: RelaSpec) -> RelaSpec:
        """Prioritized union with another spec (``s1 else s2``)."""
        return ElseSpec(self, other)

    def named(self, name: str) -> RelaSpec:
        """Return a copy of this spec carrying ``name`` for diagnostics."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class AtomicSpec(RelaSpec):
    """``zone : modifier``."""

    zone: Regex
    modifier: Modifier
    name: str | None = None

    def atomic_count(self) -> int:
        return 1

    def named(self, name: str) -> AtomicSpec:
        return AtomicSpec(self.zone, self.modifier, name)

    def __str__(self) -> str:
        body = f"{self.zone} : {self.modifier}"
        return f"{self.name} := {{ {body} }}" if self.name else f"{{ {body} }}"


@dataclass(frozen=True, slots=True)
class SeqSpec(RelaSpec):
    """Concatenation of sub-path specs (``s1 s2 ... sn``)."""

    parts: tuple[RelaSpec, ...]
    name: str | None = None

    def atomic_count(self) -> int:
        return sum(part.atomic_count() for part in self.parts)

    def named(self, name: str) -> SeqSpec:
        return SeqSpec(self.parts, name)

    def __str__(self) -> str:
        body = " ; ".join(str(part) for part in self.parts)
        return f"{self.name} := {{ {body} }}" if self.name else f"{{ {body} }}"


@dataclass(frozen=True, slots=True)
class ElseSpec(RelaSpec):
    """Prioritized union (``s1 else s2``)."""

    primary: RelaSpec
    fallback: RelaSpec
    name: str | None = None

    def atomic_count(self) -> int:
        return self.primary.atomic_count() + self.fallback.atomic_count()

    def named(self, name: str) -> ElseSpec:
        return ElseSpec(self.primary, self.fallback, name)

    def __str__(self) -> str:
        body = f"{self.primary} else {self.fallback}"
        return f"{self.name} := {body}" if self.name else body


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------
def atomic(zone: PathLike, modifier: Modifier, *, name: str | None = None) -> AtomicSpec:
    """Build ``zone : modifier``, accepting a textual zone expression."""
    return AtomicSpec(as_regex(zone), modifier, name)


def seq_spec(*parts: RelaSpec, name: str | None = None) -> RelaSpec:
    """Concatenate sub-path specs; a single part is returned unchanged."""
    if len(parts) == 1 and name is None:
        return parts[0]
    if len(parts) == 1:
        return parts[0].named(name)
    return SeqSpec(tuple(parts), name)


def else_chain(*parts: RelaSpec, name: str | None = None) -> RelaSpec:
    """Right-associative chain ``s1 else (s2 else (...))``."""
    if not parts:
        raise ValueError("else_chain requires at least one spec")
    result = parts[-1]
    for part in reversed(parts[:-1]):
        result = ElseSpec(part, result)
    if name is not None:
        result = result.named(name)
    return result


def nochange(*, name: str = "nochange") -> AtomicSpec:
    """The ubiquitous ``.* : preserve`` spec ("nothing changes")."""
    return AtomicSpec(Star(AnySym()), Preserve(), name)


def flatten_else(spec: RelaSpec) -> list[RelaSpec]:
    """Flatten a chain of ``else`` branches into priority order.

    A spec without ``else`` yields a single branch.  Branch order matters:
    earlier branches shadow later ones on overlapping zones, exactly as in
    the prioritized-union semantics.
    """
    if isinstance(spec, ElseSpec):
        return flatten_else(spec.primary) + flatten_else(spec.fallback)
    return [spec]
